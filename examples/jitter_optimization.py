#!/usr/bin/env python3
"""Extension: jitter-*minimizing* synthesis.

The paper synthesizes any schedule satisfying the stability constraints;
this example uses the optimization layer to push applications deep into
their stability regions, comparing the paper's feasibility formulation
against total-jitter minimization, and exports the optimized schedule as
JSON and as per-switch 802.1Qbv configuration.

Run:  python examples/jitter_optimization.py
"""

import json
from fractions import Fraction

from repro.core import (
    ControlApplication,
    SynthesisOptions,
    SynthesisProblem,
    minimize_jitter,
    render_switch_configs,
    solution_to_dict,
    synthesize,
    validate_solution,
)
from repro.network import DelayModel, microseconds, simple_testbed
from repro.stability import StabilitySpec


def main() -> None:
    net = simple_testbed(3)
    delays = DelayModel(sd=microseconds(5), ld=Fraction(120, 1_000_000))
    spec = StabilitySpec.single_line("1.5", "0.006")
    apps = [
        ControlApplication(f"app{i}", f"S{i}", f"C{i}", Fraction(5, 1000), spec)
        for i in range(3)
    ]
    problem = SynthesisProblem(net, apps, delays)

    feasible = synthesize(problem, SynthesisOptions(routes=2))
    assert feasible.ok
    refined = minimize_jitter(problem, routes=2, tolerance=Fraction(1, 10**6))
    assert refined.ok
    validate_solution(refined.solution)

    print("app      feasible J (ms)   optimized J (ms)   margin gain (ms)")
    for app in apps:
        rf = feasible.solution.app_report(app.name)
        ro = refined.solution.app_report(app.name)
        print(f"{app.name:8s} {float(rf.jitter) * 1000:13.3f} "
              f"{float(ro.jitter) * 1000:17.3f} "
              f"{(ro.margin - rf.margin) * 1000:15.3f}")
    total_f = sum(r.jitter for r in feasible.solution.reports())
    total_o = sum(r.jitter for r in refined.solution.reports())
    print(f"\ntotal jitter: {float(total_f) * 1000:.3f} ms -> "
          f"{float(total_o) * 1000:.3f} ms "
          f"({refined.probes} optimization probes)")

    blob = json.dumps(solution_to_dict(refined.solution))
    print(f"\nserialized schedule: {len(blob)} bytes of JSON")
    print("\nfirst lines of the switch configuration:")
    print("\n".join(render_switch_configs(refined.solution).splitlines()[:12]))


if __name__ == "__main__":
    main()
