#!/usr/bin/env python3
"""Close the loop: does the *synthesized network schedule* actually keep
the plants stable in simulation?

Pipeline:
1. design an LQG controller for an inverted pendulum;
2. derive its stability spec (jitter-margin curve -> piecewise bound);
3. synthesize a TSN schedule for several such apps sharing a network;
4. extract each app's *actual* per-instance network delays from the
   discrete-event simulation of the schedule;
5. simulate the continuous closed loop driven by exactly that delay
   pattern and confirm the state stays bounded.

Run:  python examples/closed_loop_validation.py
"""

from fractions import Fraction

import numpy as np

from repro.control.plants import inverted_pendulum, paper_controller
from repro.control.simulate import simulate_with_delays
from repro.core import (
    ControlApplication,
    SynthesisOptions,
    SynthesisProblem,
    solve,
)
from repro.network import DelayModel, microseconds, simple_testbed
from repro.sim import simulate_solution
from repro.stability import compute_stability_curve, fit_lower_bound


def main() -> None:
    plant = inverted_pendulum()
    h = Fraction(20, 1000)
    controller = paper_controller(plant, float(h))
    curve = compute_stability_curve(plant.system, float(h), controller, n_points=9)
    spec = fit_lower_bound(curve, 2)

    net = simple_testbed(3)
    delays = DelayModel(sd=microseconds(5), ld=Fraction(120, 1_000_000))
    apps = [
        ControlApplication(f"app{i}", f"S{i}", f"C{i}", h, spec)
        for i in range(3)
    ]
    problem = SynthesisProblem(net, apps, delays)
    result = solve(problem, SynthesisOptions(routes=2))
    assert result.ok
    solution = result.solution
    trace = simulate_solution(solution)

    print("app     net delays (ms)            bounded  final |x|")
    for app in apps:
        pattern = sorted(
            (sched.release, trace.e2e[uid])
            for uid, sched in solution.schedules.items()
            if sched.app == app.name
        )
        delays_s = [float(d) for _, d in pattern]
        sim = simulate_with_delays(
            plant.system, controller, float(h), delays_s, n_steps=1500
        )
        print(f"{app.name:6s}  {[round(d * 1000, 3) for d in delays_s]!s:24s} "
              f"{sim.is_bounded()!s:7s}  {sim.final_state_norm:.2e}")
        assert sim.is_bounded(), f"{app.name} diverged despite stability margin"
    print("\nall apps remain stable under their synthesized network delays")


if __name__ == "__main__":
    main()
