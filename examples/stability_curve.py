#!/usr/bin/env python3
"""Reproduce the paper's Fig. 3: the stability curve of a DC servo.

Plant 1000/(s^2 + s) with a discrete LQG controller at h = 6 ms; prints
the jitter-margin curve J_max(L), the piecewise-linear lower bound, and
an ASCII rendering of the stable region.

Run:  python examples/stability_curve.py
"""

from fractions import Fraction

from repro.eval import run_fig3


def ascii_plot(curve, bound, width: int = 64, height: int = 18) -> str:
    """Terminal rendering of Fig. 3 (curve `*`, bound `+`, both `#`)."""
    import numpy as np

    lmax = float(curve.latencies[-1]) or 1.0
    jmax = float(max(curve.margins)) * 1.1 or 1.0
    grid = [[" "] * width for _ in range(height)]

    def put(x, y, ch):
        col = min(width - 1, int(x / lmax * (width - 1)))
        row = min(height - 1, int(y / jmax * (height - 1)))
        row = height - 1 - row
        cur = grid[row][col]
        grid[row][col] = "#" if cur not in (" ", ch) else ch

    for lat in [lmax * i / (width * 2) for i in range(width * 2 + 1)]:
        put(lat, curve.margin_at(lat), "*")
        flat = Fraction(lat).limit_denominator(10**12)
        for seg in bound.segments:
            if seg.l_lo <= flat <= seg.l_hi:
                val = float(seg.jitter_bound(flat))
                if val >= 0:
                    put(lat, val, "+")
    lines = ["".join(row) for row in grid]
    lines.append("-" * width)
    lines.append(f"L: 0 .. {lmax * 1000:.1f} ms   "
                 f"J: 0 .. {jmax * 1000:.1f} ms   (*: curve, +: bound)")
    return "\n".join(lines)


def main() -> None:
    result = run_fig3(n_points=13, n_segments=3)
    print("Fig. 3 — DC servo 1000/(s^2+s), LQG, h = 6 ms\n")
    print(result.render())
    print()
    print(ascii_plot(result.curve, result.bound))
    print("\nstability condition per segment (Eq. 2):")
    for k, seg in enumerate(result.bound.segments, 1):
        print(f"  {k}: L + {float(seg.alpha):.3f} * J <= "
              f"{float(seg.beta) * 1000:.3f} ms   for L in "
              f"[{float(seg.l_lo) * 1000:.2f}, {float(seg.l_hi) * 1000:.2f}] ms")


if __name__ == "__main__":
    main()
