#!/usr/bin/env python3
"""Quickstart: stability-aware routing + scheduling on a small TSN network.

Builds a 4-switch ring with two control applications, runs the full
pipeline — LQG design, jitter-margin analysis, SMT synthesis — validates
the schedule, and replays it on the discrete-event switch simulator.

Run:  python examples/quickstart.py
"""

from fractions import Fraction

from repro.control.plants import inverted_pendulum, paper_controller
from repro.core import (
    ControlApplication,
    SynthesisOptions,
    SynthesisProblem,
    solve,
    validate_solution,
)
from repro.network import DelayModel, microseconds, simple_testbed
from repro.sim import cross_check_e2e, simulate_solution
from repro.stability import compute_stability_curve, fit_lower_bound


def main() -> None:
    # 1. Network: 4 switches in a ring, 2 sensor/controller pairs.
    net = simple_testbed(2)
    print(f"network: {net}")

    # 2. Control application: inverted pendulum, 20 ms sampling.
    plant = inverted_pendulum()
    h = plant.nominal_period
    controller = paper_controller(plant)
    print(f"plant: {plant.name}, sampling period {h * 1000:.0f} ms")

    # 3. Stability analysis: jitter-margin curve -> piecewise bound.
    curve = compute_stability_curve(plant.system, h, controller, n_points=9)
    spec = fit_lower_bound(curve, n_segments=2)
    print(f"stability curve: Jmax(0) = {curve.margins[0] * 1000:.2f} ms, "
          f"stable region ends at L = {curve.max_latency * 1000:.2f} ms")
    for seg in spec.segments:
        print(f"  segment: L + {float(seg.alpha):.2f} * J <= "
              f"{float(seg.beta) * 1000:.2f} ms "
              f"on [{float(seg.l_lo) * 1000:.1f}, {float(seg.l_hi) * 1000:.1f}] ms")

    # 4. Synthesis problem: both apps use the pendulum spec.
    delays = DelayModel(sd=microseconds(5), ld=Fraction(120, 1_000_000))
    apps = [
        ControlApplication(f"app{i}", f"S{i}", f"C{i}", Fraction(h).limit_denominator(1000), spec)
        for i in range(2)
    ]
    problem = SynthesisProblem(net, apps, delays)
    print(f"\nsynthesizing {problem.num_messages} messages "
          f"(hyper-period {float(problem.hyperperiod) * 1000:.0f} ms)...")

    result = solve(problem, SynthesisOptions(routes=2, stages=1))
    assert result.ok, "synthesis failed"
    solution = result.solution
    print(f"solved in {result.synthesis_time:.2f} s "
          f"({result.statistics['conflicts']} conflicts)")

    # 5. Independent validation + behavioural simulation.
    validate_solution(solution)
    trace = simulate_solution(solution)
    cross_check_e2e(solution, trace)
    print("schedule validated and replayed on the TSN switch model")

    # 6. Report (the paper's Table I columns).
    print("\napp       latency(ms)  jitter(ms)  margin(ms)  stable")
    for report in solution.reports():
        print(f"{report.name:8s}  {float(report.latency) * 1000:10.3f} "
              f"{float(report.jitter) * 1000:11.3f} "
              f"{report.margin * 1000:11.3f}  {report.stable}")

    # 7. The synthesized per-switch tables (eta / gamma).
    print("\nforwarding tables (eta):")
    for switch, table in sorted(solution.eta_tables().items()):
        for uid, nxt in sorted(table.items()):
            print(f"  {switch}: {uid} -> {nxt}")


if __name__ == "__main__":
    main()
