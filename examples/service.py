#!/usr/bin/env python3
"""Synthesis-as-a-service: batched requests, deadlines, knowledge cache.

Starts an in-process :class:`repro.service.SynthesisServer` with two
persistent solver workers and a disk-backed knowledge cache, then:

1. submits a batch with mixed per-request deadlines — the generously
   budgeted GM case-study requests complete, while a deliberately
   starved request on a harder instance comes back as a typed
   ``timeout`` (its worker is interrupted mid-solve, not abandoned);
2. re-submits one of the solved problems byte-identically — the
   fingerprint matches, the cached clauses/prefix seed the worker, and
   the warm solve does strictly less search than its cold twin;
3. prints the server's stats endpoint: request counters, latency
   percentiles, cache hit/miss counters, supervision state.

Run:  python examples/service.py
"""

import asyncio
import tempfile

from repro.core.synthesizer import SynthesisOptions
from repro.eval import gm_case_study
from repro.service import (
    KnowledgeCache,
    ServiceClient,
    ServicePolicy,
    SynthesisRequest,
    SynthesisServer,
)


def work(reply: dict) -> int:
    stats = reply.get("statistics", {})
    return stats.get("conflicts", 0) + stats.get("decisions", 0)


async def main() -> None:
    opts = SynthesisOptions(routes=2)
    with tempfile.TemporaryDirectory() as cache_dir:
        cache = KnowledgeCache(cache_dir)
        policy = ServicePolicy(workers=2, worker_mode="process")
        async with SynthesisServer(policy=policy, cache=cache) as server:
            client = ServiceClient(server)

            print("== batch with mixed deadlines ==")
            replies = await client.solve_batch([
                # Far too little budget for this instance (it needs
                # ~20 s): the server interrupts the solver mid-flight
                # and answers with a typed timeout.
                SynthesisRequest(id="starved", problem=gm_case_study(5),
                                 options=opts, deadline=2.5),
                SynthesisRequest(id="gm3", problem=gm_case_study(3),
                                 options=opts, deadline=60.0),
                SynthesisRequest(id="gm4", problem=gm_case_study(4),
                                 options=opts, deadline=60.0),
            ])
            for reply in replies:
                status = reply.get("status", "-")
                print(f"  {reply['id']:<8} type={reply['type']:<8} "
                      f"status={status:<8} wall={reply['solve_wall']:.2f}s "
                      f"work={work(reply)}")
            cold = next(r for r in replies if r["id"] == "gm3")

            print("== cache-hit warm start ==")
            warm = await client.solve(gm_case_study(3), opts,
                                      deadline=60.0, request_id="gm3-again")
            print(f"  hit={warm['cache']['hit']}  "
                  f"cold work={work(cold)}  warm work={work(warm)}  "
                  f"(strictly less: {work(warm) < work(cold)})")

            print("== server stats ==")
            stats = server.stats()
            print(f"  requests: {stats['requests']}")
            total = stats["latency"]["total"]
            print(f"  latency: p50={total['p50']:.3f}s "
                  f"p99={total['p99']:.3f}s over {total['count']} requests")
            print(f"  cache: {stats['cache']}")
            print(f"  supervision: {stats['supervision']}")


if __name__ == "__main__":
    asyncio.run(main())
