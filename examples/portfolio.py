#!/usr/bin/env python3
"""Portfolio synthesis: race the paper's heuristics, first SAT wins.

Runs the default strategy portfolio (monolithic, route subsets K=1..3,
incremental stages S=2/4) concurrently against the GM automotive case
study and against one random 35-node problem, printing which strategy
won the race and how every entrant fared.  Compare with
examples/heuristics_scaling.py, which runs the same configurations one
at a time.

Run:  python examples/portfolio.py [n_apps]   (default 6)
"""

import sys

from repro.core import validate_solution
from repro.eval import gm_case_study, random_problem
from repro.portfolio import synthesize_portfolio


def race(title, problem) -> None:
    print(f"{title}: {len(problem.apps)} apps, "
          f"{problem.num_messages} messages")
    res = synthesize_portfolio(problem)
    print(f"  status={res.status}  winner={res.winner}  "
          f"total={res.total_time:.2f}s")
    print("  strategy     status     wall (s)  conflicts")
    for sr in res.strategy_results:
        conflicts = sr.statistics.get("conflicts", "-")
        print(f"  {sr.name:<12} {sr.status:<10} {sr.wall_time:8.2f}  "
              f"{conflicts:>9}")
    if res.ok:
        validate_solution(res.solution)
        print("  winning schedule validated (all Sec. V constraints hold)")
    print()


def main() -> None:
    n_apps = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    race("GM case study", gm_case_study(n_apps=min(n_apps, 20)))
    race("Random 35-node problem", random_problem(seed=7, n_apps=n_apps))


if __name__ == "__main__":
    main()
