#!/usr/bin/env python3
"""The paper's Table I case study: a General Motors automotive network.

20 control applications (sensors: camera/radar/lidar; ECUs: perception,
tracking, active safety, autonomous control) communicate over the
8-switch topology of the paper's Fig. 1 at 10 Mbit/s (ld = 1.2 ms).

Compares stability-aware synthesis against the deadline-only state of the
art, reproducing the paper's headline: the deadline schedule meets every
deadline yet leaves applications *unstable*, while the stability-aware
schedule keeps all of them stable.

Run:  python examples/automotive.py [n_apps]      (default 8; paper: 20)
"""

import sys

from repro.eval import gm_case_study, run_table1
from repro.sim import cross_check_e2e, simulate_solution


def main() -> None:
    n_apps = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    problem = gm_case_study(n_apps=n_apps)
    print(f"GM case study: {len(problem.apps)} apps, "
          f"{problem.num_messages} messages / "
          f"{float(problem.hyperperiod) * 1000:.0f} ms hyper-period, "
          f"ld = {float(problem.delays.ld) * 1000:.1f} ms\n")

    result = run_table1(n_apps=n_apps, routes=3, stages=5)
    print(result.render())

    # Replay the stability-aware schedule on the TSN switch simulator.
    from repro.core import SynthesisOptions, solve

    res = solve(problem, SynthesisOptions(routes=3, stages=5))
    if res.ok:
        trace = simulate_solution(res.solution)
        cross_check_e2e(res.solution, trace)
        print(f"\nsimulated {len(trace.arrivals)} frames through the "
              f"802.1Qbv switch model: measured e2e == analytical e2e")


if __name__ == "__main__":
    main()
