#!/usr/bin/env python3
"""The paper's scalability heuristics in action (Figs. 4-6).

Synthesizes one random 35-node problem under different numbers of
incremental stages and candidate-route subsets, printing the trade-off
between synthesis time and solution quality that Sec. V-C describes.

Run:  python examples/heuristics_scaling.py [n_apps]   (default 5)
"""

import sys

from repro.core import SynthesisOptions, solve, validate_solution
from repro.eval import random_problem


def main() -> None:
    n_apps = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    problem = random_problem(seed=7, n_apps=n_apps)
    print(f"random problem: {len(problem.apps)} apps, "
          f"{problem.num_messages} messages, "
          f"{len(problem.network.switches)} switches\n")

    print("Incremental synthesis (routes = 4):")
    print("stages   status   time (s)   conflicts")
    for stages in (1, 2, 3, 5, 9):
        res = solve(problem, SynthesisOptions(routes=4, stages=stages))
        print(f"{stages:6d}   {res.status:6s}  {res.synthesis_time:8.2f}   "
              f"{res.statistics['conflicts']:9d}")
        if res.ok:
            validate_solution(res.solution)

    print("\nRoute subsets (stages = 5):")
    print("routes   status   time (s)")
    for routes in (1, 2, 3, 5, 8):
        res = solve(problem, SynthesisOptions(routes=routes, stages=5))
        print(f"{routes:6d}   {res.status:6s}  {res.synthesis_time:8.2f}")

    print("\nNote: as in the paper, the heuristics only explore a subset of")
    print("the solution space — UNSAT under few routes/many stages does not")
    print("mean the full formulation is infeasible.")


if __name__ == "__main__":
    main()
