#!/usr/bin/env python3
"""Unsat cores and assumption probing with the session API.

Walks the three layers of the new ``repro.api`` surface:

1. a raw :class:`~repro.api.Session` with assumption literals and a
   deletion-minimized unsat core,
2. the serialization backend producing an SMT-LIB2 script for the same
   check, and
3. the synthesis driver using probes/cores on a contention-tight network
   — including the staged-heuristic trap that core-driven repair
   recovers.

Run:  python examples/unsat_core.py
"""

from fractions import Fraction

from repro.api import Session
from repro.core import SynthesisOptions, solve
from repro.eval.workloads import bottleneck_problem, bottleneck_repair_problem
from repro.smt import Bool, Not, Or, Real


def session_basics() -> None:
    # Three machines, one shared budget: the session decides which
    # combination of requests is jointly impossible — and *why*.
    m1, m2, m3 = Real("m1"), Real("m2"), Real("m3")
    hi1, hi2, hi3 = Bool("hi1"), Bool("hi2"), Bool("hi3")
    with Session() as s:
        s.add(m1 >= 0, m2 >= 0, m3 >= 0, m1 + m2 + m3 <= 10)
        s.add(Or(Not(hi1), m1 >= 6))
        s.add(Or(Not(hi2), m2 >= 6))
        s.add(Or(Not(hi3), m3 >= 1))

        out = s.check(hi1, hi2, hi3)
        print(f"assume all three high: {out.status}")
        core = out.unsat_core
        print(f"  minimized core ({len(core)} of {len(out.assumptions)} "
              f"assumptions): {list(core)}")
        assert set(core) == {hi1, hi2}  # hi3 is innocent

        out = s.check(core)
        print(f"  re-checking only the core: {out.status}")
        assert out == "unsat"

        out = s.check(hi1, hi3)
        print(f"  dropping one core member: {out.status} "
              f"(m1={out.model[m1]}, m3={out.model[m3]})")


def serialization_backend() -> None:
    m1, m2 = Real("m1"), Real("m2")
    hi1, hi2 = Bool("hi1"), Bool("hi2")
    s = Session(backend="serialization", engine="native")
    s.add(m1 >= 0, m2 >= 0, m1 + m2 <= 10)
    s.add(Or(Not(hi1), m1 >= 6), Or(Not(hi2), m2 >= 6))
    out = s.check(hi1, hi2)
    print(f"\nserialization backend agrees: {out.status}")
    print("the check as an SMT-LIB2 script:")
    for line in s.backend.last_script.strip().splitlines():
        print(f"  {line}")


def synthesis_probing() -> None:
    # Three apps funnelled through one link: every all-shortest-routes
    # selection is infeasible, but the instance is satisfiable.
    result = solve(bottleneck_problem(3, islands=1),
                   SynthesisOptions(routes=2))
    stats = result.statistics
    print(f"\nfunnel synthesis: {result.status} "
          f"(assumption probes {stats['assumption_probes']}, "
          f"cores extracted {stats['cores_extracted']})")
    assert result.ok and stats["cores_extracted"] > 0

    # Infeasible variant: period below the relief path's latency.
    result = solve(bottleneck_problem(3, period=Fraction(35, 10000)),
                   SynthesisOptions(routes=2))
    print(f"shrunk period: {result.status} "
          f"(failed stage {result.failed_stage})")
    assert not result.ok

    # The staged-heuristic trap: stage-0 freezes block stage 1 ...
    trapped = solve(bottleneck_repair_problem(),
                    SynthesisOptions(routes=2, stages=2))
    print(f"staged heuristic on the trap: {trapped.status}")
    # ... and core-driven repair recovers it.
    repaired = solve(bottleneck_repair_problem(),
                     SynthesisOptions(routes=2, stages=2, repair=True))
    stats = repaired.statistics
    print(f"with repair=True: {repaired.status} "
          f"(stage repairs {stats['stage_repairs']}, "
          f"cores {stats['cores_extracted']})")
    assert not trapped.ok and repaired.ok


def main() -> None:
    session_basics()
    serialization_backend()
    synthesis_probing()
    print("\nall demonstrations passed")


if __name__ == "__main__":
    main()
