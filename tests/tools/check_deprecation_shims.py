#!/usr/bin/env python3
"""CI check: the legacy entry points still solve, and warn exactly once.

Run directly (``python tests/tools/check_deprecation_shims.py``) or via
pytest (``tests/smt/test_deprecation.py`` covers the same latches in-
suite); CI runs the direct form in a pristine interpreter so the
once-per-process warning latches are exercised from a cold start.
"""

import sys
import warnings


def check_smt_solver() -> None:
    from repro.smt import Real, Solver, sat

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        x = Real("shim_x")
        solver = Solver()
        solver.add(x >= 1)
        assert solver.check() == sat
        assert solver.model()[x] >= 1
        Solver()  # second instantiation must NOT warn again
    dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(dep) == 1, f"smt.Solver warned {len(dep)} times (want 1)"
    assert "repro.api.Session" in str(dep[0].message)


def check_core_synthesize() -> None:
    from repro.core import SynthesisOptions, synthesize
    from repro.eval.workloads import bottleneck_problem

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        problem = bottleneck_problem(2)
        result = synthesize(problem, SynthesisOptions(routes=2))
        assert result.ok, result.status
        synthesize(problem, SynthesisOptions(routes=2))  # no second warning
    dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(dep) == 1, f"core.synthesize warned {len(dep)} times (want 1)"
    assert "repro.core.solve" in str(dep[0].message)


def main() -> int:
    check_smt_solver()
    check_core_synthesize()
    print("deprecation shims OK: old paths work and warn exactly once")
    return 0


if __name__ == "__main__":
    sys.exit(main())
