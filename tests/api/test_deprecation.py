"""Legacy entry points: still functional, warn exactly once per process.

The once-per-process latches cannot be asserted reliably inside a shared
pytest process (any earlier test may have tripped them), so the real
check runs in a pristine subprocess — the same script the CI
``deprecation-shims`` job executes.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def test_shim_script_passes_in_fresh_interpreter():
    proc = subprocess.run(
        [sys.executable, str(REPO / "tests/tools/check_deprecation_shims.py")],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src")},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "deprecation shims OK" in proc.stdout


def test_legacy_solver_still_solves_in_suite():
    # Functional (not warning-count) coverage inside the suite.
    from repro.smt import Real, Solver, sat

    solver = Solver()
    x = Real("dep_x")
    solver.add(x >= 2)
    assert solver.check() == sat


def test_legacy_synthesize_still_solves_in_suite():
    from repro.core import SynthesisOptions, synthesize
    from repro.eval.workloads import bottleneck_problem

    result = synthesize(bottleneck_problem(2), SynthesisOptions(routes=2))
    assert result.ok
