"""SMT-LIB2 / DIMACS serialization of the term language."""

from fractions import Fraction

import pytest

from repro.api.smtlib import rational, render, symbol, to_dimacs, to_smt2
from repro.errors import SolverError
from repro.sat.dimacs import DimacsSolver, parse_dimacs
from repro.smt import And, Bool, BoolVal, Not, Or, Real


class TestSymbols:
    def test_simple_names_unquoted(self):
        assert symbol("x") == "x"
        assert symbol("foo_bar-1") == "foo_bar-1"

    def test_special_names_quoted(self):
        assert symbol("q0/g[m1][A]") == "|q0/g[m1][A]|"
        assert symbol("has space") == "|has space|"
        assert symbol("1starts_with_digit") == "|1starts_with_digit|"

    def test_unrepresentable_rejected(self):
        with pytest.raises(SolverError):
            symbol("pipe|name")


class TestRationals:
    def test_integers(self):
        assert rational(Fraction(3)) == "3.0"
        assert rational(Fraction(0)) == "0.0"

    def test_fractions_and_negatives(self):
        assert rational(Fraction(1, 3)) == "(/ 1.0 3.0)"
        assert rational(Fraction(-5)) == "(- 5.0)"
        assert rational(Fraction(-2, 7)) == "(- (/ 2.0 7.0))"


class TestRender:
    def test_boolean_structure(self):
        a, b = Bool("sr_a"), Bool("sr_b")
        assert render(And(a, b)) == "(and sr_a sr_b)"
        assert render(Or(a, Not(b))) == "(or sr_a (not sr_b))"
        assert render(BoolVal(True)) == "true"

    def test_atoms(self):
        x, y = Real("sr_x"), Real("sr_y")
        text = render(x + 2 * y <= 7)
        assert text == "(<= (+ sr_x (* 2.0 sr_y)) 7.0)"
        assert render(x < 0) == "(< sr_x 0.0)"


class TestScript:
    def test_full_script_checks(self):
        x = Real("ss_x")
        a = Bool("ss_a")
        script, terms = to_smt2([x >= 0, Or(Not(a), x <= 5)], [a])
        assert script.startswith("(set-option :produce-unsat-assumptions true)")
        assert "(declare-const ss_a Bool)" in script
        assert "(declare-const ss_x Real)" in script
        assert "(check-sat-assuming (ss_a))" in script
        assert terms == ["ss_a"]

    def test_non_literal_assumptions_get_guards(self):
        x = Real("ss2_x")
        script, terms = to_smt2([x >= 0], [x <= 3])
        assert terms == ["__assume!0"]  # '!' needs no quoting in SMT-LIB2
        assert "(declare-const __assume!0 Bool)" in script
        assert "(assert (= __assume!0 (<= ss2_x 3.0)))" in script
        assert "(check-sat-assuming (__assume!0))" in script

    def test_plain_check_sat_without_assumptions(self):
        x = Real("ss3_x")
        script, terms = to_smt2([x >= 0])
        assert script.rstrip().endswith("(check-sat)")
        assert terms == []


class TestDimacs:
    def test_round_trips_through_sat_core(self):
        a, b, c = Bool("sd_a"), Bool("sd_b"), Bool("sd_c")
        text = to_dimacs([Or(a, b), Or(Not(a), c), Not(c)])
        n_vars, clauses = parse_dimacs(text)
        solver = DimacsSolver()
        solver.ensure_vars(n_vars)
        ok = True
        for clause in clauses:
            ok = solver.add_clause(clause) and ok
        assert ok and solver.solve()
        # the formula forces not-c, hence not-a, hence b
        model = set(solver.model())
        assert len(model) == n_vars

    def test_unsat_formula_round_trips(self):
        a = Bool("sd2_a")
        text = to_dimacs([a, Not(a)])
        n_vars, clauses = parse_dimacs(text)
        solver = DimacsSolver()
        solver.ensure_vars(max(n_vars, 1))
        ok = True
        for clause in clauses:
            if not clause:
                ok = False
                continue
            ok = solver.add_clause(clause) and ok
        assert not (ok and solver.solve())

    def test_arithmetic_rejected(self):
        x = Real("sd3_x")
        with pytest.raises(SolverError, match="propositional"):
            to_dimacs([x >= 0])
