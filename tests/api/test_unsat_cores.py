"""Unsat-core properties: subset, sufficiency, deletion-minimality."""

import random

import pytest

from repro.api import Session
from repro.smt import Bool, Not, Or, Real, SolverEngine, unsat


def lits(prefix, n):
    return [Bool(f"{prefix}_l{i}") for i in range(n)]


class TestCoreProperties:
    def test_core_subset_of_assumptions(self):
        a, b, c, d = lits("cp1", 4)
        x = Real("cp1_x")
        s = Session()
        s.add(Or(Not(a), x >= 5), Or(Not(b), x <= 1))
        out = s.check(a, b, c, d)
        assert out == unsat
        assert set(out.unsat_core) <= {a, b, c, d}
        assert set(out.unsat_core) == {a, b}

    def test_core_alone_still_unsat(self):
        a, b, c, d = lits("cp2", 4)
        x = Real("cp2_x")
        s = Session()
        s.add(Or(Not(a), x >= 5), Or(Not(b), x <= 1), Or(Not(c), x >= 0))
        out = s.check(a, b, c, d)
        assert out == unsat
        again = s.check(out.unsat_core)
        assert again == unsat
        # and the re-check's own core is no larger
        assert set(again.unsat_core) <= set(out.unsat_core)

    def test_minimized_core_is_deletion_minimal(self):
        """Dropping any single literal from the core makes it sat."""
        a, b, c, d = lits("cp3", 4)
        x = Real("cp3_x")
        s = Session()
        s.add(Or(Not(a), x >= 5), Or(Not(b), x <= 1), Or(Not(c), x <= 2))
        out = s.check(a, b, c, d)
        assert out == unsat
        core = list(out.unsat_core)
        for dropped in range(len(core)):
            remainder = core[:dropped] + core[dropped + 1:]
            assert s.check(remainder) == "sat", (
                f"core not minimal: still unsat without {core[dropped]!r}"
            )

    def test_minimization_shrinks_raw_core(self):
        """Deletion minimization strictly improves a redundant raw core.

        ``a`` implies ``c``, and ``b`` alone is contradictory (it forces
        both ``c`` and ``not c``) — but with assumption order ``[a, b]``
        the final conflict's implication graph passes through ``a``'s
        implication of ``c``, so the raw core overcounts to ``{a, b}``
        while the true minimum is ``{b}``.
        """
        a, b, c = lits("cp4", 3)
        engine = SolverEngine()
        engine.add(Or(Not(a), c))        # a -> c
        engine.add(Or(Not(b), c))        # b -> c
        engine.add(Or(Not(b), Not(c)))   # b -> not c
        assert engine.check(a, b) == unsat
        raw = engine.unsat_core(minimize=False)
        assert set(raw) == {a, b}
        minimized = engine.unsat_core(minimize=True)
        assert minimized == [b]

    def test_empty_core_when_formula_unsat(self):
        a, b, c, d = lits("cp5", 4)
        x = Real("cp5_x")
        s = Session()
        s.add(x >= 3, x <= 1)
        out = s.check(a, b)
        assert out == unsat
        assert out.unsat_core == ()

    def test_no_core_without_assumptions(self):
        x = Real("cp6_x")
        s = Session()
        s.add(x >= 3, x <= 1)
        out = s.check()
        assert out == unsat and out.unsat_core is None

    def test_contradictory_assumption_pair(self):
        a, b, c, d = lits("cp7", 4)
        s = Session()
        s.add(Or(a, b))
        na = Not(a)
        out = s.check(a, na, c)
        assert out == unsat
        assert len(out.unsat_core) == 2
        assert a in out.unsat_core and na in out.unsat_core

    def test_minimize_off_returns_raw(self):
        a, b, c, d = lits("cp8", 4)
        x = Real("cp8_x")
        s = Session(minimize_cores=False)
        s.add(Or(Not(a), x >= 5), Or(Not(b), x <= 1))
        out = s.check(a, b, c)
        assert out == unsat
        assert {a, b} <= set(out.unsat_core)

    def test_cores_respect_scopes(self):
        a, b, c, d = lits("cp9", 4)
        x = Real("cp9_x")
        s = Session()
        s.add(Or(Not(a), x >= 5))
        s.push()
        s.add(x <= 1)
        out = s.check(a, b)
        assert out == unsat
        assert list(out.unsat_core) == [a]  # scope selector never leaks out
        s.pop()
        assert s.check(a, b) == "sat"


class TestCorePropertiesRandomized:
    """Seeded random interval systems: core invariants must always hold."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_interval_conflicts(self, seed):
        rng = random.Random(seed)
        x = Real(f"cr_{seed}_x")
        n = rng.randint(4, 9)
        guards = lits(f"cr_{seed}", n)
        s = Session()
        spans = []
        for i, g in enumerate(guards):
            lo = rng.randint(0, 20)
            hi = lo + rng.randint(0, 6)
            spans.append((lo, hi))
            s.add(Or(Not(g), x >= lo), Or(Not(g), x <= hi))
        out = s.check(guards)
        feasible = max(lo for lo, _ in spans) <= min(hi for _, hi in spans)
        if feasible:
            assert out == "sat"
            return
        assert out == unsat
        core = list(out.unsat_core)
        assert core and set(core) <= set(guards)
        # sufficiency
        assert s.check(core) == unsat
        # deletion-minimality
        for dropped in range(len(core)):
            rest = core[:dropped] + core[dropped + 1:]
            assert s.check(rest) == "sat"
