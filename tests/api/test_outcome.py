"""CheckResult / CheckOutcome string equality and hashing (satellite)."""

import pickle

from repro.api import CheckOutcome, Session
from repro.smt import CheckResult, Real, sat, unknown, unsat


class TestCheckResultStringEquality:
    def test_equals_strings(self):
        assert sat == "sat" and "sat" == sat
        assert unsat == "unsat" and unknown == "unknown"
        assert sat != "unsat" and unsat != "sat"
        assert not (sat == "unknown")

    def test_equals_other_results(self):
        assert sat == CheckResult("sat")
        assert sat != unsat

    def test_hash_consistent_with_strings(self):
        assert hash(sat) == hash("sat")
        assert hash(unsat) == hash("unsat")
        # usable as interchangeable dict keys
        table = {"sat": 1, "unsat": 2}
        assert table[sat] == 1 and table[unsat] == 2
        table2 = {sat: "yes"}
        assert table2["sat"] == "yes"

    def test_non_comparable_types(self):
        assert (sat == 42) is False
        assert (sat != 42) is True

    def test_bool_semantics_preserved(self):
        assert bool(sat) and not bool(unsat) and not bool(unknown)

    def test_survives_pickling(self):
        loaded = pickle.loads(pickle.dumps(unsat))
        assert loaded == unsat == "unsat"
        assert hash(loaded) == hash(unsat)


class TestCheckOutcomeEquality:
    def _outcomes(self):
        x = Real("oc_x")
        s = Session()
        s.add(x >= 0)
        good = s.check()
        s.add(x <= -1)
        bad = s.check()
        return good, bad

    def test_outcome_vs_strings_and_results(self):
        good, bad = self._outcomes()
        assert good == "sat" and good == sat and bool(good)
        assert bad == "unsat" and bad == unsat and not bool(bad)
        assert good != "unsat" and bad != sat

    def test_outcome_vs_outcome(self):
        good, bad = self._outcomes()
        assert good != bad
        assert good == CheckOutcome(status=sat)

    def test_hash_consistency(self):
        good, bad = self._outcomes()
        assert hash(good) == hash("sat") == hash(sat)
        counts = {}
        for o in (good, bad, good):
            counts[o] = counts.get(o, 0) + 1
        assert counts["sat"] == 2 and counts["unsat"] == 1

    def test_repr_mentions_core(self):
        x = Real("oc2_x")
        from repro.smt import Bool, Not, Or
        a = Bool("oc2_a")
        s = Session()
        s.add(Or(Not(a), x >= 5), x <= 1)
        out = s.check(a)
        assert "core=1 of 1" in repr(out)
        assert "unsat" in repr(out)
