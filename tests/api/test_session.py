"""The unified solving session: scopes, assumptions, outcomes, backends."""

import pytest

from repro.api import CheckOutcome, NativeBackend, Session, make_backend
from repro.errors import SolverError
from repro.smt import Bool, Not, Or, Real, sat, unknown, unsat


def fresh(prefix):
    """Namespaced variables (BoolVar/RealVar intern globally by name)."""
    return (Real(f"{prefix}_x"), Real(f"{prefix}_y"),
            Bool(f"{prefix}_a"), Bool(f"{prefix}_b"))


class TestSessionBasics:
    def test_check_returns_outcome_with_model(self):
        x, y, a, b = fresh("sb1")
        s = Session()
        s.add(x >= 3, y <= 2)
        out = s.check()
        assert isinstance(out, CheckOutcome)
        assert out == sat and out == "sat" and bool(out)
        assert out.model[x] >= 3
        assert out.backend == "native"
        assert out.statistics.keys() >= {"conflicts", "decisions"}

    def test_add_chains_and_flattens(self):
        x, y, a, b = fresh("sb2")
        s = Session().add([x >= 0, (y >= 0, a)], True)
        assert len(s.assertions) == 4
        assert s.check() == "sat"

    def test_add_rejects_non_boolean(self):
        s = Session()
        with pytest.raises(SolverError, match="Boolean"):
            s.add(42)

    def test_model_absent_on_unsat(self):
        x, y, a, b = fresh("sb3")
        s = Session()
        s.add(x >= 1, x <= 0)
        out = s.check()
        assert out == unsat and out.model is None
        with pytest.raises(SolverError, match="no model"):
            out.require_model()

    def test_context_manager(self):
        x, y, a, b = fresh("sb4")
        with Session() as s:
            s.add(x >= 0)
            assert s.check() == "sat"

    def test_session_counters(self):
        x, y, a, b = fresh("sb5")
        s = Session()
        s.add(Or(Not(a), x >= 4), Or(Not(b), x <= 1))
        s.check()
        s.check(a, b)
        stats = s.statistics
        assert stats["checks"] == 2
        assert stats["sat"] == 1 and stats["unsat"] == 1
        assert stats["assumption_checks"] == 1
        assert stats["cores_extracted"] == 1
        assert stats["native.vars"] > 0  # backend stats are prefixed

    def test_backend_instance_and_registry(self):
        assert isinstance(make_backend("native"), NativeBackend)
        s = Session(backend=NativeBackend())
        assert s.backend_name == "native"
        with pytest.raises(SolverError, match="unknown solver backend"):
            Session(backend="no-such-engine")
        with pytest.raises(SolverError, match="backend_options"):
            Session(backend=NativeBackend(), dump_dir="/tmp/x")


class TestScopes:
    def test_push_pop_restores(self):
        x, y, a, b = fresh("sc1")
        s = Session()
        s.add(x >= 0)
        s.push()
        s.add(x <= -1)
        assert s.check() == "unsat"
        s.pop()
        assert s.check() == "sat"
        assert s.num_scopes == 0
        assert len(s.assertions) == 1

    def test_pop_too_many_raises_cleanly(self):
        """Regression: pop(n) beyond the stack must raise, not corrupt."""
        s = Session()
        s.push()
        with pytest.raises(SolverError, match="cannot pop 2"):
            s.pop(2)
        # The stack survived the failed pop: still exactly one scope.
        assert s.num_scopes == 1
        s.pop()
        assert s.num_scopes == 0
        with pytest.raises(SolverError, match="cannot pop"):
            s.pop()
        with pytest.raises(SolverError, match="cannot pop"):
            s.pop(-1)

    def test_interleaved_scopes_and_assumptions(self):
        """Scopes must not leak assumption literals and vice versa."""
        x, y, a, b = fresh("sc2")
        s = Session()
        s.add(Or(Not(a), x >= 10))
        # Assumption inside a scope ...
        s.push()
        s.add(x <= 5)
        assert s.check(a) == "unsat"          # a forces x >= 10 > 5
        assert s.check() == "sat"             # assumption did not stick
        s.pop()
        # ... and after the pop, neither the scope nor the assumption.
        assert s.check(a) == "sat"
        assert s.check(a).model[x] >= 10
        out = s.check()
        assert out == "sat"

    def test_assumptions_do_not_leak_across_pops(self):
        x, y, a, b = fresh("sc3")
        s = Session()
        s.push()
        s.add(Or(Not(b), y >= 7))
        assert s.check(b).model[y] >= 7
        s.pop()
        # b's guard clause was scoped out; b is now unconstrained.
        out = s.check(b)
        assert out == "sat"
        s.add(y <= 0)
        assert s.check(b) == "sat"


class TestSerializationBackend:
    def test_native_replay_matches_native(self):
        x, y, a, b = fresh("sz1")
        results = {}
        for backend, kwargs in (("native", {}),
                                ("serialization", {"engine": "native"})):
            s = Session(backend=backend, **kwargs)
            s.add(x >= 3, Or(Not(a), x <= 1))
            results[backend] = (
                s.check().status.name,
                s.check(a).status.name,
            )
        assert results["native"] == results["serialization"] == ("sat", "unsat")

    def test_scripts_are_emitted_and_dumped(self, tmp_path):
        x, y, a, b = fresh("sz2")
        s = Session(backend="serialization", engine="native",
                    dump_dir=tmp_path)
        s.add(x + y <= 4, a)
        out = s.check(b)
        script = s.backend.last_script
        assert "(set-logic QF_LRA)" in script
        assert "(check-sat-assuming" in script
        dumps = list(tmp_path.glob("check_*.smt2"))
        assert len(dumps) == 1
        assert dumps[0].read_text() == script
        assert out.status in (sat, unsat, unknown)

    def test_engine_none_serializes_only(self):
        x, y, a, b = fresh("sz3")
        s = Session(backend="serialization", engine="none")
        s.add(x >= 0)
        out = s.check()
        assert out == unknown and out.model is None
        assert s.backend.last_script is not None

    def test_push_pop_in_replay(self):
        x, y, a, b = fresh("sz4")
        s = Session(backend="serialization", engine="native")
        s.add(x >= 0)
        s.push()
        s.add(x <= -1)
        assert s.check() == "unsat"
        s.pop()
        assert s.check() == "sat"

    def test_unknown_engine_rejected(self):
        with pytest.raises(SolverError, match="unknown serialization engine"):
            Session(backend="serialization", engine="cvc9")


def _pigeonhole_session(n_pigeons=7, n_holes=6, prefix="php", **options):
    """A hard pure-SAT session: PHP(n_pigeons, n_holes), unsat."""
    s = Session(**options)
    var = [[Bool(f"{prefix}_{p}_{h}") for h in range(n_holes)]
           for p in range(n_pigeons)]
    for p in range(n_pigeons):
        s.add(Or([var[p][h] for h in range(n_holes)]))
    for h in range(n_holes):
        for p1 in range(n_pigeons):
            for p2 in range(p1 + 1, n_pigeons):
                s.add(Or(Not(var[p1][h]), Not(var[p2][h])))
    return s


class TestCheckBudgetAndRestartHook:
    """``max_conflicts`` bounds a check; ``on_restart`` observes it."""

    def test_exhausted_budget_answers_unknown_without_model(self):
        s = _pigeonhole_session(prefix="budget1", max_conflicts=20)
        out = s.check()
        assert out == unknown and out.model is None
        assert s.statistics["unknown"] == 1

    def test_budget_does_not_disturb_easy_checks(self):
        x, y, a, b = fresh("budget2")
        s = Session(max_conflicts=20)
        s.add(Or(a, b), x >= 3)
        assert s.check() == sat
        s.add(x <= 2)
        assert s.check() == unsat

    def test_unknown_under_assumptions_has_no_core(self):
        a = Bool("budget3_guard")
        s = _pigeonhole_session(prefix="budget3", max_conflicts=20)
        out = s.check(a)
        assert out == unknown
        assert out.unsat_core is None
        assert s.statistics["cores_extracted"] == 0

    def test_on_restart_fires_with_the_engine(self):
        seen = []
        s = _pigeonhole_session(prefix="hook1", max_conflicts=150,
                                on_restart=lambda eng: seen.append(eng))
        s.check()
        assert seen, "no restart fired inside the check"
        assert all(e is s.backend.engine for e in seen)

    def test_interrupt_aborts_from_the_hook(self):
        def stop(engine):
            engine.interrupt()

        s = _pigeonhole_session(prefix="hook2", on_restart=stop)
        out = s.check()
        assert out == unknown
        # The flag clears on entry: an untouched re-check completes.
        s.backend.engine.on_restart = None
        assert s.check() == unsat


class TestUndecidedBackendPropagation:
    """Review regressions: an 'unknown' answer must never be upgraded to
    a definite verdict by downstream consumers."""

    def test_solve_reports_unknown_not_unsat(self):
        from repro.api import SerializationBackend
        from repro.core import SynthesisOptions, solve
        from repro.eval.workloads import bottleneck_problem

        session = Session(backend=SerializationBackend(engine="none"))
        result = solve(bottleneck_problem(2), SynthesisOptions(routes=2),
                       session=session)
        assert result.status == "unknown"
        assert not result.ok

    def test_minimize_refuses_undecided_backend(self):
        from repro.api import SerializationBackend
        from repro.smt.optimize import minimize

        x = Real("undecided_x")
        session = Session(backend=SerializationBackend(engine="none"))
        with pytest.raises(SolverError, match="answered unknown"):
            minimize([x >= 3], x, session=session)
