"""Fingerprint canonicalization and ancestor-matching properties.

The cache key must be *semantic*: anything that leaves the encoded
formula unchanged (application order, wire-dict key order, non-encoding
option knobs) leaves the fingerprint unchanged, and anything that
changes the constraints or the interned vocabulary (namespace, horizon,
repair mode, route limit, ...) changes it.  Ancestor matching must
never pair entries across incompatible topologies or option buckets.
"""

import json
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.problem import SynthesisProblem
from repro.core.synthesizer import SynthesisOptions
from repro.service import (
    ancestor_relation,
    compatibility_key,
    problem_fingerprint,
    problem_from_wire,
    problem_to_wire,
)
from repro.service.fingerprint import app_set_key, match_quality

from .helpers import DELAYS, family_app, family_network, family_problem


class TestCanonicalization:
    def test_app_order_is_irrelevant(self):
        a = family_problem([0, 1, 2])
        net = family_network()
        b = SynthesisProblem(net, [family_app(2), family_app(0),
                                   family_app(1)], DELAYS)
        assert problem_fingerprint(a) == problem_fingerprint(b)

    @settings(max_examples=20, deadline=None)
    @given(perm=st.permutations([0, 1, 2, 3]))
    def test_any_permutation_fingerprints_identically(self, perm):
        reference = problem_fingerprint(family_problem([0, 1, 2, 3]))
        assert problem_fingerprint(family_problem(list(perm))) == reference

    def test_wire_round_trip_with_shuffled_keys(self):
        problem = family_problem([0, 1, 2])
        wire = problem_to_wire(problem)
        # A hostile client may emit keys (and app entries) in any order.
        shuffled = json.loads(json.dumps({
            key: wire[key] for key in reversed(list(wire))
        }))
        shuffled["apps"] = list(reversed(shuffled["apps"]))
        rebuilt = problem_from_wire(shuffled)
        assert problem_fingerprint(rebuilt) == problem_fingerprint(problem)
        assert compatibility_key(rebuilt) == compatibility_key(problem)

    def test_non_encoding_options_are_ignored(self):
        problem = family_problem([0, 1])
        base = problem_fingerprint(problem, SynthesisOptions())
        for opts in (
            SynthesisOptions(dl_propagation=False),
            SynthesisOptions(probe_routes=False),
            SynthesisOptions(max_conflicts=123),
            SynthesisOptions(max_repair_rounds=7),
        ):
            assert problem_fingerprint(problem, opts) == base

    @pytest.mark.parametrize("opts", [
        SynthesisOptions(routes=1),
        SynthesisOptions(stages=2),
        SynthesisOptions(path_cutoff=3),
        SynthesisOptions(repair=True),
        SynthesisOptions(mode="deadline"),
    ])
    def test_encoding_options_change_the_fingerprint(self, opts):
        problem = family_problem([0, 1])
        assert (problem_fingerprint(problem, opts)
                != problem_fingerprint(problem, SynthesisOptions()))

    def test_namespace_changes_the_fingerprint(self):
        problem = family_problem([0, 1])
        assert (problem_fingerprint(problem, namespace="q")
                != problem_fingerprint(problem))
        assert (compatibility_key(problem, namespace="q")
                != compatibility_key(problem))

    def test_period_changes_horizon_and_fingerprint(self):
        a = family_problem([0, 1])
        b = family_problem([0, 1], period=Fraction(8, 1000))
        assert problem_fingerprint(a) != problem_fingerprint(b)
        assert compatibility_key(a) != compatibility_key(b)

    def test_topology_change_breaks_compatibility(self):
        a = family_problem([0, 1])
        net = family_network()
        net.add_switch("E")
        net.add_link("A", "E")
        b = SynthesisProblem(net, [family_app(0), family_app(1)], DELAYS)
        assert compatibility_key(a) != compatibility_key(b)
        assert problem_fingerprint(a) != problem_fingerprint(b)


class TestAncestorRelation:
    def test_relations(self):
        small = app_set_key(family_problem([0, 1]))
        big = app_set_key(family_problem([0, 1, 2]))
        other = app_set_key(family_problem([3, 4]))
        assert ancestor_relation(small, dict(small)) == "equal"
        assert ancestor_relation(big, small) == "subset"
        assert ancestor_relation(small, big) == "superset"
        assert ancestor_relation(small, other) is None

    def test_same_name_different_descriptor_never_pairs(self):
        request = app_set_key(family_problem([0, 1]))
        cached = app_set_key(
            family_problem([0, 1], period=Fraction(8, 1000)))
        # Same names, different periods: nothing is transferable.
        assert ancestor_relation(request, cached) is None

    def test_match_quality_ordering(self):
        request = app_set_key(family_problem([0, 1, 2]))
        equal = app_set_key(family_problem([0, 1, 2]))
        subset = app_set_key(family_problem([0, 1]))
        superset = app_set_key(family_problem([0, 1, 2, 3]))
        q = {name: match_quality(ancestor_relation(request, apps),
                                 apps, request)
             for name, apps in [("equal", equal), ("subset", subset),
                                ("superset", superset)]}
        assert q["equal"] > q["subset"] > q["superset"]
        assert match_quality(None, {}, request) < q["superset"]

    def test_bigger_subset_outranks_smaller(self):
        request = app_set_key(family_problem([0, 1, 2, 3]))
        small = app_set_key(family_problem([0]))
        large = app_set_key(family_problem([0, 1, 2]))
        assert (match_quality("subset", large, request)
                > match_quality("subset", small, request))
