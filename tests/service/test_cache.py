"""KnowledgeCache: lookup semantics, eviction, and disk robustness."""

import json
from pathlib import Path

import pytest

from repro.core.synthesizer import SynthesisOptions
from repro.service import KnowledgeCache, problem_fingerprint
from repro.service.cache import CacheEntry

from .helpers import family_problem

#: Handcrafted knowledge in the exact shapes the sharing module accepts
#: (see ``repro.portfolio.sharing._valid_literal`` and
#: ``validate_artifact``): enough to exercise the cache without solving.
CLAUSES = ((("b", "p!route[app0]=0", True),),
           (("b", "p!route[app0]=0", False), ("b", "p!route[app1]=0", True)))
VETO = (("app0@0", 1), ("app1@0", 1))
SCHEDULE = (("app0@0", ("S0", "A", "B", "C0"),
             (("A", "1/4000"), ("B", "1/2000"))),)


def store_family(cache, indices, status="sat", **kwargs):
    problem = family_problem(indices)
    kwargs.setdefault("clauses", CLAUSES)
    kwargs.setdefault("schedule", SCHEDULE)
    entry = cache.store(problem, SynthesisOptions(), status, **kwargs)
    assert entry is not None
    return problem, entry


class TestLookup:
    def test_miss_then_exact_hit(self, tmp_path):
        cache = KnowledgeCache(tmp_path)
        problem = family_problem([0, 1])
        assert cache.lookup(problem) is None
        store_family(cache, [0, 1])
        hit = cache.lookup(problem)
        assert hit is not None and hit.kind == "exact"
        assert hit.seed.clause_batches and hit.seed.stage_prefix
        assert cache.counters["exact_hits"] == 1
        assert cache.counters["misses"] == 1

    def test_subset_ancestor_seeds_clauses_and_veto(self, tmp_path):
        cache = KnowledgeCache(tmp_path)
        store_family(cache, [0, 1], status="sat", route_veto=VETO)
        hit = cache.lookup(family_problem([0, 1, 2]))
        assert hit is not None and hit.kind == "subset"
        assert hit.seed.clause_batches
        assert hit.seed.route_vetoes
        assert hit.seed.stage_prefix is not None
        assert cache.counters["ancestor_hits"] == 1

    def test_superset_ancestor_seeds_schedule_only(self, tmp_path):
        cache = KnowledgeCache(tmp_path)
        store_family(cache, [0, 1, 2], route_veto=VETO)
        hit = cache.lookup(family_problem([0, 1]))
        assert hit is not None and hit.kind == "superset"
        # Soundness: the cached formula is stronger than the request's,
        # so clauses and vetoes must NOT transfer — schedule hints only.
        assert not hit.seed.clause_batches
        assert not hit.seed.route_vetoes
        assert hit.seed.stage_prefix is not None

    def test_incomparable_sets_miss(self, tmp_path):
        cache = KnowledgeCache(tmp_path)
        store_family(cache, [0, 1])
        assert cache.lookup(family_problem([2, 3])) is None

    def test_options_bucket_is_respected(self, tmp_path):
        cache = KnowledgeCache(tmp_path)
        problem, _ = store_family(cache, [0, 1])
        # Same problem under a different mode: different bucket entirely.
        assert cache.lookup(problem,
                            SynthesisOptions(mode="deadline")) is None

    def test_best_ancestor_wins(self, tmp_path):
        cache = KnowledgeCache(tmp_path)
        store_family(cache, [0])
        _, large = store_family(cache, [0, 1, 2])
        hit = cache.lookup(family_problem([0, 1, 2, 3]))
        assert hit is not None and hit.kind == "subset"
        assert hit.entry.fingerprint == large.fingerprint

    def test_unknown_without_clauses_not_stored(self, tmp_path):
        cache = KnowledgeCache(tmp_path)
        assert cache.store(family_problem([0]), SynthesisOptions(),
                           "unknown") is None
        assert len(cache) == 0

    def test_junk_knowledge_is_quarantined_on_store(self, tmp_path):
        cache = KnowledgeCache(tmp_path)
        entry = cache.store(family_problem([0]), SynthesisOptions(), "sat",
                            clauses=(("not-a-literal",),))
        assert entry is None
        assert len(cache) == 0
        assert cache.counters["quarantined_entries"] == 1


class TestPersistence:
    def test_round_trip_across_instances(self, tmp_path):
        cache = KnowledgeCache(tmp_path)
        problem, entry = store_family(cache, [0, 1], route_veto=VETO)
        reloaded = KnowledgeCache(tmp_path)
        hit = reloaded.lookup(problem)
        assert hit is not None and hit.kind == "exact"
        assert hit.entry.clauses == entry.clauses
        assert hit.entry.route_veto == entry.route_veto
        assert hit.entry.schedule == entry.schedule

    def test_files_are_valid_json(self, tmp_path):
        cache = KnowledgeCache(tmp_path)
        _, entry = store_family(cache, [0, 1])
        path = Path(tmp_path) / f"{entry.fingerprint}.json"
        payload = json.loads(path.read_text())
        assert CacheEntry.from_json(payload).fingerprint == entry.fingerprint

    @pytest.mark.parametrize("blob", [
        b"{ not json",
        b'{"version": 999}',
        b'{"version": 1, "fingerprint": "x"}',
        json.dumps({"version": 1, "fingerprint": "f" * 32,
                    "compat_key": "c", "apps": {"a": "d"},
                    "options": {}, "status": "sat",
                    "clauses": [["nonsense"]]}).encode(),
    ])
    def test_corrupt_files_are_quarantined_not_fatal(self, tmp_path, blob):
        (Path(tmp_path) / ("f" * 32 + ".json")).write_bytes(blob)
        cache = KnowledgeCache(tmp_path)     # must not raise
        assert len(cache) == 0
        assert cache.counters["quarantined_entries"] == 1
        assert not list(Path(tmp_path).glob("*.json"))
        assert list(Path(tmp_path).glob("*.quarantined"))

    def test_filename_fingerprint_mismatch_is_quarantined(self, tmp_path):
        cache = KnowledgeCache(tmp_path)
        _, entry = store_family(cache, [0, 1])
        path = Path(tmp_path) / f"{entry.fingerprint}.json"
        path.rename(Path(tmp_path) / ("0" * 32 + ".json"))
        reloaded = KnowledgeCache(tmp_path)
        assert len(reloaded) == 0
        assert reloaded.counters["quarantined_entries"] == 1


class TestEviction:
    def test_entry_cap_evicts_lru(self, tmp_path):
        cache = KnowledgeCache(tmp_path, max_entries=2)
        p0, e0 = store_family(cache, [0])
        p1, _ = store_family(cache, [1])
        # Touch p0 so p1 becomes the coldest.
        assert cache.lookup(p0).kind == "exact"
        store_family(cache, [2])
        assert len(cache) == 2
        assert e0.fingerprint in cache
        assert problem_fingerprint(p1) not in cache
        assert cache.counters["evictions"] == 1
        assert not (Path(tmp_path)
                    / f"{problem_fingerprint(p1)}.json").exists()

    def test_size_cap_evicts(self, tmp_path):
        cache = KnowledgeCache(tmp_path, max_bytes=1)
        store_family(cache, [0])
        assert len(cache) == 1          # a sole oversized entry survives
        store_family(cache, [1])
        assert len(cache) == 1          # but forces the older one out
        assert cache.counters["evictions"] >= 1

    def test_restore_respects_caps(self, tmp_path):
        cache = KnowledgeCache(tmp_path)
        for i in range(4):
            store_family(cache, [i])
        reloaded = KnowledgeCache(tmp_path, max_entries=2)
        assert len(reloaded) == 2
