"""Service chaos: crashes, cancellation, corrupt caches, drain.

These scenarios reuse the fault-injection harness of
:mod:`repro.portfolio.faults` against the *service* stack: process
workers really get SIGKILLed mid-request and the supervision retry
still produces a valid response; cancellation releases the worker and
fires ``Session.interrupt``; a corrupted cache directory never crashes
server startup; draining rejects new work while finishing in-flight
work; and no scenario leaks a worker process.
"""

import asyncio
import json
import multiprocessing
from pathlib import Path

from repro.api import Session
from repro.core.synthesizer import SynthesisOptions
from repro.eval.workloads import gm_case_study
from repro.portfolio import FaultPlan, FaultSpec, SupervisionPolicy
from repro.portfolio.faults import CRASH
from repro.service import (
    KnowledgeCache,
    ServiceClient,
    ServicePolicy,
    SynthesisRequest,
    SynthesisServer,
)

from .helpers import family_problem, run

#: Near-instant backoff so retries do not slow the suite down.
FAST = SupervisionPolicy(heartbeat_interval=0.02, backoff_base=0.01,
                         backoff_factor=2.0, backoff_cap=0.05,
                         kill_grace=0.3)

MODERATE_OPTS = SynthesisOptions(routes=2)


def assert_no_leaked_workers() -> None:
    for proc in multiprocessing.active_children():
        proc.join(timeout=2.0)
    assert multiprocessing.active_children() == []


class TestCrashSupervision:
    def test_sigkilled_worker_still_answers(self):
        async def body():
            # Harsh mode: the worker SIGKILLs itself inside core.solve.
            plan = FaultPlan([FaultSpec(CRASH, strategy="victim",
                                        attempt=1)])
            policy = ServicePolicy(workers=1, worker_mode="process",
                                   supervision=FAST)
            async with SynthesisServer(policy=policy,
                                       fault_plan=plan) as server:
                client = ServiceClient(server)
                reply = await client.solve(gm_case_study(3), MODERATE_OPTS,
                                           deadline=120.0,
                                           request_id="victim")
                assert reply["type"] == "result"
                assert reply["status"] == "sat"
                assert reply["attempts"] == 2
                sup = server.supervisor.statistics
                assert sup["crashes"] == 1
                assert sup["crash_retries"] == 1
                assert sup["crash_budget_exhausted"] == 0
            assert_no_leaked_workers()
        run(body())

    def test_crash_budget_exhausts_to_error(self):
        async def body():
            # attempt=0: die on every attempt; the budget must exhaust.
            plan = FaultPlan([FaultSpec(CRASH, strategy="doomed",
                                        attempt=0)])
            policy = ServicePolicy(workers=1, worker_mode="process",
                                   max_crash_retries=1, supervision=FAST)
            async with SynthesisServer(policy=policy,
                                       fault_plan=plan) as server:
                client = ServiceClient(server)
                reply = await client.solve(family_problem([0, 1]),
                                           deadline=60.0,
                                           request_id="doomed")
                assert reply["type"] == "error"
                assert "retries exhausted" in reply["error"]
                sup = server.supervisor.statistics
                assert sup["crashes"] == 2
                assert sup["crash_budget_exhausted"] == 1
                # The restarted worker is healthy for the next request.
                ok = await client.solve(family_problem([0, 1]))
                assert ok["type"] == "result" and ok["status"] == "sat"
            assert_no_leaked_workers()
        run(body())


class TestCancellation:
    def test_inline_cancel_fires_session_interrupt(self, monkeypatch):
        interrupts = []
        original = Session.interrupt

        def spy(self):
            interrupts.append(self)
            return original(self)

        monkeypatch.setattr(Session, "interrupt", spy)

        async def body():
            policy = ServicePolicy(workers=1, worker_mode="inline")
            async with SynthesisServer(policy=policy) as server:
                client = ServiceClient(server)
                rid, future = await client.submit(gm_case_study(5),
                                                  deadline=120.0)
                await asyncio.sleep(1.0)
                assert await client.cancel(rid)
                reply = await asyncio.wait_for(future, 60.0)
                assert reply["type"] == "cancelled"
                assert interrupts, "cancel() must fire Session.interrupt()"
                # The worker is released: the next request solves fine.
                ok = await client.solve(family_problem([0, 1]))
                assert ok["type"] == "result" and ok["status"] == "sat"
        run(body())

    def test_process_cancel_mid_solve(self):
        async def body():
            policy = ServicePolicy(workers=1, worker_mode="process",
                                   supervision=FAST)
            async with SynthesisServer(policy=policy) as server:
                client = ServiceClient(server)
                rid, future = await client.submit(gm_case_study(5),
                                                  deadline=120.0)
                await asyncio.sleep(1.5)
                assert await client.cancel(rid)
                reply = await asyncio.wait_for(future, 60.0)
                assert reply["type"] == "cancelled"
                assert server.counters["cancelled"] == 1
                # Same (still-alive) worker takes the next request.
                worker = server.stats()["workers"][0]
                assert worker["alive"] and worker["restarts"] == 0
                ok = await client.solve(family_problem([0, 1]),
                                        deadline=60.0)
                assert ok["type"] == "result" and ok["status"] == "sat"
            assert_no_leaked_workers()
        run(body())

    def test_cancel_while_queued_answers_immediately(self):
        async def body():
            policy = ServicePolicy(workers=1, worker_mode="inline")
            async with SynthesisServer(policy=policy) as server:
                blocker = await server.submit(SynthesisRequest(
                    id="blocker", problem=gm_case_study(3),
                    options=MODERATE_OPTS))
                await asyncio.sleep(0.1)
                queued = await server.submit(SynthesisRequest(
                    id="queued", problem=family_problem([0])))
                assert await server.cancel("queued")
                reply = await asyncio.wait_for(queued, 1.0)
                assert reply["type"] == "cancelled"
                assert reply["cancelled_in"] == "queue"
                assert (await blocker)["type"] == "result"
        run(body())


class TestCorruptCache:
    def test_server_startup_survives_garbage_cache(self, tmp_path):
        for name, blob in [("nonsense.json", b"][{ garbage"),
                           ("f" * 32 + ".json", b'{"version": 40000}')]:
            (Path(tmp_path) / name).write_bytes(blob)

        async def body():
            cache = KnowledgeCache(tmp_path)     # quarantine, not crash
            policy = ServicePolicy(workers=1, worker_mode="inline")
            async with SynthesisServer(policy=policy, cache=cache) as server:
                client = ServiceClient(server)
                reply = await client.solve(family_problem([0, 1]))
                assert reply["type"] == "result"
                stats = client.stats()
                assert stats["cache"]["quarantined_entries"] == 2
                assert stats["cache"]["entries"] == 1   # the fresh store
            quarantined = list(Path(tmp_path).glob("*.quarantined"))
            assert len(quarantined) == 2
        run(body())

    def test_quarantined_entry_never_seeds(self, tmp_path):
        async def body():
            cache = KnowledgeCache(tmp_path)
            policy = ServicePolicy(workers=1, worker_mode="inline")
            async with SynthesisServer(policy=policy, cache=cache) as server:
                client = ServiceClient(server)
                problem = family_problem([0, 1])
                await client.solve(problem)
            # Corrupt the stored entry on disk, then restart the server.
            entry_file = next(Path(tmp_path).glob("*.json"))
            payload = json.loads(entry_file.read_text())
            payload["clauses"] = [["not-a-literal"]]
            entry_file.write_text(json.dumps(payload))
            cache2 = KnowledgeCache(tmp_path)
            async with SynthesisServer(
                    policy=ServicePolicy(workers=1, worker_mode="inline"),
                    cache=cache2) as server:
                client = ServiceClient(server)
                reply = await client.solve(family_problem([0, 1]))
                assert reply["type"] == "result"
                assert reply["cache"]["hit"] is None
                assert cache2.counters["quarantined_entries"] == 1
        run(body())


class TestDrain:
    def test_drain_rejects_new_and_finishes_inflight(self):
        async def body():
            policy = ServicePolicy(workers=1, worker_mode="inline")
            async with SynthesisServer(policy=policy) as server:
                client = ServiceClient(server)
                inflight = await server.submit(SynthesisRequest(
                    id="inflight", problem=gm_case_study(3),
                    options=MODERATE_OPTS))
                await asyncio.sleep(0.1)
                drain_task = asyncio.ensure_future(server.drain())
                await asyncio.sleep(0)
                late = await server.submit(SynthesisRequest(
                    id="late", problem=family_problem([0])))
                late_reply = await late
                assert late_reply["type"] == "rejected"
                assert late_reply["reason"] == "draining"
                reply = await inflight
                assert reply["type"] == "result"
                assert reply["status"] == "sat"
                await drain_task
                assert server.stats()["queue_depth"] == 0
        run(body())

    def test_shutdown_reaps_every_worker(self):
        async def body():
            policy = ServicePolicy(workers=2, worker_mode="process",
                                   supervision=FAST)
            server = SynthesisServer(policy=policy)
            await server.start()
            client = ServiceClient(server)
            replies = await client.solve_batch([
                SynthesisRequest(id=f"s{i}",
                                 problem=family_problem([0, i]))
                for i in range(1, 4)
            ])
            assert all(r["type"] == "result" for r in replies)
            await server.shutdown()
            assert_no_leaked_workers()
        run(body())
