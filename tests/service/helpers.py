"""Shared fixtures for the service tests: a fixed-topology app family.

All family problems share one network, one delay model, and one period
(hence one hyper-period), so any two of them land in the same
ancestor-matching compatibility bucket; they differ only in *which*
applications are attached.  That is exactly the subset/superset shape
the cache's ancestor rules are about.
"""

import asyncio
from fractions import Fraction

from repro.core.problem import ControlApplication, SynthesisProblem
from repro.network.graph import Network
from repro.network.timing import DelayModel
from repro.stability.piecewise import StabilitySpec

PERIOD = Fraction(9, 1000)
DELAYS = DelayModel(sd=Fraction(1, 4000), ld=Fraction(1, 1000))

#: Enough endpoints for five family apps.
_N_ENDPOINTS = 5


def family_network() -> Network:
    net = Network()
    for node in ("A", "B", "D"):
        net.add_switch(node)
    net.add_link("A", "B")
    net.add_link("A", "D")
    net.add_link("D", "B")
    for i in range(_N_ENDPOINTS):
        net.add_sensor(f"S{i}")
        net.add_controller(f"C{i}")
        net.add_link(f"S{i}", "A")
        net.add_link("B", f"C{i}")
    return net


def family_app(i: int, period: Fraction = PERIOD) -> ControlApplication:
    return ControlApplication(
        f"app{i}", f"S{i}", f"C{i}", period,
        StabilitySpec.single_line("1.5", str(float(period))),
    )


def family_problem(indices, period: Fraction = PERIOD) -> SynthesisProblem:
    apps = [family_app(i, period) for i in indices]
    return SynthesisProblem(family_network(), apps, DELAYS)


def run(coro):
    """Drive one async test body to completion."""
    return asyncio.run(coro)
