"""SynthesisServer: admission, batching, deadlines, cache, TCP."""

import asyncio

from repro.core.synthesizer import SynthesisOptions
from repro.eval.workloads import gm_case_study
from repro.service import (
    KnowledgeCache,
    ServiceClient,
    ServicePolicy,
    SynthesisRequest,
    SynthesisServer,
    problem_to_wire,
    request_over_tcp,
)

from .helpers import family_problem, run

#: Inline workers: deterministic, no forking, fast enough for admission
#: tests (process-mode behavior is covered by test_robustness).
INLINE = ServicePolicy(workers=1, worker_mode="inline")

#: ~0.3 s of real solving — long enough to observe queue behavior.
MODERATE_OPTS = SynthesisOptions(routes=2)


def moderate_problem():
    return gm_case_study(3)


class TestSolve:
    def test_single_solve_response_shape(self):
        async def body():
            async with SynthesisServer(policy=INLINE) as server:
                client = ServiceClient(server)
                reply = await client.solve(family_problem([0, 1]),
                                           deadline=30.0)
                assert reply["type"] == "result"
                assert reply["status"] == "sat"
                assert reply["schedules"]
                assert reply["statistics"]["decisions"] > 0
                assert reply["queue_wait"] >= 0.0
                assert reply["solve_wall"] > 0.0
                assert reply["attempts"] == 1
                assert reply["cache"] == {"hit": None}
        run(body())

    def test_batch_resolves_every_request(self):
        async def body():
            async with SynthesisServer(policy=INLINE) as server:
                client = ServiceClient(server)
                requests = [
                    SynthesisRequest(id=f"b{i}",
                                     problem=family_problem([0, 1, i]))
                    for i in range(2, 5)
                ]
                replies = await client.solve_batch(requests)
                assert [r["id"] for r in replies] == ["b2", "b3", "b4"]
                assert all(r["type"] == "result" and r["status"] == "sat"
                           for r in replies)
        run(body())

    def test_duplicate_id_rejected(self):
        async def body():
            async with SynthesisServer(policy=INLINE) as server:
                slow = await server.submit(SynthesisRequest(
                    id="dup", problem=moderate_problem(),
                    options=MODERATE_OPTS))
                dup = await server.submit(SynthesisRequest(
                    id="dup", problem=family_problem([0])))
                reply = await dup
                assert reply["type"] == "rejected"
                assert reply["reason"] == "duplicate-id"
                assert (await slow)["type"] == "result"
        run(body())

    def test_overload_sheds_typed_response(self):
        async def body():
            policy = ServicePolicy(workers=1, worker_mode="inline",
                                   max_queue=1)
            async with SynthesisServer(policy=policy) as server:
                first = await server.submit(SynthesisRequest(
                    id="r1", problem=moderate_problem(),
                    options=MODERATE_OPTS))
                await asyncio.sleep(0.1)    # r1 is now in-flight
                queued = await server.submit(SynthesisRequest(
                    id="r2", problem=family_problem([0])))
                shed = await server.submit(SynthesisRequest(
                    id="r3", problem=family_problem([1])))
                reply = await shed
                assert reply["type"] == "overloaded"
                assert reply["queue_depth"] == 1
                assert server.counters["overloaded"] == 1
                assert (await first)["type"] == "result"
                assert (await queued)["type"] == "result"
        run(body())

    def test_deadline_expires_in_queue(self):
        async def body():
            async with SynthesisServer(policy=INLINE) as server:
                first = await server.submit(SynthesisRequest(
                    id="slow", problem=moderate_problem(),
                    options=MODERATE_OPTS))
                await asyncio.sleep(0.1)
                starved = await server.submit(SynthesisRequest(
                    id="starved", problem=family_problem([0]),
                    deadline=0.01))
                reply = await starved
                assert reply["type"] == "timeout"
                assert reply["expired_in"] == "queue"
                assert server.counters["queue_expired"] == 1
                assert (await first)["type"] == "result"
        run(body())

    def test_deadline_interrupts_mid_solve(self):
        async def body():
            async with SynthesisServer(policy=INLINE) as server:
                client = ServiceClient(server)
                reply = await client.solve(gm_case_study(5), deadline=0.4)
                assert reply["type"] == "timeout"
                assert reply["solve_wall"] < 10.0
        run(body())

    def test_default_deadline_applies(self):
        async def body():
            policy = ServicePolicy(workers=1, worker_mode="inline",
                                   default_deadline=0.4)
            async with SynthesisServer(policy=policy) as server:
                client = ServiceClient(server)
                reply = await client.solve(gm_case_study(5))
                assert reply["type"] == "timeout"
        run(body())


class TestCacheIntegration:
    def test_exact_repeat_is_warm_and_cheaper(self, tmp_path):
        async def body():
            cache = KnowledgeCache(tmp_path)
            async with SynthesisServer(policy=INLINE, cache=cache) as server:
                client = ServiceClient(server)
                problem = moderate_problem()
                cold = await client.solve(problem, MODERATE_OPTS)
                warm = await client.solve(problem, MODERATE_OPTS)
                assert cold["cache"]["hit"] is None
                assert warm["cache"]["hit"] == "exact"
                assert warm["status"] == cold["status"] == "sat"
                assert warm["statistics"]["prefix_hits"] >= 1
                cold_work = (cold["statistics"]["conflicts"]
                             + cold["statistics"]["decisions"])
                warm_work = (warm["statistics"]["conflicts"]
                             + warm["statistics"]["decisions"])
                assert warm_work < cold_work
                assert cache.counters["stores"] == 1
                assert cache.counters["exact_hits"] == 1
        run(body())

    def test_subset_ancestor_seeds_new_request(self, tmp_path):
        async def body():
            cache = KnowledgeCache(tmp_path)
            async with SynthesisServer(policy=INLINE, cache=cache) as server:
                client = ServiceClient(server)
                await client.solve(family_problem([0, 1]))
                grown = await client.solve(family_problem([0, 1, 2]))
                assert grown["type"] == "result"
                assert grown["cache"]["hit"] == "subset"
                assert grown["statistics"]["prefix_probes"] >= 1
                # The grown problem's own knowledge is stored too.
                assert cache.counters["stores"] == 2
        run(body())

    def test_stats_shape(self, tmp_path):
        async def body():
            cache = KnowledgeCache(tmp_path)
            async with SynthesisServer(policy=INLINE, cache=cache) as server:
                client = ServiceClient(server)
                await client.solve(family_problem([0, 1]))
                stats = client.stats()
                assert stats["requests"]["admitted"] == 1
                assert stats["requests"]["result"] == 1
                assert stats["latency"]["total"]["count"] == 1
                assert stats["latency"]["total"]["p99"] > 0.0
                assert stats["cache"]["entries"] == 1
                assert stats["workers"][0]["mode"] == "inline"
                assert stats["queue_depth"] == 0
        run(body())


class TestTcp:
    def test_solve_and_stats_over_the_wire(self):
        async def body():
            async with SynthesisServer(policy=INLINE) as server:
                host, port = await server.serve_tcp()
                frames = [
                    {"op": "solve", "id": "w1",
                     "problem": problem_to_wire(family_problem([0, 1])),
                     "options": {"routes": 2}, "deadline": 30.0},
                    {"op": "stats"},
                ]
                replies = await request_over_tcp(host, port, frames)
                by_type = {r["type"]: r for r in replies}
                assert by_type["result"]["id"] == "w1"
                assert by_type["result"]["status"] == "sat"
                assert by_type["result"]["schedules"]
                assert by_type["stats"]["metrics"]["requests"]["admitted"] == 1
        run(body())

    def test_batch_over_the_wire(self):
        async def body():
            async with SynthesisServer(policy=INLINE) as server:
                host, port = await server.serve_tcp()
                entries = [
                    {"id": f"m{i}",
                     "problem": problem_to_wire(family_problem([0, i]))}
                    for i in range(1, 4)
                ]
                replies = await request_over_tcp(
                    host, port, [{"op": "batch", "requests": entries}])
                assert sorted(r["id"] for r in replies) == ["m1", "m2", "m3"]
                assert all(r["type"] == "result" for r in replies)
        run(body())

    def test_malformed_frames_get_error_replies(self):
        async def body():
            async with SynthesisServer(policy=INLINE) as server:
                host, port = await server.serve_tcp()
                replies = await request_over_tcp(host, port, [
                    {"op": "warp-core-breach"},
                    {"op": "solve", "id": "bad", "problem": {"nodes": 7}},
                ])
                assert all(r["type"] == "error" for r in replies)
                assert replies[1]["id"] == "bad" or replies[0]["id"] == "bad"
        run(body())

    def test_cancel_ack_over_the_wire(self):
        async def body():
            async with SynthesisServer(policy=INLINE) as server:
                host, port = await server.serve_tcp()
                replies = await request_over_tcp(
                    host, port, [{"op": "cancel", "id": "ghost"}])
                assert replies == [{"type": "ack", "op": "cancel",
                                    "id": "ghost", "found": False}]
        run(body())
