"""Tests for the typed network graph."""

import pytest

from repro.errors import TopologyError
from repro.network import Network, NodeKind


@pytest.fixture
def small_net():
    net = Network()
    net.add_switch("SW0")
    net.add_switch("SW1")
    net.add_sensor("S0")
    net.add_controller("C0")
    net.add_link("S0", "SW0")
    net.add_link("SW0", "SW1")
    net.add_link("SW1", "C0")
    return net


class TestConstruction:
    def test_node_kinds(self, small_net):
        assert small_net.kind("SW0") == NodeKind.SWITCH
        assert small_net.kind("S0") == NodeKind.SENSOR
        assert small_net.kind("C0") == NodeKind.CONTROLLER

    def test_duplicate_node_rejected(self, small_net):
        with pytest.raises(TopologyError):
            small_net.add_switch("SW0")
        with pytest.raises(TopologyError):
            small_net.add_sensor("SW0")

    def test_self_loop_rejected(self, small_net):
        with pytest.raises(TopologyError):
            small_net.add_link("SW0", "SW0")

    def test_duplicate_link_rejected(self, small_net):
        with pytest.raises(TopologyError):
            small_net.add_link("SW0", "SW1")
        with pytest.raises(TopologyError):
            small_net.add_link("SW1", "SW0")

    def test_unknown_node_rejected(self, small_net):
        with pytest.raises(TopologyError):
            small_net.add_link("SW0", "nope")

    def test_endpoint_to_endpoint_rejected(self, small_net):
        with pytest.raises(TopologyError):
            small_net.add_link("S0", "C0")


class TestQueries:
    def test_node_lists(self, small_net):
        assert set(small_net.switches) == {"SW0", "SW1"}
        assert small_net.sensors == ["S0"]
        assert small_net.controllers == ["C0"]

    def test_neighbors(self, small_net):
        assert small_net.neighbors("SW0") == {"S0", "SW1"}
        assert small_net.degree("SW1") == 2

    def test_links_undirected(self, small_net):
        assert len(small_net.links) == 3
        assert small_net.num_links == 3
        assert frozenset(("SW0", "SW1")) in small_net.links

    def test_directed_links_both_ways(self, small_net):
        dl = small_net.directed_links
        assert ("SW0", "SW1") in dl and ("SW1", "SW0") in dl
        assert len(dl) == 6

    def test_contains(self, small_net):
        assert "SW0" in small_net
        assert "missing" not in small_net

    def test_unknown_kind_raises(self, small_net):
        with pytest.raises(TopologyError):
            small_net.kind("missing")


class TestConnectivity:
    def test_connected(self, small_net):
        assert small_net.connected()

    def test_disconnected(self):
        net = Network()
        net.add_switch("A")
        net.add_switch("B")
        assert not net.connected()
        assert len(net.components()) == 2

    def test_copy_is_independent(self, small_net):
        dup = small_net.copy()
        dup.add_switch("SW9")
        assert "SW9" not in small_net
        assert "SW9" in dup
