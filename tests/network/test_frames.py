"""Tests for flows, hyper-period expansion, and the delay model."""

from fractions import Fraction

import pytest

from repro.errors import EncodingError
from repro.network import (
    DelayModel,
    Flow,
    expand_messages,
    hyperperiod,
    messages_by_flow,
    microseconds,
    milliseconds,
    transmission_delay,
)


def ms(x):
    return Fraction(x, 1000)


class TestHyperperiod:
    def test_integer_lcm(self):
        assert hyperperiod([ms(20), ms(40), ms(50)]) == ms(200)

    def test_single_period(self):
        assert hyperperiod([ms(6)]) == ms(6)

    def test_fractional_periods(self):
        assert hyperperiod([Fraction(1, 3), Fraction(1, 2)]) == Fraction(1)

    def test_empty_raises(self):
        with pytest.raises(EncodingError):
            hyperperiod([])

    def test_nonpositive_raises(self):
        with pytest.raises(EncodingError):
            hyperperiod([Fraction(0)])


class TestExpansion:
    def test_paper_table1_message_count(self):
        """20 apps with the paper's periods produce 106 messages in 200 ms.

        The paper gives periods {20, 40, 50} ms (hyper-period 200 ms, so
        10/5/4 instances per app respectively) and a total of 106
        messages.  The unique consistent mixes satisfy 6*a + b = 26 with
        a+b+c = 20; the workload generator uses (a, b, c) = (3, 8, 9):
        3*10 + 8*5 + 9*4 = 106, matching Table I where the first five apps
        have periods (20, 40, 50, 40, 50).
        """
        from repro.eval.workloads import gm_case_study

        problem = gm_case_study()
        assert len(problem.messages) == 106

    def test_counts_and_releases(self):
        flows = [
            Flow("a", "S0", "C0", ms(10)),
            Flow("b", "S1", "C1", ms(20)),
        ]
        msgs = expand_messages(flows)
        assert len(msgs) == 2 + 1
        releases = {(m.flow.name, m.index): m.release for m in msgs}
        assert releases[("a", 0)] == 0
        assert releases[("a", 1)] == ms(10)
        assert releases[("b", 0)] == 0

    def test_sorted_by_release(self):
        flows = [Flow("a", "S0", "C0", ms(10)), Flow("b", "S1", "C1", ms(4))]
        msgs = expand_messages(flows)
        assert [m.release for m in msgs] == sorted(m.release for m in msgs)

    def test_duplicate_flow_names_rejected(self):
        flows = [Flow("a", "S0", "C0", ms(10)), Flow("a", "S1", "C1", ms(10))]
        with pytest.raises(EncodingError):
            expand_messages(flows)

    def test_messages_by_flow(self):
        flows = [Flow("a", "S0", "C0", ms(10)), Flow("b", "S1", "C1", ms(20))]
        grouped = messages_by_flow(expand_messages(flows))
        assert [m.index for m in grouped["a"]] == [0, 1]
        assert [m.index for m in grouped["b"]] == [0]

    def test_uid_unique(self):
        flows = [Flow("a", "S0", "C0", ms(5)), Flow("b", "S1", "C1", ms(10))]
        msgs = expand_messages(flows)
        uids = [m.uid for m in msgs]
        assert len(set(uids)) == len(uids)

    def test_invalid_flow_params(self):
        with pytest.raises(EncodingError):
            Flow("bad", "S0", "C0", Fraction(0))
        with pytest.raises(EncodingError):
            Flow("bad", "S0", "C0", ms(10), frame_bytes=0)


class TestDelayModel:
    def test_paper_transmission_delay(self):
        # 1500 bytes at 10 Mbit/s = 1.2 ms (paper Sec. VI).
        assert transmission_delay(1500, 10_000_000) == milliseconds(Fraction(12, 10))

    def test_table1_model(self):
        dm = DelayModel.table1()
        assert dm.ld == Fraction(3, 2500)  # 1.2 ms
        assert dm.sd == microseconds(5)
        assert dm.hop_delay() == dm.sd + dm.ld

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            transmission_delay(0, 10)
        with pytest.raises(ValueError):
            transmission_delay(100, 0)
