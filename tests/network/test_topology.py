"""Tests for topology generators."""

import random

import pytest

from repro.errors import TopologyError
from repro.network import (
    attach_endpoints,
    erdos_renyi_topology,
    gm_topology,
    grid_topology,
    line_topology,
    random_network,
    ring_topology,
    shortest_path,
    simple_testbed,
    star_topology,
)


class TestErdosRenyi:
    def test_connected_repair(self):
        rng = random.Random(1)
        net = erdos_renyi_topology(12, 0.05, rng)
        assert net.connected()
        assert len(net.switches) == 12

    def test_deterministic_given_seed(self):
        n1 = random_network(10, 3, 3, p=0.3, seed=42)
        n2 = random_network(10, 3, 3, p=0.3, seed=42)
        assert sorted(map(tuple, (sorted(l) for l in n1.links))) == sorted(
            map(tuple, (sorted(l) for l in n2.links))
        )

    def test_p_one_is_complete(self):
        rng = random.Random(0)
        net = erdos_renyi_topology(5, 1.0, rng)
        assert net.num_links == 10

    def test_rejects_zero_switches(self):
        with pytest.raises(TopologyError):
            erdos_renyi_topology(0, 0.5, random.Random(0))

    def test_attach_endpoints_counts(self):
        rng = random.Random(3)
        net = erdos_renyi_topology(6, 0.4, rng)
        attach_endpoints(net, 4, 5, rng)
        assert len(net.sensors) == 4
        assert len(net.controllers) == 5
        for s in net.sensors:
            assert net.degree(s) == 1


class TestGmTopology:
    def test_paper_fig1_shape(self):
        net = gm_topology(3, 3)
        assert len(net.switches) == 8
        assert len(net.sensors) == 3
        assert len(net.controllers) == 3
        assert net.num_nodes == 14  # matches Fig. 1 caption
        assert net.connected()

    def test_table1_variant(self):
        net = gm_topology(20, 20)
        assert len(net.sensors) == 20
        assert len(net.controllers) == 20
        assert net.connected()
        # Each pair must have at least 3 routes (Table I uses 3 candidates).
        from repro.network import k_shortest_paths

        routes = k_shortest_paths(net, "S0", "C0", 3)
        assert len(routes) == 3


class TestRegularFamilies:
    def test_line(self):
        net = line_topology(4)
        assert net.num_links == 3

    def test_ring(self):
        net = ring_topology(5)
        assert net.num_links == 5
        assert net.connected()

    def test_ring_too_small(self):
        with pytest.raises(TopologyError):
            ring_topology(2)

    def test_star(self):
        net = star_topology(6)
        assert net.num_links == 6
        assert net.degree("HUB") == 6

    def test_grid(self):
        net = grid_topology(3, 4)
        assert len(net.switches) == 12
        assert net.num_links == 3 * 3 + 4 * 2

    def test_simple_testbed_has_redundant_routes(self):
        net = simple_testbed(2)
        for i in range(2):
            p = shortest_path(net, f"S{i}", f"C{i}")
            assert p is not None
