"""Path algorithms, property-tested against networkx as an oracle."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import (
    Network,
    all_simple_paths,
    k_shortest_paths,
    ring_topology,
    route_candidates,
    shortest_path,
    simple_testbed,
)


def attach(net, sensor, controller, s_sw, c_sw):
    net.add_sensor(sensor)
    net.add_controller(controller)
    net.add_link(sensor, s_sw)
    net.add_link(controller, c_sw)


@pytest.fixture
def ring_with_endpoints():
    net = ring_topology(4)
    attach(net, "S0", "C0", "SW0", "SW2")
    return net


class TestShortestPath:
    def test_on_ring(self, ring_with_endpoints):
        path = shortest_path(ring_with_endpoints, "S0", "C0")
        assert path is not None
        assert path[0] == "S0" and path[-1] == "C0"
        assert len(path) == 5  # S0, SW0, SW1|SW3, SW2, C0

    def test_no_route(self):
        net = Network()
        net.add_switch("A")
        net.add_switch("B")
        attach(net, "S0", "C0", "A", "B")
        assert shortest_path(net, "S0", "C0") is None

    def test_does_not_route_through_endpoints(self):
        # S0 - SW0 - C0 and S0 - SW0 - S1 - SW1 - C0 style shortcut must
        # not exist: endpoints do not forward.
        net = Network()
        net.add_switch("SW0")
        net.add_switch("SW1")
        attach(net, "S0", "C0", "SW0", "SW1")
        net.add_sensor("S1")
        net.add_link("S1", "SW0")
        net.add_link("S1", "SW1")  # S1 bridges the two switches
        assert shortest_path(net, "S0", "C0") is None

    def test_deterministic_tie_break(self, ring_with_endpoints):
        p1 = shortest_path(ring_with_endpoints, "S0", "C0")
        p2 = shortest_path(ring_with_endpoints, "S0", "C0")
        assert p1 == p2


class TestAllSimplePaths:
    def test_ring_has_two_routes(self, ring_with_endpoints):
        paths = list(all_simple_paths(ring_with_endpoints, "S0", "C0"))
        assert len(paths) == 2
        for p in paths:
            assert p[0] == "S0" and p[-1] == "C0"

    def test_cutoff_limits_length(self, ring_with_endpoints):
        paths = list(all_simple_paths(ring_with_endpoints, "S0", "C0", cutoff=3))
        assert paths == []

    def test_paths_are_simple(self, ring_with_endpoints):
        for p in all_simple_paths(ring_with_endpoints, "S0", "C0"):
            assert len(set(p)) == len(p)


class TestKShortest:
    def test_k1_is_shortest(self, ring_with_endpoints):
        paths = k_shortest_paths(ring_with_endpoints, "S0", "C0", 1)
        assert paths == [shortest_path(ring_with_endpoints, "S0", "C0")]

    def test_k_exhausts_routes(self, ring_with_endpoints):
        paths = k_shortest_paths(ring_with_endpoints, "S0", "C0", 10)
        assert len(paths) == 2
        assert len({tuple(p) for p in paths}) == 2

    def test_lengths_nondecreasing(self):
        net = simple_testbed(1)
        paths = k_shortest_paths(net, "S0", "C0", 5)
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)

    def test_k_zero(self, ring_with_endpoints):
        assert k_shortest_paths(ring_with_endpoints, "S0", "C0", 0) == []

    def test_route_candidates_none_enumerates_all(self, ring_with_endpoints):
        all_routes = route_candidates(ring_with_endpoints, "S0", "C0", None)
        assert len(all_routes) == 2


# ---------------------------------------------------------------------------
# networkx oracle
# ---------------------------------------------------------------------------


@st.composite
def switch_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=7))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    edges = []
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < 0.5:
                edges.append((i, j))
    return n, edges


def build_pair(n, edges):
    """Build (our Network, networkx Graph) with endpoints on nodes 0/n-1."""
    net = Network()
    g = nx.Graph()
    for i in range(n):
        net.add_switch(f"SW{i}")
        g.add_node(f"SW{i}")
    for i, j in edges:
        net.add_link(f"SW{i}", f"SW{j}")
        g.add_edge(f"SW{i}", f"SW{j}")
    attach(net, "S0", "C0", "SW0", f"SW{n - 1}")
    g.add_edge("S0", "SW0")
    g.add_edge("C0", f"SW{n - 1}")
    return net, g


@given(switch_graphs())
@settings(max_examples=100, deadline=None)
def test_shortest_path_length_matches_networkx(case):
    n, edges = case
    net, g = build_pair(n, edges)
    ours = shortest_path(net, "S0", "C0")
    try:
        ref_len = nx.shortest_path_length(g, "S0", "C0")
    except nx.NetworkXNoPath:
        ref_len = None
    if ref_len is None:
        assert ours is None
    else:
        assert ours is not None
        assert len(ours) - 1 == ref_len


@given(switch_graphs())
@settings(max_examples=60, deadline=None)
def test_all_simple_paths_match_networkx(case):
    n, edges = case
    net, g = build_pair(n, edges)
    ours = {tuple(p) for p in all_simple_paths(net, "S0", "C0")}
    # In these graphs the only endpoints are S0/C0 (never interior), so the
    # networkx enumeration over the full graph matches ours.
    ref = {tuple(p) for p in nx.all_simple_paths(g, "S0", "C0")}
    assert ours == ref


@given(switch_graphs(), st.integers(min_value=1, max_value=6))
@settings(max_examples=60, deadline=None)
def test_k_shortest_agrees_with_exhaustive(case, k):
    n, edges = case
    net, g = build_pair(n, edges)
    ours = k_shortest_paths(net, "S0", "C0", k)
    everything = sorted(
        (tuple(p) for p in all_simple_paths(net, "S0", "C0")), key=lambda p: len(p)
    )
    assert len(ours) == min(k, len(everything))
    # Yen's result lengths must match the k smallest lengths.
    assert [len(p) for p in ours] == [len(p) for p in everything[: len(ours)]]
    # And each returned path must be a genuine simple path.
    assert len({tuple(p) for p in ours}) == len(ours)
    for p in ours:
        assert tuple(p) in {tuple(q) for q in everything}
