"""Tests for the 802.1Qbv switch behavioural model."""

from fractions import Fraction

import pytest

from repro.errors import SimulationError
from repro.network import NUM_QUEUES, TT_QUEUE, TsnSwitch
from repro.network.switch import EgressPort


def us(x):
    return Fraction(x, 1_000_000)


@pytest.fixture
def switch():
    return TsnSwitch("SW0", ["SW1", "SW2", "C0"], forwarding_delay=us(5))


class TestProgramming:
    def test_program_and_lookup(self, switch):
        switch.program("m#0", "SW1", us(100))
        assert switch.eta["m#0"] == "SW1"
        assert switch.gate_open_time("m#0") == us(100)

    def test_program_unknown_port_rejected(self, switch):
        with pytest.raises(SimulationError):
            switch.program("m#0", "SW9", us(100))

    def test_unprogrammed_message_rejected(self, switch):
        with pytest.raises(SimulationError):
            switch.receive("ghost#0", us(0))
        with pytest.raises(SimulationError):
            switch.gate_open_time("ghost#0")


class TestForwarding:
    def test_receive_applies_forwarding_delay(self, switch):
        switch.program("m#0", "SW1", us(100))
        out, enq = switch.receive("m#0", us(50))
        assert out == "SW1"
        assert enq == us(55)

    def test_transmit_after_enqueue(self, switch):
        switch.program("m#0", "SW1", us(100))
        switch.receive("m#0", us(50))
        assert switch.transmit("m#0", us(100)) == "SW1"

    def test_gate_before_arrival_rejected(self, switch):
        switch.program("m#0", "SW1", us(10))
        switch.receive("m#0", us(50))  # enqueued at 55 > gate 10
        with pytest.raises(SimulationError):
            switch.transmit("m#0", us(10))

    def test_transmit_unqueued_frame_rejected(self, switch):
        switch.program("m#0", "SW1", us(100))
        with pytest.raises(SimulationError):
            switch.transmit("m#0", us(100))


class TestEgressPort:
    def test_queue_bounds(self):
        port = EgressPort("SW0:SW1", "SW1")
        with pytest.raises(SimulationError):
            port.enqueue("m#0", us(0), queue=NUM_QUEUES)

    def test_dequeue_missing_raises(self):
        port = EgressPort("SW0:SW1", "SW1")
        with pytest.raises(SimulationError):
            port.dequeue("m#0")

    def test_fifo_contents(self):
        port = EgressPort("SW0:SW1", "SW1")
        port.enqueue("a", us(1))
        port.enqueue("b", us(2))
        assert [uid for _, uid in port.queued()] == ["a", "b"]
        port.dequeue("a")
        assert [uid for _, uid in port.queued()] == ["b"]


class TestGcl:
    def test_build_gcl_windows(self, switch):
        hp = Fraction(1, 100)
        ld = us(120)
        switch.program("m#0", "SW1", us(100))
        switch.program("m#1", "SW1", us(300))
        switch.program("m#2", "SW2", us(100))
        gcl = switch.build_gcl(ld, hp)
        assert len(gcl["SW1"]) == 2
        assert len(gcl["SW2"]) == 1
        first = gcl["SW1"][0]
        assert first.start == us(100)
        assert first.end == us(220)
        assert first.queue == TT_QUEUE

    def test_build_gcl_detects_overlap(self, switch):
        hp = Fraction(1, 100)
        ld = us(120)
        switch.program("m#0", "SW1", us(100))
        switch.program("m#1", "SW1", us(150))  # overlaps previous window
        with pytest.raises(SimulationError):
            switch.build_gcl(ld, hp)

    def test_gcl_wraps_modulo_hyperperiod(self, switch):
        hp = Fraction(1, 100)  # 10 ms
        ld = us(120)
        switch.program("m#0", "SW1", Fraction(1, 100) + us(100))
        gcl = switch.build_gcl(ld, hp)
        assert gcl["SW1"][0].start == us(100)
