"""Tests for the ASCII reporting helpers."""

from repro.eval import format_scatter, format_series, format_table


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", " "}

    def test_float_formatting(self):
        text = format_table(["v"], [[1.23456]])
        assert "1.235" in text

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestFormatSeries:
    def test_contains_points(self):
        text = format_series("T", {"s": [(1.0, 2.0), (3.0, 4.0)]}, "x", "y")
        assert "T" in text
        assert "[s]" in text
        assert "1.000" in text and "4.0000" in text


class TestFormatScatter:
    def test_bins_and_means(self):
        pts = [(float(i), float(i)) for i in range(10)]
        text = format_scatter("S", {"a": pts}, "x", "y", bins=2)
        assert "[a]" in text
        assert "mean" in text

    def test_empty_series(self):
        text = format_scatter("S", {"a": []}, "x", "y")
        assert "no data" in text
