"""Parallel figure sweeps must be result-identical to the serial runs."""

from repro.eval import run_fig4, run_fig5, run_fig6


def _fig4_key(result):
    return {
        stages: [(p.seed, p.n_messages, p.status) for p in pts]
        for stages, pts in result.points.items()
    }


def test_fig4_jobs_matches_serial():
    kwargs = dict(n_problems=2, stages_list=(2,), routes=2, n_apps=3)
    serial = run_fig4(**kwargs)
    pooled = run_fig4(**kwargs, jobs=2)
    assert _fig4_key(serial) == _fig4_key(pooled)


def test_fig5_jobs_matches_serial():
    kwargs = dict(n_problems=2, stages_list=(2, 3), routes=2, n_apps=3)
    serial = run_fig5(**kwargs)
    pooled = run_fig5(**kwargs, jobs=2)
    assert serial.unsolved_pct == pooled.unsolved_pct


def test_fig6_jobs_matches_serial():
    kwargs = dict(n_problems=1, routes_list=(1, 2), stages=2, n_apps=3)
    serial = run_fig6(**kwargs)
    pooled = run_fig6(**kwargs, jobs=2)
    assert serial.unsolved_pct == pooled.unsolved_pct
    assert {
        r: [(p.n_messages, p.status) for p in pts]
        for r, pts in serial.points.items()
    } == {
        r: [(p.n_messages, p.status) for p in pts]
        for r, pts in pooled.points.items()
    }
