"""Smoke tests for the experiment runners (tiny scales; the benchmarks
exercise the real scales)."""

import pytest

from repro.eval import (
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_table1,
)


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3(n_points=7, n_segments=2)

    def test_curve_and_bound(self, result):
        assert len(result.curve.latencies) == 7
        assert len(result.bound.segments) == 2

    def test_render(self, result):
        text = result.render()
        assert "L (ms)" in text
        assert "piecewise" in text


class TestSynthesisRunners:
    def test_fig4_small(self):
        res = run_fig4(n_problems=1, stages_list=(2, 4), routes=3, n_apps=3)
        assert set(res.points) == {2, 4}
        assert all(len(pts) == 1 for pts in res.points.values())
        assert "Fig. 4" in res.render()

    def test_fig5_small(self):
        res = run_fig5(n_problems=1, stages_list=(2, 4), routes=3, n_apps=3)
        assert [s for s, _ in res.unsolved_pct] == [2, 4]
        assert all(0 <= pct <= 100 for _, pct in res.unsolved_pct)
        assert "Fig. 5" in res.render()

    def test_fig6_small(self):
        res = run_fig6(n_problems=1, routes_list=(1, 3), stages=2, n_apps=3)
        assert set(res.points) == {1, 3}
        assert set(res.unsolved_pct) == {1, 3}
        assert "Fig. 6" in res.render()

    def test_fig7_small(self):
        res = run_fig7(switch_counts=(5, 8), n_messages=14, n_apps=3,
                       routes=3, stages=2)
        assert len(res.times) == 2
        assert "Fig. 7" in res.render()

    def test_table1_small(self):
        res = run_table1(n_apps=4, routes=3, stages=2)
        assert res.stability_status == "sat"
        assert res.n_apps == 4
        assert res.stability_stable_count == 4
        text = res.render()
        assert "Stability-Aware" in text and "Deadline" in text
