"""Tests for the workload generators."""

from fractions import Fraction

import pytest

from repro.core import SynthesisOptions, synthesize, validate_solution
from repro.eval import workloads
from repro.eval import (
    TABLE1_ROWS,
    experiment_network,
    fixed_message_count_periods,
    gm_case_study,
    problem_with_message_count,
    random_problem,
    stability_spec_for,
)


class TestSpecCache:
    def test_spec_for_period_plant(self):
        spec = stability_spec_for("inverted_pendulum", Fraction(20, 1000))
        assert spec.segments
        assert spec.max_latency > 0

    def test_cache_returns_same_object(self):
        a = stability_spec_for("ball_and_beam", Fraction(40, 1000))
        b = stability_spec_for("ball_and_beam", Fraction(40, 1000))
        assert a is b


class TestRandomProblems:
    def test_network_shape(self):
        net = experiment_network(seed=0)
        assert len(net.switches) == 15
        assert len(net.sensors) == 10
        assert len(net.controllers) == 10
        assert net.num_nodes == 35  # the paper's 35-node network

    def test_problem_reproducible(self):
        p1 = random_problem(seed=5, n_apps=4)
        p2 = random_problem(seed=5, n_apps=4)
        assert [a.period for a in p1.apps] == [a.period for a in p2.apps]

    def test_message_count_in_paper_range(self):
        # 10 apps with {20,40,50} ms periods: 40..100 messages (Fig. 4 x-axis).
        for seed in range(3):
            prob = random_problem(seed=seed, n_apps=10)
            assert 40 <= prob.num_messages <= 100

    def test_every_app_has_spec(self):
        prob = random_problem(seed=1, n_apps=4)
        assert all(a.stability is not None for a in prob.apps)


class TestFixedMessageCount:
    def test_known_mix(self):
        periods = fixed_message_count_periods(10, 45)
        assert len(periods) == 10
        total = sum(int(Fraction(200, 1000) / p) for p in periods)
        assert total == 45

    def test_impossible_count_raises(self):
        with pytest.raises(ValueError):
            fixed_message_count_periods(1, 3)

    def test_problem_with_message_count(self):
        prob = problem_with_message_count(seed=3, n_messages=24, n_apps=5,
                                          n_switches=8)
        assert prob.num_messages == 24


class TestGmCaseStudy:
    def test_full_scale_matches_paper(self):
        prob = gm_case_study(n_apps=20)
        assert len(prob.apps) == 20
        assert prob.num_messages == 106          # paper Sec. VI
        assert prob.hyperperiod == Fraction(200, 1000)
        assert float(prob.delays.ld) == pytest.approx(0.0012)  # 1.2 ms

    def test_first_rows_match_table1(self):
        prob = gm_case_study(n_apps=20)
        for app, (period_ms, alpha, beta_ms) in zip(prob.apps, TABLE1_ROWS):
            assert app.period == Fraction(period_ms, 1000)
            seg = app.stability.segments[0]
            assert float(seg.alpha) == pytest.approx(float(alpha))
            assert float(seg.beta) == pytest.approx(float(beta_ms) / 1000)

    def test_scaled_down_variant(self):
        prob = gm_case_study(n_apps=6)
        assert len(prob.apps) == 6
        assert prob.num_messages < 106

    def test_small_case_synthesizes(self):
        prob = gm_case_study(n_apps=4)
        res = synthesize(prob, SynthesisOptions(routes=3, stages=2))
        assert res.ok
        validate_solution(res.solution)


class TestDifferenceChainWorkloads:
    def test_chain_formulas_deterministic(self):
        a = workloads.difference_chain_formulas(3)
        b = workloads.difference_chain_formulas(3)
        assert [repr(c) for c in a] == [repr(c) for c in b]
        assert a  # non-empty

    def test_chain_formulas_seeds_differ(self):
        a = workloads.difference_chain_formulas(1)
        b = workloads.difference_chain_formulas(2)
        assert [repr(c) for c in a] != [repr(c) for c in b]

    def test_chain_network_shape(self):
        net = workloads.chain_network(3, 5)
        assert len(net.sensors) == 3 and len(net.controllers) == 3
        assert sorted(net.switches) == [f"A{k}" for k in range(5)]

    def test_chain_problem_single_route(self):
        from repro.network.paths import all_simple_paths

        problem = workloads.chain_problem()
        # The line topology admits exactly one route per application.
        for app in problem.apps:
            routes = all_simple_paths(problem.network, app.sensor,
                                      app.controller)
            assert len(list(routes)) == 1

    def test_chain_problem_statuses(self):
        from fractions import Fraction

        from repro.core.synthesizer import SynthesisOptions, solve

        assert solve(workloads.chain_problem(),
                     SynthesisOptions()).status == "sat"
        assert solve(workloads.chain_problem(period=Fraction(9, 1000)),
                     SynthesisOptions()).status == "unsat"
