"""The regression-tracked benchmark harness: records and comparisons."""

import json

import pytest

from repro.eval.bench import compare, run_bench, run_suite


def test_run_bench_fig3_writes_record(tmp_path):
    record = run_bench("fig3", out_dir=tmp_path)
    path = tmp_path / "BENCH_fig3.json"
    assert path.exists()
    on_disk = json.loads(path.read_text())
    assert on_disk["name"] == "fig3"
    assert on_disk["wall_s"] > 0
    assert on_disk["statuses"] == {"fig3": "ok"}
    assert on_disk["render_digest"] == record["render_digest"]
    # fig3 never touches the SMT solver: empty trajectory.
    assert on_disk["per_check"] == []


def test_unknown_bench_name_rejected(tmp_path):
    with pytest.raises(ValueError, match="unknown benchmark"):
        run_bench("nope", out_dir=tmp_path)


def test_compare_flags_wall_time_regression():
    base = {"name": "t", "wall_s": 10.0, "statuses": {"a": "sat"}}
    ok = {"name": "t", "wall_s": 12.0, "statuses": {"a": "sat"}}
    slow = {"name": "t", "wall_s": 13.0, "statuses": {"a": "sat"}}
    assert compare(ok, base, threshold=0.25) == []
    problems = compare(slow, base, threshold=0.25)
    assert len(problems) == 1 and "regressed" in problems[0]


def test_compare_counters_gate_is_machine_independent():
    base = {"name": "t", "wall_s": 10.0, "statuses": {"a": "sat"},
            "statistics": {"conflicts": 100, "propagations": 1000}}
    more_work = {"name": "t", "wall_s": 1.0, "statuses": {"a": "sat"},
                 "statistics": {"conflicts": 200, "propagations": 1000}}
    problems = compare(more_work, base, threshold=0.25)
    assert len(problems) == 1 and "conflicts" in problems[0]


def test_compare_wall_gate_can_be_disabled():
    base = {"name": "t", "wall_s": 10.0, "statuses": {"a": "sat"}}
    slow = {"name": "t", "wall_s": 100.0, "statuses": {"a": "sat"}}
    assert compare(slow, base, threshold=0.25) != []
    assert compare(slow, base, threshold=0.25, wall_gate=False) == []


def test_compare_flags_status_change():
    base = {"name": "t", "wall_s": 10.0, "statuses": {"a": "sat", "b": "sat"}}
    cur = {"name": "t", "wall_s": 1.0, "statuses": {"a": "unsat", "b": "sat"}}
    problems = compare(cur, base)
    assert len(problems) == 1
    assert "status" in problems[0] and "'a'" in problems[0]


def test_run_suite_against_baseline(tmp_path):
    base_dir = tmp_path / "base"
    out_dir = tmp_path / "out"
    base_dir.mkdir()
    out_dir.mkdir()
    run_bench("fig3", out_dir=base_dir)
    # Same code, same scale: no regression against the fresh baseline.
    assert run_suite(["fig3"], out_dir=out_dir,
                     baseline_dir=base_dir, threshold=5.0) == 0


def test_run_bench_unsat_core_records_probe_counters(tmp_path):
    record = run_bench("unsat_core", out_dir=tmp_path)
    statuses = record["statuses"]
    assert statuses["probe_conflict"] == "sat"
    assert statuses["infeasible"] == "unsat"
    assert statuses["staged_trap"] == "unsat"
    assert statuses["staged_repaired"] == "sat"
    assert statuses["cores_seen"] == "yes"
    counters = record["core_counters"]
    assert counters["assumption_probes"] > 0
    assert counters["cores_extracted"] > 0
    assert counters["stage_repairs"] > 0
    # the per-check trajectory attributes every entry to a backend
    assert record["per_check"]
    assert all(e.get("backend") == "native" for e in record["per_check"])
    assert "native" in record["by_backend"]


def test_totals_skip_backend_tags(tmp_path):
    record = run_bench("unsat_core", out_dir=tmp_path)
    assert "backend" not in record["statistics"]
    assert all(isinstance(v, (int, float))
               for v in record["statistics"].values())


def test_run_bench_dl_propagation_gates_reduction(tmp_path):
    record = run_bench(
        "dl_propagation",
        scale={"n_systems": 1, "n_apps": 3, "n_switches": 4},
        out_dir=tmp_path,
    )
    statuses = record["statuses"]
    # On/off statuses agree per instance, decisions strictly drop, and
    # the propagation counters are live.
    for key in list(statuses):
        if key.endswith("/on"):
            assert statuses[key] == statuses[key[:-3] + "/off"]
    assert statuses["decisions_reduced"] == "yes"
    assert statuses["dl_propagations_nonzero"] == "yes"
    counters = record["dl_counters"]
    assert counters["decisions_on"] < counters["decisions_off"]
    assert counters["dl_propagations"] > 0
    assert record["certified"] is True
    # The per-check trajectory carries the new counters.
    assert any(e.get("dl_propagations", 0) > 0 for e in record["per_check"])
