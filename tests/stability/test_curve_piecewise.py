"""Tests for stability curves and the piecewise-linear lower bound."""

from fractions import Fraction

import numpy as np
import pytest

from repro.control.plants import paper_controller, plant_database
from repro.errors import StabilityAnalysisError
from repro.stability import (
    Segment,
    StabilityCurve,
    StabilitySpec,
    compute_stability_curve,
    fit_lower_bound,
)


@pytest.fixture(scope="module")
def servo_curve():
    spec = [s for s in plant_database() if s.name == "dc_servo"][0]
    ctrl = paper_controller(spec)
    return compute_stability_curve(
        spec.system, spec.nominal_period, ctrl, n_points=13
    )


class TestCurve:
    def test_fig3_shape(self, servo_curve):
        h = servo_curve.sample_period
        # Positive margin at zero latency, on the order of the period.
        assert servo_curve.margins[0] > h / 2
        # Ends at zero margin (nominal stability boundary).
        assert servo_curve.margins[-1] == 0.0
        # Stability region extends past one period of latency.
        assert servo_curve.max_latency > h

    def test_margin_interpolation(self, servo_curve):
        mid = (servo_curve.latencies[3] + servo_curve.latencies[4]) / 2
        m = servo_curve.margin_at(float(mid))
        lo = min(servo_curve.margins[3], servo_curve.margins[4])
        hi = max(servo_curve.margins[3], servo_curve.margins[4])
        assert lo <= m <= hi

    def test_margin_outside_range_is_zero(self, servo_curve):
        assert servo_curve.margin_at(-1.0) == 0.0
        assert servo_curve.margin_at(1e9) == 0.0

    def test_is_stable_region(self, servo_curve):
        assert servo_curve.is_stable(0.0, float(servo_curve.margins[0]) / 2)
        assert not servo_curve.is_stable(0.0, float(servo_curve.margins[0]) * 2)

    def test_as_table(self, servo_curve):
        table = servo_curve.as_table()
        assert len(table) == len(servo_curve.latencies)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(StabilityAnalysisError):
            StabilityCurve(np.array([0.0, 1.0]), np.array([1.0]), 0.01)


class TestFitLowerBound:
    @pytest.mark.parametrize("n_segments", [1, 2, 3, 5])
    def test_bound_below_curve_everywhere(self, servo_curve, n_segments):
        spec = fit_lower_bound(servo_curve, n_segments)
        for L in np.linspace(0.0, float(spec.max_latency) * 0.999, 200):
            fl = Fraction(float(L)).limit_denominator(10**12)
            for seg in spec.segments:
                if seg.l_lo <= fl <= seg.l_hi:
                    bound = float(seg.jitter_bound(fl))
                    assert bound <= servo_curve.margin_at(L) + 1e-9

    def test_segments_tile_latency_axis(self, servo_curve):
        spec = fit_lower_bound(servo_curve, 3)
        assert spec.segments[0].l_lo == 0
        for a, b in zip(spec.segments, spec.segments[1:]):
            assert a.l_hi == b.l_lo

    def test_alpha_beta_nonnegative(self, servo_curve):
        spec = fit_lower_bound(servo_curve, 3)
        for seg in spec.segments:
            assert seg.alpha >= 0
            assert seg.beta >= 0

    def test_fig3_first_segment_alpha_plausible(self, servo_curve):
        # The paper's Table I alphas lie in [1, 2.3]; the servo's first
        # (steep) segment should be in that ballpark.
        spec = fit_lower_bound(servo_curve, 3)
        assert 0.5 <= float(spec.segments[0].alpha) <= 5.0

    def test_invalid_segment_count(self, servo_curve):
        with pytest.raises(StabilityAnalysisError):
            fit_lower_bound(servo_curve, 0)


class TestStabilitySpec:
    def test_margin_inside_and_outside(self):
        spec = StabilitySpec.single_line(alpha=2, beta="0.020")
        # L + 2J <= 0.020
        assert spec.margin(0.010, 0.004) == pytest.approx(0.002)
        assert spec.is_stable(0.010, 0.005)
        assert not spec.is_stable(0.010, 0.006)

    def test_margin_beyond_range_is_minus_inf(self):
        spec = StabilitySpec.single_line(alpha=1, beta="0.010")
        assert spec.margin(0.011, 0.0) == -np.inf

    def test_table1_values(self):
        """The paper's Table I app 1: period 20 ms, alpha 1.53, beta 27.78 ms;
        the stability-aware result (L=19.98, J=0.01 ms) must be stable and
        the deadline result (L=4.81, J=15.10 ms) unstable."""
        spec = StabilitySpec.single_line(alpha="1.53", beta="0.02778")
        assert spec.is_stable(0.01998, 0.00001)
        assert not spec.is_stable(0.00481, 0.01510)

    def test_rejects_negative_constants(self):
        with pytest.raises(StabilityAnalysisError):
            StabilitySpec((Segment(Fraction(-1), Fraction(1), Fraction(0),
                                   Fraction(1)),))

    def test_rejects_gap_in_segments(self):
        s1 = Segment(Fraction(1), Fraction(10), Fraction(0), Fraction(1))
        s2 = Segment(Fraction(1), Fraction(10), Fraction(2), Fraction(3))
        with pytest.raises(StabilityAnalysisError):
            StabilitySpec((s1, s2))

    def test_empty_rejected(self):
        with pytest.raises(StabilityAnalysisError):
            StabilitySpec(())
