"""Tests for the jitter-margin criterion."""

import numpy as np
import pytest

from repro.control import (
    StateSpace,
    design_lqg,
    plant_database,
    simulate_with_delays,
    tf_to_ss,
)
from repro.control.plants import paper_controller
from repro.errors import StabilityAnalysisError
from repro.stability import delay_margin, jitter_margin, nominal_loop_stable


@pytest.fixture(scope="module")
def servo():
    spec = [s for s in plant_database() if s.name == "dc_servo"][0]
    return spec.system, paper_controller(spec), spec.nominal_period


class TestNominalStability:
    def test_zero_latency_stable(self, servo):
        plant, ctrl, h = servo
        assert nominal_loop_stable(plant, ctrl, h, 0.0)

    def test_large_latency_unstable(self, servo):
        plant, ctrl, h = servo
        assert not nominal_loop_stable(plant, ctrl, h, 5 * h)

    def test_negative_latency_rejected(self, servo):
        plant, ctrl, h = servo
        with pytest.raises(StabilityAnalysisError):
            nominal_loop_stable(plant, ctrl, h, -0.001)


class TestDelayMargin:
    def test_servo_delay_margin_between_2h_and_3h(self, servo):
        plant, ctrl, h = servo
        dm = delay_margin(plant, ctrl, h)
        assert 2 * h < dm < 3.5 * h

    def test_boundary_is_tight(self, servo):
        plant, ctrl, h = servo
        dm = delay_margin(plant, ctrl, h)
        assert nominal_loop_stable(plant, ctrl, h, dm * 0.999)
        assert not nominal_loop_stable(plant, ctrl, h, dm * 1.01)

    def test_unstable_at_zero_returns_zero(self, servo):
        plant, _, h = servo
        bad_ctrl = StateSpace([[0.0]], [[0.0]], [[0.0]], [[0.0]], dt=h)
        assert delay_margin(plant, bad_ctrl, h) == 0.0


class TestJitterMargin:
    def test_positive_at_zero_latency(self, servo):
        plant, ctrl, h = servo
        jm = jitter_margin(plant, ctrl, h, 0.0)
        assert jm > 0
        # Paper Fig. 3 shows a margin on the order of the period.
        assert 0.5 * h < jm < 3 * h

    def test_decreases_near_boundary(self, servo):
        plant, ctrl, h = servo
        dm = delay_margin(plant, ctrl, h)
        jm_near = jitter_margin(plant, ctrl, h, 0.9 * dm, stability_boundary=dm)
        jm_zero = jitter_margin(plant, ctrl, h, 0.0, stability_boundary=dm)
        assert jm_near < jm_zero
        assert jm_near <= 0.1 * dm + 1e-12

    def test_zero_beyond_boundary(self, servo):
        plant, ctrl, h = servo
        dm = delay_margin(plant, ctrl, h)
        assert jitter_margin(plant, ctrl, h, dm * 1.05) == 0.0

    def test_respects_constant_delay_cap(self, servo):
        plant, ctrl, h = servo
        dm = delay_margin(plant, ctrl, h)
        for frac in (0.0, 0.3, 0.7):
            L = frac * dm
            jm = jitter_margin(plant, ctrl, h, L, stability_boundary=dm)
            assert L + jm <= dm + 1e-12

    def test_requires_continuous_plant(self, servo):
        plant, ctrl, h = servo
        with pytest.raises(StabilityAnalysisError):
            jitter_margin(StateSpace([[0.5]], [[1]], [[1]], [[0]], dt=h), ctrl, h)

    def test_requires_discrete_controller(self, servo):
        plant, _, h = servo
        with pytest.raises(StabilityAnalysisError):
            jitter_margin(plant, plant, h)


class TestEmpiricalSoundness:
    """The margin must be *sufficient*: simulated loops inside the claimed
    region stay bounded even under adversarial jitter patterns."""

    @pytest.mark.parametrize("spec", plant_database(), ids=lambda s: s.name)
    def test_simulation_stable_inside_margin(self, spec):
        plant, h = spec.system, spec.nominal_period
        ctrl = paper_controller(spec)
        jm = jitter_margin(plant, ctrl, h, 0.0)
        if jm <= 0:
            pytest.skip("no margin to exercise")
        J = min(0.8 * jm, 0.9 * h)  # simulator needs delays <= h
        rng = np.random.default_rng(0)
        # Adversarial-ish pattern: alternate extremes plus random fill.
        pattern = [0.0, J] * 10 + list(rng.uniform(0, J, size=20))
        res = simulate_with_delays(plant, ctrl, h, pattern, n_steps=2000)
        assert res.is_bounded(factor=50.0), spec.name
