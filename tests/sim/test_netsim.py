"""Tests for the discrete-event TSN simulator."""

from dataclasses import replace
from fractions import Fraction

import pytest

from repro.core import (
    ControlApplication,
    SynthesisOptions,
    SynthesisProblem,
    Solution,
    solve,
)
from repro.errors import SimulationError
from repro.network import DelayModel, microseconds, simple_testbed
from repro.sim import EventQueue, cross_check_e2e, simulate_solution
from repro.stability import StabilitySpec


def ms(x):
    return Fraction(x) / 1000


FAST = DelayModel(sd=microseconds(5), ld=Fraction(120, 1_000_000))


@pytest.fixture(scope="module")
def solution():
    net = simple_testbed(2)
    apps = [
        ControlApplication(
            f"app{i}", f"S{i}", f"C{i}", ms(5),
            StabilitySpec.single_line("1.5", "0.004"),
        )
        for i in range(2)
    ]
    prob = SynthesisProblem(net, apps, FAST)
    # probe_routes=False keeps the solver's own route picks (the collision
    # tests below depend on the apps sharing an egress link, which the
    # shortest-route probe happily avoids).
    res = solve(prob, SynthesisOptions(routes=2, probe_routes=False))
    assert res.ok
    return res.solution


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(Fraction(3), "c")
        q.push(Fraction(1), "a")
        q.push(Fraction(2), "b")
        assert [q.pop().kind for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_within_same_time(self):
        q = EventQueue()
        q.push(Fraction(1), "first")
        q.push(Fraction(1), "second")
        assert q.pop().kind == "first"
        assert q.pop().kind == "second"

    def test_priority_breaks_ties(self):
        q = EventQueue()
        q.push(Fraction(1), "low", priority=1)
        q.push(Fraction(1), "high", priority=0)
        assert q.pop().kind == "high"

    def test_no_time_travel(self):
        q = EventQueue()
        q.push(Fraction(2), "x")
        q.pop()
        with pytest.raises(SimulationError):
            q.push(Fraction(1), "past")

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()


class TestSimulateSolution:
    def test_all_frames_delivered(self, solution):
        trace = simulate_solution(solution)
        assert set(trace.arrivals) == set(solution.schedules)

    def test_measured_equals_analytical(self, solution):
        trace = simulate_solution(solution)
        cross_check_e2e(solution, trace)

    def test_latency_jitter_match_reports(self, solution):
        trace = simulate_solution(solution)
        for report in solution.reports():
            lat, jit = trace.app_latency_jitter(solution, report.name)
            assert lat == report.latency
            assert jit == report.jitter

    def test_transmissions_disjoint_per_link(self, solution):
        trace = simulate_solution(solution)
        by_link = {}
        for u, v, start, uid in trace.link_transmissions:
            by_link.setdefault((u, v), []).append(start)
        for starts in by_link.values():
            starts.sort()
            for a, b in zip(starts, starts[1:]):
                assert b - a >= FAST.ld

    def test_corrupted_gamma_raises(self, solution):
        uid, sched = next(iter(solution.schedules.items()))
        gammas = dict(sched.gammas)
        first_sw = sched.route[1]
        gammas[first_sw] = sched.release  # before the frame can be queued
        schedules = dict(solution.schedules)
        schedules[uid] = replace(sched, gammas=gammas)
        bad = Solution(solution.problem, schedules)
        with pytest.raises(SimulationError):
            simulate_solution(bad)

    def test_colliding_schedule_raises(self, solution):
        uids = sorted(solution.schedules)
        s0 = solution.schedules[uids[0]]
        s1 = solution.schedules[uids[1]]
        shared = set(s0.route[1:-1]) & set(s1.route[1:-1])
        if not shared:
            pytest.skip("routes do not share a switch")
        sw = sorted(shared)[0]
        # Only a real collision if they leave toward the same next hop.
        nxt0 = s0.route[s0.route.index(sw) + 1]
        nxt1 = s1.route[s1.route.index(sw) + 1]
        if nxt0 != nxt1:
            pytest.skip("shared switch but different egress links")
        gammas = dict(s1.gammas)
        gammas[sw] = s0.gammas[sw]
        schedules = dict(solution.schedules)
        schedules[uids[1]] = replace(s1, gammas=gammas)
        bad = Solution(solution.problem, schedules)
        with pytest.raises(SimulationError):
            simulate_solution(bad)
