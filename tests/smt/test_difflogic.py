"""Tests for the incremental difference-logic engine.

The hypothesis test cross-checks feasibility against a Bellman-Ford oracle.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import DeltaRational, DifferenceLogic
from repro.smt.rationals import ZERO


def dr(x, d=0):
    return DeltaRational(x, d)


class TestBasic:
    def test_single_constraint_feasible(self):
        dl = DifferenceLogic()
        a, b = dl.new_node(), dl.new_node()
        assert dl.assert_constraint(a, b, dr(5), lit=2) is None

    def test_two_cycle_feasible(self):
        dl = DifferenceLogic()
        a, b = dl.new_node(), dl.new_node()
        assert dl.assert_constraint(a, b, dr(5), lit=2) is None
        assert dl.assert_constraint(b, a, dr(-3), lit=4) is None

    def test_two_cycle_infeasible(self):
        dl = DifferenceLogic()
        a, b = dl.new_node(), dl.new_node()
        assert dl.assert_constraint(a, b, dr(5), lit=2) is None
        conflict = dl.assert_constraint(b, a, dr(-6), lit=4)
        assert conflict is not None
        assert set(conflict) == {2, 4}

    def test_zero_weight_cycle_feasible_nonstrict(self):
        dl = DifferenceLogic()
        a, b = dl.new_node(), dl.new_node()
        assert dl.assert_constraint(a, b, dr(0), lit=2) is None
        assert dl.assert_constraint(b, a, dr(0), lit=4) is None

    def test_zero_weight_cycle_infeasible_strict(self):
        dl = DifferenceLogic()
        a, b = dl.new_node(), dl.new_node()
        # a - b <= 0 and b - a < 0  =>  infeasible (b < a <= b)
        assert dl.assert_constraint(a, b, dr(0), lit=2) is None
        conflict = dl.assert_constraint(b, a, dr(0, -1), lit=4)
        assert conflict is not None

    def test_three_cycle_conflict_literals(self):
        dl = DifferenceLogic()
        a, b, c = dl.new_node(), dl.new_node(), dl.new_node()
        assert dl.assert_constraint(a, b, dr(1), lit=2) is None
        assert dl.assert_constraint(b, c, dr(1), lit=4) is None
        conflict = dl.assert_constraint(c, a, dr(-3), lit=6)
        assert conflict is not None
        assert set(conflict) == {2, 4, 6}

    def test_weaker_constraint_is_noop(self):
        dl = DifferenceLogic()
        a, b = dl.new_node(), dl.new_node()
        assert dl.assert_constraint(a, b, dr(1), lit=2) is None
        assert dl.assert_constraint(a, b, dr(100), lit=4) is None
        # The tight bound must still hold: adding the closing edge conflicts.
        conflict = dl.assert_constraint(b, a, dr(-2), lit=6)
        assert conflict is not None
        assert 4 not in set(conflict)

    def test_solution_satisfies_constraints(self):
        dl = DifferenceLogic()
        nodes = [dl.new_node() for _ in range(4)]
        constraints = [
            (nodes[0], nodes[1], dr(3)),
            (nodes[1], nodes[2], dr(-1)),
            (nodes[2], nodes[3], dr(2)),
            (nodes[3], nodes[0], dr(0)),
        ]
        for i, (x, y, b) in enumerate(constraints):
            assert dl.assert_constraint(x, y, b, lit=2 * (i + 1)) is None
        sol = dl.solution()
        for x, y, b in constraints:
            assert sol[x] - sol[y] <= b


class TestBacktracking:
    def test_undo_restores_feasibility(self):
        dl = DifferenceLogic()
        a, b = dl.new_node(), dl.new_node()
        assert dl.assert_constraint(a, b, dr(5), lit=2) is None
        mark = dl.mark()
        conflict = dl.assert_constraint(b, a, dr(-6), lit=4)
        assert conflict is not None
        dl.undo_to(mark)
        # Now a weaker closing edge is fine.
        assert dl.assert_constraint(b, a, dr(-5), lit=4) is None

    def test_undo_tightened_edge(self):
        dl = DifferenceLogic()
        a, b = dl.new_node(), dl.new_node()
        assert dl.assert_constraint(a, b, dr(10), lit=2) is None
        mark = dl.mark()
        assert dl.assert_constraint(a, b, dr(1), lit=4) is None
        dl.undo_to(mark)
        # After undo the bound is 10 again, so -5 on the reverse is fine.
        assert dl.assert_constraint(b, a, dr(-5), lit=6) is None


def bellman_ford_feasible(n, constraints):
    """Oracle: feasibility of difference constraints via Bellman-Ford.

    constraints: list of (x, y, Fraction bound, strict) for x - y <= bound.
    Returns True iff feasible (strict handled with epsilon ordering).
    """
    # Edge y -> x with weight (bound, -1 if strict else 0), lexicographic.
    INF = (Fraction(10**9), 0)
    dist = [(Fraction(0), 0)] * (n + 1)

    def add(w1, w2):
        return (w1[0] + w2[0], w1[1] + w2[1])

    edges = [(y, x, (Fraction(b), -1 if s else 0)) for x, y, b, s in constraints]
    for _ in range(n + 1):
        changed = False
        for u, v, w in edges:
            cand = add(dist[u], w)
            if cand < dist[v]:
                dist[v] = cand
                changed = True
        if not changed:
            return True
    return False


@st.composite
def constraint_sets(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    m = draw(st.integers(min_value=1, max_value=12))
    cons = []
    for _ in range(m):
        x = draw(st.integers(min_value=0, max_value=n - 1))
        y = draw(st.integers(min_value=0, max_value=n - 1))
        if x == y:
            continue
        b = draw(st.integers(min_value=-5, max_value=5))
        s = draw(st.booleans())
        cons.append((x, y, b, s))
    return n, cons


@given(constraint_sets())
@settings(max_examples=200, deadline=None)
def test_matches_bellman_ford_oracle(case):
    n, cons = case
    dl = DifferenceLogic()
    nodes = [dl.new_node() for _ in range(n)]
    feasible = True
    for i, (x, y, b, s) in enumerate(cons):
        bound = DeltaRational(b, -1 if s else 0)
        if dl.assert_constraint(nodes[x], nodes[y], bound, lit=2 * (i + 1)) is not None:
            feasible = False
            break
    assert feasible == bellman_ford_feasible(n, cons)
    if feasible:
        sol = dl.solution()
        for x, y, b, s in cons:
            diff = sol[nodes[x]] - sol[nodes[y]]
            limit = DeltaRational(b, -1 if s else 0)
            assert diff <= limit


# ---------------------------------------------------------------------------
# Weaker/equal re-assertion round-trips (trail-alignment regression)
# ---------------------------------------------------------------------------


def _semantic_state(dl):
    """Engine state normalized out of the integer scale: active edges as
    exact (weight, lit) per node pair, plus the potential."""
    scale = dl._scale
    edges = {}
    for u, targets in enumerate(dl._out):
        for v, e in targets.items():
            edges[(u, v)] = (Fraction(e.wr, scale), Fraction(e.wd, scale),
                             e.lit)
    pi = [(Fraction(r, scale), Fraction(d, scale))
          for r, d in zip(dl._pi_r, dl._pi_d)]
    return edges, pi


@st.composite
def reassert_cases(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    m = draw(st.integers(min_value=1, max_value=8))
    cons = []
    for _ in range(m):
        x = draw(st.integers(min_value=0, max_value=n - 1))
        y = draw(st.integers(min_value=0, max_value=n - 1))
        if x == y:
            continue
        cons.append((x, y, draw(st.integers(min_value=-4, max_value=4)),
                     draw(st.booleans())))
    # Slack added to an existing edge's bound: 0 = equal re-assertion;
    # denominators 3/5/7 force an engine-wide rescale on the no-op path.
    slacks = draw(st.lists(
        st.tuples(st.integers(min_value=0, max_value=10),
                  st.sampled_from([1, 2, 3, 5, 7]),
                  st.booleans()),
        min_size=1, max_size=5,
    ))
    return n, cons, slacks


@given(reassert_cases())
@settings(max_examples=150, deadline=None)
def test_weaker_or_equal_reassert_roundtrips_exactly(case):
    """Equal/weaker re-assertion appends a no-op trail entry; undoing it
    (even across an interleaved rescale) must reproduce the engine state
    exactly — same active edges, literals, and potential."""
    n, cons, slacks = case
    dl = DifferenceLogic()
    nodes = [dl.new_node() for _ in range(n)]
    for i, (x, y, b, s) in enumerate(cons):
        bound = DeltaRational(b, -1 if s else 0)
        if dl.assert_constraint(nodes[x], nodes[y], bound,
                                lit=2 * (i + 1)) is not None:
            return  # infeasible prefix: nothing to round-trip
    active = sorted(
        (u, v) for u, targets in enumerate(dl._out) for v in targets
    )
    if not active:
        return
    before = _semantic_state(dl)
    mark = dl.mark()
    for k, (num, den, weaker_delta) in enumerate(slacks):
        u, v = active[k % len(active)]
        e = dl._out[u][v]
        scale = dl._scale
        wr = Fraction(e.wr, scale) + Fraction(num, den)
        wd = Fraction(e.wd, scale) + (1 if weaker_delta else 0)
        # Weaker than (or equal to) the active edge: must be a no-op.
        assert dl.assert_constraint(
            v, u, DeltaRational(wr, wd), lit=1000 + 2 * k
        ) is None
        assert dl._out[u][v] is e, "weaker re-assert must not replace the edge"
    assert len(dl._trail) == mark + len(slacks)  # one entry per assert
    dl.undo_to(mark)
    assert _semantic_state(dl) == before
    assert dl.check_feasible_assignment()


def test_equal_reassert_across_rescale_roundtrips():
    """Directed case: equal re-assert, then a rescale from an unrelated
    fractional bound, then undo — the parked trail edge must have been
    rescaled exactly once."""
    dl = DifferenceLogic()
    a, b, c = dl.new_node(), dl.new_node(), dl.new_node()
    assert dl.assert_constraint(a, b, DeltaRational(5), lit=2) is None
    before = _semantic_state(dl)
    mark = dl.mark()
    # Equal re-assertion: parked on the trail, graph unchanged.
    assert dl.assert_constraint(a, b, DeltaRational(5), lit=4) is None
    # Unrelated third-denominator bound forces an engine-wide rescale
    # while the no-op entry sits on the trail.
    assert dl.assert_constraint(
        b, c, DeltaRational(Fraction(1, 3)), lit=6
    ) is None
    dl.undo_to(mark)
    assert _semantic_state(dl) == before
    assert dl.check_feasible_assignment()
