"""Tests for delta-rational arithmetic and materialization."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.smt import DeltaRational, materialize_delta


rationals = st.fractions(
    min_value=Fraction(-100), max_value=Fraction(100), max_denominator=20
)


class TestArithmetic:
    def test_add(self):
        a = DeltaRational(1, 1) + DeltaRational(2, -3)
        assert a.real == 3 and a.delta == -2

    def test_sub(self):
        a = DeltaRational(5) - DeltaRational(2, 1)
        assert a.real == 3 and a.delta == -1

    def test_neg(self):
        a = -DeltaRational(1, -2)
        assert a.real == -1 and a.delta == 2

    def test_scalar_mul(self):
        a = DeltaRational(2, 3) * Fraction(1, 2)
        assert a.real == 1 and a.delta == Fraction(3, 2)

    def test_int_coercion(self):
        assert DeltaRational(1) + 2 == DeltaRational(3)


class TestOrdering:
    def test_real_dominates(self):
        assert DeltaRational(1, 100) < DeltaRational(2, -100)

    def test_delta_breaks_ties(self):
        assert DeltaRational(1, -1) < DeltaRational(1, 0) < DeltaRational(1, 1)

    def test_strict_less_semantics(self):
        # x < 3 is modeled as x <= 3 - delta, which is < 3.
        assert DeltaRational(3, -1) < DeltaRational(3)

    @given(rationals, rationals, rationals, rationals)
    def test_total_order(self, a, b, c, d):
        x, y = DeltaRational(a, b), DeltaRational(c, d)
        assert (x < y) + (x == y) + (x > y) == 1


class TestMaterialize:
    def test_empty_pairs(self):
        assert materialize_delta([]) == 1

    def test_strict_gap_preserved(self):
        lo = DeltaRational(0, 1)   # > 0
        hi = DeltaRational(1)      # <= 1
        eps = materialize_delta([(lo, hi)])
        assert 0 < lo.real + lo.delta * eps <= 1

    def test_tight_strict_pair(self):
        # value v with 3 < v (i.e. lo = 3 + d) and beta = 3 + d
        lo = DeltaRational(3, 1)
        beta = DeltaRational(3, 1)
        eps = materialize_delta([(lo, beta)])
        assert beta.real + beta.delta * eps > 3

    def test_infeasible_order_raises(self):
        with pytest.raises(ValueError):
            materialize_delta([(DeltaRational(1, 1), DeltaRational(1, 0))])

    @given(st.lists(st.tuples(rationals, rationals, rationals, rationals), max_size=8))
    def test_materialization_preserves_order(self, quads):
        pairs = []
        for a, b, c, d in quads:
            lo, hi = DeltaRational(a, b), DeltaRational(c, d)
            if lo <= hi:
                pairs.append((lo, hi))
        eps = materialize_delta(pairs)
        assert eps > 0
        for lo, hi in pairs:
            assert lo.real + lo.delta * eps <= hi.real + hi.delta * eps
