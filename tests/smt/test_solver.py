"""End-to-end tests of the DPLL(T) SMT solver."""

from fractions import Fraction

import pytest

from repro.errors import SolverError
from repro.smt import (
    And,
    Bool,
    ExactlyOne,
    Implies,
    Not,
    Or,
    Real,
    Solver,
    sat,
    unsat,
)


class TestPureBool:
    def test_simple_sat(self):
        s = Solver()
        a, b = Bool("a"), Bool("b")
        s.add(Or(a, b), Not(a))
        assert s.check() == sat
        m = s.model()
        assert m[b] is True
        assert m[a] is False

    def test_simple_unsat(self):
        s = Solver()
        a = Bool("a")
        s.add(a, Not(a))
        assert s.check() == unsat

    def test_implication_chain(self):
        s = Solver()
        bools = [Bool(f"c{i}") for i in range(10)]
        s.add(bools[0])
        for i in range(9):
            s.add(Implies(bools[i], bools[i + 1]))
        assert s.check() == sat
        m = s.model()
        assert all(m[b] for b in bools)

    def test_exactly_one(self):
        s = Solver()
        bools = [Bool(f"e{i}") for i in range(4)]
        s.add(ExactlyOne(bools))
        s.add(Not(bools[0]), Not(bools[1]), Not(bools[2]))
        assert s.check() == sat
        assert s.model()[bools[3]] is True


class TestArithmetic:
    def test_bounds_sat(self):
        s = Solver()
        x = Real("tx")
        s.add(x >= 1, x <= 3)
        assert s.check() == sat
        assert 1 <= s.model()[x] <= 3

    def test_bounds_unsat(self):
        s = Solver()
        x = Real("ty")
        s.add(x >= 5, x <= 3)
        assert s.check() == unsat

    def test_strict_bounds(self):
        s = Solver()
        x = Real("tz")
        s.add(x > 1, x < 2)
        assert s.check() == sat
        v = s.model()[x]
        assert 1 < v < 2

    def test_strict_unsat(self):
        s = Solver()
        x = Real("tw")
        s.add(x > 1, x < 1)
        assert s.check() == unsat

    def test_difference_chain(self):
        s = Solver()
        a, b, c = Real("da"), Real("db"), Real("dc")
        s.add(b - a >= 1, c - b >= 1, a >= 0, c <= 5)
        assert s.check() == sat
        m = s.model()
        assert m[b] - m[a] >= 1
        assert m[c] - m[b] >= 1

    def test_difference_cycle_unsat(self):
        s = Solver()
        a, b, c = Real("ca"), Real("cb"), Real("cc")
        s.add(b - a >= 1, c - b >= 1, a - c >= 0)
        assert s.check() == unsat

    def test_equality(self):
        s = Solver()
        x, y = Real("eqx"), Real("eqy")
        s.add(x == 3, y == x + 2)
        assert s.check() == sat
        m = s.model()
        assert m[x] == 3 and m[y] == 5

    def test_general_linear_sat(self):
        s = Solver()
        x, y = Real("glx"), Real("gly")
        s.add(2 * x + 3 * y <= 12, x >= 2, y >= 1)
        assert s.check() == sat
        m = s.model()
        assert 2 * m[x] + 3 * m[y] <= 12

    def test_general_linear_unsat(self):
        s = Solver()
        x, y = Real("gux"), Real("guy")
        s.add(2 * x + 3 * y <= 6, x >= 2, y >= 1)
        assert s.check() == unsat

    def test_fractional_coefficients(self):
        s = Solver()
        x = Real("frx")
        s.add(Fraction(1, 3) * x >= 1, x <= Fraction(10, 3))
        assert s.check() == sat
        assert 3 <= s.model()[x] <= Fraction(10, 3)


class TestMixed:
    def test_disjunction_of_atoms(self):
        s = Solver()
        x = Real("mx")
        s.add(Or(x <= -1, x >= 1), x >= 0, x <= Fraction(1, 2))
        assert s.check() == unsat

    def test_disjunction_picks_branch(self):
        s = Solver()
        x = Real("my")
        s.add(Or(x <= -1, x >= 1), x >= 0)
        assert s.check() == sat
        assert s.model()[x] >= 1

    def test_guarded_constraints(self):
        s = Solver()
        g1, g2 = Bool("g1"), Bool("g2")
        x, y = Real("gx"), Real("gy")
        s.add(Or(g1, g2))
        s.add(Implies(g1, x - y >= 2))
        s.add(Implies(g2, y - x >= 2))
        s.add(x >= 0, y >= 0, x + y <= 3)
        assert s.check() == sat
        m = s.model()
        assert abs(m[x] - m[y]) >= 2

    def test_scheduling_style_disjunction(self):
        """Two jobs of length 2 on one machine within [0, 4]: exactly fits."""
        s = Solver()
        t1, t2 = Real("j1"), Real("j2")
        s.add(t1 >= 0, t2 >= 0, t1 <= 2, t2 <= 2)
        s.add(Or(t1 - t2 >= 2, t2 - t1 >= 2))
        assert s.check() == sat
        m = s.model()
        assert abs(m[t1] - m[t2]) >= 2

    def test_scheduling_style_unsat(self):
        """Two jobs of length 2 in a window of 3 cannot both fit."""
        s = Solver()
        t1, t2 = Real("k1"), Real("k2")
        s.add(t1 >= 0, t2 >= 0, t1 <= 1, t2 <= 1)
        s.add(Or(t1 - t2 >= 2, t2 - t1 >= 2))
        assert s.check() == unsat

    def test_min_max_encoding(self):
        """The Lmin/Lmax pattern used by the stability encoding."""
        s = Solver()
        e1, e2, e3 = Real("me1"), Real("me2"), Real("me3")
        lmin, lmax = Real("mlmin"), Real("mlmax")
        s.add(e1 == 3, e2 == 5, e3 == 4)
        for e in (e1, e2, e3):
            s.add(lmin <= e, lmax >= e)
        s.add(Or(lmin >= e1, lmin >= e2, lmin >= e3))
        s.add(Or(lmax <= e1, lmax <= e2, lmax <= e3))
        assert s.check() == sat
        m = s.model()
        assert m[lmin] == 3
        assert m[lmax] == 5

    def test_stability_style_constraint(self):
        """L + alpha*(J) <= beta with L=Lmin, J=Lmax-Lmin."""
        s = Solver()
        lmin, lmax = Real("sl1"), Real("sl2")
        alpha = Fraction(3, 2)
        s.add(lmin >= 2, lmax >= lmin, lmax <= 10)
        s.add((1 - alpha) * lmin + alpha * lmax <= 8)
        assert s.check() == sat
        m = s.model()
        assert (1 - alpha) * m[lmin] + alpha * m[lmax] <= 8

    def test_incremental_add_after_check(self):
        s = Solver()
        x = Real("ix")
        s.add(x >= 0)
        assert s.check() == sat
        s.add(x <= 5)
        assert s.check() == sat
        s.add(x >= 6)
        assert s.check() == unsat

    def test_model_before_check_raises(self):
        s = Solver()
        with pytest.raises(SolverError):
            s.model()

    def test_model_evaluates_expressions(self):
        s = Solver()
        x, y = Real("evx"), Real("evy")
        s.add(x == 2, y == 3)
        assert s.check() == sat
        m = s.model()
        assert m[x + 2 * y] == 8
        assert m.eval_bool(x + y <= 5) is True
        assert m.eval_bool(x + y < 5) is False

    def test_unsat_then_stays_unsat(self):
        s = Solver()
        x = Real("ux")
        s.add(x >= 1, x <= 0)
        assert s.check() == unsat
        assert s.check() == unsat
