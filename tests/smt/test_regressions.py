"""QF_LRA regression corpus: tricky satisfiability cases for the DPLL(T)
stack (strict/non-strict mixes, degenerate equalities, coefficient
spreads, deep Boolean structure over arithmetic)."""

from fractions import Fraction

import pytest

from repro.smt import (
    And,
    Bool,
    Implies,
    Not,
    Or,
    Real,
    Solver,
    sat,
    unsat,
)


def check(formulas):
    s = Solver()
    s.add(list(formulas))
    return s


class TestStrictness:
    def test_open_interval_chain(self):
        # x1 < x2 < x3 < x1 + 1 with x2 - x1 > 1/2 and x3 - x2 > 1/2: unsat.
        x1, x2, x3 = Real("ra1"), Real("ra2"), Real("ra3")
        s = check([
            x2 - x1 > Fraction(1, 2),
            x3 - x2 > Fraction(1, 2),
            x3 - x1 < 1,
        ])
        assert s.check() == unsat

    def test_strict_sandwich_sat(self):
        x = Real("rb")
        s = check([x > 0, x < Fraction(1, 10**9)])
        assert s.check() == sat
        assert 0 < s.model()[x] < Fraction(1, 10**9)

    def test_nonstrict_closure_of_strict_chain(self):
        # x >= y and y >= x and x != y: unsat (equality forced).
        x, y = Real("rc1"), Real("rc2")
        s = check([x >= y, y >= x, x != y])
        assert s.check() == unsat

    def test_equality_propagation(self):
        x, y, z = Real("rd1"), Real("rd2"), Real("rd3")
        s = check([x == y, y == z, x - z >= Fraction(1, 1000)])
        assert s.check() == unsat


class TestCoefficients:
    def test_large_spread(self):
        x, y = Real("re1"), Real("re2")
        s = check([10**9 * x + y <= 1, x >= 0, y >= 0,
                   x + 10**9 * y >= Fraction(1, 2)])
        assert s.check() == sat
        m = s.model()
        assert 10**9 * m[x] + m[y] <= 1

    def test_tiny_fractions(self):
        x = Real("rf")
        tiny = Fraction(1, 10**12)
        s = check([x >= tiny, x <= 2 * tiny])
        assert s.check() == sat
        assert tiny <= s.model()[x] <= 2 * tiny

    def test_cancellation(self):
        # (x + y) - (x - y) = 2y: solver must see through the rewriting.
        x, y = Real("rg1"), Real("rg2")
        s = check([(x + y) - (x - y) >= 4, y <= 1])
        assert s.check() == unsat


class TestBooleanArithmeticInterplay:
    def test_xor_style_selection(self):
        a, b = Bool("rha"), Bool("rhb")
        x = Real("rhx")
        s = check([
            Or(a, b),
            Or(Not(a), Not(b)),
            Implies(a, x >= 5),
            Implies(b, x <= -5),
            x >= 0,
        ])
        assert s.check() == sat
        m = s.model()
        assert m[a] is True and m[b] is False
        assert m[x] >= 5

    def test_deep_implication_tower_unsat(self):
        bools = [Bool(f"ri{k}") for k in range(8)]
        x = Real("rix")
        formulas = [bools[0], x <= 0]
        for k in range(7):
            formulas.append(Implies(bools[k], bools[k + 1]))
        formulas.append(Implies(bools[7], x >= 1))
        s = check(formulas)
        assert s.check() == unsat

    def test_at_most_one_window_packing(self):
        """Three unit jobs, two machines, horizon 2: pigeonhole-flavoured."""
        starts = [Real(f"rj{k}") for k in range(3)]
        on_m1 = [Bool(f"rjm{k}") for k in range(3)]
        formulas = []
        for t in starts:
            formulas += [t >= 0, t <= 1]
        for i in range(3):
            for j in range(i + 1, 3):
                same = And(on_m1[i], on_m1[j])
                diff = And(Not(on_m1[i]), Not(on_m1[j]))
                overlap_free = Or(
                    starts[i] - starts[j] >= 1, starts[j] - starts[i] >= 1
                )
                formulas.append(Implies(same, overlap_free))
                formulas.append(Implies(diff, overlap_free))
        s = check(formulas)
        # 2 machines x horizon [0,2] fit 4 unit jobs; 3 jobs are fine.
        assert s.check() == sat

    def test_contention_triangle_unsat(self):
        """Three messages pairwise >= 1 apart inside a window of 2."""
        t = [Real(f"rk{k}") for k in range(3)]
        formulas = []
        for x in t:
            formulas += [x >= 0, x <= Fraction(3, 2) - 1]  # starts in [0, 1/2]
        for i in range(3):
            for j in range(i + 1, 3):
                formulas.append(Or(t[i] - t[j] >= 1, t[j] - t[i] >= 1))
        s = check(formulas)
        assert s.check() == unsat


class TestIncrementalPatterns:
    def test_alternating_sat_unsat(self):
        x = Real("rl")
        s = Solver()
        s.add(x >= 0)
        assert s.check() == sat
        s.add(x <= 10)
        assert s.check() == sat
        s.add(Or(x <= 2, x >= 8))
        assert s.check() == sat
        s.add(x >= 3, x <= 7)
        assert s.check() == unsat

    def test_model_stability_across_checks(self):
        x, y = Real("rm1"), Real("rm2")
        s = Solver()
        s.add(x + y == 10, x >= 0, y >= 0)
        assert s.check() == sat
        m1 = s.model()
        assert m1[x] + m1[y] == 10
        s.add(x >= 6)
        assert s.check() == sat
        m2 = s.model()
        assert m2[x] >= 6 and m2[x] + m2[y] == 10

    def test_many_small_checks(self):
        s = Solver()
        x = Real("rn")
        s.add(x >= 0, x <= 100)
        for k in range(20):
            s.add(x >= k)
            assert s.check() == sat
        s.add(x <= 18)
        assert s.check() == unsat
