"""Incremental solving: push/pop scopes and assumption-based check().

The seeded property tests compare the *same* persistent solver — scopes
pushed, popped, re-checked, learned clauses carried across calls —
against fresh single-shot solvers on random difference-logic and CNF
instances.  Any divergence means scope retraction or assumption handling
corrupted the clause database or theory state.
"""

import random
from fractions import Fraction

import pytest

from repro.errors import SolverError
from repro.smt import And, Bool, Implies, Not, Or, Real, Solver, sat, unsat


class TestScopes:
    def test_push_pop_restores_sat(self):
        s = Solver()
        x = Real("inc_a")
        s.add(x >= 0, x <= 10)
        assert s.check() == sat
        s.push()
        s.add(x <= -1)
        assert s.check() == unsat
        s.pop()
        assert s.check() == sat
        assert 0 <= s.model()[x] <= 10

    def test_nested_scopes(self):
        s = Solver()
        x = Real("inc_b")
        s.add(x >= 0)
        s.push()
        s.add(x >= 5)
        s.push()
        s.add(x <= 4)
        assert s.num_scopes == 2
        assert s.check() == unsat
        s.pop()
        assert s.check() == sat
        assert s.model()[x] >= 5
        s.pop()
        assert s.num_scopes == 0
        assert s.check() == sat

    def test_pop_multiple(self):
        s = Solver()
        x = Real("inc_c")
        s.add(x >= 0)
        s.push()
        s.add(x >= 1)
        s.push()
        s.add(x >= 2)
        s.pop(2)
        assert s.num_scopes == 0
        assert s.check() == sat

    def test_pop_too_many_raises(self):
        s = Solver()
        with pytest.raises(SolverError):
            s.pop()

    def test_assertions_tracks_scopes(self):
        s = Solver()
        x = Real("inc_d")
        s.add(x >= 0)
        s.push()
        s.add(x <= 3)
        assert len(s.assertions) == 2
        s.pop()
        assert len(s.assertions) == 1

    def test_booleans_in_scopes(self):
        s = Solver()
        a, b = Bool("inc_p"), Bool("inc_q")
        s.add(Or(a, b))
        s.push()
        s.add(Not(a), Not(b))
        assert s.check() == unsat
        s.pop()
        assert s.check() == sat


class TestAssumptions:
    def test_assumption_literal(self):
        s = Solver()
        a = Bool("as_a")
        x = Real("as_x")
        s.add(Implies(a, x >= 8), x <= 10)
        assert s.check(a) == sat
        assert s.model()[x] >= 8
        assert s.check(Not(a)) == sat
        assert s.check() == sat

    def test_assumption_atom(self):
        s = Solver()
        x = Real("as_y")
        s.add(x >= 0, x <= 10)
        assert s.check(x >= 11) == unsat
        assert s.check(x >= 9) == sat
        assert s.model()[x] >= 9

    def test_conflicting_assumptions(self):
        s = Solver()
        a = Bool("as_b")
        s.add(Or(a, Not(a)))  # mention the var
        assert s.check(a, Not(a)) == unsat
        assert s.check(a) == sat

    def test_unsat_under_assumptions_is_not_sticky(self):
        s = Solver()
        x = Real("as_z")
        s.add(x >= 0)
        for _ in range(3):
            assert s.check(x <= -1) == unsat
            assert s.check() == sat

    def test_last_check_statistics_resets(self):
        s = Solver()
        x = Real("as_s")
        s.add(Or(x <= -1, x >= 1), x >= 0)
        assert s.check() == sat
        first = s.last_check_statistics
        assert first["decisions"] >= 0
        assert s.check() == sat
        # The delta is per-call, not cumulative.
        assert s.last_check_statistics["propagations"] <= s.statistics["propagations"]


def _random_difflogic(rng, prefix, n_vars, n_cons):
    """Random difference-logic constraints x_i - x_j <= c."""
    xs = [Real(f"{prefix}_x{i}") for i in range(n_vars)]
    cons = []
    for _ in range(n_cons):
        i, j = rng.sample(range(n_vars), 2)
        c = Fraction(rng.randint(-4, 4))
        cons.append(xs[i] - xs[j] <= c)
    return cons


def _random_cnf(rng, prefix, n_vars, n_clauses):
    """Random 3-CNF over fresh Boolean variables."""
    vs = [Bool(f"{prefix}_b{i}") for i in range(n_vars)]
    clauses = []
    for _ in range(n_clauses):
        lits = []
        for v in rng.sample(vs, 3):
            lits.append(v if rng.random() < 0.5 else Not(v))
        clauses.append(Or(lits))
    return vs, clauses


class TestIncrementalAgreesWithFresh:
    """Seeded equivalence: persistent push/pop/assume vs fresh solves."""

    @pytest.mark.parametrize("seed", range(12))
    def test_difflogic_push_pop(self, seed):
        rng = random.Random(seed)
        prefix = f"dl{seed}"
        base = _random_difflogic(rng, prefix, 5, 8)
        extra = _random_difflogic(rng, prefix, 5, 6)

        fresh_base = Solver()
        fresh_base.add(base)
        expect_base = fresh_base.check()

        fresh_both = Solver()
        fresh_both.add(base, extra)
        expect_both = fresh_both.check()

        s = Solver()
        s.add(base)
        assert s.check().name == expect_base.name
        s.push()
        s.add(extra)
        assert s.check().name == expect_both.name
        s.pop()
        # Learned clauses from the popped scope must not change the answer.
        assert s.check().name == expect_base.name
        s.push()
        s.add(extra)
        assert s.check().name == expect_both.name
        s.pop()

    @pytest.mark.parametrize("seed", range(12))
    def test_cnf_assumptions(self, seed):
        rng = random.Random(1000 + seed)
        prefix = f"cnf{seed}"
        vs, clauses = _random_cnf(rng, prefix, 6, 14)
        assumed = [v if rng.random() < 0.5 else Not(v)
                   for v in rng.sample(vs, 3)]

        fresh = Solver()
        fresh.add(clauses)
        fresh.add(assumed)  # assumptions as hard constraints
        expected = fresh.check()

        s = Solver()
        s.add(clauses)
        plain = s.check()
        assert s.check(assumed).name == expected.name
        # Assumptions leave no residue.
        assert s.check().name == plain.name

    @pytest.mark.parametrize("seed", range(8))
    def test_mixed_scope_reuse(self, seed):
        """One solver, many scope cycles, random mixed constraints."""
        rng = random.Random(2000 + seed)
        prefix = f"mx{seed}"
        base = _random_difflogic(rng, prefix, 4, 5)
        _, base_cnf = _random_cnf(rng, prefix, 4, 6)
        s = Solver()
        s.add(base, base_cnf)
        baseline = s.check()

        for round_idx in range(4):
            extra = _random_difflogic(rng, f"{prefix}r{round_idx}", 4, 4)
            fresh = Solver()
            fresh.add(base, base_cnf, extra)
            expected = fresh.check()
            s.push()
            s.add(extra)
            assert s.check().name == expected.name, f"round {round_idx}"
            s.pop()
            assert s.check().name == baseline.name, f"round {round_idx}"

    @pytest.mark.parametrize("seed", range(6))
    def test_model_satisfies_all_assertions(self, seed):
        """On sat checks inside a scope, the model satisfies base + scope."""
        rng = random.Random(3000 + seed)
        prefix = f"md{seed}"
        base = _random_difflogic(rng, prefix, 4, 4)
        extra = _random_difflogic(rng, prefix, 4, 3)
        s = Solver()
        s.add(base)
        s.push()
        s.add(extra)
        if s.check() == sat:
            m = s.model()
            for formula in base + extra:
                assert m.eval_bool(formula)
        s.pop()
        if s.check() == sat:
            m = s.model()
            for formula in base:
                assert m.eval_bool(formula)
