"""Property tests for the array-based simplex rewrite.

Seeded random bound sequences, interleaved with ``mark``/``undo_to``
backtracking and ``check()`` calls, must preserve the engine's internal
invariants at every step:

* ``assignment_consistent()`` — beta satisfies every tableau row (the
  tableau is never undone, so this must hold unconditionally);
* ``suspects_invariant_holds()`` — every bound-violating *basic* variable
  is in the suspect set (else ``check()`` could miss a violation);
* ``dirty_invariant_holds()`` — every out-of-bounds *nonbasic* variable is
  marked for lazy repair;
* after a successful ``check()``, ``bounds_satisfied()``.

The same trace is replayed with the float pre-filter enabled: identical
conflict/feasibility verdicts are required at every step.
"""

import random
from fractions import Fraction

import pytest

from repro.smt import DeltaRational, Simplex


def dr(x, d=0):
    return DeltaRational(Fraction(x), Fraction(d))


def _build(float_prefilter: bool, rng: random.Random):
    """A simplex with a few structural vars and random rows."""
    sx = Simplex(float_prefilter=float_prefilter)
    xs = [sx.new_var() for _ in range(4)]
    rows = []
    for _ in range(3):
        coeffs = {
            x: Fraction(rng.randint(-3, 3))
            for x in rng.sample(xs, rng.randint(2, 3))
        }
        coeffs = {x: c for x, c in coeffs.items() if c}
        if coeffs:
            rows.append(sx.add_row(coeffs))
    return sx, xs + rows


def _random_trace(seed: int, n_ops: int = 120):
    """Deterministic op sequence: (kind, *args) tuples."""
    rng = random.Random(seed)
    ops = []
    for _ in range(n_ops):
        r = rng.random()
        if r < 0.35:
            ops.append(("lower", rng.randrange(7), rng.randint(-8, 8),
                        rng.choice((-1, 0, 1))))
        elif r < 0.70:
            ops.append(("upper", rng.randrange(7), rng.randint(-8, 8),
                        rng.choice((-1, 0, 1))))
        elif r < 0.80:
            ops.append(("mark",))
        elif r < 0.90:
            ops.append(("undo",))
        else:
            ops.append(("check",))
    return ops


def _run_trace(sx, variables, ops, check_invariants: bool):
    """Replay ops; returns the verdict stream (for cross-engine equality)."""
    verdicts = []
    marks = []
    lit = 2
    for op in ops:
        if op[0] in ("lower", "upper"):
            _, vi, bound, delta = op
            var = variables[vi % len(variables)]
            fn = sx.assert_lower if op[0] == "lower" else sx.assert_upper
            conflict = fn(var, dr(bound, delta), lit)
            lit += 2
            verdicts.append(("assert", conflict is None))
            if conflict is not None and marks:
                # A conflicting assertion is normally followed by a
                # backjump; emulate the DPLL(T) caller.
                sx.undo_to(marks.pop())
                verdicts.append(("backjump", True))
        elif op[0] == "mark":
            marks.append(sx.mark())
        elif op[0] == "undo":
            if marks:
                sx.undo_to(marks.pop())
        else:
            conflict = sx.check()
            verdicts.append(("check", conflict is None))
            if conflict is None:
                assert sx.bounds_satisfied()
            elif marks:
                sx.undo_to(marks.pop())
        if check_invariants:
            assert sx.assignment_consistent()
            assert sx.suspects_invariant_holds()
            assert sx.dirty_invariant_holds()
    return verdicts


@pytest.mark.parametrize("seed", range(8))
def test_invariants_under_random_backtracking(seed):
    rng = random.Random(seed)
    sx, variables = _build(False, rng)
    ops = _random_trace(seed)
    _run_trace(sx, variables, ops, check_invariants=True)
    # A final full check must land on a consistent, in-bounds assignment
    # (or report a conflict — either way invariants hold afterwards).
    conflict = sx.check()
    assert sx.assignment_consistent()
    if conflict is None:
        assert sx.bounds_satisfied()


def test_float_prefilter_survives_catastrophic_cancellation():
    """The float mirror is resynced from exact values, never accumulated.

    With an incrementally-updated mirror, x - y for x ~ y ~ 1e17 cancels
    to 0.0 in float while the exact value is 1, and the pre-filter would
    confidently accept a bound-violating assignment.  Regression test for
    exactly that trace.
    """
    big = 10**17
    sx = Simplex(float_prefilter=True)
    x, y = sx.new_var(), sx.new_var()
    s = sx.add_row({x: Fraction(1), y: Fraction(-1)})
    assert sx.assert_lower(x, dr(big), 2) is None
    assert sx.assert_lower(y, dr(big - 1), 4) is None
    assert sx.check() is None
    conflict = sx.assert_upper(s, dr(Fraction(1, 2)), 6)
    if conflict is None:
        conflict = sx.check()
    # x - y >= 1 is forced (x >= 1e17, y pinned only from below, so the
    # engine can still move y up: the instance is actually satisfiable),
    # but whatever the verdict, the invariants must hold exactly.
    if conflict is None:
        assert sx.bounds_satisfied()
    assert sx.assignment_consistent()

    # Pin both variables so s = 1 is forced and the bound must conflict.
    sx2 = Simplex(float_prefilter=True)
    x2, y2 = sx2.new_var(), sx2.new_var()
    s2 = sx2.add_row({x2: Fraction(1), y2: Fraction(-1)})
    for var, val, lit in ((x2, big, 2), (y2, big - 1, 6)):
        assert sx2.assert_lower(var, dr(val), lit) is None
        assert sx2.assert_upper(var, dr(val), lit + 2) is None
    conflict = sx2.assert_upper(s2, dr(Fraction(1, 2)), 10)
    if conflict is None:
        conflict = sx2.check()
    assert conflict is not None


@pytest.mark.parametrize("seed", range(8))
def test_float_prefilter_matches_exact(seed):
    """The opt-in float pre-filter never changes a verdict."""
    ops = _random_trace(seed)
    exact, exact_vars = _build(False, random.Random(seed))
    fast, fast_vars = _build(True, random.Random(seed))
    v_exact = _run_trace(exact, exact_vars, ops, check_invariants=False)
    v_fast = _run_trace(fast, fast_vars, ops, check_invariants=True)
    assert v_exact == v_fast


def test_suspect_survives_conflict_then_relaxation():
    """A var still violating after an undo stays in the suspect set.

    The violated lower bound on the slack is asserted *before* the mark,
    so undoing the conflicting upper bounds relaxes the blockers but
    leaves the slack out of bounds — the suspect-set invariant must keep
    it scheduled for repair or a later check() would wrongly pass.
    """
    sx = Simplex()
    x, y = sx.new_var(), sx.new_var()
    s = sx.add_row({x: Fraction(1), y: Fraction(1)})
    assert sx.assert_lower(s, dr(3), 2) is None
    m1 = sx.mark()
    assert sx.assert_upper(x, dr(0), 4) is None
    assert sx.assert_upper(y, dr(0), 6) is None
    assert sx.check() is not None          # 3 <= s = x + y <= 0
    sx.undo_to(m1)
    # x/y relaxed; s >= 3 survives and beta(s) still violates it.
    assert sx.suspects_invariant_holds()
    assert sx.check() is None              # pivot repairs s via x or y
    assert sx.bounds_satisfied()
    assert sx.assignment_consistent()
