"""Theory propagation: equivalence with a propagation-free solver.

Theory propagation is a *search* optimization — it assigns entailed atoms
instead of branching on them — so it must never change a sat/unsat answer
or produce a non-certifying model.  These tests race a propagating solver
against ``Solver(theory_propagation=False)`` on seeded random QF_LRA
formulas and on directed scenarios where propagation provably fires.
"""

import random
from fractions import Fraction

import pytest

from repro.smt import And, Bool, Not, Or, Real, Solver, sat, unsat


def _random_formula(seed: int):
    """A small random mix of difference atoms, bounds and Booleans."""
    rng = random.Random(seed)
    xs = [Real(f"tp{seed}_x{i}") for i in range(4)]
    bs = [Bool(f"tp{seed}_b{i}") for i in range(3)]
    clauses = []
    for _ in range(rng.randint(4, 10)):
        lits = []
        for _ in range(rng.randint(1, 3)):
            kind = rng.random()
            if kind < 0.4:
                a, b = rng.sample(range(len(xs)), 2)
                atom = xs[a] - xs[b] <= rng.randint(-4, 4)
            elif kind < 0.7:
                atom = xs[rng.randrange(len(xs))] <= rng.randint(-4, 4)
            elif kind < 0.85:
                # A general (non-difference) atom: 3 variables.
                a, b, c = rng.sample(range(len(xs)), 3)
                atom = (
                    xs[a] * Fraction(rng.randint(1, 2))
                    + xs[b] * Fraction(rng.randint(1, 2))
                    + xs[c] * Fraction(rng.randint(-2, -1))
                    <= rng.randint(-3, 3)
                )
            else:
                atom = bs[rng.randrange(len(bs))]
            if rng.random() < 0.4:
                atom = Not(atom)
            lits.append(atom)
        clauses.append(Or(*lits))
    return clauses


@pytest.mark.parametrize("seed", range(15))
def test_propagation_preserves_answers(seed):
    clauses = _random_formula(seed)
    s_on = Solver(theory_propagation=True)
    s_off = Solver(theory_propagation=False)
    s_on.add(*clauses)
    s_off.add(*clauses)
    r_on = s_on.check()
    r_off = s_off.check()
    assert r_on.name == r_off.name
    if r_on == sat:
        # Both models must certify the full formula.
        for solver in (s_on, s_off):
            m = solver.model()
            for clause in clauses:
                assert m.eval_bool(clause)


@pytest.mark.parametrize("seed", range(6))
def test_propagation_with_float_prefilter(seed):
    """Propagation + float pre-filter together stay equivalent too."""
    clauses = _random_formula(seed)
    fast = Solver(theory_propagation=True, float_prefilter=True)
    ref = Solver(theory_propagation=False)
    fast.add(*clauses)
    ref.add(*clauses)
    assert fast.check().name == ref.check().name


def test_propagation_fires_and_is_counted():
    """An entailed atom is assigned by the theory, not decided."""
    x = Real("tp_fire_x")
    b = Bool("tp_fire_b")
    s = Solver()
    # x <= 5 is forced; the clause atom (x <= 7) is then entailed, so the
    # solver should never branch on it.
    s.add(x <= 5, Or(b, x <= 7), Or(Not(b), x <= 7))
    assert s.check() == sat
    assert s.statistics["theory_propagations"] >= 1
    assert s.last_check_statistics["theory_propagations"] >= 1


def test_propagation_disabled_reports_zero():
    x = Real("tp_off_x")
    s = Solver(theory_propagation=False)
    s.add(x <= 5, Or(Bool("tp_off_b"), x <= 7))
    assert s.check() == sat
    assert s.statistics["theory_propagations"] == 0


def test_propagated_literal_in_conflict_analysis():
    """Conflicts that resolve on propagated literals still learn/answer."""
    x, y = Real("tp_ca_x"), Real("tp_ca_y")
    b = Bool("tp_ca_b")
    s = Solver()
    # x - y <= 2 entails x - y <= 5; forcing its negation via b makes the
    # reason clause of the propagated literal participate in analysis.
    s.add(x - y <= 2)
    s.add(Or(b, Not(x - y <= 5)))
    s.add(Or(b, y - x <= -6))
    assert s.check() == sat
    m = s.model()
    assert m[b] is True

    s2 = Solver()
    s2.add(x - y <= 2, Not(x - y <= 5))
    assert s2.check() == unsat


def test_shared_canonical_slack_between_orientations():
    """Opposite-orientation difference atoms interact through one var."""
    x, y = Real("tp_cs_x"), Real("tp_cs_y")
    s = Solver()
    # x - y <= 3   and   y - x <= -5  (i.e. x - y >= 5): unsat, and the
    # conflict is visible at bound-assertion time on the shared slack.
    s.add(x - y <= 3, y - x <= -5)
    assert s.check() == unsat

    s2 = Solver()
    s2.add(x - y <= 3, y - x <= -2)   # x - y in [2, 3]: sat
    assert s2.check() == sat
    assert m_diff(s2) <= 3


def m_diff(solver):
    m = solver.model()
    x, y = Real("tp_cs_x"), Real("tp_cs_y")
    return m[x] - m[y]
