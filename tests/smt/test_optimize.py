"""Tests for the linear-objective minimization layer."""

from fractions import Fraction

import pytest

from repro.errors import SolverError
from repro.smt import Bool, Implies, Not, Or, Real, minimize


class TestMinimize:
    def test_simple_bound(self):
        x = Real("ox")
        res = minimize([x >= 3, x <= 10], x, lower_bound=0,
                       tolerance=Fraction(1, 100))
        assert res.ok
        assert abs(res.objective_bound - 3) <= Fraction(1, 100)

    def test_unsat(self):
        x = Real("oy")
        res = minimize([x >= 3, x <= 2], x)
        assert res.status == "unsat"
        assert res.model is None

    def test_already_at_lower_bound(self):
        x = Real("oz")
        res = minimize([x >= 0, x <= 5, x <= 0], x, lower_bound=0)
        assert res.status == "optimal"
        assert res.objective_bound == 0
        assert res.probes == 1

    def test_linear_combination_objective(self):
        x, y = Real("oa"), Real("ob")
        res = minimize([x >= 1, y >= 2, x + y <= 10], x + 2 * y,
                       lower_bound=0, tolerance=Fraction(1, 100))
        assert res.ok
        # Optimum is x=1, y=2 -> 5.
        assert abs(res.objective_bound - 5) <= Fraction(1, 10)

    def test_disjunctive_objective(self):
        """Minimization must pick the cheaper disjunct."""
        x = Real("oc")
        g = Bool("og")
        res = minimize(
            [Or(g, Not(g)), Implies(g, x >= 10), Implies(Not(g), x >= 4),
             x <= 100],
            x, lower_bound=0, tolerance=Fraction(1, 100),
        )
        assert res.ok
        assert abs(res.objective_bound - 4) <= Fraction(1, 10)

    def test_model_achieves_bound(self):
        x = Real("od")
        res = minimize([x >= Fraction(7, 3), x <= 50], x,
                       tolerance=Fraction(1, 1000))
        assert res.ok
        assert res.model[x] == res.objective_bound

    def test_probe_budget_respected(self):
        x = Real("oe")
        res = minimize([x >= 1, x <= 1000], x, tolerance=Fraction(1, 10**9),
                       max_probes=3)
        assert res.probes <= 3
        assert res.ok  # still returns the best found

    def test_invalid_tolerance(self):
        x = Real("of")
        with pytest.raises(SolverError):
            minimize([x >= 1, x <= 2], x, tolerance=0)
