"""Tests for the exact rational simplex, incl. a scipy.linprog oracle."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.smt import DeltaRational, Simplex


def dr(x, d=0):
    return DeltaRational(x, d)


class TestBounds:
    def test_simple_feasible(self):
        sx = Simplex()
        x = sx.new_var()
        assert sx.assert_lower(x, dr(1), 2) is None
        assert sx.assert_upper(x, dr(3), 4) is None
        assert sx.check() is None
        assert dr(1) <= sx.value(x) <= dr(3)

    def test_contradicting_bounds(self):
        sx = Simplex()
        x = sx.new_var()
        assert sx.assert_lower(x, dr(5), 2) is None
        conflict = sx.assert_upper(x, dr(3), 4)
        assert set(conflict) == {2, 4}

    def test_strict_bounds_feasible(self):
        sx = Simplex()
        x = sx.new_var()
        assert sx.assert_lower(x, dr(1, 1), 2) is None  # x > 1
        assert sx.assert_upper(x, dr(1 + 2, -1), 4) is None  # x < 3
        assert sx.check() is None
        model = sx.model()
        assert 1 < model[x] < 3

    def test_strict_empty_interval(self):
        sx = Simplex()
        x = sx.new_var()
        assert sx.assert_lower(x, dr(1, 1), 2) is None  # x > 1
        conflict = sx.assert_upper(x, dr(1), 4)  # x <= 1
        assert conflict is not None


class TestRows:
    def test_sum_row(self):
        sx = Simplex()
        x, y = sx.new_var(), sx.new_var()
        s = sx.add_row({x: Fraction(1), y: Fraction(1)})  # s = x + y
        assert sx.assert_lower(x, dr(1), 2) is None
        assert sx.assert_lower(y, dr(2), 4) is None
        assert sx.assert_upper(s, dr(2), 6) is not None or sx.check() is not None

    def test_difference_chain_conflict(self):
        sx = Simplex()
        x, y, z = (sx.new_var() for _ in range(3))
        d1 = sx.add_row({x: Fraction(1), y: Fraction(-1)})  # x - y
        d2 = sx.add_row({y: Fraction(1), z: Fraction(-1)})  # y - z
        d3 = sx.add_row({x: Fraction(1), z: Fraction(-1)})  # x - z
        assert sx.assert_lower(d1, dr(1), 2) is None  # x - y >= 1
        assert sx.assert_lower(d2, dr(1), 4) is None  # y - z >= 1
        res = sx.assert_upper(d3, dr(1), 6)  # x - z <= 1
        if res is None:
            res = sx.check()
        assert res is not None
        assert set(res) <= {2, 4, 6}
        assert 6 in set(res)

    def test_general_coefficients(self):
        sx = Simplex()
        lmin, lmax = sx.new_var(), sx.new_var()
        alpha = Fraction(3, 2)
        combo = sx.add_row({lmin: 1 - alpha, lmax: alpha})
        # Pin lmin exactly (upper bound too): otherwise growing lmin would
        # relax the combination, which has a negative lmin coefficient.
        assert sx.assert_lower(lmin, dr(10), 2) is None
        assert sx.assert_upper(lmin, dr(10), 3) is None
        assert sx.assert_lower(lmax, dr(12), 4) is None
        # (1-1.5)*10 + 1.5*12 = -5 + 18 = 13 > 12.9 -> conflict
        res = sx.assert_upper(combo, dr(Fraction(129, 10)), 6)
        if res is None:
            res = sx.check()
        assert res is not None

    def test_row_over_basic_variable_substitution(self):
        sx = Simplex()
        x, y = sx.new_var(), sx.new_var()
        s1 = sx.add_row({x: Fraction(1), y: Fraction(1)})
        # Second row mentions the (basic) slack s1 indirectly via x+y again.
        s2 = sx.add_row({x: Fraction(2), y: Fraction(2)})
        assert sx.assert_upper(s1, dr(1), 2) is None
        assert sx.assert_lower(s2, dr(4), 4) is None
        res = sx.check()
        assert res is not None

    def test_model_respects_rows(self):
        sx = Simplex()
        x, y = sx.new_var(), sx.new_var()
        s = sx.add_row({x: Fraction(1), y: Fraction(2)})
        sx.assert_lower(x, dr(1), 2)
        sx.assert_upper(y, dr(0), 4)
        sx.assert_lower(s, dr(-3), 6)
        assert sx.check() is None
        m = sx.model()
        assert m[s] == m[x] + 2 * m[y]


class TestBacktracking:
    def test_undo_bound(self):
        sx = Simplex()
        x = sx.new_var()
        assert sx.assert_lower(x, dr(0), 2) is None
        mark = sx.mark()
        assert sx.assert_lower(x, dr(10), 4) is None
        conflict = sx.assert_upper(x, dr(5), 6)
        assert conflict is not None
        sx.undo_to(mark)
        assert sx.assert_upper(x, dr(5), 6) is None
        assert sx.check() is None

    def test_pivots_survive_backtracking(self):
        sx = Simplex()
        x, y = sx.new_var(), sx.new_var()
        s = sx.add_row({x: Fraction(1), y: Fraction(1)})
        mark = sx.mark()
        sx.assert_lower(s, dr(2), 2)
        assert sx.check() is None
        sx.undo_to(mark)
        sx.assert_upper(s, dr(-2), 4)
        assert sx.check() is None
        assert sx.assignment_consistent()


@st.composite
def lp_problems(draw):
    n_vars = draw(st.integers(min_value=1, max_value=4))
    n_cons = draw(st.integers(min_value=1, max_value=6))
    rows = []
    for _ in range(n_cons):
        coeffs = [
            draw(st.integers(min_value=-3, max_value=3)) for _ in range(n_vars)
        ]
        rhs = draw(st.integers(min_value=-6, max_value=6))
        rows.append((coeffs, rhs))
    return n_vars, rows


@given(lp_problems())
@settings(max_examples=150, deadline=None)
def test_feasibility_matches_scipy_linprog(problem):
    """Conjunction of <= constraints: simplex verdict == scipy verdict."""
    n_vars, rows = problem
    sx = Simplex()
    xs = [sx.new_var() for _ in range(n_vars)]
    conflict = None
    for i, (coeffs, rhs) in enumerate(rows):
        nonzero = {xs[j]: Fraction(c) for j, c in enumerate(coeffs) if c != 0}
        if not nonzero:
            if rhs < 0:
                conflict = [0]
            continue
        if len(nonzero) == 1:
            (var, c), = nonzero.items()
            bound = Fraction(rhs) / c
            res = (
                sx.assert_upper(var, dr(bound), 2 * i + 2)
                if c > 0
                else sx.assert_lower(var, dr(bound), 2 * i + 2)
            )
        else:
            s = sx.add_row(nonzero)
            res = sx.assert_upper(s, dr(rhs), 2 * i + 2)
        if res is not None:
            conflict = res
            break
    if conflict is None:
        conflict = sx.check()
    ours_feasible = conflict is None

    a_ub = np.array([coeffs for coeffs, _ in rows], dtype=float)
    b_ub = np.array([rhs for _, rhs in rows], dtype=float)
    lp = linprog(
        c=np.zeros(n_vars),
        A_ub=a_ub,
        b_ub=b_ub,
        bounds=[(None, None)] * n_vars,
        method="highs",
    )
    scipy_feasible = lp.status == 0
    assert ours_feasible == scipy_feasible

    if ours_feasible:
        model = sx.model()
        for coeffs, rhs in rows:
            total = sum(Fraction(c) * model[xs[j]] for j, c in enumerate(coeffs))
            assert total <= rhs


class TestTouchedBoundsHygiene:
    """Backjump hygiene of the propagation feed (regression: undone
    assertions used to leave their vars in ``touched_bounds``, so the
    next propagate() fixpoint rescanned watches against already-relaxed
    — possibly ``NO_LIT``-backed — bounds)."""

    def test_undo_removes_fresh_touch(self):
        sx = Simplex()
        v = sx.new_var()
        sx.watch_var(v)
        mark = sx.mark()
        assert sx.assert_upper(v, dr(5), lit=2) is None
        assert v in sx.touched_bounds
        sx.undo_to(mark)
        assert v not in sx.touched_bounds

    def test_undo_keeps_older_undrained_touch(self):
        sx = Simplex()
        v = sx.new_var()
        sx.watch_var(v)
        assert sx.assert_upper(v, dr(5), lit=2) is None  # touches v
        mark = sx.mark()
        assert sx.assert_upper(v, dr(3), lit=4) is None  # v already touched
        sx.undo_to(mark)
        # The pre-mark tightening has not been drained yet: it must
        # still be visible to the propagation layer.
        assert v in sx.touched_bounds

    def test_undo_after_drain_roundtrips_to_empty(self):
        sx = Simplex()
        v = sx.new_var()
        sx.watch_var(v)
        assert sx.assert_upper(v, dr(5), lit=2) is None
        sx.touched_bounds.clear()  # the propagate() drain
        mark = sx.mark()
        assert sx.assert_upper(v, dr(3), lit=4) is None
        assert v in sx.touched_bounds
        sx.undo_to(mark)
        assert sx.touched_bounds == set()

    def test_non_tightening_assert_never_pollutes_on_undo(self):
        sx = Simplex()
        v = sx.new_var()
        sx.watch_var(v)
        assert sx.assert_upper(v, dr(3), lit=2) is None
        sx.touched_bounds.clear()
        mark = sx.mark()
        # Weaker than the active bound: recorded on the trail but not a
        # tightening — undo must not disturb the (empty) touched set.
        assert sx.assert_upper(v, dr(10), lit=4) is None
        assert sx.touched_bounds == set()
        sx.undo_to(mark)
        assert sx.touched_bounds == set()

    def test_backjump_then_propagate_sees_no_stale_bounds(self):
        """Theory-level regression: after a backjump the propagation
        hook must find a clean touched set (previously it rescanned the
        undone vars against relaxed bounds)."""
        from repro.sat.literals import UNASSIGNED
        from repro.smt.terms import Real
        from repro.smt.theory import LraTheory

        x = Real("touched_regression_x")
        theory = LraTheory()
        theory.register_atom(x <= 5, sat_var=1)
        theory.register_atom(x <= 7, sat_var=2)
        assert theory.on_assert(2 * 1) is None  # assert x <= 5
        assert theory.simplex.touched_bounds != set()
        theory.on_backjump(0)
        assert theory.simplex.touched_bounds == set()
        assigns = [UNASSIGNED] * 3
        assert theory.propagate(assigns) == []
