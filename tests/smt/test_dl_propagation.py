"""Transitive difference-logic propagation (Cotton & Maler SSSP pass).

Three layers of coverage:

* the :class:`DifferenceLogic` engine's ``watch_pair`` /
  ``implied_bounds`` surface (derived bounds, path explanations,
  threshold pruning, undo hygiene);
* full-solver equivalence — ``dl_propagation`` on vs off must agree on
  statuses and produce certifying models on random difference systems,
  the chain microworkloads, and the deterministic funnel/sharing
  synthesis workloads — with ``dl_propagations > 0`` and strictly fewer
  decisions on the chain-heavy instances;
* the SAT core's handling of *multi-literal* theory reasons, which DL
  path explanations are the first producer of: conflict analysis must
  resolve through them and final-conflict analysis must walk them into
  unsat cores.
"""

import random
from fractions import Fraction

import pytest

from repro.core.synthesizer import SynthesisOptions, solve
from repro.eval import workloads
from repro.sat.literals import neg
from repro.sat.solver import SatSolver, TheoryBackend
from repro.smt import (
    And,
    Bool,
    DeltaRational,
    DifferenceLogic,
    Not,
    Or,
    Real,
    SolverEngine,
    sat,
    unsat,
)


def dr(x, d=0):
    return DeltaRational(x, d)


# ---------------------------------------------------------------------------
# Engine-level: implied_bounds
# ---------------------------------------------------------------------------


class TestImpliedBounds:
    def test_chain_derives_watched_pair(self):
        dl = DifferenceLogic()
        a, b, c = dl.new_node(), dl.new_node(), dl.new_node()
        # Watch the span (a, c): paths a ~> c bound val(c) - val(a).
        dl.watch_pair(a, c, dr(100))
        # Negative-weight chain (precedence style, so the potential
        # moves and passes are scheduled): c - b <= -1, b - a <= -2.
        assert dl.assert_constraint(b, a, dr(-2), lit=2) is None
        assert dl.assert_constraint(c, b, dr(-1), lit=4) is None
        entries = dl.implied_bounds()
        by_pair = {(e.src, e.dst): e for e in entries}
        assert (a, c) in by_pair
        entry = by_pair[(a, c)]
        assert entry.bound == dr(-3)
        assert set(entry.path_lits()) == {2, 4}

    def test_drain_clears_fresh_edges(self):
        dl = DifferenceLogic()
        a, b, c = dl.new_node(), dl.new_node(), dl.new_node()
        dl.watch_pair(a, c, dr(100))
        assert dl.assert_constraint(b, a, dr(-2), lit=2) is None
        assert dl.assert_constraint(c, b, dr(-1), lit=4) is None
        assert dl.implied_bounds() != []
        assert dl.implied_bounds() == []  # drained

    def test_threshold_prunes_weak_derivations(self):
        dl = DifferenceLogic()
        a, b, c = dl.new_node(), dl.new_node(), dl.new_node()
        # Only derivations at least as tight as -10 are interesting.
        dl.watch_pair(a, c, dr(-10))
        assert dl.assert_constraint(b, a, dr(-2), lit=2) is None
        assert dl.assert_constraint(c, b, dr(-1), lit=4) is None
        # Derived bound is -3 > -10: pruned inside the pass.
        assert dl.implied_bounds() == []

    def test_undo_drops_pending_candidates(self):
        dl = DifferenceLogic()
        a, b, c = dl.new_node(), dl.new_node(), dl.new_node()
        dl.watch_pair(a, c, dr(100))
        assert dl.assert_constraint(b, a, dr(-2), lit=2) is None
        mark = dl.mark()
        assert dl.assert_constraint(c, b, dr(-1), lit=4) is None
        dl.undo_to(mark)
        # The candidate cites an undone edge: it must not surface.
        assert dl.implied_bounds() == []

    def test_longer_chain_explanation_collects_all_literals(self):
        dl = DifferenceLogic()
        nodes = [dl.new_node() for _ in range(5)]
        dl.watch_pair(nodes[0], nodes[4], dr(100))
        lits = []
        for i in range(4):
            lit = 2 * (i + 1)
            lits.append(lit)
            assert dl.assert_constraint(
                nodes[i + 1], nodes[i], dr(-1), lit=lit
            ) is None
        entries = {(e.src, e.dst): e for e in dl.implied_bounds()}
        entry = entries[(nodes[0], nodes[4])]
        assert entry.bound == dr(-4)
        assert set(entry.path_lits()) == set(lits)

    def test_slack_edges_schedule_no_pass(self):
        dl = DifferenceLogic()
        a, b, c = dl.new_node(), dl.new_node(), dl.new_node()
        dl.watch_pair(a, c, dr(100))
        # Positive weights never move the all-zero potential: by design
        # no pass is scheduled (the canonical-slack bound channel still
        # covers the directly-asserted pairs).
        assert dl.assert_constraint(b, a, dr(2), lit=2) is None
        assert dl.assert_constraint(c, b, dr(1), lit=4) is None
        assert dl.implied_bounds() == []

    def test_propagation_disabled_engine_stays_quiet(self):
        dl = DifferenceLogic(propagation=False)
        a, b, c = dl.new_node(), dl.new_node(), dl.new_node()
        dl.watch_pair(a, c, dr(100))
        assert dl.assert_constraint(b, a, dr(-2), lit=2) is None
        assert dl.assert_constraint(c, b, dr(-1), lit=4) is None
        assert dl.implied_bounds() == []

    def test_non_extremal_fractional_threshold_stays_sound(self):
        """Regression: a pair bound strictly between the existing
        thresholds used to skip the scale-folding in ``watch_pair``, so
        the theory's scaled watch mirror rescaled mid-rebuild and
        compared mixed-scale quantities — implying ``x2 - x0 <= 7/3``
        from a path that only proves ``<= 3``."""
        x0, x1, x2 = (Real(f"dlmix_x{i}") for i in range(3))
        b1, b2, b3 = (Bool(f"dlmix_b{i}") for i in range(3))
        frac_atom = x2 - x0 <= Fraction(7, 3)
        results = {}
        for dl in (False, True):
            engine = SolverEngine(dl_propagation=dl)
            # The chain proves x2 - x0 <= 3; the 5/2 lower bound then
            # makes frac_atom false in every model.  None of the pair
            # atoms is ever unit-asserted, so only the watch
            # registration can fold the /3 denominator into the scale.
            engine.add(x1 - x0 <= 4, x2 - x1 <= -1)
            engine.add(x2 - x0 >= Fraction(5, 2))
            engine.add(Or(x2 - x0 <= 10, b1))
            engine.add(Or(x2 - x0 <= 1, b2))
            engine.add(Or(frac_atom, b3))
            status = engine.check()
            assert status == sat
            model = engine.model()
            assert Fraction(5, 2) <= model[x2 - x0] <= 3
            assert model.eval_bool(frac_atom) is False
            results[dl] = status.name
        assert results[True] == results[False]

    def test_rescale_keeps_thresholds_consistent(self):
        dl = DifferenceLogic()
        a, b, c = dl.new_node(), dl.new_node(), dl.new_node()
        dl.watch_pair(a, c, dr(100))
        assert dl.assert_constraint(b, a, dr(Fraction(-5, 3)), lit=2) is None
        assert dl.assert_constraint(c, b, dr(Fraction(-1, 7)), lit=4) is None
        entries = {(e.src, e.dst): e for e in dl.implied_bounds()}
        assert entries[(a, c)].bound == dr(Fraction(-5, 3) + Fraction(-1, 7))


# ---------------------------------------------------------------------------
# Full solver: on/off equivalence and effect
# ---------------------------------------------------------------------------


def _random_difference_system(seed: int):
    """Random difference constraints with entailed/refuted span atoms."""
    rng = random.Random(seed)
    n = rng.randint(3, 6)
    xs = [Real(f"dlp{seed}_x{i}") for i in range(n)]
    bs = [Bool(f"dlp{seed}_b{i}") for i in range(3)]
    clauses = []
    for _ in range(rng.randint(5, 12)):
        kind = rng.random()
        i, j = rng.sample(range(n), 2)
        c = rng.randint(-4, 4)
        atom = xs[i] - xs[j] <= c
        if kind < 0.35:
            clauses.append(atom)  # unit difference fact
        elif kind < 0.7:
            clauses.append(Or(atom, bs[rng.randrange(3)]))
        elif kind < 0.85:
            clauses.append(Or(Not(atom), bs[rng.randrange(3)]))
        else:
            clauses.append(Or(xs[i] - xs[j] >= c, bs[rng.randrange(3)]))
    return clauses


@pytest.mark.parametrize("seed", range(20))
def test_on_off_equivalence_random_difference_systems(seed):
    clauses = _random_difference_system(seed)
    on = SolverEngine(dl_propagation=True)
    off = SolverEngine(dl_propagation=False)
    on.add(*clauses)
    off.add(*clauses)
    r_on, r_off = on.check(), off.check()
    assert r_on.name == r_off.name
    if r_on == sat:
        for engine in (on, off):
            model = engine.model()
            for clause in clauses:
                assert model.eval_bool(clause)
    assert off.statistics["dl_propagations"] == 0


@pytest.mark.parametrize("seed", range(5))
def test_chain_formulas_fewer_decisions_and_counted(seed):
    clauses = workloads.difference_chain_formulas(seed)
    on = SolverEngine(dl_propagation=True)
    off = SolverEngine(dl_propagation=False)
    on.add(*clauses)
    off.add(*clauses)
    assert on.check() == off.check() == sat
    for engine in (on, off):
        model = engine.model()
        for clause in clauses:
            assert model.eval_bool(clause)
    assert on.statistics["dl_propagations"] > 0
    assert on.statistics["dl_explanation_lits"] >= (
        2 * on.statistics["dl_propagations"]
    ) // 2
    assert on.statistics["decisions"] < off.statistics["decisions"]
    assert on.statistics["conflicts"] <= off.statistics["conflicts"]


def test_theory_propagation_off_disables_dl_channel():
    clauses = workloads.difference_chain_formulas(97)
    engine = SolverEngine(theory_propagation=False)
    engine.add(*clauses)
    assert engine.check() == sat
    assert engine.statistics["theory_propagations"] == 0
    assert engine.statistics["dl_propagations"] == 0


def test_per_check_statistics_carry_dl_counters():
    clauses = workloads.difference_chain_formulas(98)
    engine = SolverEngine()
    engine.add(*clauses)
    assert engine.check() == sat
    stats = engine.last_check_statistics
    assert "dl_propagations" in stats and "dl_explanation_lits" in stats
    assert stats["dl_propagations"] > 0


class TestSynthesisWorkloadEquivalence:
    """Full driver runs: statuses and models identical, chains cheaper."""

    def test_chain_problem_sat_fewer_decisions(self):
        problem = workloads.chain_problem()
        results = {}
        for dl in (False, True):
            results[dl] = solve(problem, SynthesisOptions(dl_propagation=dl))
        assert results[True].status == results[False].status == "sat"
        assert (results[True].solution.schedules
                == results[False].solution.schedules)
        assert results[True].statistics["dl_propagations"] > 0
        assert (results[True].statistics["decisions"]
                < results[False].statistics["decisions"])

    def test_chain_problem_unsat_statuses_agree(self):
        problem = workloads.chain_problem(period=Fraction(9, 1000))
        results = {}
        for dl in (False, True):
            results[dl] = solve(problem, SynthesisOptions(dl_propagation=dl))
        assert results[True].status == results[False].status == "unsat"
        assert results[True].statistics["dl_propagations"] > 0

    @pytest.mark.parametrize("factory,routes,unique_model", [
        (lambda: workloads.bottleneck_problem(3, islands=1), 2, False),
        (lambda: workloads.bottleneck_problem(
            3, period=Fraction(35, 10000)), 2, False),
        (lambda: workloads.sharing_problem(), 2, True),
        (lambda: workloads.sharing_unsat_problem(), 1, False),
    ])
    def test_funnel_and_sharing_statuses_and_models_identical(
            self, factory, routes, unique_model):
        from repro.core import collect_violations

        problem = factory()
        results = {}
        for dl in (False, True):
            results[dl] = solve(
                problem, SynthesisOptions(routes=routes, dl_propagation=dl))
        assert results[True].status == results[False].status
        if results[True].status == "sat":
            for result in results.values():
                assert collect_violations(result.solution) == []
            if unique_model:
                # sharing_problem pins a unique schedule by construction.
                assert (results[True].solution.schedules
                        == results[False].solution.schedules)


# ---------------------------------------------------------------------------
# Multi-literal theory reasons in the SAT core
# ---------------------------------------------------------------------------


class _PairImplies(TheoryBackend):
    """Implies ``target`` with a two-literal explanation once both
    ``premises`` are asserted (positive phase)."""

    def __init__(self, premises, target):
        self.premises = list(premises)
        self.target = target
        self.asserted = set()

    def on_assert(self, literal):
        self.asserted.add(literal)
        return None

    def on_backjump(self, n_kept):
        # The stub re-derives from scratch; forget everything newer.
        self.asserted.clear()

    def propagate(self, assigns):
        from repro.sat.literals import UNASSIGNED, var_of

        if (all(p in self.asserted for p in self.premises)
                and assigns[var_of(self.target)] == UNASSIGNED):
            return [(self.target, tuple(self.premises))]
        return []


def _pos(v):
    return 2 * v


def test_multi_literal_reason_in_conflict_analysis_and_core():
    """Conflict analysis resolves through an arity-2 theory reason and
    final-conflict analysis walks it into ``failed_assumptions``."""
    theory = _PairImplies(premises=[], target=0)
    solver = SatSolver(theory)
    a, b, c, d = (solver.new_var() for _ in range(4))
    theory.premises = [_pos(a), _pos(b)]
    theory.target = _pos(c)
    # c (theory-implied from a, b) forces d and then clashes on it.
    assert solver.add_clause([neg(_pos(c)), _pos(d)])
    assert solver.add_clause([neg(_pos(c)), neg(_pos(d))])
    assert not solver.solve([_pos(a), _pos(b)])
    core = set(solver.failed_assumptions)
    assert core <= {_pos(a), _pos(b)}
    assert _pos(b) in core  # the deepest premise is always reached
    # Without the premises the instance is satisfiable.
    assert solver.solve([])


def test_multi_literal_reason_survives_when_conflict_is_deeper():
    """The learnt clause from a multi-literal reason keeps pruning."""
    theory = _PairImplies(premises=[], target=0)
    solver = SatSolver(theory)
    a, b, c = (solver.new_var() for _ in range(3))
    e, f = solver.new_var(), solver.new_var()
    theory.premises = [_pos(a), _pos(b)]
    theory.target = _pos(c)
    assert solver.add_clause([neg(_pos(c)), _pos(e), _pos(f)])
    assert solver.add_clause([neg(_pos(c)), neg(_pos(e))])
    assert solver.add_clause([neg(_pos(c)), neg(_pos(f))])
    assert not solver.solve([_pos(a), _pos(b)])
    assert set(solver.failed_assumptions) <= {_pos(a), _pos(b)}
    assert solver.solve([_pos(a)])


def test_dl_path_explanations_reach_unsat_cores():
    """End-to-end: a DL path implication's multi-literal explanation is
    walked by final-conflict analysis into the session-level core."""
    x, y, z = Real("dlc_x"), Real("dlc_y"), Real("dlc_z")
    a1 = x - y <= -1
    a2 = y - z <= -1
    span = x - z <= -2
    nspan = Not(span)
    engine = SolverEngine()
    engine.add(Or(a1, Not(a1)))  # register the atoms with the theory
    engine.add(Or(a2, Not(a2)))
    engine.add(Or(span, nspan))
    assert engine.check(a1, a2, nspan) == unsat
    core = engine.unsat_core()
    assert set(core) == {a1, a2, nspan}
    # And the implication fired through the DL channel.
    assert engine.statistics["dl_propagations"] >= 1


def test_dl_propagation_assigns_chain_spans_without_branching():
    """The canonical entailment scenario: chain implies the span atom."""
    x0, x1, x2, x3 = (Real(f"dlspan_x{i}") for i in range(4))
    guard = Bool("dlspan_guard")
    engine = SolverEngine()
    engine.add(x1 - x0 >= 2, x2 - x1 >= 2, x3 - x2 >= 2)
    engine.add(Or(x3 - x0 >= 6, guard))
    assert engine.check() == sat
    # The span atom was implied, not decided: the guard stays free and
    # the DL counters show the multi-literal implication.
    assert engine.statistics["dl_propagations"] >= 1
    assert engine.statistics["dl_explanation_lits"] >= 3
    model = engine.model()
    assert model[x3 - x0] >= 6
