"""Tests for the term language (linear normal form, formula builders)."""

from fractions import Fraction

import pytest

from repro.errors import SolverError
from repro.smt import (
    And,
    Atom,
    Bool,
    BoolVal,
    ExactlyOne,
    Iff,
    Implies,
    Not,
    Or,
    Real,
    RealVal,
    Sum,
)
from repro.smt.terms import AndExpr, BoolConst, LinExpr, NotExpr, OrExpr, RealVar


class TestLinExpr:
    def test_variable_identity(self):
        assert Real("x").coeffs == Real("x").coeffs
        assert RealVar("x") is RealVar("x")

    def test_addition_merges_coefficients(self):
        x, y = Real("x"), Real("y")
        e = x + y + x
        assert e.coeffs[RealVar("x")] == 2
        assert e.coeffs[RealVar("y")] == 1

    def test_subtraction_cancels(self):
        x = Real("x")
        e = x - x
        assert e.is_constant()
        assert e.const == 0

    def test_scalar_multiplication(self):
        x = Real("x")
        e = 3 * x + 1
        assert e.coeffs[RealVar("x")] == 3
        assert e.const == 1

    def test_fraction_coefficients(self):
        x = Real("x")
        e = Fraction(1, 3) * x
        assert e.coeffs[RealVar("x")] == Fraction(1, 3)

    def test_division(self):
        x = Real("x")
        e = (2 * x) / 4
        assert e.coeffs[RealVar("x")] == Fraction(1, 2)

    def test_nonlinear_product_rejected(self):
        x, y = Real("x"), Real("y")
        with pytest.raises(SolverError):
            _ = x * y

    def test_evaluate(self):
        x, y = Real("x"), Real("y")
        e = 2 * x - y + 5
        val = e.evaluate({RealVar("x"): Fraction(3), RealVar("y"): Fraction(1)})
        assert val == 10

    def test_sum_helper(self):
        x, y = Real("x"), Real("y")
        e = Sum(x, y, 1, [x, 2])
        assert e.coeffs[RealVar("x")] == 2
        assert e.const == 3


class TestAtoms:
    def test_le_builds_atom(self):
        x, y = Real("x"), Real("y")
        a = x - y <= 3
        assert isinstance(a, Atom)
        assert not a.strict
        assert a.rhs == 3

    def test_lt_is_strict(self):
        x = Real("x")
        a = x < 2
        assert isinstance(a, Atom)
        assert a.strict

    def test_ge_normalizes_to_le(self):
        x, y = Real("x"), Real("y")
        a = x - y >= 3
        # Normalized to y - x <= -3.
        assert isinstance(a, Atom)
        coeffs = dict((v.name, c) for v, c in a.coeffs)
        assert coeffs == {"x": -1, "y": 1}
        assert a.rhs == -3

    def test_constant_comparison_folds(self):
        assert (RealVal(1) <= RealVal(2)) is BoolVal(True).__class__(True) or True
        a = RealVal(1) <= 2
        assert isinstance(a, BoolConst) and a.value
        b = RealVal(5) < 2
        assert isinstance(b, BoolConst) and not b.value

    def test_eq_builds_conjunction(self):
        x = Real("x")
        f = x == 3
        assert isinstance(f, AndExpr)

    def test_ne_builds_disjunction(self):
        x = Real("x")
        f = x != 3
        assert isinstance(f, OrExpr)

    def test_atom_key_dedup(self):
        x, y = Real("x"), Real("y")
        a1 = x - y <= 3
        a2 = x - y <= 3
        assert a1.key == a2.key

    def test_atom_evaluate(self):
        x = Real("x")
        a = x <= 3
        assert a.evaluate({RealVar("x"): Fraction(3)})
        s = x < 3
        assert not s.evaluate({RealVar("x"): Fraction(3)})


class TestBooleanBuilders:
    def test_and_flattens_and_folds(self):
        a, b = Bool("a"), Bool("b")
        f = And(a, And(b, True))
        assert isinstance(f, AndExpr)
        assert len(f.args) == 2

    def test_and_false_annihilates(self):
        a = Bool("a")
        f = And(a, False)
        assert isinstance(f, BoolConst) and not f.value

    def test_or_true_annihilates(self):
        a = Bool("a")
        f = Or(a, True)
        assert isinstance(f, BoolConst) and f.value

    def test_empty_and_is_true(self):
        f = And()
        assert isinstance(f, BoolConst) and f.value

    def test_empty_or_is_false(self):
        f = Or()
        assert isinstance(f, BoolConst) and not f.value

    def test_not_involution(self):
        a = Bool("a")
        assert Not(Not(a)) is a

    def test_implies_expands(self):
        a, b = Bool("a"), Bool("b")
        f = Implies(a, b)
        assert isinstance(f, OrExpr)

    def test_iff_expands(self):
        a, b = Bool("a"), Bool("b")
        f = Iff(a, b)
        assert isinstance(f, AndExpr)

    def test_single_arg_collapse(self):
        a = Bool("a")
        assert And(a) is a
        assert Or(a) is a

    def test_exactly_one_structure(self):
        a, b, c = Bool("a"), Bool("b"), Bool("c")
        f = ExactlyOne(a, b, c)
        assert isinstance(f, AndExpr)

    def test_operator_overloads(self):
        a, b = Bool("a"), Bool("b")
        assert isinstance(a & b, AndExpr)
        assert isinstance(a | b, OrExpr)
        assert isinstance(~a, NotExpr)

    def test_list_argument_flattening(self):
        bools = [Bool(f"v{i}") for i in range(3)]
        f = Or(bools)
        assert isinstance(f, OrExpr)
        assert len(f.args) == 3
