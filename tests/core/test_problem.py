"""Tests for the synthesis problem model."""

from fractions import Fraction

import pytest

from repro.errors import EncodingError
from repro.network import DelayModel, microseconds, simple_testbed
from repro.stability import StabilitySpec
from repro.core import ControlApplication, SynthesisProblem


def ms(x):
    return Fraction(x, 1000)


@pytest.fixture
def net():
    return simple_testbed(2)


@pytest.fixture
def delays():
    return DelayModel(sd=microseconds(5), ld=Fraction(120, 1_000_000))


def spec():
    return StabilitySpec.single_line("1.5", "0.008")


class TestControlApplication:
    def test_flow_derivation(self):
        app = ControlApplication("a", "S0", "C0", ms(10), spec())
        assert app.flow.period == ms(10)
        assert app.flow.source == "S0"

    def test_invalid_period(self):
        with pytest.raises(EncodingError):
            ControlApplication("a", "S0", "C0", Fraction(0), spec())


class TestSynthesisProblem:
    def test_valid_problem(self, net, delays):
        apps = [ControlApplication("a", "S0", "C0", ms(10), spec())]
        prob = SynthesisProblem(net, apps, delays)
        assert prob.hyperperiod == ms(10)
        assert prob.num_messages == 1

    def test_hyperperiod_and_expansion(self, net, delays):
        apps = [
            ControlApplication("a", "S0", "C0", ms(10), spec()),
            ControlApplication("b", "S1", "C1", ms(4), spec()),
        ]
        prob = SynthesisProblem(net, apps, delays)
        assert prob.hyperperiod == ms(20)
        assert prob.num_messages == 2 + 5

    def test_duplicate_names_rejected(self, net, delays):
        apps = [
            ControlApplication("a", "S0", "C0", ms(10), spec()),
            ControlApplication("a", "S1", "C1", ms(10), spec()),
        ]
        with pytest.raises(EncodingError):
            SynthesisProblem(net, apps, delays)

    def test_unknown_sensor_rejected(self, net, delays):
        apps = [ControlApplication("a", "nope", "C0", ms(10), spec())]
        with pytest.raises(EncodingError):
            SynthesisProblem(net, apps, delays)

    def test_wrong_node_kind_rejected(self, net, delays):
        apps = [ControlApplication("a", "SW0", "C0", ms(10), spec())]
        with pytest.raises(EncodingError):
            SynthesisProblem(net, apps, delays)
        apps = [ControlApplication("a", "S0", "S1", ms(10), spec())]
        with pytest.raises(EncodingError):
            SynthesisProblem(net, apps, delays)

    def test_empty_apps_rejected(self, net, delays):
        with pytest.raises(EncodingError):
            SynthesisProblem(net, [], delays)

    def test_period_below_ld_rejected(self, net):
        slow = DelayModel(sd=microseconds(5), ld=ms(20))
        apps = [ControlApplication("a", "S0", "C0", ms(10), spec())]
        with pytest.raises(EncodingError):
            SynthesisProblem(net, apps, slow)

    def test_require_stability_specs(self, net, delays):
        apps = [ControlApplication("a", "S0", "C0", ms(10), None)]
        prob = SynthesisProblem(net, apps, delays)
        with pytest.raises(EncodingError):
            prob.require_stability_specs()
