"""Tests for jitter-minimizing refinement and solution export."""

import json
from fractions import Fraction

import pytest

from repro.core import (
    ControlApplication,
    SynthesisOptions,
    SynthesisProblem,
    collect_violations,
    minimize_jitter,
    render_switch_configs,
    solution_from_dict,
    solution_to_dict,
    synthesize,
    validate_solution,
)
from repro.errors import ValidationError
from repro.network import DelayModel, microseconds, simple_testbed
from repro.stability import StabilitySpec


def ms(x):
    return Fraction(x) / 1000


FAST = DelayModel(sd=microseconds(5), ld=Fraction(120, 1_000_000))


def make_problem(n_apps=2, period_ms=5):
    net = simple_testbed(n_apps)
    apps = [
        ControlApplication(
            f"app{i}", f"S{i}", f"C{i}", ms(period_ms),
            StabilitySpec.single_line("1.5", "0.004"),
        )
        for i in range(n_apps)
    ]
    return SynthesisProblem(net, apps, FAST)


class TestMinimizeJitter:
    def test_produces_valid_low_jitter_solution(self):
        problem = make_problem(2)
        baseline = synthesize(problem, SynthesisOptions(routes=2))
        refined = minimize_jitter(problem, routes=2,
                                  tolerance=Fraction(1, 100000))
        assert refined.ok
        validate_solution(refined.solution)
        base_jitter = sum(r.jitter for r in baseline.solution.reports())
        opt_jitter = sum(r.jitter for r in refined.solution.reports())
        assert opt_jitter <= base_jitter
        assert refined.total_jitter is not None
        assert opt_jitter <= refined.total_jitter

    def test_zero_jitter_achievable_on_uncontended_net(self):
        # One app alone: every instance can use the same offsets -> J = 0.
        problem = make_problem(1)
        refined = minimize_jitter(problem, routes=2,
                                  tolerance=Fraction(1, 10**6))
        assert refined.ok
        report = refined.solution.reports()[0]
        assert report.jitter <= Fraction(1, 10**6)

    def test_unsat_when_spec_impossible(self):
        net = simple_testbed(1)
        apps = [ControlApplication(
            "a", "S0", "C0", ms(5),
            StabilitySpec.single_line("1", str(float(FAST.ld))),
        )]
        problem = SynthesisProblem(net, apps, FAST)
        refined = minimize_jitter(problem, routes=1)
        assert refined.status == "unsat"


class TestExport:
    @pytest.fixture(scope="class")
    def solution(self):
        res = synthesize(make_problem(2), SynthesisOptions(routes=2))
        return res.solution

    def test_json_round_trip(self, solution):
        data = solution_to_dict(solution)
        text = json.dumps(data)          # must be JSON-serializable
        rebuilt = solution_from_dict(solution.problem, json.loads(text))
        assert set(rebuilt.schedules) == set(solution.schedules)
        for uid in solution.schedules:
            a, b = solution.schedules[uid], rebuilt.schedules[uid]
            assert a.route == b.route
            assert a.gammas == b.gammas
            assert a.e2e == b.e2e
        assert collect_violations(rebuilt) == []

    def test_malformed_dict_rejected(self, solution):
        with pytest.raises(ValidationError):
            solution_from_dict(solution.problem, {"messages": {"x": {}}})

    def test_render_switch_configs(self, solution):
        text = render_switch_configs(solution)
        assert "802.1Qbv configuration" in text
        assert "gate control list" in text
        # Every switch that forwards traffic appears.
        for switch in solution.eta_tables():
            assert f"switch {switch}:" in text
