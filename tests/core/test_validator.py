"""Failure-injection tests: the validator must reject corrupted solutions."""

from dataclasses import replace
from fractions import Fraction

import pytest

from repro.core import (
    ControlApplication,
    SynthesisOptions,
    SynthesisProblem,
    Solution,
    collect_violations,
    synthesize,
    validate_solution,
)
from repro.errors import ValidationError
from repro.network import DelayModel, microseconds, simple_testbed
from repro.stability import StabilitySpec


def ms(x):
    return Fraction(x) / 1000


FAST = DelayModel(sd=microseconds(5), ld=Fraction(120, 1_000_000))


@pytest.fixture(scope="module")
def good_solution():
    net = simple_testbed(2)
    apps = [
        ControlApplication(
            f"app{i}", f"S{i}", f"C{i}", ms(5),
            StabilitySpec.single_line("1.5", "0.004"),
        )
        for i in range(2)
    ]
    prob = SynthesisProblem(net, apps, FAST)
    res = synthesize(prob, SynthesisOptions(routes=2))
    assert res.ok
    return res.solution


def mutate(solution, uid, **changes):
    schedules = dict(solution.schedules)
    schedules[uid] = replace(schedules[uid], **changes)
    return Solution(solution.problem, schedules, mode=solution.mode)


class TestValidatorAcceptsGood:
    def test_clean(self, good_solution):
        assert collect_violations(good_solution) == []
        validate_solution(good_solution)


class TestFailureInjection:
    def test_missing_message(self, good_solution):
        schedules = dict(good_solution.schedules)
        uid = next(iter(schedules))
        del schedules[uid]
        bad = Solution(good_solution.problem, schedules)
        assert any("not scheduled" in v for v in collect_violations(bad))

    def test_transposition_violation(self, good_solution):
        uid, sched = next(iter(good_solution.schedules.items()))
        first_switch = sched.route[1]
        gammas = dict(sched.gammas)
        gammas[first_switch] = sched.release  # too early: misses sd + ld
        bad = mutate(good_solution, uid, gammas=gammas)
        assert any("transposition" in v for v in collect_violations(bad))

    def test_route_endpoint_violation(self, good_solution):
        uid, sched = next(iter(good_solution.schedules.items()))
        bad = mutate(good_solution, uid, route=["S1"] + sched.route[1:])
        violations = collect_violations(bad)
        assert any("start at sensor" in v for v in violations)

    def test_nonexistent_link(self, good_solution):
        uid, sched = next(iter(good_solution.schedules.items()))
        route = [sched.route[0], "SW0", "SW2", sched.route[-1]]
        gammas = {"SW0": sched.release + ms(1), "SW2": sched.release + ms(2)}
        bad = mutate(good_solution, uid, route=route, gammas=gammas)
        violations = collect_violations(bad)
        # SW0-SW2 is a ring chord that does not exist in the 4-ring.
        assert any("missing link" in v or "does not" in v for v in violations)

    def test_loop_detected(self, good_solution):
        uid, sched = next(iter(good_solution.schedules.items()))
        looped = sched.route[:-1] + [sched.route[1], sched.route[-1]]
        bad = mutate(good_solution, uid, route=looped)
        assert any("twice" in v for v in collect_violations(bad))

    def test_deadline_violation(self, good_solution):
        uid, sched = next(iter(good_solution.schedules.items()))
        last_sw = sched.route[-2]
        gammas = dict(sched.gammas)
        gammas[last_sw] = sched.release + ms(100)  # way past the period
        bad = mutate(
            good_solution, uid, gammas=gammas,
            e2e=gammas[last_sw] + FAST.ld - sched.release,
        )
        assert any("exceeds period" in v for v in collect_violations(bad))

    def test_contention_violation(self):
        """Force two messages onto one link at the same instant."""
        net = simple_testbed(2)
        apps = [
            ControlApplication(
                f"app{i}", f"S{i}", f"C{i}", ms(5),
                StabilitySpec.single_line("1.5", "0.004"),
            )
            for i in range(2)
        ]
        prob = SynthesisProblem(net, apps, FAST)
        res = synthesize(prob, SynthesisOptions(routes=2))
        sol = res.solution
        # Find two messages and rewrite them onto the same route/time.
        uids = sorted(sol.schedules)
        s0, s1 = sol.schedules[uids[0]], sol.schedules[uids[1]]
        # Rebuild s1 to collide with s0 on s0's first switch link if the
        # two apps share switches; otherwise skip (ring guarantees shared
        # middle links for opposite pairs).
        shared = set(s0.route[1:-1]) & set(s1.route[1:-1])
        if not shared:
            pytest.skip("no shared switch between the two routes")
        sw = sorted(shared)[0]
        gammas = dict(s1.gammas)
        gammas[sw] = s0.gammas[sw]  # identical release on a shared egress
        schedules = dict(sol.schedules)
        schedules[uids[1]] = replace(s1, gammas=gammas)
        bad = Solution(sol.problem, schedules)
        violations = collect_violations(bad)
        # Either the same egress link overlaps, or at least the derived
        # e2e mismatch triggers.
        assert violations

    def test_stability_violation_detected(self, good_solution):
        uid, sched = next(iter(good_solution.schedules.items()))
        # Blow up this app's jitter by delaying one message to its period.
        app = good_solution.problem.app_by_name[sched.app]
        last_sw = sched.route[-2]
        gammas = dict(sched.gammas)
        gammas[last_sw] = sched.release + app.period - FAST.ld
        bad = mutate(
            good_solution, uid, gammas=gammas,
            e2e=app.period,
        )
        violations = collect_violations(bad, check_stability=True)
        assert any("stability margin" in v or "transposition" in v
                   for v in violations)

    def test_validate_raises(self, good_solution):
        schedules = dict(good_solution.schedules)
        uid = next(iter(schedules))
        del schedules[uid]
        bad = Solution(good_solution.problem, schedules)
        with pytest.raises(ValidationError):
            validate_solution(bad)
