"""Integration tests: synthesize -> validate across modes and heuristics."""

from fractions import Fraction

import pytest

from repro.core import (
    ControlApplication,
    MODE_DEADLINE,
    MODE_STABILITY,
    SynthesisOptions,
    SynthesisProblem,
    synthesize,
    validate_solution,
)
from repro.errors import EncodingError
from repro.network import (
    DelayModel,
    Network,
    microseconds,
    ring_topology,
    simple_testbed,
)
from repro.stability import StabilitySpec


def ms(x):
    return Fraction(x) / 1000


FAST = DelayModel(sd=microseconds(5), ld=Fraction(120, 1_000_000))


def make_problem(n_apps=2, period_ms=10, beta_ms=8, net=None):
    net = net or simple_testbed(n_apps)
    apps = [
        ControlApplication(
            f"app{i}", f"S{i}", f"C{i}", ms(period_ms),
            StabilitySpec.single_line("1.5", str(float(ms(beta_ms)))),
        )
        for i in range(n_apps)
    ]
    return SynthesisProblem(net, apps, FAST)


class TestBasicSynthesis:
    def test_single_app_sat_and_valid(self):
        res = synthesize(make_problem(1), SynthesisOptions(routes=2))
        assert res.ok
        validate_solution(res.solution)

    def test_all_routes_mode(self):
        res = synthesize(make_problem(2), SynthesisOptions(routes=None))
        assert res.ok
        validate_solution(res.solution)

    def test_all_messages_scheduled(self):
        prob = make_problem(2, period_ms=5)
        res = synthesize(prob, SynthesisOptions(routes=2))
        assert res.ok
        assert set(res.solution.schedules) == {m.uid for m in prob.messages}

    def test_eta_gamma_tables_consistent(self):
        res = synthesize(make_problem(2), SynthesisOptions(routes=2))
        sol = res.solution
        etas, gammas = sol.eta_tables(), sol.gamma_tables()
        for sw, table in etas.items():
            for uid in table:
                assert uid in gammas[sw]

    def test_statistics_accumulated(self):
        res = synthesize(make_problem(2), SynthesisOptions(routes=2))
        assert "conflicts" in res.statistics

    def test_gcl_export(self):
        res = synthesize(make_problem(2, period_ms=5), SynthesisOptions(routes=2))
        gcls = res.solution.build_gcls()
        # At least one switch carries gate windows.
        assert any(entries for per_port in gcls.values()
                   for entries in per_port.values())


class TestModes:
    def test_deadline_mode_ignores_stability(self):
        prob = make_problem(2)
        res = synthesize(prob, SynthesisOptions(mode=MODE_DEADLINE, routes=2))
        assert res.ok
        validate_solution(res.solution, check_stability=False)

    def test_deadline_mode_without_specs(self):
        net = simple_testbed(1)
        apps = [ControlApplication("a", "S0", "C0", ms(10), None)]
        prob = SynthesisProblem(net, apps, FAST)
        res = synthesize(prob, SynthesisOptions(mode=MODE_DEADLINE, routes=2))
        assert res.ok

    def test_stability_mode_requires_specs(self):
        net = simple_testbed(1)
        apps = [ControlApplication("a", "S0", "C0", ms(10), None)]
        prob = SynthesisProblem(net, apps, FAST)
        with pytest.raises(EncodingError):
            synthesize(prob, SynthesisOptions(mode=MODE_STABILITY, routes=2))

    def test_stability_solution_all_stable(self):
        res = synthesize(make_problem(3, net=simple_testbed(3)),
                         SynthesisOptions(routes=2))
        assert res.ok
        assert res.solution.all_stable()
        for r in res.solution.reports():
            assert r.margin >= 0


class TestIncrementalStages:
    @pytest.mark.parametrize("stages", [1, 2, 4])
    def test_stages_produce_valid_solutions(self, stages):
        prob = make_problem(2, period_ms=5)
        res = synthesize(prob, SynthesisOptions(routes=2, stages=stages))
        assert res.ok, f"stages={stages}"
        validate_solution(res.solution)

    def test_stage_count_recorded(self):
        prob = make_problem(2, period_ms=5)
        res = synthesize(prob, SynthesisOptions(routes=2, stages=4))
        assert res.stages_completed == 4

    def test_incremental_respects_earlier_stages(self):
        """Messages fixed in stage 1 must not be rescheduled later."""
        prob = make_problem(2, period_ms=5)
        r1 = synthesize(prob, SynthesisOptions(routes=2, stages=1))
        r4 = synthesize(prob, SynthesisOptions(routes=2, stages=4))
        assert r1.ok and r4.ok
        validate_solution(r4.solution)
        # Same message set either way.
        assert set(r1.solution.schedules) == set(r4.solution.schedules)


class TestUnsat:
    def test_impossible_jitter_budget_unsat(self):
        """Two apps forced over one link with an unmeetable beta."""
        net = Network()
        net.add_switch("SW0")
        net.add_switch("SW1")
        net.add_link("SW0", "SW1")
        for i in range(2):
            net.add_sensor(f"S{i}")
            net.add_controller(f"C{i}")
            net.add_link(f"S{i}", "SW0")
            net.add_link(f"C{i}", "SW1")
        # beta smaller than the minimum achievable latency -> unsat.
        apps = [
            ControlApplication(
                f"a{i}", f"S{i}", f"C{i}", ms(10),
                StabilitySpec.single_line("1", str(float(FAST.ld))),
            )
            for i in range(2)
        ]
        prob = SynthesisProblem(net, apps, FAST)
        res = synthesize(prob, SynthesisOptions(routes=1))
        assert not res.ok
        assert res.failed_stage == 0

    def test_link_capacity_unsat(self):
        """More traffic than one link can carry within the deadline."""
        net = Network()
        net.add_switch("SW0")
        net.add_switch("SW1")
        net.add_link("SW0", "SW1")
        n = 4
        for i in range(n):
            net.add_sensor(f"S{i}")
            net.add_controller(f"C{i}")
            net.add_link(f"S{i}", "SW0")
            net.add_link(f"C{i}", "SW1")
        # Period 3 ld: each message must finish within its period but all
        # n must serialize on SW0->SW1 -> infeasible for n >= 4.
        period = FAST.ld * 3
        apps = [
            ControlApplication(f"a{i}", f"S{i}", f"C{i}", period, None)
            for i in range(n)
        ]
        prob = SynthesisProblem(net, apps, FAST)
        res = synthesize(prob, SynthesisOptions(mode=MODE_DEADLINE, routes=1))
        assert not res.ok

    def test_no_route_raises(self):
        net = Network()
        net.add_switch("SW0")
        net.add_switch("SW1")  # disconnected
        net.add_sensor("S0")
        net.add_controller("C0")
        net.add_link("S0", "SW0")
        net.add_link("C0", "SW1")
        apps = [ControlApplication("a", "S0", "C0", ms(10),
                                   StabilitySpec.single_line("1", "0.008"))]
        prob = SynthesisProblem(net, apps, FAST)
        with pytest.raises(EncodingError):
            synthesize(prob, SynthesisOptions(routes=2))


class TestHeadlineResult:
    """The paper's core claim (Table I): deadline-only synthesis can yield
    schedules whose jitter violates stability, while stability-aware
    synthesis keeps every application stable."""

    def make_contended_problem(self):
        # Two apps sharing a bottleneck link with a jitter-sensitive spec.
        net = Network()
        net.add_switch("SW0")
        net.add_switch("SW1")
        net.add_link("SW0", "SW1")
        for i in range(2):
            net.add_sensor(f"S{i}")
            net.add_controller(f"C{i}")
            net.add_link(f"S{i}", "SW0")
            net.add_link(f"C{i}", "SW1")
        ld = FAST.ld
        apps = [
            ControlApplication(
                f"a{i}", f"S{i}", f"C{i}", ms(10),
                # Tolerates the minimal latency but almost no jitter.
                StabilitySpec.single_line("20", str(float(ld * 2 + ms(1)))),
            )
            for i in range(2)
        ]
        return SynthesisProblem(net, apps, FAST)

    def test_stability_aware_all_stable(self):
        prob = self.make_contended_problem()
        res = synthesize(prob, SynthesisOptions(routes=1))
        assert res.ok
        assert res.solution.all_stable()
        validate_solution(res.solution)

    def test_deadline_reports_use_same_spec(self):
        prob = self.make_contended_problem()
        res = synthesize(prob, SynthesisOptions(mode=MODE_DEADLINE, routes=1))
        assert res.ok
        reports = res.solution.reports()
        # The deadline solution is *valid* for deadlines but may or may not
        # be stable; the report machinery must still evaluate the margins.
        assert all(r.stable is not None for r in reports)
