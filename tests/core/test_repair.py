"""Assumption probing and core-driven stage repair in the driver.

The funnel workloads are constructed so the probe ladder is exercised
deterministically: shortest-route probing must fail on the contended
funnel (sat overall), the shrunk-period variant is infeasible outright,
and the repair problem is the staged-heuristic trap — stage-0 freezes
block stage 1 — that unsat cores recover.
"""

from fractions import Fraction

import pytest

from repro.core import (
    SynthesisOptions,
    collect_violations,
    solve,
)
from repro.eval.workloads import (
    bottleneck_problem,
    bottleneck_repair_problem,
)


class TestRouteProbing:
    def test_probe_failure_extracts_core_then_solves(self):
        result = solve(bottleneck_problem(3), SynthesisOptions(routes=2))
        assert result.ok
        assert collect_violations(result.solution) == []
        stats = result.statistics
        assert stats["assumption_probes"] >= 1
        assert stats["cores_extracted"] >= 1

    def test_core_guided_relaxation_keeps_innocent_choices(self):
        """With an independent island, the core names only the funnel's
        selectors, so the relaxed re-probe (island stays greedy) wins."""
        result = solve(bottleneck_problem(3, islands=1),
                       SynthesisOptions(routes=2))
        assert result.ok
        stats = result.statistics
        assert stats["assumption_probes"] == 2  # failed probe + relaxed probe
        assert stats["cores_extracted"] == 1
        # the island app kept its shortest route
        island = next(s for s in result.solution.schedules.values()
                      if s.app == "island0")
        assert island.route == ["I0.S", "I0.A", "I0.B", "I0.C"]

    def test_probing_off_matches_status(self):
        on = solve(bottleneck_problem(3), SynthesisOptions(routes=2))
        off = solve(bottleneck_problem(3),
                    SynthesisOptions(routes=2, probe_routes=False))
        assert on.status == off.status == "sat"
        assert off.statistics["assumption_probes"] == 0

    def test_infeasible_instance_stays_unsat(self):
        result = solve(
            bottleneck_problem(3, period=Fraction(35, 10000)),
            SynthesisOptions(routes=2))
        assert not result.ok
        assert result.failed_stage == 0


class TestStageRepair:
    def test_trap_fails_without_repair(self):
        result = solve(bottleneck_repair_problem(),
                       SynthesisOptions(routes=2, stages=2))
        assert not result.ok
        assert result.failed_stage == 1

    def test_monolithic_solves_the_trap(self):
        result = solve(bottleneck_repair_problem(),
                       SynthesisOptions(routes=2, stages=1))
        assert result.ok

    def test_repair_recovers_the_trap(self):
        result = solve(bottleneck_repair_problem(),
                       SynthesisOptions(routes=2, stages=2, repair=True))
        assert result.ok
        assert collect_violations(result.solution) == []
        stats = result.statistics
        assert stats["stage_repairs"] >= 1
        assert stats["cores_extracted"] >= 1
        # every message still scheduled exactly once
        problem = bottleneck_repair_problem()
        assert set(result.solution.schedules) == {
            m.uid for m in problem.messages
        }

    def test_repair_does_not_change_sat_instances(self):
        plain = solve(bottleneck_problem(3),
                      SynthesisOptions(routes=2, stages=2))
        repaired = solve(bottleneck_problem(3),
                         SynthesisOptions(routes=2, stages=2, repair=True))
        assert plain.status == repaired.status == "sat"

    def test_repair_cannot_fix_genuine_infeasibility(self):
        result = solve(
            bottleneck_problem(3, period=Fraction(35, 10000)),
            SynthesisOptions(routes=2, stages=2, repair=True))
        assert not result.ok

    @pytest.mark.parametrize("backend", ["native", "serialization"])
    def test_backends_agree_on_the_trap(self, backend):
        result = solve(bottleneck_repair_problem(),
                       SynthesisOptions(routes=2, stages=2, backend=backend))
        assert result.status == "unsat"

    def test_max_repair_rounds_bounds_work(self):
        result = solve(bottleneck_repair_problem(),
                       SynthesisOptions(routes=2, stages=2, repair=True,
                                        max_repair_rounds=0))
        # zero rounds = repair disabled in effect
        assert not result.ok
