"""Property-based end-to-end tests: every SAT synthesis validates and
simulates identically, across random topologies/workloads/heuristics."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MODE_DEADLINE,
    MODE_STABILITY,
    ControlApplication,
    SynthesisOptions,
    SynthesisProblem,
    collect_violations,
    synthesize,
)
from repro.network import DelayModel, microseconds, random_network
from repro.sim import cross_check_e2e, simulate_solution
from repro.stability import StabilitySpec

FAST = DelayModel(sd=microseconds(5), ld=Fraction(120, 1_000_000))


@st.composite
def synthesis_cases(draw):
    seed = draw(st.integers(min_value=0, max_value=200))
    n_apps = draw(st.integers(min_value=1, max_value=3))
    n_switches = draw(st.integers(min_value=3, max_value=6))
    routes = draw(st.sampled_from([1, 2, 3]))
    stages = draw(st.sampled_from([1, 2, 3]))
    mode = draw(st.sampled_from([MODE_STABILITY, MODE_DEADLINE]))
    periods = draw(
        st.lists(st.sampled_from([5, 10, 20]), min_size=n_apps, max_size=n_apps)
    )
    return seed, n_apps, n_switches, routes, stages, mode, periods


@given(synthesis_cases())
@settings(max_examples=25, deadline=None)
def test_sat_solutions_always_validate_and_simulate(case):
    seed, n_apps, n_switches, routes, stages, mode, periods = case
    net = random_network(n_switches, n_apps, n_apps, p=0.5, seed=seed)
    spec = StabilitySpec.single_line("2.0", "0.004")
    apps = [
        ControlApplication(
            f"app{i}", f"S{i}", f"C{i}", Fraction(periods[i], 1000),
            spec if mode == MODE_STABILITY else None,
        )
        for i in range(n_apps)
    ]
    problem = SynthesisProblem(net, apps, FAST)
    options = SynthesisOptions(mode=mode, routes=routes, stages=stages)
    result = synthesize(problem, options)
    if not result.ok:
        return  # UNSAT is legitimate (tight specs / few routes)
    solution = result.solution
    # 1. The independent validator accepts it.
    assert collect_violations(
        solution, check_stability=(mode == MODE_STABILITY)
    ) == []
    # 2. The discrete-event simulator replays it without violations and
    #    measures exactly the analytical delays.
    trace = simulate_solution(solution)
    cross_check_e2e(solution, trace)
    # 3. Stability mode implies non-negative margins everywhere.
    if mode == MODE_STABILITY:
        assert solution.all_stable()
