"""The incremental synthesis engine: one solver per run, frozen stages.

Covers the acceptance contract of the persistent-solver rewrite: a run
with any number of stages constructs exactly one SMT solver, freezes
earlier stages via asserted equalities (so later stages must respect
them), and on the automotive workload matches the monolithic status
while staying validator-clean.
"""

from fractions import Fraction

import pytest

import repro.core.synthesizer as synthesizer_mod
from repro.core import (
    ControlApplication,
    SynthesisOptions,
    SynthesisProblem,
    collect_violations,
    synthesize,
)
from repro.eval.workloads import gm_case_study
from repro.network import DelayModel, microseconds, simple_testbed
from repro.smt import Solver
from repro.stability import StabilitySpec

FAST = DelayModel(sd=microseconds(5), ld=Fraction(120, 1_000_000))


def ms(x):
    return Fraction(x) / 1000


def make_problem(n_apps=2, period_ms=5):
    net = simple_testbed(n_apps)
    apps = [
        ControlApplication(
            f"app{i}", f"S{i}", f"C{i}", ms(period_ms),
            StabilitySpec.single_line("1.5", str(float(ms(4)))),
        )
        for i in range(n_apps)
    ]
    return SynthesisProblem(net, apps, FAST)


class CountingSolver(Solver):
    instances = 0

    def __init__(self, *args, **kwargs):
        type(self).instances += 1
        super().__init__(*args, **kwargs)


@pytest.fixture
def count_solvers(monkeypatch):
    CountingSolver.instances = 0
    monkeypatch.setattr(synthesizer_mod, "Solver", CountingSolver)
    return CountingSolver


class TestOneSolverPerRun:
    @pytest.mark.parametrize("stages", [1, 2, 4])
    def test_exactly_one_solver(self, count_solvers, stages):
        res = synthesize(make_problem(), SynthesisOptions(routes=2, stages=stages))
        assert res.ok
        assert count_solvers.instances == 1

    def test_one_solver_even_when_unsat(self, count_solvers):
        # beta below the minimum achievable latency -> unsat in stage 0.
        net = simple_testbed(1)
        apps = [
            ControlApplication(
                "a0", "S0", "C0", ms(10),
                StabilitySpec.single_line("1", str(float(FAST.ld))),
            )
        ]
        problem = SynthesisProblem(net, apps, FAST)
        res = synthesize(problem, SynthesisOptions(routes=1, stages=2))
        assert not res.ok
        assert count_solvers.instances == 1


class TestStageAccounting:
    def test_stage_statistics_per_nonempty_stage(self):
        stages = 4
        problem = make_problem(period_ms=5)
        width = problem.hyperperiod / stages
        nonempty = len({
            min(int(m.release / width), stages - 1) for m in problem.messages
        })
        res = synthesize(problem, SynthesisOptions(routes=2, stages=stages))
        assert res.ok
        assert len(res.stage_statistics) == nonempty
        for delta in res.stage_statistics:
            assert set(delta) >= {"conflicts", "decisions", "propagations"}
        for key in ("conflicts", "decisions", "propagations"):
            assert res.statistics[key] == sum(
                d[key] for d in res.stage_statistics
            )

    def test_frozen_stages_respected(self):
        """Later stages schedule around stage-0 messages: the combined
        schedule has no contention violations anywhere."""
        res = synthesize(make_problem(2, period_ms=5),
                         SynthesisOptions(routes=2, stages=4))
        assert res.ok
        assert collect_violations(res.solution) == []


class TestAutomotiveEquivalence:
    """Stages >= 2 match the monolithic status on the automotive workload
    and produce validator-clean schedules (the seed implementation's
    behavior, now with a single persistent solver)."""

    @pytest.fixture(scope="class")
    def automotive(self):
        return gm_case_study(n_apps=4)

    @pytest.fixture(scope="class")
    def monolithic_status(self, automotive):
        return synthesize(automotive, SynthesisOptions(routes=2, stages=1)).status

    @pytest.mark.parametrize("stages", [2, 4])
    def test_status_matches_monolithic(self, automotive, monolithic_status,
                                       stages):
        res = synthesize(automotive, SynthesisOptions(routes=2, stages=stages))
        assert res.status == monolithic_status == "sat"
        assert collect_violations(res.solution) == []
        assert res.stages_completed == stages
        assert set(res.solution.schedules) == {
            m.uid for m in automotive.messages
        }
