"""Tests for LTI state-space systems and transfer-function conversion."""

import numpy as np
import pytest

from repro.control import StateSpace, tf_to_ss
from repro.errors import ControlDesignError


class TestStateSpace:
    def test_dimensions(self):
        sys = StateSpace([[0, 1], [-2, -3]], [[0], [1]], [[1, 0]], [[0]])
        assert sys.n_states == 2
        assert sys.n_inputs == 1
        assert sys.n_outputs == 1
        assert not sys.is_discrete

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ControlDesignError):
            StateSpace([[0, 1]], [[1]], [[1]], [[0]])  # A not square
        with pytest.raises(ControlDesignError):
            StateSpace([[0]], [[1], [2]], [[1]], [[0]])  # B rows mismatch

    def test_poles_and_stability(self):
        stable = StateSpace([[-1, 0], [0, -2]], [[1], [1]], [[1, 0]], [[0]])
        assert stable.is_stable()
        unstable = StateSpace([[1]], [[1]], [[1]], [[0]])
        assert not unstable.is_stable()

    def test_discrete_stability_uses_unit_circle(self):
        stable = StateSpace([[0.5]], [[1]], [[1]], [[0]], dt=0.01)
        assert stable.is_stable()
        unstable = StateSpace([[1.5]], [[1]], [[1]], [[0]], dt=0.01)
        assert not unstable.is_stable()

    def test_invalid_dt(self):
        with pytest.raises(ControlDesignError):
            StateSpace([[0]], [[1]], [[1]], [[0]], dt=-1)

    def test_frequency_response_integrator(self):
        # G(s) = 1/s: |G(jw)| = 1/w.
        sys = tf_to_ss([1], [1, 0])
        w = np.array([0.1, 1.0, 10.0])
        resp = sys.siso_response(w)
        np.testing.assert_allclose(np.abs(resp), 1 / w, rtol=1e-10)

    def test_frequency_response_discrete(self):
        # One-step delay: G(z) = 1/z, magnitude 1 at all frequencies.
        sys = StateSpace([[0]], [[1]], [[1]], [[0]], dt=0.1)
        w = np.array([1.0, 5.0, 20.0])
        resp = sys.siso_response(w)
        np.testing.assert_allclose(np.abs(resp), 1.0, rtol=1e-12)

    def test_siso_response_requires_siso(self):
        sys = StateSpace([[0]], [[1, 1]], [[1]], [[0, 0]])
        with pytest.raises(ControlDesignError):
            sys.siso_response(np.array([1.0]))


class TestTfToSs:
    def test_dc_servo_poles(self):
        # 1000 / (s^2 + s): poles at 0 and -1.
        sys = tf_to_ss([1000], [1, 1, 0])
        poles = sorted(sys.poles().real)
        np.testing.assert_allclose(poles, [-1.0, 0.0], atol=1e-12)

    def test_frequency_response_matches_polynomial(self):
        num, den = [2.0, 3.0], [1.0, 4.0, 5.0]
        sys = tf_to_ss(num, den)
        for w in (0.3, 1.7, 9.0):
            s = 1j * w
            expected = np.polyval(num, s) / np.polyval(den, s)
            got = sys.siso_response(np.array([w]))[0]
            np.testing.assert_allclose(got, expected, rtol=1e-10)

    def test_biproper_transfer_function(self):
        # G(s) = (s + 1) / (s + 2) has D = 1.
        sys = tf_to_ss([1, 1], [1, 2])
        assert sys.D[0, 0] == pytest.approx(1.0)
        w = np.array([1.0])
        expected = (1j + 1) / (1j + 2)
        np.testing.assert_allclose(sys.siso_response(w)[0], expected, rtol=1e-10)

    def test_improper_rejected(self):
        with pytest.raises(ControlDesignError):
            tf_to_ss([1, 0, 0], [1, 1])

    def test_zero_leading_den_rejected(self):
        with pytest.raises(ControlDesignError):
            tf_to_ss([1], [0, 1])

    def test_static_gain(self):
        sys = tf_to_ss([3], [2])
        assert sys.n_states == 0
        assert sys.D[0, 0] == pytest.approx(1.5)
