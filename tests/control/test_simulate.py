"""Tests for the jittery closed-loop simulator."""

import numpy as np
import pytest

from repro.control import (
    StateSpace,
    design_lqg,
    plant_database,
    simulate_with_delays,
    tf_to_ss,
)
from repro.errors import ControlDesignError


@pytest.fixture(scope="module")
def servo_setup():
    plant = tf_to_ss([1000], [1, 1, 0])
    h = 0.006
    ctrl = design_lqg(plant, h)
    return plant, ctrl, h


class TestSimulate:
    def test_no_delay_converges(self, servo_setup):
        # The dominant closed-loop eigenvalue is ~0.994, so convergence
        # needs a few thousand periods.
        plant, ctrl, h = servo_setup
        res = simulate_with_delays(plant, ctrl, h, [0.0], n_steps=3000)
        assert res.is_bounded()
        assert res.final_state_norm < 1e-5

    def test_constant_small_delay_converges(self, servo_setup):
        plant, ctrl, h = servo_setup
        res = simulate_with_delays(plant, ctrl, h, [0.1 * h], n_steps=3000)
        assert res.is_bounded()
        assert res.final_state_norm < 1e-4

    def test_unstable_without_control(self):
        # Inverted-pendulum-like plant with a zero controller diverges.
        plant = StateSpace([[0.0, 1.0], [4.0, 0.0]], [[0.0], [1.0]],
                           [[1.0, 0.0]], [[0.0]])
        zero_ctrl = StateSpace([[0.0]], [[0.0]], [[0.0]], [[0.0]], dt=0.05)
        res = simulate_with_delays(plant, zero_ctrl, 0.05, [0.0], n_steps=300)
        assert not res.is_bounded(factor=10.0)

    def test_rejects_bad_delays(self, servo_setup):
        plant, ctrl, h = servo_setup
        with pytest.raises(ControlDesignError):
            simulate_with_delays(plant, ctrl, h, [2 * h])
        with pytest.raises(ControlDesignError):
            simulate_with_delays(plant, ctrl, h, [-0.001])

    def test_rejects_mismatched_dt(self, servo_setup):
        plant, ctrl, _ = servo_setup
        with pytest.raises(ControlDesignError):
            simulate_with_delays(plant, ctrl, 0.01, [0.0])

    def test_trace_shapes(self, servo_setup):
        plant, ctrl, h = servo_setup
        res = simulate_with_delays(plant, ctrl, h, [0.0, 0.001], n_steps=50)
        assert res.states.shape[0] == 51
        assert res.controls.shape[0] == 50
        assert res.delays.shape[0] == 50

    def test_delay_pattern_cycles(self, servo_setup):
        plant, ctrl, h = servo_setup
        pattern = [0.0, 0.001, 0.002]
        res = simulate_with_delays(plant, ctrl, h, pattern, n_steps=9)
        np.testing.assert_allclose(res.delays, pattern * 3)

    @pytest.mark.parametrize("spec", plant_database(), ids=lambda s: s.name)
    def test_every_database_plant_stable_without_jitter(self, spec):
        ctrl = design_lqg(spec.system, spec.nominal_period)
        res = simulate_with_delays(
            spec.system, ctrl, spec.nominal_period, [0.0], n_steps=600
        )
        assert res.is_bounded()
        assert res.final_state_norm < res.states[0] @ res.states[0] + 1.0
