"""Discretization tests, with scipy as the oracle for expm and c2d."""

import numpy as np
import pytest
import scipy.linalg
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control import StateSpace, c2d, c2d_delayed, expm, tf_to_ss
from repro.errors import ControlDesignError


class TestExpm:
    def test_zero_matrix(self):
        np.testing.assert_allclose(expm(np.zeros((3, 3))), np.eye(3))

    def test_diagonal(self):
        A = np.diag([1.0, -2.0, 0.5])
        np.testing.assert_allclose(expm(A), np.diag(np.exp([1.0, -2.0, 0.5])),
                                   rtol=1e-12)

    def test_nilpotent(self):
        A = np.array([[0.0, 1.0], [0.0, 0.0]])
        np.testing.assert_allclose(expm(A), [[1, 1], [0, 1]], rtol=1e-12)

    def test_rotation(self):
        w = 2.0
        A = np.array([[0.0, w], [-w, 0.0]])
        expected = np.array([[np.cos(w), np.sin(w)], [-np.sin(w), np.cos(w)]])
        np.testing.assert_allclose(expm(A), expected, rtol=1e-10, atol=1e-12)

    def test_non_square_rejected(self):
        with pytest.raises(ControlDesignError):
            expm(np.zeros((2, 3)))

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_scipy(self, n, seed):
        rng = np.random.default_rng(seed)
        A = rng.normal(scale=2.0, size=(n, n))
        ours = expm(A)
        ref = scipy.linalg.expm(A)
        np.testing.assert_allclose(ours, ref, rtol=1e-8, atol=1e-10)


class TestC2d:
    def test_integrator(self):
        # x' = u  ->  x+ = x + h u.
        sys = StateSpace([[0.0]], [[1.0]], [[1.0]], [[0.0]])
        d = c2d(sys, 0.1)
        np.testing.assert_allclose(d.A, [[1.0]])
        np.testing.assert_allclose(d.B, [[0.1]])
        assert d.dt == 0.1

    def test_first_order_lag(self):
        a = -3.0
        sys = StateSpace([[a]], [[1.0]], [[1.0]], [[0.0]])
        h = 0.05
        d = c2d(sys, h)
        np.testing.assert_allclose(d.A, [[np.exp(a * h)]], rtol=1e-12)
        np.testing.assert_allclose(d.B, [[(np.exp(a * h) - 1) / a]], rtol=1e-12)

    def test_double_integrator(self):
        sys = tf_to_ss([1], [1, 0, 0])
        h = 0.2
        d = c2d(sys, h)
        # Known ZOH of 1/s^2 in controllable canonical coordinates:
        # states (v, p): v' = u, p' = v ... C picks position.
        y_gain = (d.C @ d.B + d.D).item()
        assert y_gain == pytest.approx(h * h / 2, rel=1e-12)

    def test_rejects_discrete_input(self):
        d = StateSpace([[1.0]], [[1.0]], [[1.0]], [[0.0]], dt=0.1)
        with pytest.raises(ControlDesignError):
            c2d(d, 0.1)

    def test_rejects_bad_period(self):
        sys = StateSpace([[0.0]], [[1.0]], [[1.0]], [[0.0]])
        with pytest.raises(ControlDesignError):
            c2d(sys, 0.0)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_matches_scipy_cont2discrete(self, seed):
        rng = np.random.default_rng(seed)
        n = rng.integers(1, 4)
        A = rng.normal(size=(n, n))
        B = rng.normal(size=(n, 1))
        sys = StateSpace(A, B, np.eye(n)[:1], np.zeros((1, 1)))
        h = float(rng.uniform(0.01, 0.5))
        d = c2d(sys, h)
        from scipy.signal import cont2discrete

        Ad, Bd, _, _, _ = cont2discrete((A, B, sys.C, sys.D), h, method="zoh")
        np.testing.assert_allclose(d.A, Ad, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(d.B, Bd, rtol=1e-8, atol=1e-10)


class TestC2dDelayed:
    def test_zero_delay_equals_c2d(self):
        sys = tf_to_ss([1], [1, 1, 0])
        d0 = c2d_delayed(sys, 0.1, 0.0)
        d1 = c2d(sys, 0.1)
        np.testing.assert_allclose(d0.A, d1.A)
        np.testing.assert_allclose(d0.B, d1.B)

    def test_fractional_delay_adds_one_state(self):
        sys = tf_to_ss([1], [1, 1, 0])
        d = c2d_delayed(sys, 0.1, 0.03)
        assert d.n_states == sys.n_states + 1

    def test_full_period_delay(self):
        sys = tf_to_ss([1], [1, 1, 0])
        d = c2d_delayed(sys, 0.1, 0.1)
        assert d.n_states == sys.n_states + 1

    def test_multi_period_delay_states(self):
        sys = tf_to_ss([1], [1, 1, 0])
        d = c2d_delayed(sys, 0.1, 0.25)  # 2 whole + 0.05 frac -> 3 slots
        assert d.n_states == sys.n_states + 3

    def test_negative_delay_rejected(self):
        sys = tf_to_ss([1], [1, 1, 0])
        with pytest.raises(ControlDesignError):
            c2d_delayed(sys, 0.1, -0.01)

    def test_delayed_integrator_step_response(self):
        """Integrator with tau delay: after one period x grows by (h - tau)u
        (the new sample only acts during the final h - tau seconds)."""
        sys = StateSpace([[0.0]], [[1.0]], [[1.0]], [[0.0]])
        h, tau = 0.1, 0.04
        d = c2d_delayed(sys, h, tau)
        # State [x, u_prev]; apply u=1 from rest.
        x = np.zeros(d.n_states)
        u = np.array([1.0])
        x = d.A @ x + d.B @ u
        assert x[0] == pytest.approx(h - tau, rel=1e-12)
        # Next period the remembered sample acts for the first tau seconds.
        x = d.A @ x + d.B @ np.array([0.0])
        assert x[0] == pytest.approx(h, rel=1e-12)

    def test_delay_equivalence_via_simulation(self):
        """Multi-period delayed model == plain model with shifted inputs."""
        rng = np.random.default_rng(7)
        sys = tf_to_ss([2.0], [1.0, 0.8, 1.5])
        h, tau = 0.08, 0.19  # 2 whole periods + 0.03 fractional
        d = c2d_delayed(sys, h, tau)
        inputs = rng.normal(size=20)
        x = np.zeros(d.n_states)
        ys = []
        for u in inputs:
            ys.append((d.C @ x)[0])
            x = d.A @ x + d.B @ np.array([u])
        # Reference: exact integration applying each input tau later.
        from repro.control.discretize import _phi_gamma

        times = sorted(
            {0.0, 20 * h}
            | {k * h for k in range(21)}
            | {k * h + tau for k in range(20)}
        )
        xr = np.zeros(sys.n_states)
        current_u = 0.0
        ys_ref = {}
        for t0, t1 in zip(times, times[1:]):
            k = int(round(t0 / h)) if abs(t0 / h - round(t0 / h)) < 1e-9 else None
            if k is not None and 0 <= k < 21:
                ys_ref[k] = (sys.C @ xr)[0]
            # Input switches at k*h + tau.
            for k2 in range(20):
                if abs(t0 - (k2 * h + tau)) < 1e-9:
                    current_u = inputs[k2]
            phi, gam = _phi_gamma(sys.A, sys.B, t1 - t0)
            xr = phi @ xr + gam @ np.array([current_u])
        for k in range(20):
            assert ys[k] == pytest.approx(ys_ref[k], abs=1e-9)
