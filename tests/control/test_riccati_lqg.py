"""Riccati / LQR / Kalman / LQG tests against scipy oracles."""

import numpy as np
import pytest
import scipy.linalg
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control import (
    LqgWeights,
    StateSpace,
    c2d,
    closed_loop,
    design_lqg,
    kalman_gain,
    lqr_gain,
    plant_database,
    solve_dare,
    tf_to_ss,
)
from repro.errors import ControlDesignError


class TestDare:
    def test_scalar_case(self):
        # a=1, b=1, q=1, r=1: p = (1 + sqrt(5))/2 * ... solve vs scipy.
        P = solve_dare(np.array([[1.0]]), np.array([[1.0]]),
                       np.array([[1.0]]), np.array([[1.0]]))
        ref = scipy.linalg.solve_discrete_are(
            np.array([[1.0]]), np.array([[1.0]]),
            np.array([[1.0]]), np.array([[1.0]]))
        np.testing.assert_allclose(P, ref, rtol=1e-9)

    def test_unstable_plant(self):
        A = np.array([[1.2, 0.1], [0.0, 0.9]])
        B = np.array([[0.0], [1.0]])
        Q, R = np.eye(2), np.eye(1)
        P = solve_dare(A, B, Q, R)
        ref = scipy.linalg.solve_discrete_are(A, B, Q, R)
        np.testing.assert_allclose(P, ref, rtol=1e-8)

    def test_dimension_check(self):
        with pytest.raises(ControlDesignError):
            solve_dare(np.eye(2), np.ones((3, 1)), np.eye(2), np.eye(1))

    @given(st.integers(min_value=0, max_value=5000))
    @settings(max_examples=60, deadline=None)
    def test_matches_scipy_on_random_stabilizable(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 4))
        A = rng.normal(scale=0.8, size=(n, n))
        B = rng.normal(size=(n, 1))
        Q = np.eye(n)
        R = np.eye(1)
        try:
            ref = scipy.linalg.solve_discrete_are(A, B, Q, R)
        except Exception:
            return  # scipy rejects it too; nothing to compare
        try:
            P = solve_dare(A, B, Q, R)
        except ControlDesignError:
            # Our doubling/Newton solver may bow out on pathologically
            # scaled instances (near-unreachable unstable modes with
            # cost matrices of norm >> 1e6); it must never do so on
            # well-conditioned ones, which is what control design meets.
            assert np.linalg.norm(ref, ord="fro") > 1e6
            return
        np.testing.assert_allclose(P, ref, rtol=1e-6, atol=1e-8)


class TestLqr:
    def test_closed_loop_stable(self):
        A = np.array([[1.1, 0.2], [0.0, 1.05]])
        B = np.array([[0.0], [0.5]])
        K, P = lqr_gain(A, B, np.eye(2), np.eye(1))
        closed = A - B @ K
        assert np.max(np.abs(np.linalg.eigvals(closed))) < 1.0
        # P is symmetric positive definite.
        np.testing.assert_allclose(P, P.T, atol=1e-10)
        assert np.min(np.linalg.eigvalsh(P)) > 0


class TestKalman:
    def test_estimator_stable(self):
        A = np.array([[1.05, 0.1], [0.0, 0.95]])
        C = np.array([[1.0, 0.0]])
        L, S = kalman_gain(A, C, np.eye(2), np.eye(1))
        est = A - L @ C
        assert np.max(np.abs(np.linalg.eigvals(est))) < 1.0
        assert np.min(np.linalg.eigvalsh(S)) > 0


class TestLqg:
    @pytest.mark.parametrize("spec", plant_database(), ids=lambda s: s.name)
    def test_stabilizes_every_database_plant(self, spec):
        h = spec.nominal_period
        ctrl = design_lqg(spec.system, h)
        pd = c2d(spec.system, h)
        cl = closed_loop(pd, ctrl)
        assert cl.is_stable(tol=1e-12), f"{spec.name} not stabilized"

    def test_rejects_discrete_plant(self):
        d = StateSpace([[0.5]], [[1.0]], [[1.0]], [[0.0]], dt=0.1)
        with pytest.raises(ControlDesignError):
            design_lqg(d, 0.1)

    def test_custom_weights(self):
        spec = plant_database()[0]
        n = spec.system.n_states
        ctrl = design_lqg(
            spec.system,
            spec.nominal_period,
            LqgWeights(Q=10 * np.eye(n), R=np.eye(1) * 0.1),
        )
        pd = c2d(spec.system, spec.nominal_period)
        assert closed_loop(pd, ctrl).is_stable()

    def test_closed_loop_requires_strictly_proper(self):
        biproper = StateSpace([[0.5]], [[1.0]], [[1.0]], [[1.0]], dt=0.1)
        ctrl = StateSpace([[0.0]], [[1.0]], [[1.0]], [[0.0]], dt=0.1)
        with pytest.raises(ControlDesignError):
            closed_loop(biproper, ctrl)

    def test_dc_servo_paper_setup(self):
        """The paper's Fig. 3 configuration: DC servo, LQG, h = 6 ms."""
        plant = tf_to_ss([1000], [1, 1, 0])
        ctrl = design_lqg(plant, 0.006)
        cl = closed_loop(c2d(plant, 0.006), ctrl)
        assert cl.is_stable()


class TestLyapunov:
    def test_solve_discrete_lyapunov(self):
        from repro.control.riccati import solve_discrete_lyapunov

        F = np.array([[0.5, 0.1], [0.0, 0.3]])
        W = np.eye(2)
        P = solve_discrete_lyapunov(F, W)
        np.testing.assert_allclose(P, F.T @ P @ F + W, atol=1e-12)
        assert np.min(np.linalg.eigvalsh(P)) > 0
