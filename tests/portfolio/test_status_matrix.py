"""The no-winner status matrix: races must never fabricate ``unsat``.

Regression suite for the phantom-unsat bug: a race with no winner used to
report ``unsat`` even when every strategy merely timed out or crashed.
The sound vocabulary: ``sat`` (winner), ``unsat`` (a *complete* strategy
proved it, named by ``verdict_by``), ``timeout`` (undecided at a
deadline), ``unknown`` (heuristic failures / errors only).
"""

from fractions import Fraction

import pytest

from repro.core import (
    ControlApplication,
    MODE_DEADLINE,
    SynthesisOptions,
    SynthesisProblem,
)
from repro.network import DelayModel, Network, microseconds
from repro.portfolio import (
    STATUS_ERROR,
    STATUS_SAT,
    STATUS_TIMEOUT,
    STATUS_UNKNOWN,
    STATUS_UNSAT,
    Strategy,
    synthesize_portfolio,
)
from repro.portfolio.engine import _result_from_payload
from repro.eval import workloads

FAST = DelayModel(sd=microseconds(5), ld=Fraction(120, 1_000_000))


def unsat_problem() -> SynthesisProblem:
    """More traffic than one link can carry within the deadline."""
    net = Network()
    net.add_switch("SW0")
    net.add_switch("SW1")
    net.add_link("SW0", "SW1")
    n = 4
    for i in range(n):
        net.add_sensor(f"S{i}")
        net.add_controller(f"C{i}")
        net.add_link(f"S{i}", "SW0")
        net.add_link(f"C{i}", "SW1")
    period = FAST.ld * 3
    apps = [
        ControlApplication(f"a{i}", f"S{i}", f"C{i}", period, None)
        for i in range(n)
    ]
    return SynthesisProblem(net, apps, FAST)


def nospec_problem() -> SynthesisProblem:
    """Stability mode without stability specs: every strategy errors."""
    net = Network()
    net.add_switch("SW0")
    net.add_switch("SW1")
    net.add_link("SW0", "SW1")
    net.add_sensor("S0")
    net.add_controller("C0")
    net.add_link("S0", "SW0")
    net.add_link("C0", "SW1")
    apps = [ControlApplication("a0", "S0", "C0", Fraction(1, 100), None)]
    return SynthesisProblem(net, apps, FAST)


class TestNoWinnerMatrix:
    def test_all_timeout_is_not_unsat(self):
        """Every attempt killed at a zero budget: the race is undecided."""
        problem = workloads.random_problem(0, n_apps=3)
        entries = [
            Strategy("t1", SynthesisOptions(routes=1), timeout=0.0),
            Strategy("t2", SynthesisOptions(routes=2), timeout=0.0),
        ]
        res = synthesize_portfolio(problem, entries, backend="process")
        assert res.status == STATUS_TIMEOUT
        assert res.status != STATUS_UNSAT and not res.ok
        assert res.winner is None and res.verdict_by is None
        assert res.solution is None

    def test_global_deadline_is_not_unsat(self):
        problem = workloads.random_problem(0, n_apps=4)
        entries = [
            Strategy("slow-a", SynthesisOptions(routes=3, stages=4)),
            Strategy("slow-b", SynthesisOptions(routes=3)),
        ]
        res = synthesize_portfolio(problem, entries, backend="process",
                                   timeout=0.05)
        assert res.status == STATUS_TIMEOUT
        assert res.winner is None and res.verdict_by is None

    @pytest.mark.parametrize("backend", ["process", "serial"])
    def test_all_error_is_unknown(self, backend):
        entries = [
            Strategy("err-1", SynthesisOptions(routes=1)),
            Strategy("err-2", SynthesisOptions(routes=2)),
        ]
        res = synthesize_portfolio(nospec_problem(), entries, backend=backend,
                                   timeout=120)
        assert res.status == STATUS_UNKNOWN
        assert res.winner is None and res.verdict_by is None
        for sr in res.strategy_results:
            assert sr.status == STATUS_ERROR

    @pytest.mark.parametrize("backend", ["process", "serial"])
    def test_unsat_needs_a_complete_prover(self, backend):
        """Heuristic unsats alone leave the race unknown; a monolithic
        proof upgrades it to unsat and is credited on verdict_by."""
        heuristics = [
            Strategy("routes-1",
                     SynthesisOptions(mode=MODE_DEADLINE, routes=1)),
            Strategy("stages-2",
                     SynthesisOptions(mode=MODE_DEADLINE, routes=1, stages=2)),
        ]
        res = synthesize_portfolio(unsat_problem(), heuristics,
                                   backend=backend, timeout=120)
        assert res.status == STATUS_UNKNOWN
        assert res.verdict_by is None

        with_complete = heuristics + [
            Strategy("monolithic",
                     SynthesisOptions(mode=MODE_DEADLINE, routes=None)),
        ]
        res = synthesize_portfolio(unsat_problem(), with_complete,
                                   backend=backend, timeout=120)
        assert res.status == STATUS_UNSAT and not res.ok
        assert res.verdict_by == "monolithic"
        assert res.winner is None and res.solution is None
        assert res.result_for("monolithic").status == STATUS_UNSAT

    def test_sat_after_restart_names_the_winner(self):
        problem = workloads.random_problem(0, n_apps=3)
        entries = [
            Strategy("retrying", SynthesisOptions(routes=1),
                     timeout=0.0, restarts=(120.0,)),
        ]
        res = synthesize_portfolio(problem, entries)
        assert res.status == STATUS_SAT and res.ok
        assert res.winner == "retrying"
        assert res.verdict_by == "retrying"
        assert res.result_for("retrying").attempts == 2


class TestRestartBudgetValidation:
    def test_zero_restart_budget_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            Strategy("s", SynthesisOptions(routes=1), timeout=1.0,
                     restarts=(0.0,))

    def test_negative_restart_budget_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            Strategy("s", SynthesisOptions(routes=1), timeout=1.0,
                     restarts=(2.0, -1.0))

    def test_positive_budgets_accepted(self):
        s = Strategy("s", SynthesisOptions(routes=1), timeout=1.0,
                     restarts=[2.0, 4.0])
        assert s.restarts == (2.0, 4.0)


class TestPayloadValidation:
    """All worker payloads flow through one validating constructor."""

    def test_unknown_status_becomes_error(self):
        sr = _result_from_payload("w", {"status": "gibberish"}, 0.1)
        assert sr.status == STATUS_ERROR
        assert "gibberish" in sr.error

    def test_sat_without_schedules_becomes_error(self):
        sr = _result_from_payload("w", {"status": "sat", "schedules": None}, 0.1)
        assert sr.status == STATUS_ERROR
        assert "schedule" in sr.error

    def test_non_dict_payload_becomes_error(self):
        sr = _result_from_payload("w", None, 0.1)
        assert sr.status == STATUS_ERROR

    def test_attempts_passed_through(self):
        sr = _result_from_payload("w", {"status": "unsat"}, 0.1, attempts=3)
        assert sr.status == STATUS_UNSAT and sr.attempts == 3
