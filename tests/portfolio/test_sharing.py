"""Cross-worker knowledge sharing: determinism, soundness, and effect.

The serial backend runs strategies in order with the pool flowing from
each finished run into the next, so every assertion here is exact (no
racing nondeterminism): identical statuses and models with sharing on
and off, strictly fewer summed conflicts with it on, and the sharing
counters visible in per-strategy statistics.
"""

from fractions import Fraction

import pytest

from repro.api import NativeBackend, Session
from repro.core import SynthesisOptions, collect_violations
from repro.core import synthesizer as synth
from repro.eval import workloads
from repro.portfolio import (
    STATUS_SAT,
    STATUS_UNSAT,
    KnowledgePool,
    Strategy,
    synthesize_portfolio,
)
from repro.portfolio import sharing
from repro.smt.terms import Bool, Real, deserialize_literal, serialize_literal


# The sharing workloads isolate the *sharing* channel: transitive DL
# propagation already prunes the funnel's doomed subtrees almost to
# nothing (2 residual conflicts), which would leave the veto/clause
# imports with nothing measurable to prune.  A/B-ing sharing therefore
# runs with dl_propagation off (it has its own benchmark).
def sat_strategies():
    return [
        Strategy("routes-1", SynthesisOptions(routes=1, dl_propagation=False)),
        Strategy("routes-2", SynthesisOptions(routes=2, dl_propagation=False)),
    ]


def unsat_strategies():
    # Heuristics first so the race is still open when their artifacts
    # land; the complete strategy then proves unsat almost for free.
    return [
        Strategy("routes-2", SynthesisOptions(routes=2, dl_propagation=False)),
        Strategy("routes-1", SynthesisOptions(routes=1, dl_propagation=False)),
        Strategy("monolithic",
                 SynthesisOptions(routes=None, dl_propagation=False)),
    ]


def total_conflicts(res) -> int:
    return sum(sr.statistics.get("conflicts", 0)
               for sr in res.strategy_results)


def total_work(res) -> int:
    """Summed search effort: conflicts + decisions across strategies."""
    return sum(
        sr.statistics.get("conflicts", 0) + sr.statistics.get("decisions", 0)
        for sr in res.strategy_results
    )


class TestSharingDeterminism:
    def test_sat_race_identical_statuses_and_models(self):
        """Sharing must not change what is found — only how fast."""
        problem = workloads.sharing_problem()
        runs = {}
        for share in (False, True):
            res = synthesize_portfolio(problem, sat_strategies(),
                                       backend="serial",
                                       share_knowledge=share)
            assert res.status == STATUS_SAT and res.winner == "routes-2"
            assert collect_violations(res.solution) == []
            runs[share] = res
        assert (
            {sr.name: sr.status for sr in runs[False].strategy_results}
            == {sr.name: sr.status for sr in runs[True].strategy_results}
        )
        assert runs[False].solution.schedules == runs[True].solution.schedules

    def test_sat_race_prunes_conflicts(self):
        """The routes-1 veto provably prunes routes-2's search.

        The pruning shows up as strictly less summed search work
        (conflicts + decisions): the funnel's doomed all-shortest
        subtree dies by unit propagation instead of being explored.
        """
        problem = workloads.sharing_problem()
        res_off = synthesize_portfolio(problem, sat_strategies(),
                                       backend="serial",
                                       share_knowledge=False)
        res_on = synthesize_portfolio(problem, sat_strategies(),
                                      backend="serial", share_knowledge=True)
        assert total_work(res_on) < total_work(res_off)
        assert total_conflicts(res_on) <= total_conflicts(res_off)
        seeded = res_on.result_for("routes-2").statistics
        assert seeded.get("route_vetoes_applied", 0) > 0
        assert res_on.pool_statistics["vetoes_pooled"] > 0
        # Sharing off keeps the pool (and the counters) entirely empty.
        assert res_off.pool_statistics == {}
        for sr in res_off.strategy_results:
            assert sr.statistics.get("clauses_imported", 0) == 0
            assert sr.statistics.get("route_vetoes_applied", 0) == 0

    def test_unsat_race_imports_clauses_and_keeps_verdict(self):
        """routes-2's proof seeds everyone; monolithic supplies unsat."""
        problem = workloads.sharing_unsat_problem()
        res_off = synthesize_portfolio(problem, unsat_strategies(),
                                       backend="serial",
                                       share_knowledge=False)
        res_on = synthesize_portfolio(problem, unsat_strategies(),
                                      backend="serial", share_knowledge=True)
        for res in (res_off, res_on):
            assert res.status == STATUS_UNSAT
            assert res.verdict_by == "monolithic"
            assert res.winner is None
        assert total_conflicts(res_on) < total_conflicts(res_off)
        imported = sum(sr.statistics.get("clauses_imported", 0)
                       for sr in res_on.strategy_results)
        assert imported > 0
        assert res_on.pool_statistics["clauses_pooled"] > 0

    def test_process_backend_with_sharing_stays_sound(self):
        problem = workloads.sharing_problem()
        res = synthesize_portfolio(problem, sat_strategies(),
                                   backend="process", timeout=120,
                                   share_knowledge=True)
        assert res.status == STATUS_SAT
        assert collect_violations(res.solution) == []


class TestStagePrefixSeeding:
    def test_prefix_fast_forwards_a_same_signature_rerun(self):
        """A relaunch seeded with a frozen prefix probes instead of
        re-searching the already-solved stages."""
        problem = workloads.random_problem(0, n_apps=3)
        opts = SynthesisOptions(routes=2, stages=2)
        pool = KnowledgePool()
        events = []

        def on_event(event):
            events.append(event)
            pool.absorb(sharing.prefix_artifact(opts, event["stage"],
                                                event["fixed"]),
                        source="stages-2")

        first = synth.solve(problem, opts, on_event=on_event)
        assert first.status == "sat"
        assert events, "incremental solve should emit stage_frozen events"
        assert pool.statistics["prefixes_pooled"] > 0

        seeded_opts = pool.seeded_options(opts)
        assert seeded_opts.seed_knowledge is not None
        assert seeded_opts.seed_knowledge.stage_prefix is not None
        rerun = synth.solve(problem, seeded_opts)
        assert rerun.status == "sat"
        assert rerun.statistics["prefix_probes"] > 0
        assert rerun.statistics["prefix_hits"] > 0
        assert collect_violations(rerun.solution) == []

    def test_prefix_only_seeds_matching_signature(self):
        opts = SynthesisOptions(routes=2, stages=2)
        pool = KnowledgePool()
        pool.absorb({"kind": "prefix",
                     "signature": sharing.signature_of(opts),
                     "stages_completed": 1, "messages": ()})
        other = SynthesisOptions(routes=2, stages=4)
        seed = pool.seed_for(other)
        assert seed is None or seed.stage_prefix is None


class TestClauseExchange:
    def test_literal_round_trip(self):
        x, y = Real("shx"), Real("shy")
        atom = (x - y <= Fraction(3, 2))
        for expr, negated in ((Bool("shb"), False), (atom, True)):
            ser = serialize_literal(expr, negated)
            back, neg = deserialize_literal(ser)
            assert neg == negated
            # Interning: the round trip lands on the identical SAT var.
            eng = synth.Solver()
            eng.add(expr if not isinstance(expr, bool) else expr)
            assert eng._cnf.literal_for(back) == eng._cnf.literal_for(expr)

    def test_import_constrains_the_solver(self):
        a, b = Bool("sh_imp_a"), Bool("sh_imp_b")
        clause = (serialize_literal(a, True), serialize_literal(b, True))
        eng = synth.Solver()
        eng.add(a)
        assert eng.import_clauses([clause]) == 1
        assert eng.clauses_imported == 1
        out = eng.check()
        assert out == "sat"
        assert eng.model()[b] is False  # ~a or ~b forces ~b under a

    def test_import_pad_weakens_the_clause(self):
        a, b, c = Bool("sh_pad_a"), Bool("sh_pad_b"), Bool("sh_pad_c")
        clause = (serialize_literal(a, True), serialize_literal(b, True))
        eng = synth.Solver()
        eng.add(a, b)                      # contradicts the bare clause
        eng.import_clauses([clause], pad=[c])
        out = eng.check()
        assert out == "sat"
        assert eng.model()[c] is True      # the pad literal absorbed it

    def test_export_respects_vocabulary_and_caps(self):
        problem = workloads.sharing_unsat_problem()
        eng = synth.Solver()
        session = Session(backend=NativeBackend(engine=eng))
        result = synth.solve(problem, SynthesisOptions(routes=2),
                             session=session)
        assert result.status == "unsat"
        assert result.route_veto, "single-stage unsat must carry a veto"
        clauses = eng.export_learned_clauses(
            vocabulary=sharing.schedule_vocabulary)
        assert clauses, "the funnel proof should learn shareable clauses"
        for clause in clauses:
            assert len(clause) <= sharing.MAX_CLAUSE_SIZE
            for ser in clause:
                expr, _ = deserialize_literal(ser)
                assert sharing.schedule_vocabulary(expr)
        assert len(eng.export_learned_clauses(max_count=1)) <= 1

    def test_incremental_runs_never_export_terminal_artifacts(self):
        """Heuristic-freeze consequences must stay private (soundness)."""
        problem = workloads.bottleneck_repair_problem()
        opts = SynthesisOptions(routes=2, stages=2)
        eng = synth.Solver()
        session = Session(backend=NativeBackend(engine=eng))
        result = synth.solve(problem, opts, session=session)
        assert result.status == "unsat"  # the staged-heuristic trap
        assert result.route_veto is None
        assert sharing.terminal_artifacts(opts, result, eng) == []


class TestVetoSemantics:
    def test_veto_with_no_escape_is_entailed_false(self):
        """A stricter sibling inherits the proof outright."""
        problem = workloads.sharing_unsat_problem()
        pool = KnowledgePool()
        res = synthesize_portfolio(problem, unsat_strategies(),
                                   backend="serial", share_knowledge=True)
        seeded = res.result_for("routes-1").statistics
        assert seeded.get("route_vetoes_applied", 0) > 0
        # routes-1 inherited unsat by propagation, not by search.
        assert seeded.get("conflicts", 0) == 0
        assert res.result_for("routes-1").status == STATUS_UNSAT
