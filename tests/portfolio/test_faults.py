"""Chaos matrix: the supervised race under deterministic fault injection.

Every scenario here drives :mod:`repro.portfolio.faults` through the
real engine — process workers really get SIGKILLed, really hang, really
ship corrupt frames — and checks the supervision contract of
``docs/robustness.md``: crashes are retried with backoff, stalls are
detected by missed heartbeats, malformed artifacts are quarantined (not
raised), exhausted crash budgets degrade to the serial backend, and no
scenario leaks a process or changes a verdict.
"""

import multiprocessing
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.synthesizer import SynthesisOptions
from repro.eval.workloads import gm_case_study, sharing_problem
from repro.portfolio import (
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    Strategy,
    SupervisionPolicy,
    synthesize_portfolio,
)
from repro.portfolio.faults import (
    CORRUPT,
    CRASH,
    DROP_RESULT,
    HANG,
    SLOW_START,
    WorkerFaults,
    corrupt_frame,
)
from repro.portfolio.sharing import KnowledgePool, validate_artifact

#: Fast supervision for tests: tight heartbeats, sub-second stall
#: detection, near-instant backoff, short kill grace.
FAST = SupervisionPolicy(heartbeat_interval=0.02, stall_timeout=0.6,
                         backoff_base=0.01, backoff_factor=2.0,
                         backoff_cap=0.05, kill_grace=0.3)


def mono() -> list:
    return [Strategy("monolithic", SynthesisOptions())]


def assert_no_leaked_workers() -> None:
    for proc in multiprocessing.active_children():
        proc.join(timeout=2.0)
    assert multiprocessing.active_children() == []


class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("meteor-strike")
        with pytest.raises(ValueError):
            FaultSpec(CRASH, attempt=-1)
        with pytest.raises(ValueError):
            FaultSpec(CRASH, at_conflicts=-1)

    def test_for_attempt_targets_strategy_and_attempt(self):
        plan = FaultPlan([FaultSpec(CRASH, strategy="a", attempt=2),
                          FaultSpec(CORRUPT, strategy="b", attempt=0)])
        assert plan.for_attempt("a", 1, harsh=True) is None
        hit = plan.for_attempt("a", 2, harsh=True)
        assert hit.crash is not None and hit.harsh
        # attempt=0 matches every attempt of its strategy
        for attempt in (1, 2, 5):
            assert plan.for_attempt("b", attempt, harsh=False).corrupt_frames

    def test_chaos_plan_is_deterministic_and_recoverable(self):
        names = ["monolithic", "routes-1", "routes-2"]
        one = FaultPlan.chaos(seed=42, strategy_names=names,
                              crashes=2, hangs=1, corruptions=2)
        two = FaultPlan.chaos(seed=42, strategy_names=names,
                              crashes=2, hangs=1, corruptions=2)
        assert one.specs == two.specs
        # Kill-type specs never target more than attempts {1, 2} of one
        # strategy, so the default max_crash_retries=2 always recovers.
        per_strategy = {}
        for spec in one.specs:
            if spec.kind in (CRASH, HANG, DROP_RESULT):
                assert spec.attempt in (1, 2)
                per_strategy.setdefault(spec.strategy, set()).add(spec.attempt)
        assert all(len(hits) <= 2 for hits in per_strategy.values())

    def test_backoff_schedule_is_deterministic_and_capped(self):
        policy = SupervisionPolicy(backoff_base=0.05, backoff_factor=2.0,
                                   backoff_cap=0.3)
        assert policy.backoff_schedule(5) == [0.05, 0.1, 0.2, 0.3, 0.3]
        assert policy.backoff_schedule(5) == policy.backoff_schedule(5)


class TestQuarantine:
    """Malformed artifacts are counted and dropped at the pool boundary."""

    def _clean_artifact(self) -> dict:
        # Produce a real artifact by racing the sharing funnel serially.
        pool_probe = {}

        def capture(artifact):
            pool_probe.setdefault("artifact", artifact)

        from repro.portfolio.engine import _execute_strategy
        _execute_strategy(sharing_problem(),
                          Strategy("routes-1", SynthesisOptions(routes=1)),
                          emit=capture)
        assert "artifact" in pool_probe
        return pool_probe["artifact"]

    def test_corrupt_frame_fails_validation_but_clean_passes(self):
        artifact = self._clean_artifact()
        assert validate_artifact(artifact) is None
        assert validate_artifact(corrupt_frame(artifact, 0)) is not None

    def test_pool_quarantines_instead_of_raising(self):
        artifact = self._clean_artifact()
        pool = KnowledgePool()
        assert pool.absorb(artifact, source="clean")
        for junk in (corrupt_frame(artifact, 0), None, 42,
                     {"kind": "clauses"}, {"no": "kind"}):
            assert not pool.absorb(junk, source="junk")
        assert pool.counters["quarantined_artifacts"] == 5

    def test_corrupt_frame_in_race_is_quarantined_not_fatal(self):
        plan = FaultPlan([FaultSpec(CORRUPT, strategy="routes-1",
                                    attempt=0, frame=0)])
        res = synthesize_portfolio(
            sharing_problem(),
            [Strategy("monolithic", SynthesisOptions()),
             Strategy("routes-1", SynthesisOptions(routes=1))],
            timeout=60, supervision=FAST, fault_plan=plan)
        assert res.status == "sat"
        assert res.supervision_statistics["quarantined_artifacts"] >= 1
        assert res.pool_statistics.get("quarantined_artifacts", 0) >= 1
        assert_no_leaked_workers()


class TestCrashSupervision:
    def test_sigkill_mid_race_is_retried_and_race_wins(self):
        plan = FaultPlan([FaultSpec(CRASH, strategy="monolithic", attempt=1)])
        res = synthesize_portfolio(sharing_problem(), mono(), timeout=60,
                                   supervision=FAST, fault_plan=plan)
        assert res.status == "sat"
        sr = res.result_for("monolithic")
        assert sr.attempts == 2
        assert sr.statistics["crashes"] == 1
        assert res.supervision_statistics["crash_retries"] == 1
        assert not res.degraded_to_serial
        assert_no_leaked_workers()

    def test_hang_is_detected_by_missed_heartbeats(self):
        plan = FaultPlan([FaultSpec(HANG, strategy="monolithic", attempt=1)])
        res = synthesize_portfolio(sharing_problem(), mono(), timeout=60,
                                   supervision=FAST, fault_plan=plan)
        assert res.status == "sat"
        assert res.supervision_statistics["stalls_detected"] == 1
        assert res.supervision_statistics["crash_retries"] == 1
        assert_no_leaked_workers()

    def test_drop_result_is_a_crash_despite_clean_exit(self):
        plan = FaultPlan([FaultSpec(DROP_RESULT, strategy="monolithic",
                                    attempt=1)])
        res = synthesize_portfolio(sharing_problem(), mono(), timeout=60,
                                   supervision=FAST, fault_plan=plan)
        assert res.status == "sat"
        assert res.supervision_statistics["crashes"] == 1
        assert res.result_for("monolithic").attempts == 2
        assert_no_leaked_workers()

    def test_crash_budget_exhaustion_degrades_to_serial(self):
        plan = FaultPlan([FaultSpec(CRASH, strategy="monolithic", attempt=a)
                          for a in (1, 2, 3)])
        res = synthesize_portfolio(sharing_problem(), mono(), timeout=60,
                                   supervision=FAST, fault_plan=plan)
        assert res.status == "sat"
        assert res.degraded_to_serial
        stats = res.supervision_statistics
        assert stats["crash_budget_exhausted"] == 1
        assert stats["degradations"] == 1
        assert res.result_for("monolithic").attempts == 4
        assert_no_leaked_workers()

    def test_crash_on_every_attempt_ends_in_error_never_unsat(self):
        # attempt=0 crashes the strategy in the process race AND the
        # serial rescue: both budgets exhaust, and the race must report
        # error/unknown — never a fabricated verdict.
        plan = FaultPlan([FaultSpec(CRASH, strategy="monolithic", attempt=0)])
        res = synthesize_portfolio(sharing_problem(), mono(), timeout=60,
                                   supervision=FAST, fault_plan=plan)
        assert res.status == "unknown"
        assert res.result_for("monolithic").status == "error"
        assert res.degraded_to_serial
        assert res.supervision_statistics["crash_budget_exhausted"] >= 2
        assert_no_leaked_workers()

    def test_crash_with_empty_restart_schedule_is_retried(self):
        # Regression: crash retries must not advance the restart-schedule
        # position — a crash with ``timeout`` set and ``restarts=()``
        # used to index past the schedule and crash the whole race.
        plan = FaultPlan([FaultSpec(CRASH, strategy="monolithic", attempt=1)])
        strategies = [Strategy("monolithic", SynthesisOptions(),
                               timeout=60.0)]
        res = synthesize_portfolio(sharing_problem(), strategies, timeout=60,
                                   supervision=FAST, fault_plan=plan)
        assert res.status == "sat"
        assert res.result_for("monolithic").attempts == 2
        assert res.supervision_statistics["crash_retries"] == 1
        assert not res.degraded_to_serial
        assert_no_leaked_workers()

    def test_crash_retry_keeps_budget_after_schedule_rerun(self):
        # timeout=0 expires attempt 1 instantly; the schedule grants one
        # more budget; a crash on that rerun is relaunched with the same
        # (last) budget instead of consuming a nonexistent third entry.
        plan = FaultPlan([FaultSpec(CRASH, strategy="monolithic", attempt=2)])
        strategies = [Strategy("monolithic", SynthesisOptions(),
                               timeout=0.0, restarts=(120.0,))]
        res = synthesize_portfolio(sharing_problem(), strategies, timeout=60,
                                   supervision=FAST, fault_plan=plan)
        assert res.status == "sat"
        assert res.result_for("monolithic").attempts == 3
        assert res.supervision_statistics["crash_retries"] == 1
        assert_no_leaked_workers()

    def test_crash_backoff_loser_is_cancelled_not_timeout(self):
        # A strategy parked on crash-retry backoff when another strategy
        # wins lost the race — it must not be labeled "timeout" (the
        # race didn't time out), which would skew _final_verdict.
        parked = SupervisionPolicy(heartbeat_interval=0.02,
                                   backoff_base=30.0, backoff_cap=30.0,
                                   kill_grace=0.3)
        plan = FaultPlan([FaultSpec(CRASH, strategy="crasher", attempt=0)])
        strategies = [
            Strategy("monolithic", SynthesisOptions()),
            Strategy("crasher", SynthesisOptions(routes=1)),
        ]
        res = synthesize_portfolio(sharing_problem(), strategies, timeout=60,
                                   supervision=parked, fault_plan=plan)
        assert res.status == "sat"
        assert res.winner == "monolithic"
        assert res.result_for("crasher").status == "cancelled"
        assert_no_leaked_workers()

    def test_non_native_backend_is_exempt_from_stall_detection(self):
        # Only native-backend workers heartbeat (the on_restart hook);
        # a serialization-backend worker quiet past stall_timeout is
        # working, not stalled, and must not be killed.
        policy = SupervisionPolicy(heartbeat_interval=0.02,
                                   stall_timeout=0.15, backoff_base=0.01,
                                   backoff_cap=0.05, kill_grace=0.3)
        plan = FaultPlan([FaultSpec(SLOW_START, strategy="ser",
                                    attempt=0, delay=0.5)])
        strategies = [Strategy("ser",
                               SynthesisOptions(backend="serialization"))]
        res = synthesize_portfolio(sharing_problem(), strategies, timeout=60,
                                   supervision=policy, fault_plan=plan)
        assert res.status == "sat"
        assert res.supervision_statistics["stalls_detected"] == 0
        assert res.result_for("ser").attempts == 1
        assert not res.degraded_to_serial
        assert_no_leaked_workers()

    def test_slow_start_is_not_mistaken_for_a_stall(self):
        plan = FaultPlan([FaultSpec(SLOW_START, strategy="monolithic",
                                    attempt=1, delay=0.2)])
        res = synthesize_portfolio(sharing_problem(), mono(), timeout=60,
                                   supervision=FAST, fault_plan=plan)
        assert res.status == "sat"
        assert res.supervision_statistics["stalls_detected"] == 0
        assert res.supervision_statistics["crashes"] == 0
        assert_no_leaked_workers()


class TestAcceptanceChaos:
    """The ISSUE's acceptance scenario on both reference workloads."""

    def _chaos(self, problem, strategies, plan):
        base = synthesize_portfolio(problem, strategies, timeout=60,
                                    supervision=FAST)
        chaos = synthesize_portfolio(problem, strategies, timeout=60,
                                     supervision=FAST, fault_plan=plan)
        assert chaos.status == base.status
        assert chaos.winner == base.winner
        assert chaos.supervision_statistics["crash_retries"] >= 1
        assert_no_leaked_workers()
        return chaos

    def test_sharing_problem_survives_kill_hang_corrupt(self):
        strategies = [
            Strategy("monolithic", SynthesisOptions()),
            Strategy("routes-1", SynthesisOptions(routes=1)),
            Strategy("routes-2", SynthesisOptions(routes=2)),
            Strategy("stages-2", SynthesisOptions(routes=3, stages=2)),
        ]
        plan = FaultPlan([
            FaultSpec(CRASH, strategy="routes-2", attempt=1),
            FaultSpec(HANG, strategy="stages-2", attempt=1),
            FaultSpec(CORRUPT, strategy="routes-1", attempt=0, frame=0),
        ], seed=11)
        chaos = self._chaos(sharing_problem(), strategies, plan)
        assert chaos.supervision_statistics["quarantined_artifacts"] >= 1

    def test_gm_case_study_survives_kill_hang_corrupt(self):
        strategies = [
            Strategy("monolithic", SynthesisOptions(max_conflicts=150)),
            Strategy("routes-1", SynthesisOptions(routes=1)),
            Strategy("stages-2", SynthesisOptions(routes=3, stages=2)),
        ]
        plan = FaultPlan([
            FaultSpec(CRASH, strategy="routes-1", attempt=1),
            FaultSpec(HANG, strategy="stages-2", attempt=1),
            FaultSpec(CORRUPT, strategy="monolithic", attempt=0, frame=0),
        ], seed=13)
        self._chaos(gm_case_study(4), strategies, plan)


class TestSerialSupervision:
    def test_serial_injected_crash_is_retried(self):
        plan = FaultPlan([FaultSpec(CRASH, strategy="monolithic", attempt=1)])
        res = synthesize_portfolio(sharing_problem(), mono(),
                                   backend="serial", timeout=60,
                                   supervision=FAST, fault_plan=plan)
        assert res.status == "sat"
        assert res.result_for("monolithic").attempts == 2
        assert res.supervision_statistics["crash_retries"] == 1

    def test_serial_exhaustion_is_error_not_crash(self):
        plan = FaultPlan([FaultSpec(CRASH, strategy="monolithic", attempt=0)])
        res = synthesize_portfolio(sharing_problem(), mono(),
                                   backend="serial", timeout=60,
                                   supervision=FAST, fault_plan=plan)
        assert res.status == "unknown"
        assert res.result_for("monolithic").status == "error"
        assert res.supervision_statistics["crash_budget_exhausted"] == 1

    def test_injected_crash_never_becomes_an_error_payload(self):
        # The blanket except in _execute_strategy must let InjectedCrash
        # through to the supervisor — swallowing it would skip the retry.
        from repro.portfolio.engine import _execute_strategy
        faults = WorkerFaults(strategy="monolithic", attempt=1, harsh=False,
                              crash=FaultSpec(CRASH, strategy="monolithic"))
        crashed = Strategy("monolithic", SynthesisOptions(faults=faults))
        with pytest.raises(InjectedCrash):
            _execute_strategy(sharing_problem(), crashed)

    def test_serial_global_deadline_enforced_mid_strategy(self):
        # One heavy native strategy, a deadline far below its solve
        # time: the watchdog must interrupt the engine mid-check instead
        # of letting the attempt run to completion.
        t0 = time.perf_counter()
        res = synthesize_portfolio(gm_case_study(6), mono(),
                                   backend="serial", timeout=0.3)
        wall = time.perf_counter() - t0
        assert res.status == "timeout"
        assert res.strategy_results[0].status == "timeout"
        # Generous bound: encoding isn't preemptible, solving is.
        assert wall < 30.0


class TestVerdictPreservation:
    """Property: a recoverable FaultPlan changes cost, never the verdict."""

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=10_000),
           crashes=st.integers(min_value=0, max_value=2),
           hangs=st.integers(min_value=0, max_value=1),
           corruptions=st.integers(min_value=0, max_value=2))
    def test_chaos_plans_never_change_the_verdict(self, seed, crashes,
                                                  hangs, corruptions):
        strategies = [
            Strategy("monolithic", SynthesisOptions()),
            Strategy("routes-1", SynthesisOptions(routes=1)),
        ]
        plan = FaultPlan.chaos(
            seed=seed, strategy_names=[s.name for s in strategies],
            crashes=crashes, hangs=hangs, corruptions=corruptions)
        base = synthesize_portfolio(sharing_problem(), strategies,
                                    timeout=60, supervision=FAST)
        chaos = synthesize_portfolio(sharing_problem(), strategies,
                                     timeout=60, supervision=FAST,
                                     fault_plan=plan)
        assert chaos.status == base.status
        assert chaos.winner == base.winner
        assert_no_leaked_workers()
