"""Per-strategy timeouts and restart schedules in the portfolio engine."""

import pytest

from repro.core.synthesizer import SynthesisOptions
from repro.eval import workloads
from repro.portfolio import (
    STATUS_SAT,
    Strategy,
    default_portfolio,
    synthesize_portfolio,
    with_restart_schedule,
)


def _tiny_problem():
    return workloads.random_problem(0, n_apps=3)


class TestStrategyFields:
    def test_defaults(self):
        s = Strategy("s", SynthesisOptions(routes=1))
        assert s.timeout is None
        assert s.restarts == ()

    def test_restarts_require_timeout(self):
        with pytest.raises(ValueError, match="restart schedule"):
            Strategy("s", SynthesisOptions(routes=1), restarts=(1.0,))

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout"):
            Strategy("s", SynthesisOptions(routes=1), timeout=-1.0)

    def test_restarts_coerced_to_tuple(self):
        s = Strategy("s", SynthesisOptions(routes=1), timeout=1.0,
                     restarts=[2.0, 4.0])
        assert s.restarts == (2.0, 4.0)


class TestRestartScheduleHelper:
    def test_geometric_schedule(self):
        scheduled = with_restart_schedule(
            default_portfolio(), base_timeout=1.0, factor=2.0, rounds=2
        )
        for s in scheduled:
            assert s.timeout == 1.0
            assert s.restarts == (2.0, 4.0)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            with_restart_schedule(default_portfolio(), base_timeout=0)
        with pytest.raises(ValueError):
            with_restart_schedule(default_portfolio(), base_timeout=1.0,
                                  rounds=-1)


class TestRacingWithBudgets:
    def test_per_strategy_timeout_does_not_block_winner(self):
        """A strategy stuck at a zero budget must not stall the race."""
        problem = _tiny_problem()
        entries = [
            Strategy("starved", SynthesisOptions(routes=3, stages=4),
                     timeout=0.0),
            Strategy("free", SynthesisOptions(routes=1)),
        ]
        res = synthesize_portfolio(problem, entries)
        assert res.status == STATUS_SAT
        assert res.winner == "free"
        starved = res.result_for("starved")
        # Killed at its own deadline (or cancelled if the winner landed in
        # the same poll window) — never the winner, exactly one attempt.
        assert starved.status != STATUS_SAT
        assert starved.attempts == 1

    def test_restart_schedule_retries_until_sat(self):
        """A generous restart budget lets a starved strategy finish."""
        problem = _tiny_problem()
        entries = [
            Strategy("retrying", SynthesisOptions(routes=1),
                     timeout=0.0, restarts=(120.0,)),
        ]
        res = synthesize_portfolio(problem, entries)
        assert res.status == STATUS_SAT
        assert res.winner == "retrying"
        assert res.result_for("retrying").attempts == 2

    def test_serial_backend_ignores_budgets(self):
        problem = _tiny_problem()
        entries = [
            Strategy("only", SynthesisOptions(routes=1), timeout=0.0),
        ]
        res = synthesize_portfolio(problem, entries, backend="serial")
        assert res.status == STATUS_SAT
        assert res.result_for("only").attempts == 1
