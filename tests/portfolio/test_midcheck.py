"""Mid-check clause export: restart artifacts and unit round-trips.

PR 4 gave portfolio workers terminal clause export (ship the learnt DB
with the final verdict).  These tests cover the paths added on top: the
``on_restart`` hook that flushes exportable clauses from *inside* a
check — so a worker killed mid-search still contributes — and root-level
(level-0) facts exported as unit clauses, which the learned-clause
export cannot see because unit learnts live on the trail, not in the DB.
"""

from repro.core.synthesizer import SynthesisOptions
from repro.eval import workloads
from repro.portfolio import Strategy, synthesize_portfolio
from repro.portfolio.sharing import (
    KnowledgePool,
    restart_artifacts,
    schedule_vocabulary,
    signature_of,
)
from repro.smt import Bool, Or
from repro.smt.solver import SolverEngine


def _vocab_bool(name_suffix: str):
    """A Boolean inside the cross-strategy stable vocabulary."""
    return Bool(f"ns/R[{name_suffix}]")


class TestUnitExport:
    def test_root_facts_export_as_unit_artifacts(self):
        engine = SolverEngine()
        x, y = _vocab_bool("m0][0"), _vocab_bool("m1][0")
        engine.add(x)                  # root-level fact
        engine.add(Or(x, y))           # non-unit, irrelevant here
        assert engine.check().name == "sat"
        units = engine.export_unit_clauses(vocabulary=schedule_vocabulary)
        assert len(units) == 1
        assert len(units[0]) == 1      # serialized as a 1-tuple

    def test_vocabulary_excludes_stage_guards(self):
        engine = SolverEngine()
        guard = Bool("ns/R[m0][0]!freeze")   # "!" marks a solver-local var
        engine.add(guard)
        assert engine.check().name == "sat"
        assert engine.export_unit_clauses(
            vocabulary=schedule_vocabulary) == []

    def test_units_round_trip_through_the_pool(self):
        exporter = SolverEngine()
        x, y = _vocab_bool("m0][0"), _vocab_bool("m1][0")
        exporter.add(x, Or(x, y))
        assert exporter.check().name == "sat"

        options = SynthesisOptions(routes=1)
        pool = KnowledgePool()
        for artifact in restart_artifacts(options, exporter):
            pool.absorb(artifact, source="exporter")
        assert pool.statistics["midcheck_clauses_pooled"] >= 1

        seed = pool.seed_for(options)
        assert seed is not None
        importer = SolverEngine()
        # Without the unit, phase saving picks x=False (y carries Or).
        importer.add(Or(x, y))
        installed = sum(
            importer.import_clauses(batch.clauses)
            for batch in seed.clause_batches
        )
        assert installed >= 1
        assert importer.clauses_imported == installed
        assert importer.check().name == "sat"
        assert importer.model().eval_bool(x) is True

    def test_incremental_strategies_never_export_midcheck(self):
        engine = SolverEngine()
        engine.add(_vocab_bool("m0][0"))
        assert engine.check().name == "sat"
        staged = SynthesisOptions(routes=1, stages=3)
        assert restart_artifacts(staged, engine) == []

    def test_restart_artifact_is_tagged_midcheck(self):
        engine = SolverEngine()
        engine.add(_vocab_bool("m0][0"))
        assert engine.check().name == "sat"
        options = SynthesisOptions(routes=1)
        artifacts = restart_artifacts(options, engine)
        assert len(artifacts) == 1
        assert artifacts[0]["origin"] == "mid-check"
        assert artifacts[0]["kind"] == "clauses"
        assert artifacts[0]["signature"] == signature_of(options)


class TestMidCheckRace:
    def test_budget_killed_monolithic_seeds_the_winner(self):
        """The bench/CI scenario, end to end on the serial backend.

        The monolithic worker hits ``max_conflicts`` inside its first
        long check and answers unknown — but its restart-boundary
        exports must reach the pool, and the routes-1 winner must
        measurably import them.
        """
        problem = workloads.gm_case_study(n_apps=4)
        strategies = [
            Strategy("monolithic", SynthesisOptions(
                routes=None, dl_propagation=False, max_conflicts=150)),
            Strategy("routes-1", SynthesisOptions(
                routes=1, dl_propagation=False)),
        ]
        res = synthesize_portfolio(problem, strategies, backend="serial",
                                   share_knowledge=True)
        by_name = {sr.name: sr for sr in res.strategy_results}
        assert by_name["monolithic"].status == "unknown"
        assert by_name["routes-1"].status == "sat"
        assert res.status == "sat" and res.winner == "routes-1"
        assert res.pool_statistics["midcheck_clauses_pooled"] > 0
        assert by_name["routes-1"].statistics.get("clauses_imported", 0) > 0

    def test_unknown_is_never_a_race_verdict(self):
        """A budget-killed complete strategy must not decide the race."""
        problem = workloads.gm_case_study(n_apps=4)
        strategies = [
            Strategy("monolithic", SynthesisOptions(
                routes=None, dl_propagation=False, max_conflicts=150)),
        ]
        res = synthesize_portfolio(problem, strategies, backend="serial",
                                   share_knowledge=True)
        assert res.strategy_results[0].status == "unknown"
        assert res.status == "unknown"
        assert res.winner is None
