"""End-to-end portfolio racing on a small mesh topology.

The mesh (4 switches in a square with one diagonal) offers genuine route
diversity, so every default strategy family — monolithic, route-subset,
incremental — is exercised meaningfully.  The winning schedule must pass
the independent validator and agree with running the winning strategy on
its own.
"""

from fractions import Fraction

import pytest

from repro.core import (
    ControlApplication,
    MODE_DEADLINE,
    SynthesisOptions,
    SynthesisProblem,
    collect_violations,
    synthesize,
)
from repro.network import DelayModel, Network, microseconds
from repro.portfolio import (
    STATUS_CANCELLED,
    STATUS_ERROR,
    STATUS_SAT,
    STATUS_SKIPPED,
    STATUS_TIMEOUT,
    STATUS_UNSAT,
    Strategy,
    default_portfolio,
    synthesize_portfolio,
)
from repro.stability import StabilitySpec

FAST = DelayModel(sd=microseconds(5), ld=Fraction(120, 1_000_000))

TERMINAL = {STATUS_SAT, STATUS_UNSAT, STATUS_ERROR,
            STATUS_CANCELLED, STATUS_TIMEOUT, STATUS_SKIPPED}


def ms(x):
    return Fraction(x) / 1000


def mesh_network(n_apps=2) -> Network:
    """A 2x2 switch mesh (square + diagonal) with per-app endpoints."""
    net = Network()
    for i in range(4):
        net.add_switch(f"SW{i}")
    for u, v in (("SW0", "SW1"), ("SW1", "SW2"), ("SW2", "SW3"),
                 ("SW3", "SW0"), ("SW0", "SW2")):
        net.add_link(u, v)
    for i in range(n_apps):
        net.add_sensor(f"S{i}")
        net.add_controller(f"C{i}")
        net.add_link(f"S{i}", f"SW{i % 4}")
        net.add_link(f"C{i}", f"SW{(i + 2) % 4}")
    return net


def mesh_problem(n_apps=2, period_ms=10, beta_ms=8) -> SynthesisProblem:
    apps = [
        ControlApplication(
            f"app{i}", f"S{i}", f"C{i}", ms(period_ms),
            StabilitySpec.single_line("1.5", str(float(ms(beta_ms)))),
        )
        for i in range(n_apps)
    ]
    return SynthesisProblem(mesh_network(n_apps), apps, FAST)


def small_portfolio():
    return [
        Strategy("routes-1", SynthesisOptions(routes=1)),
        Strategy("routes-2", SynthesisOptions(routes=2)),
        Strategy("stages-2", SynthesisOptions(routes=2, stages=2)),
    ]


class TestPortfolioEndToEnd:
    @pytest.mark.parametrize("backend", ["process", "serial"])
    def test_winner_is_validator_clean(self, backend):
        problem = mesh_problem()
        res = synthesize_portfolio(
            problem, small_portfolio(), backend=backend, timeout=120
        )
        assert res.ok and res.status == STATUS_SAT
        assert res.winner in {s.name for s in small_portfolio()}
        assert collect_violations(res.solution) == []
        # Every message of the hyper-period is scheduled.
        assert set(res.solution.schedules) == {m.uid for m in problem.messages}

    def test_winner_matches_single_strategy_validity(self):
        """Re-running the winning strategy alone reproduces satisfiability."""
        problem = mesh_problem()
        entries = small_portfolio()
        res = synthesize_portfolio(problem, entries, backend="process",
                                   timeout=120)
        assert res.ok
        winner_opts = next(
            s.options for s in entries if s.name == res.winner
        )
        alone = synthesize(problem, winner_opts)
        assert alone.ok
        assert collect_violations(alone.solution) == []

    @pytest.mark.parametrize("backend", ["process", "serial"])
    def test_per_strategy_reports(self, backend):
        entries = small_portfolio()
        res = synthesize_portfolio(
            mesh_problem(), entries, backend=backend, timeout=120
        )
        assert len(res.strategy_results) == len(entries)
        assert [sr.name for sr in res.strategy_results] == [
            s.name for s in entries
        ]
        for sr in res.strategy_results:
            assert sr.status in TERMINAL
            assert sr.wall_time >= 0.0
            if sr.status == STATUS_SAT:
                assert sr.statistics.get("conflicts") is not None
        # The designated winner genuinely reported sat.
        assert res.result_for(res.winner).status == STATUS_SAT

    def test_losers_do_not_survive(self):
        """First-sat-wins: no loser is left in a running state."""
        res = synthesize_portfolio(
            mesh_problem(), default_portfolio(), backend="process",
            timeout=120,
        )
        assert res.ok
        non_winners = [
            sr for sr in res.strategy_results if sr.name != res.winner
        ]
        assert all(sr.status in TERMINAL - {None} for sr in non_winners)
        assert any(
            sr.status in (STATUS_CANCELLED, STATUS_SKIPPED, STATUS_SAT,
                          STATUS_UNSAT)
            for sr in non_winners
        )


class TestPortfolioUnsat:
    def unsat_problem(self) -> SynthesisProblem:
        """More traffic than one link can carry within the deadline."""
        net = Network()
        net.add_switch("SW0")
        net.add_switch("SW1")
        net.add_link("SW0", "SW1")
        n = 4
        for i in range(n):
            net.add_sensor(f"S{i}")
            net.add_controller(f"C{i}")
            net.add_link(f"S{i}", "SW0")
            net.add_link(f"C{i}", "SW1")
        period = FAST.ld * 3
        apps = [
            ControlApplication(f"a{i}", f"S{i}", f"C{i}", period, None)
            for i in range(n)
        ]
        return SynthesisProblem(net, apps, FAST)

    @pytest.mark.parametrize("backend", ["process", "serial"])
    def test_all_strategies_unsat(self, backend):
        strategies = [
            Strategy("routes-1", SynthesisOptions(mode=MODE_DEADLINE, routes=1)),
            Strategy("stages-2",
                     SynthesisOptions(mode=MODE_DEADLINE, routes=1, stages=2)),
        ]
        res = synthesize_portfolio(
            self.unsat_problem(), strategies, backend=backend, timeout=120
        )
        assert not res.ok
        assert res.winner is None and res.solution is None
        for sr in res.strategy_results:
            assert sr.status == STATUS_UNSAT


class TestPortfolioConfig:
    def test_duplicate_names_rejected(self):
        dup = [
            Strategy("same", SynthesisOptions(routes=1)),
            Strategy("same", SynthesisOptions(routes=2)),
        ]
        with pytest.raises(ValueError):
            synthesize_portfolio(mesh_problem(), dup)

    def test_empty_portfolio_rejected(self):
        with pytest.raises(ValueError):
            synthesize_portfolio(mesh_problem(), [])

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            synthesize_portfolio(
                mesh_problem(), small_portfolio(), backend="quantum"
            )

    def test_worker_errors_are_reported(self):
        """A strategy that cannot encode (stability without specs) errors
        out without sinking the race."""
        net = mesh_network(1)
        apps = [ControlApplication("a0", "S0", "C0", ms(10), None)]
        problem = SynthesisProblem(net, apps, FAST)
        strategies = [
            Strategy("needs-spec", SynthesisOptions(routes=1)),  # stability
            Strategy("deadline",
                     SynthesisOptions(mode=MODE_DEADLINE, routes=1)),
        ]
        res = synthesize_portfolio(problem, strategies, backend="serial",
                                   timeout=120)
        assert res.ok and res.winner == "deadline"
        assert res.result_for("needs-spec").status == STATUS_ERROR
        assert "EncodingError" in res.result_for("needs-spec").error
