"""The float-taint lattice: sources, laundering, scoping, joins."""

import ast
import textwrap

from repro.analysis.dataflow.taint import (
    ModuleTaint,
    eval_taint,
    join_envs,
    transfer_stmt,
)


def expr(source):
    return ast.parse(source, mode="eval").body


def ctx_of(source=""):
    return ModuleTaint.of_module(ast.parse(textwrap.dedent(source)))


def taint(source, env=None, ctx=None):
    return eval_taint(expr(source), env if env is not None else {},
                      ctx if ctx is not None else ctx_of())


class TestSources:
    def test_float_literal(self):
        assert taint("1.5") == "float literal 1.5 (line 1)"
        assert taint("3") is None

    def test_float_cast(self):
        assert taint("float(x)") == "float() cast (line 1)"

    def test_time_module(self):
        assert taint("time.monotonic()") == (
            "time.monotonic() wall-clock value (line 1)")
        assert taint("time.time") == "time.time (line 1)"

    def test_math_module_split(self):
        assert taint("math.sqrt(n)") == "math.sqrt() float result (line 1)"
        assert taint("math.pi") == "math.pi (line 1)"
        assert taint("math.gcd(a, b)") is None
        assert taint("math.isqrt(n)") is None

    def test_true_division_unproven(self):
        assert taint("a / b") == (
            "true division between values not proven exact (line 1)")
        assert taint("a // b") is None

    def test_fraction_division_stays_exact(self):
        assert taint("Fraction(1) / b") is None
        assert taint("bound.real / b") is None
        ctx = ctx_of("from fractions import Fraction\n"
                     "_F1 = Fraction(1)\n")
        assert taint("_F1 / a", ctx=ctx) is None
        # .numerator is an int, not a Fraction component: int/int is
        # still a float.
        assert taint("r.numerator / r.denominator") is not None


class TestPropagationAndLaundering:
    def test_env_lookup_and_arithmetic(self):
        env = {"g": "origin-g"}
        assert taint("g + 1", env) == "origin-g"
        assert taint("(g, 0)", env) == "origin-g"
        assert taint("container[g]", {"container": "origin-c"}) == "origin-c"

    def test_exact_calls_launder(self):
        env = {"g": "origin-g"}
        assert taint("int(g)", env) is None
        assert taint("round(g)", env) is None
        assert taint("Fraction(g)", env) is None  # flagged as a sink, not here

    def test_comparisons_and_not_are_booleans(self):
        env = {"g": "origin-g"}
        assert taint("g > 0", env) is None
        assert taint("not g", env) is None
        assert taint("-g", env) == "origin-g"

    def test_walrus_mutates_env(self):
        env = {}
        assert taint("(m := float(x))", env) == "float() cast (line 1)"
        assert env["m"] == "float() cast (line 1)"

    def test_comprehension_targets_do_not_leak(self):
        env = {"times": "origin-t"}
        assert taint("[t * 2 for t in times]", env) == "origin-t"
        assert "t" not in env
        assert taint("[k for k in counts]", env) is None


class TestTransfer:
    def run_stmts(self, source, env=None, ctx=None):
        ctx = ctx if ctx is not None else ctx_of()
        env = dict(env or {})
        for stmt in ast.parse(textwrap.dedent(source)).body:
            env = transfer_stmt(stmt, env, ctx)
        return env

    def test_assign_binds_and_rebinding_clears(self):
        env = self.run_stmts("g = time.monotonic()\nh = g\n")
        assert env["g"] == env["h"] == (
            "time.monotonic() wall-clock value (line 1)")
        env = self.run_stmts("g = 0\n", env)
        assert "g" not in env

    def test_literal_tuple_unpacking_is_elementwise(self):
        env = self.run_stmts("a, b = 1.5, 2\n")
        assert "a" in env and "b" not in env

    def test_self_attribute_keys(self):
        env = self.run_stmts("self._beta = float(x)\n")
        assert env["self._beta"] == "float() cast (line 1)"

    def test_subscript_store_taints_container(self):
        env = self.run_stmts("rows[i] = float(x)\n")
        assert env["rows"] == "float() cast (line 1)"

    def test_augassign_division_origin(self):
        env = self.run_stmts("z /= 2\n")
        assert env["z"] == "in-place true division (line 1)"
        env = self.run_stmts("z //= 2\n")
        assert "z" not in env

    def test_delete_clears(self):
        env = self.run_stmts("del g\n", env={"g": "origin-g"})
        assert "g" not in env


class TestJoin:
    def test_union_with_min_origin(self):
        a = {"x": "alpha", "y": "only-a"}
        b = {"x": "beta", "z": "only-b"}
        joined = join_envs(a, b)
        assert joined == {"x": "alpha", "y": "only-a", "z": "only-b"}
        assert join_envs(b, a) == joined

    def test_identical_envs_returned_as_is(self):
        a = {"x": "alpha"}
        assert join_envs(a, dict(a)) == a
