"""CFG corner cases, pinned as golden block/edge fixtures.

The goldens use :meth:`CFG.dump` — blocks with their statement line
numbers, then ``src -> dst kind`` edges — so a change in lowering shows
up as a readable diff, not a silent reshape of downstream analyses.
"""

import ast
import textwrap

from repro.analysis.dataflow import build_cfg, header_exprs, reachable_blocks


def cfg_of(source):
    fn = ast.parse(textwrap.dedent(source)).body[0]
    return build_cfg(fn)


def block_of_line(cfg, lineno):
    for block in cfg.blocks:
        if any(s.lineno == lineno for s in block.stmts):
            return block
    raise AssertionError(f"no block holds line {lineno}")


class TestGoldenShapes:
    def test_try_finally_with_break_inside(self):
        # The break routes through its own clone of the finally body
        # (b7) before jumping to the loop's after-block; the normal
        # fall-through gets a separate clone (b9) before the back edge.
        cfg = cfg_of("""\
            def f(items):
                for item in items:
                    try:
                        if item:
                            break
                        work(item)
                    finally:
                        item.close()
                return done()
            """)
        assert cfg.dump() == "\n".join([
            "b0:entry []",
            "b1:exit []",
            "b2:for [2]",
            "b3:after [9]",
            "b4:body []",
            "b5:try [4]",
            "b6:then [5]",
            "b7:finally [8]",
            "b8:join [6]",
            "b9:finally [8]",
            "b0:entry -> b2:for next",
            "b2:for -> b4:body true",
            "b2:for -> b3:after false",
            "b3:after -> b1:exit return",
            "b4:body -> b5:try next",
            "b5:try -> b6:then true",
            "b5:try -> b8:join false",
            "b6:then -> b7:finally finally",
            "b7:finally -> b3:after break",
            "b8:join -> b9:finally finally",
            "b9:finally -> b2:for loop",
        ])

    def test_try_finally_with_return_inside(self):
        # return reaches the exit only through the finally clone, which
        # is what lets must-analyses credit cleanup on the return path.
        cfg = cfg_of("""\
            def f(conn):
                try:
                    return conn.recv()
                finally:
                    conn.close()
            """)
        assert cfg.dump() == "\n".join([
            "b0:entry []",
            "b1:exit []",
            "b2:try [3]",
            "b3:finally [5]",
            "b0:entry -> b2:try next",
            "b2:try -> b3:finally finally",
            "b3:finally -> b1:exit return",
        ])

    def test_while_else(self):
        # break jumps past the else clause; only normal exhaustion
        # (the false edge off the header) runs it.
        cfg = cfg_of("""\
            def f(n):
                while n:
                    if check(n):
                        break
                    n -= 1
                else:
                    fallback()
                return n
            """)
        assert cfg.dump() == "\n".join([
            "b0:entry []",
            "b1:exit []",
            "b2:while [2]",
            "b3:after [8]",
            "b4:body [3]",
            "b5:then [4]",
            "b6:join [5]",
            "b7:loop-else [7]",
            "b0:entry -> b2:while next",
            "b2:while -> b4:body true",
            "b2:while -> b7:loop-else false",
            "b3:after -> b1:exit return",
            "b4:body -> b5:then true",
            "b4:body -> b6:join false",
            "b5:then -> b3:after break",
            "b6:join -> b2:while loop",
            "b7:loop-else -> b3:after next",
        ])

    def test_nested_with_is_transparent(self):
        # with headers stay in-block; the whole function is one
        # straight-line block.
        cfg = cfg_of("""\
            def f(a, b):
                with open(a) as fa:
                    with open(b) as fb:
                        copy(fa, fb)
                return True
            """)
        assert cfg.dump() == "\n".join([
            "b0:entry [2,3,4,5]",
            "b1:exit []",
            "b0:entry -> b1:exit return",
        ])

    def test_bare_raise_reraises_out_of_handler(self):
        # The handler's bare raise has no enclosing handler left, so it
        # exits the function on a raise edge; the post-try fall-through
        # lands in a fresh join block with no except edges.
        cfg = cfg_of("""\
            def f(conn):
                try:
                    pump(conn)
                except OSError:
                    log()
                    raise
            """)
        assert cfg.dump() == "\n".join([
            "b0:entry []",
            "b1:exit []",
            "b2:try [3]",
            "b3:except [5,6]",
            "b4:join []",
            "b0:entry -> b2:try next",
            "b2:try -> b3:except except",
            "b2:try -> b4:join next",
            "b3:except -> b1:exit raise",
            "b4:join -> b1:exit next",
        ])

    def test_os_exit_skips_finally(self):
        # os._exit never runs cleanup at runtime, so it gets a direct
        # exit edge instead of a route through the finally body.
        cfg = cfg_of("""\
            def f(code):
                try:
                    cleanup()
                    os._exit(code)
                finally:
                    note()
            """)
        assert cfg.dump() == "\n".join([
            "b0:entry []",
            "b1:exit []",
            "b2:try [3,4]",
            "b0:entry -> b2:try next",
            "b2:try -> b1:exit exit",
        ])


class TestStructuralProperties:
    def test_while_true_has_no_false_edge(self):
        cfg = cfg_of("""\
            def f():
                while True:
                    spin()
                unreachable()
            """)
        head = block_of_line(cfg, 2)
        assert [e.kind for e in head.succs] == ["true"]
        # Dead code after the loop is dropped entirely.
        assert all(s.lineno != 4
                   for b in cfg.blocks for s in b.stmts)
        assert cfg.exit not in reachable_blocks(cfg)

    def test_statement_after_try_shares_no_except_edges(self):
        # Regression: conn.close() after the try must not inherit the
        # try body's may-leave-for-handler edges.
        cfg = cfg_of("""\
            def f(conn):
                try:
                    risky()
                except OSError:
                    pass
                conn.close()
            """)
        close_block = block_of_line(cfg, 6)
        assert all(e.kind != "except" for e in close_block.succs)
        try_block = block_of_line(cfg, 3)
        assert any(e.kind == "except" for e in try_block.succs)

    def test_sys_exit_routes_through_finally(self):
        cfg = cfg_of("""\
            def f():
                try:
                    sys.exit(1)
                finally:
                    note()
            """)
        (edge,) = cfg.exit.preds
        assert edge.kind == "exit"
        assert edge.src.label == "finally"

    def test_reachable_blocks_excludes_orphans(self):
        # ``while True`` with no break leaves the structural after-block
        # orphaned (created, never wired in); reachability drops it and
        # keeps deterministic id order.
        cfg = cfg_of("""\
            def f():
                while True:
                    spin()
            """)
        reached = reachable_blocks(cfg)
        ids = [b.id for b in reached]
        assert ids == sorted(ids)
        assert "after" not in {b.label for b in reached}
        assert cfg.entry in reached


class TestHeaderExprs:
    def test_compound_headers(self):
        mod = ast.parse(textwrap.dedent("""\
            if a:
                pass
            for i in items:
                pass
            with ctx() as c:
                pass
            try:
                pass
            finally:
                pass
            x = 1
            """))
        if_stmt, for_stmt, with_stmt, try_stmt, assign = mod.body
        assert header_exprs(if_stmt) == [if_stmt.test]
        assert header_exprs(for_stmt) == [for_stmt.iter]
        assert header_exprs(with_stmt) == [
            with_stmt.items[0].context_expr]
        assert header_exprs(try_stmt) == []
        assert header_exprs(assign) is None
