"""The fixed-point solver on small but representative lattices."""

import ast
import textwrap

import pytest

from repro.analysis.dataflow import build_cfg, header_exprs, solve
from repro.analysis.dataflow.solver import run_block


def cfg_of(source):
    fn = ast.parse(textwrap.dedent(source)).body[0]
    return build_cfg(fn)


def block_of_line(cfg, lineno):
    for block in cfg.blocks:
        if any(s.lineno == lineno for s in block.stmts):
            return block
    raise AssertionError(f"no block holds line {lineno}")


def assigned_names(stmt):
    if isinstance(stmt, ast.Assign):
        return {t.id for t in stmt.targets if isinstance(t, ast.Name)}
    return set()


def loads_of(stmt):
    """Names loaded by one CFG element (headers only for compounds)."""
    headers = header_exprs(stmt)
    roots = [stmt] if headers is None else headers
    return {n.id for root in roots for n in ast.walk(root)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)}


def must_assign_facts(cfg, params=frozenset()):
    """Forward must-analysis: names assigned on *every* path."""
    def transfer(block, fact):
        return run_block(
            block, fact, lambda s, f: f | frozenset(assigned_names(s)))

    return solve(cfg, direction="forward",
                 init=frozenset(n.id for n in ast.walk(cfg.node)
                                if isinstance(n, ast.Name)),
                 boundary=frozenset(params),
                 transfer=transfer,
                 join=lambda a, b: a & b)


class TestForwardMust:
    def test_branch_meet_is_intersection(self):
        cfg = cfg_of("""\
            def f(flag):
                if flag:
                    x = 1
                    y = 1
                else:
                    x = 2
                use(x, y)
            """)
        facts = must_assign_facts(cfg, params={"flag"})
        use_in, _ = facts[block_of_line(cfg, 7).id]
        # x is assigned on both arms, y only on one.
        assert "x" in use_in and "flag" in use_in
        assert "y" not in use_in

    def test_loop_body_does_not_count_as_must(self):
        cfg = cfg_of("""\
            def f(items):
                for i in items:
                    x = use(i)
                tail(x)
            """)
        facts = must_assign_facts(cfg, params={"items"})
        tail_in, _ = facts[block_of_line(cfg, 4).id]
        # The zero-iteration path skips the body.
        assert "x" not in tail_in

    def test_finally_counts_on_the_return_path(self):
        cfg = cfg_of("""\
            def f(conn):
                try:
                    return conn.recv()
                finally:
                    marker = note()
            """)
        facts = must_assign_facts(cfg, params={"conn"})
        exit_in, _ = facts[cfg.exit.id]
        assert "marker" in exit_in


class TestBackwardMay:
    @staticmethod
    def live_facts(cfg):
        """Classic liveness: backward may-analysis, union join."""
        def step(stmt, live):
            return (live - assigned_names(stmt)) | loads_of(stmt)

        def transfer(block, live):
            return run_block(block, live, step, backward=True)

        return solve(cfg, direction="backward",
                     init=frozenset(), boundary=frozenset(),
                     transfer=transfer, join=lambda a, b: a | b)

    def test_liveness_across_a_branch(self):
        cfg = cfg_of("""\
            def f(flag, x):
                if flag:
                    sink(x)
                y = 2
                return y
            """)
        facts = self.live_facts(cfg)
        # Program-order orientation: facts[id] = (in, out) even for
        # backward runs.  x is live entering the if-header block, dead
        # after the sink call's block.
        header_in, _ = facts[block_of_line(cfg, 2).id]
        assert "x" in header_in and "flag" in header_in
        _, sink_out = facts[block_of_line(cfg, 3).id]
        assert "x" not in sink_out

    def test_loop_carried_liveness(self):
        cfg = cfg_of("""\
            def f(n):
                acc = 0
                while n:
                    acc = acc + n
                    n = step(n)
                return acc
            """)
        facts = self.live_facts(cfg)
        # acc flows around the back edge: live at the loop header.
        header_in, _ = facts[block_of_line(cfg, 3).id]
        assert "acc" in header_in and "n" in header_in


class TestSolverContract:
    def test_unknown_direction_raises(self):
        cfg = cfg_of("def f():\n    pass\n")
        with pytest.raises(ValueError, match="unknown direction"):
            solve(cfg, direction="sideways", init=frozenset(),
                  boundary=frozenset(),
                  transfer=lambda b, f: f,
                  join=lambda a, b: a | b)

    def test_non_monotone_transfer_fails_loudly(self):
        cfg = cfg_of("""\
            def f(n):
                while n:
                    n = step(n)
            """)
        counter = {"ticks": 0}

        def oscillating(block, fact):
            counter["ticks"] += 1
            return counter["ticks"]  # never stabilizes

        with pytest.raises(RuntimeError, match="failed to converge"):
            solve(cfg, direction="forward", init=0, boundary=0,
                  transfer=oscillating, join=max)

    def test_run_block_direction(self):
        cfg = cfg_of("def f():\n    a = 1\n    b = 2\n")
        (block,) = [b for b in cfg.blocks if b.stmts]
        fwd = run_block(block, [], lambda s, acc: acc + [s.lineno])
        bwd = run_block(block, [], lambda s, acc: acc + [s.lineno],
                        backward=True)
        assert fwd == [2, 3]
        assert bwd == [3, 2]
