"""Per-checker fixture proof: each rule fires, stays quiet, suppresses.

Every checker gets (at least) the trio the analysis PR promises: a
violating snippet with golden finding output, a clean snippet, and a
suppressed snippet.  Checkers are instantiated with open scopes (or
fixture-keyed contracts) so the tmp-dir fixture modules are in scope.
"""

import textwrap

from repro.analysis import analyze
from repro.analysis.checkers.async_blocking import AsyncBlockingChecker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.exact_arith import ExactArithChecker
from repro.analysis.checkers.frame_drift import FrameDriftChecker
from repro.analysis.checkers.frame_protocol import FrameProtocolChecker
from repro.analysis.checkers.resource_hygiene import ResourceHygieneChecker
from repro.analysis.checkers.trail_discipline import TrailDisciplineChecker


def run(tmp_path, checker, source, name="snippet.py"):
    (tmp_path / name).write_text(textwrap.dedent(source))
    return analyze([tmp_path], [checker])


def golden(report):
    return [(f.line, f.message, f.suppressed) for f in report.findings]


class TestExactArith:
    def test_violations_golden(self, tmp_path):
        report = run(tmp_path, ExactArithChecker(scope=()), """\
            import time

            SLOP = 2.5 * 2

            class Engine:
                def poke(self):
                    g = time.monotonic()
                    h = g
                    self._deadline = h

                def widen(self, eps):
                    self._bounds[0] /= eps

                def export(self):
                    return float(self._best)
            """)
        assert golden(report) == [
            (3, "constant binding carries float taint: "
                "float literal 2.5 (line 3)", False),
            (9, "float-tainted value stored into solver state "
                "`self._deadline`: time.monotonic() wall-clock value "
                "(line 7)", False),
            (12, "in-place true division on solver state `self._bounds` "
                 "(use Fraction or `//`)", False),
            (15, "float-tainted value returned from exact module: "
                 "float() cast (line 15)", False),
        ]

    def test_laundered_leak_invisible_to_syntax(self, tmp_path):
        # The flagged line has no float literal, cast, `/`, or time call
        # on it — PR 9's lexical rule provably cannot fire here.
        source = textwrap.dedent("""\
            import time

            class Engine:
                def poke(self):
                    g = time.monotonic()
                    h = g
                    self._deadline = h
            """)
        (tmp_path / "snippet.py").write_text(source)
        report = analyze([tmp_path], [ExactArithChecker(scope=())])
        [(line, message, suppressed)] = golden(report)
        assert line == 7
        flagged = source.splitlines()[line - 1]
        assert "float" not in flagged
        assert "/" not in flagged
        assert "time" not in flagged
        assert not suppressed
        assert message == (
            "float-tainted value stored into solver state "
            "`self._deadline`: time.monotonic() wall-clock value (line 5)")

    def test_tainted_constructor_argument(self, tmp_path):
        report = run(tmp_path, ExactArithChecker(scope=()), """\
            from fractions import Fraction

            def lift(x):
                approx = float(x)
                return Fraction(approx)
            """)
        assert golden(report) == [
            (5, "float-tainted argument to Fraction(): "
                "float() cast (line 4)", False),
        ]

    def test_clean(self, tmp_path):
        report = run(tmp_path, ExactArithChecker(scope=()), """\
            from fractions import Fraction

            _F1 = Fraction(1)

            class Engine:
                def tighten(self, a):
                    inv = _F1 / a
                    self._scale = inv
                    return Fraction(inv)

                def verdict(self, x):
                    m = float(x)
                    return m > int(x)
            """)
        assert report.findings == []

    def test_suppressed(self, tmp_path):
        report = run(tmp_path, ExactArithChecker(scope=()), """\
            import time

            class Engine:
                def poke(self):
                    g = time.monotonic()
                    # repro: allow[exact-arith] advisory deadline only
                    self._deadline = g
            """)
        assert [f.suppressed for f in report.findings] == [True]
        assert report.ok

    def test_region_pragma_covers_mirror_block(self, tmp_path):
        report = run(tmp_path, ExactArithChecker(scope=()), """\
            class Engine:
                # repro: allow[exact-arith]:begin advisory mirror block
                def resync(self):
                    self._mirror = 0.5
                    self._guard = 1e-06
                # repro: allow[exact-arith]:end
            """)
        assert [f.suppressed for f in report.findings] == [True, True]
        assert report.ok

    def test_default_scope_excludes_other_modules(self, tmp_path):
        report = run(tmp_path, ExactArithChecker(), "x = 1.5\n")
        assert report.findings == []


class TestFrameDrift:
    def test_bare_literal_and_unknown_kind(self, tmp_path):
        report = run(tmp_path, FrameDriftChecker(scope=()), """\
            from repro.portfolio.frames import KIND_RESULT

            def emit(conn):
                conn.send({"kind": "result", "payload": 1})

            def emit2(conn):
                conn.send({"kind": UNKNOWN_KIND, "payload": 1})

            def pump(msg):
                return msg.get("kind") == KIND_RESULT
            """)
        messages = [f.message for f in report.unsuppressed]
        assert ("frame kind constructed as bare literal 'result'; use the "
                "repro.portfolio.frames constant") in messages
        assert ("frame kind constructed from an expression the registry "
                "cannot resolve") in messages

    def test_constructed_without_consumer_is_drift(self, tmp_path):
        report = run(tmp_path, FrameDriftChecker(scope=()), """\
            from repro.portfolio.frames import KIND_HEARTBEAT

            def emit(conn):
                conn.send({"kind": KIND_HEARTBEAT})
            """)
        assert [f.message for f in report.findings] == [
            "frame kind 'heartbeat' is constructed but no consumer "
            "dispatches on it"]

    def test_consumed_without_producer_is_drift(self, tmp_path):
        report = run(tmp_path, FrameDriftChecker(scope=()), """\
            from repro.portfolio.frames import KIND_SHUTDOWN

            def pump(msg):
                return msg.get("kind") == KIND_SHUTDOWN
            """)
        assert [f.message for f in report.findings] == [
            "consumer dispatches on frame kind 'shutdown' but nothing "
            "constructs it"]

    def test_off_registry_dispatch(self, tmp_path):
        report = run(tmp_path, FrameDriftChecker(scope=()), """\
            def pump(msg):
                kind = msg.get("kind")
                return kind == "never-registered"
            """)
        assert any("not in the frames registry" in f.message
                   for f in report.findings)

    def test_clean_pair_and_membership_dispatch(self, tmp_path):
        report = run(tmp_path, FrameDriftChecker(scope=()), """\
            from repro.portfolio.frames import (ARTIFACT_CLAUSES,
                                                ARTIFACT_KINDS,
                                                ARTIFACT_PREFIX,
                                                ARTIFACT_VETO)

            def emit(conn):
                conn.send({"kind": ARTIFACT_CLAUSES})
                conn.send({"kind": ARTIFACT_VETO})
                conn.send({"kind": ARTIFACT_PREFIX})

            def absorb(artifact):
                return artifact.get("kind") in ARTIFACT_KINDS
            """)
        assert report.findings == []

    def test_suppressed_forged_kind(self, tmp_path):
        report = run(tmp_path, FrameDriftChecker(scope=()), """\
            def forge(frame):
                # repro: allow[frame-drift] deliberate corruption fixture
                frame["kind"] = "forged"
                return frame
            """)
        assert report.findings and report.ok

    def test_cross_file_pairing(self, tmp_path):
        (tmp_path / "producer.py").write_text(textwrap.dedent("""\
            from repro.portfolio.frames import KIND_REQUEST

            def ask(conn):
                conn.send({"kind": KIND_REQUEST})
            """))
        (tmp_path / "consumer.py").write_text(textwrap.dedent("""\
            def serve(msg):
                return msg.get("kind") == "request"
            """))
        report = analyze([tmp_path], [FrameDriftChecker(scope=())])
        assert report.findings == []


class TestResourceHygiene:
    def test_never_closed(self, tmp_path):
        report = run(tmp_path, ResourceHygieneChecker(scope=()), """\
            import multiprocessing as mp

            def leak():
                parent, child = mp.Pipe()
                parent.send(1)
            """)
        assert sorted(f.message for f in report.findings) == [
            "connection 'child' is created here but never closed, joined "
            "or handed off",
            "connection 'parent' is created here but never closed, joined "
            "or handed off",
        ]

    def test_conditional_only_cleanup(self, tmp_path):
        report = run(tmp_path, ResourceHygieneChecker(scope=()), """\
            import multiprocessing as mp

            def racy(flag):
                parent, child = mp.Pipe()
                child.close()
                if flag:
                    parent.close()
            """)
        assert [f.message for f in report.findings] == [
            "connection 'parent' is not released on every path from here; "
            "move a cleanup into a finally block or the unconditional path"]

    def test_exception_path_only_cleanup(self, tmp_path):
        report = run(tmp_path, ResourceHygieneChecker(scope=()), """\
            import multiprocessing as mp

            def on_error_only():
                proc = mp.Process(target=print)
                try:
                    proc.start()
                except OSError:
                    proc.terminate()
            """)
        assert [f.message for f in report.findings] == [
            "process 'proc' is not released on every path from here; "
            "move a cleanup into a finally block or the unconditional path"]

    def test_early_return_leak_v1_missed(self, tmp_path):
        # Both closes sit on the unconditional tail, so PR 9's lexical
        # rule ("at least one cleanup outside an if arm") passed this;
        # the early return still leaks both ends of the pipe.
        report = run(tmp_path, ResourceHygieneChecker(scope=()), """\
            import multiprocessing as mp

            def early_exit(flag):
                parent, child = mp.Pipe()
                if flag:
                    return None
                parent.close()
                child.close()
            """)
        assert sorted(f.message for f in report.findings) == [
            "connection 'child' is not released on every path from here; "
            "move a cleanup into a finally block or the unconditional path",
            "connection 'parent' is not released on every path from here; "
            "move a cleanup into a finally block or the unconditional path",
        ]

    def test_with_closing_is_cleanup(self, tmp_path):
        # Regression: v1 flagged with-managed resources because it only
        # recognised literal cleanup-method calls.
        report = run(tmp_path, ResourceHygieneChecker(scope=()), """\
            from contextlib import closing
            import multiprocessing as mp

            def managed():
                parent, child = mp.Pipe()
                with closing(parent), closing(child):
                    parent.send(1)

            def direct():
                parent, child = mp.Pipe()
                with child:
                    parent.send(1)
                parent.close()
            """)
        assert report.findings == []

    def test_clean_finally_and_escape(self, tmp_path):
        report = run(tmp_path, ResourceHygieneChecker(scope=()), """\
            import multiprocessing as mp

            def finally_cleanup():
                parent, child = mp.Pipe()
                try:
                    parent.send(1)
                finally:
                    parent.close()
                    child.close()

            def ownership_transfer(registry):
                parent, child = mp.Pipe()
                registry.adopt(parent)
                return child
            """)
        assert report.findings == []

    def test_suppressed(self, tmp_path):
        report = run(tmp_path, ResourceHygieneChecker(scope=()), """\
            import multiprocessing as mp

            def leak():
                # repro: allow[resource-hygiene] fixture leaks on purpose
                parent, child = mp.Pipe()
                parent.send(child)
            """)
        assert report.findings and report.ok


class TestFrameProtocol:
    def test_send_after_result_golden(self, tmp_path):
        report = run(tmp_path, FrameProtocolChecker(scope=()), """\
            from repro.portfolio.frames import KIND_HEARTBEAT, KIND_RESULT

            def finish(conn):
                conn.send({"kind": KIND_RESULT, "payload": 1})
                conn.send({"kind": KIND_HEARTBEAT})
            """)
        assert golden(report) == [
            (5, "'heartbeat' frame sent on `conn` which may be in state "
                "done here — consumers stop reading after the first "
                "result frame", False),
        ]

    def test_send_after_close(self, tmp_path):
        report = run(tmp_path, FrameProtocolChecker(scope=()), """\
            from repro.portfolio.frames import KIND_RESULT

            def reopen(conn):
                conn.close()
                conn.send({"kind": KIND_RESULT, "payload": 1})
            """)
        assert golden(report) == [
            (5, "'result' frame sent on `conn` which may be in state "
                "closed here — the connection is already closed or "
                "shut down", False),
        ]

    def test_conditional_result_is_may_flagged(self, tmp_path):
        # Path-sensitive: only one branch sends the result, so the
        # trailing heartbeat is illegal on *some* path.
        report = run(tmp_path, FrameProtocolChecker(scope=()), """\
            from repro.portfolio.frames import KIND_HEARTBEAT, KIND_RESULT

            def maybe(conn, flag):
                if flag:
                    conn.send({"kind": KIND_RESULT, "payload": 1})
                conn.send({"kind": KIND_HEARTBEAT})
            """)
        assert golden(report) == [
            (6, "'heartbeat' frame sent on `conn` which may be in state "
                "done here — consumers stop reading after the first "
                "result frame", False),
        ]

    def test_double_request(self, tmp_path):
        report = run(tmp_path, FrameProtocolChecker(scope=()), """\
            from repro.portfolio.frames import KIND_REQUEST

            def ask_twice(conn):
                conn.send({"kind": KIND_REQUEST})
                conn.send({"kind": KIND_REQUEST})
            """)
        assert golden(report) == [
            (5, "'request' frame sent on `conn` which may be in state "
                "await here — the previous request has not been "
                "answered yet", False),
        ]

    def test_constructor_and_variable_resolution(self, tmp_path):
        report = run(tmp_path, FrameProtocolChecker(scope=()), """\
            from repro.portfolio.frames import KIND_HEARTBEAT, KIND_RESULT

            def result_frame(payload):
                return {"kind": KIND_RESULT, "payload": payload}

            def emit(conn):
                conn.send(result_frame(1))
                frame = {"kind": KIND_HEARTBEAT}
                conn.send(frame)
            """)
        assert golden(report) == [
            (9, "'heartbeat' frame sent on `conn` which may be in state "
                "done here — consumers stop reading after the first "
                "result frame", False),
        ]

    def test_clean_stream_and_request_reply(self, tmp_path):
        report = run(tmp_path, FrameProtocolChecker(scope=()), """\
            from repro.portfolio.frames import (KIND_ARTIFACT,
                                                KIND_HEARTBEAT,
                                                KIND_RESULT,
                                                KIND_SHUTDOWN)

            def stream(conn, artifacts):
                conn.send({"kind": KIND_HEARTBEAT})
                for art in artifacts:
                    conn.send({"kind": KIND_ARTIFACT, "artifact": art})
                conn.send({"kind": KIND_RESULT, "payload": 0})
                conn.send({"kind": KIND_SHUTDOWN})
                conn.close()

            def serve(conn):
                while True:
                    msg = conn.recv()
                    conn.send({"kind": KIND_RESULT, "payload": msg})
            """)
        assert report.findings == []

    def test_unresolvable_send_is_skipped(self, tmp_path):
        report = run(tmp_path, FrameProtocolChecker(scope=()), """\
            def forward(conn, frame):
                conn.send(frame)
                conn.send(frame)
            """)
        assert report.findings == []

    def test_suppressed(self, tmp_path):
        report = run(tmp_path, FrameProtocolChecker(scope=()), """\
            from repro.portfolio.frames import KIND_RESULT

            def replay(conn):
                conn.send({"kind": KIND_RESULT, "payload": 1})
                # repro: allow[frame-protocol] error replay fixture
                conn.send({"kind": KIND_RESULT, "payload": 2})
            """)
        assert report.findings and report.ok

    def test_artifact_only_module(self, tmp_path):
        pkg = tmp_path / "repro" / "service"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "cache.py").write_text(textwrap.dedent("""\
            from repro.portfolio.frames import ARTIFACT_CLAUSES, KIND_RESULT

            def entry(payload):
                return {"kind": ARTIFACT_CLAUSES, "payload": payload}

            def smuggle(payload):
                return {"kind": KIND_RESULT, "payload": payload}
            """))
        report = analyze([tmp_path], [FrameProtocolChecker(scope=())])
        assert [f.message for f in report.findings] == [
            "'result' frame constructed in an artifact-only module — "
            "cache entries and sharing payloads carry ARTIFACT_* kinds "
            "only"]


class TestAsyncBlocking:
    def test_blocking_calls_in_coroutine(self, tmp_path):
        report = run(tmp_path, AsyncBlockingChecker(scope=()), """\
            import time

            async def handler(conn):
                time.sleep(1)
                frame = conn.recv()
                with open("log.txt") as fh:
                    return fh, frame
            """)
        messages = sorted(f.message for f in report.findings)
        assert messages == [
            ".recv() inside async def can block the event loop; bridge "
            "the Connection through an executor",
            "sync open() inside async def blocks the event loop; do file "
            "I/O on an executor",
            "time.sleep inside async def blocks the event loop; use "
            "await asyncio.sleep",
        ]

    def test_module_level_sleep_near_coroutines(self, tmp_path):
        report = run(tmp_path, AsyncBlockingChecker(scope=()), """\
            import time

            async def serve():
                return 1

            def backoff_helper():
                time.sleep(0.1)
            """)
        assert [f.message for f in report.findings] == [
            "time.sleep in a module with async entry points; verify it "
            "only runs on an executor thread and annotate it"]

    def test_clean_async_sleep_and_pure_sync_module(self, tmp_path):
        report = run(tmp_path, AsyncBlockingChecker(scope=()), """\
            import asyncio

            async def handler():
                await asyncio.sleep(1)
            """)
        assert report.findings == []
        report = run(tmp_path, AsyncBlockingChecker(scope=()), """\
            import time

            def sync_only():
                time.sleep(1)
            """, name="sync_mod.py")
        assert [f.path for f in report.findings if "sync_mod" in f.path] == []

    def test_nested_sync_def_is_executor_bound(self, tmp_path):
        report = run(tmp_path, AsyncBlockingChecker(scope=()), """\
            import time

            async def handler(loop):
                def blocking_work():
                    data = compute()
                    return data
                return await loop.run_in_executor(None, blocking_work)
            """)
        assert report.findings == []

    def test_suppressed(self, tmp_path):
        report = run(tmp_path, AsyncBlockingChecker(scope=()), """\
            import time

            async def serve():
                return 1

            def backoff_helper():
                # repro: allow[async-blocking] runs on the executor
                time.sleep(0.1)
            """)
        assert report.findings and report.ok


class TestTrailDiscipline:
    CONTRACTS = {"snippet": ({"_trail", "_bounds"}, {"__init__", "record",
                                                     "undo_to"})}

    def test_rogue_mutations(self, tmp_path):
        checker = TrailDisciplineChecker(contracts=self.CONTRACTS)
        report = run(tmp_path, checker, """\
            class Engine:
                def __init__(self):
                    self._trail = []
                    self._bounds = {}

                def record(self, entry):
                    self._trail.append(entry)

                def rogue(self, var, bound):
                    self._bounds[var] = bound
                    self._trail.pop()
                    del self._bounds[var]
            """)
        assert [(f.line, f.message) for f in report.findings] == [
            (10, "trail-backed self._bounds mutated in rogue(), which is "
                 "not a registered trail-recording helper"),
            (11, "trail-backed self._trail.pop() called in rogue(), which "
                 "is not a registered trail-recording helper"),
            (12, "trail-backed self._bounds mutated in rogue(), which is "
                 "not a registered trail-recording helper"),
        ]

    def test_reads_are_fine(self, tmp_path):
        checker = TrailDisciplineChecker(contracts=self.CONTRACTS)
        report = run(tmp_path, checker, """\
            class Engine:
                def __init__(self):
                    self._trail = []

                def depth(self):
                    return len(self._trail)

                def peek(self):
                    return self._trail[-1]
            """)
        assert report.findings == []

    def test_suppressed(self, tmp_path):
        checker = TrailDisciplineChecker(contracts=self.CONTRACTS)
        report = run(tmp_path, checker, """\
            class Engine:
                def __init__(self):
                    self._trail = []

                def replay(self):
                    self._trail.clear()  # repro: allow[trail-discipline]
            """)
        assert report.findings and report.ok


class TestDeterminism:
    def test_violations(self, tmp_path):
        report = run(tmp_path, DeterminismChecker(scope=()), """\
            import random
            import time

            def jitter():
                return random.random() + random.Random().random()

            def stamp():
                return time.time()

            def walk(items):
                for item in set(items):
                    yield item
                return [x for x in set(items) & set(items)]
            """)
        messages = [f.message for f in report.findings]
        assert sum("unseeded randomness" in m or "process-global" in m
                   for m in messages) >= 2
        assert any("wall clock" in m for m in messages)
        assert sum("unordered set expression" in m for m in messages) == 2

    def test_clean(self, tmp_path):
        report = run(tmp_path, DeterminismChecker(scope=()), """\
            import random
            import time

            def jitter(seed):
                rng = random.Random(seed)
                return rng.random()

            def elapsed(t0):
                return time.perf_counter() - t0

            def walk(items):
                for item in sorted(set(items)):
                    yield item
            """)
        assert report.findings == []

    def test_suppressed(self, tmp_path):
        report = run(tmp_path, DeterminismChecker(scope=()), """\
            import time

            def stamp():
                return time.time()  # repro: allow[determinism] log only
            """)
        assert report.findings and report.ok
