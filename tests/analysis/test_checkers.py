"""Per-checker fixture proof: each rule fires, stays quiet, suppresses.

Every checker gets (at least) the trio the analysis PR promises: a
violating snippet with golden finding output, a clean snippet, and a
suppressed snippet.  Checkers are instantiated with open scopes (or
fixture-keyed contracts) so the tmp-dir fixture modules are in scope.
"""

import textwrap

from repro.analysis import analyze
from repro.analysis.checkers.async_blocking import AsyncBlockingChecker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.exact_arith import ExactArithChecker
from repro.analysis.checkers.frame_drift import FrameDriftChecker
from repro.analysis.checkers.resource_hygiene import ResourceHygieneChecker
from repro.analysis.checkers.trail_discipline import TrailDisciplineChecker


def run(tmp_path, checker, source, name="snippet.py"):
    (tmp_path / name).write_text(textwrap.dedent(source))
    return analyze([tmp_path], [checker])


def golden(report):
    return [(f.line, f.message, f.suppressed) for f in report.findings]


class TestExactArith:
    def test_violations_golden(self, tmp_path):
        report = run(tmp_path, ExactArithChecker(scope=()), """\
            x = float(3)
            y = 1.5
            z = x / y
            z /= 2
            """)
        assert golden(report) == [
            (1, "float(...) cast in exact-arithmetic module", False),
            (2, "float literal 1.5 in exact-arithmetic module", False),
            (3, "true division `/` in exact-arithmetic module (use `//` "
                "on scaled ints, or annotate exact Fraction division)",
             False),
            (4, "in-place true division `/=` in exact-arithmetic module",
             False),
        ]

    def test_clean(self, tmp_path):
        report = run(tmp_path, ExactArithChecker(scope=()), """\
            from fractions import Fraction
            x = Fraction(1, 3)
            y = 7 // 2
            z = int("4")
            """)
        assert report.findings == []

    def test_suppressed(self, tmp_path):
        report = run(tmp_path, ExactArithChecker(scope=()), """\
            x = float(3)  # repro: allow[exact-arith] advisory mirror
            """)
        assert [f.suppressed for f in report.findings] == [True]
        assert report.ok

    def test_default_scope_excludes_other_modules(self, tmp_path):
        report = run(tmp_path, ExactArithChecker(), "x = 1.5\n")
        assert report.findings == []


class TestFrameDrift:
    def test_bare_literal_and_unknown_kind(self, tmp_path):
        report = run(tmp_path, FrameDriftChecker(scope=()), """\
            from repro.portfolio.frames import KIND_RESULT

            def emit(conn):
                conn.send({"kind": "result", "payload": 1})

            def emit2(conn):
                conn.send({"kind": UNKNOWN_KIND, "payload": 1})

            def pump(msg):
                return msg.get("kind") == KIND_RESULT
            """)
        messages = [f.message for f in report.unsuppressed]
        assert ("frame kind constructed as bare literal 'result'; use the "
                "repro.portfolio.frames constant") in messages
        assert ("frame kind constructed from an expression the registry "
                "cannot resolve") in messages

    def test_constructed_without_consumer_is_drift(self, tmp_path):
        report = run(tmp_path, FrameDriftChecker(scope=()), """\
            from repro.portfolio.frames import KIND_HEARTBEAT

            def emit(conn):
                conn.send({"kind": KIND_HEARTBEAT})
            """)
        assert [f.message for f in report.findings] == [
            "frame kind 'heartbeat' is constructed but no consumer "
            "dispatches on it"]

    def test_consumed_without_producer_is_drift(self, tmp_path):
        report = run(tmp_path, FrameDriftChecker(scope=()), """\
            from repro.portfolio.frames import KIND_SHUTDOWN

            def pump(msg):
                return msg.get("kind") == KIND_SHUTDOWN
            """)
        assert [f.message for f in report.findings] == [
            "consumer dispatches on frame kind 'shutdown' but nothing "
            "constructs it"]

    def test_off_registry_dispatch(self, tmp_path):
        report = run(tmp_path, FrameDriftChecker(scope=()), """\
            def pump(msg):
                kind = msg.get("kind")
                return kind == "never-registered"
            """)
        assert any("not in the frames registry" in f.message
                   for f in report.findings)

    def test_clean_pair_and_membership_dispatch(self, tmp_path):
        report = run(tmp_path, FrameDriftChecker(scope=()), """\
            from repro.portfolio.frames import (ARTIFACT_CLAUSES,
                                                ARTIFACT_KINDS,
                                                ARTIFACT_PREFIX,
                                                ARTIFACT_VETO)

            def emit(conn):
                conn.send({"kind": ARTIFACT_CLAUSES})
                conn.send({"kind": ARTIFACT_VETO})
                conn.send({"kind": ARTIFACT_PREFIX})

            def absorb(artifact):
                return artifact.get("kind") in ARTIFACT_KINDS
            """)
        assert report.findings == []

    def test_suppressed_forged_kind(self, tmp_path):
        report = run(tmp_path, FrameDriftChecker(scope=()), """\
            def forge(frame):
                # repro: allow[frame-drift] deliberate corruption fixture
                frame["kind"] = "forged"
                return frame
            """)
        assert report.findings and report.ok

    def test_cross_file_pairing(self, tmp_path):
        (tmp_path / "producer.py").write_text(textwrap.dedent("""\
            from repro.portfolio.frames import KIND_REQUEST

            def ask(conn):
                conn.send({"kind": KIND_REQUEST})
            """))
        (tmp_path / "consumer.py").write_text(textwrap.dedent("""\
            def serve(msg):
                return msg.get("kind") == "request"
            """))
        report = analyze([tmp_path], [FrameDriftChecker(scope=())])
        assert report.findings == []


class TestResourceHygiene:
    def test_never_closed(self, tmp_path):
        report = run(tmp_path, ResourceHygieneChecker(scope=()), """\
            import multiprocessing as mp

            def leak():
                parent, child = mp.Pipe()
                parent.send(1)
            """)
        assert sorted(f.message for f in report.findings) == [
            "connection 'child' is created here but never closed, joined "
            "or handed off",
            "connection 'parent' is created here but never closed, joined "
            "or handed off",
        ]

    def test_conditional_only_cleanup(self, tmp_path):
        report = run(tmp_path, ResourceHygieneChecker(scope=()), """\
            import multiprocessing as mp

            def racy(flag):
                parent, child = mp.Pipe()
                child.close()
                if flag:
                    parent.close()
            """)
        assert [f.message for f in report.findings] == [
            "connection 'parent' is only cleaned up on conditional paths; "
            "move a cleanup into a finally block or the unconditional path"]

    def test_exception_path_only_cleanup(self, tmp_path):
        report = run(tmp_path, ResourceHygieneChecker(scope=()), """\
            import multiprocessing as mp

            def on_error_only():
                proc = mp.Process(target=print)
                try:
                    proc.start()
                except OSError:
                    proc.terminate()
            """)
        assert [f.message for f in report.findings] == [
            "process 'proc' is only cleaned up on conditional paths; "
            "move a cleanup into a finally block or the unconditional path"]

    def test_clean_finally_and_escape(self, tmp_path):
        report = run(tmp_path, ResourceHygieneChecker(scope=()), """\
            import multiprocessing as mp

            def finally_cleanup():
                parent, child = mp.Pipe()
                try:
                    parent.send(1)
                finally:
                    parent.close()
                    child.close()

            def ownership_transfer(registry):
                parent, child = mp.Pipe()
                registry.adopt(parent)
                return child
            """)
        assert report.findings == []

    def test_suppressed(self, tmp_path):
        report = run(tmp_path, ResourceHygieneChecker(scope=()), """\
            import multiprocessing as mp

            def leak():
                # repro: allow[resource-hygiene] fixture leaks on purpose
                parent, child = mp.Pipe()
                parent.send(child)
            """)
        assert report.findings and report.ok


class TestAsyncBlocking:
    def test_blocking_calls_in_coroutine(self, tmp_path):
        report = run(tmp_path, AsyncBlockingChecker(scope=()), """\
            import time

            async def handler(conn):
                time.sleep(1)
                frame = conn.recv()
                with open("log.txt") as fh:
                    return fh, frame
            """)
        messages = sorted(f.message for f in report.findings)
        assert messages == [
            ".recv() inside async def can block the event loop; bridge "
            "the Connection through an executor",
            "sync open() inside async def blocks the event loop; do file "
            "I/O on an executor",
            "time.sleep inside async def blocks the event loop; use "
            "await asyncio.sleep",
        ]

    def test_module_level_sleep_near_coroutines(self, tmp_path):
        report = run(tmp_path, AsyncBlockingChecker(scope=()), """\
            import time

            async def serve():
                return 1

            def backoff_helper():
                time.sleep(0.1)
            """)
        assert [f.message for f in report.findings] == [
            "time.sleep in a module with async entry points; verify it "
            "only runs on an executor thread and annotate it"]

    def test_clean_async_sleep_and_pure_sync_module(self, tmp_path):
        report = run(tmp_path, AsyncBlockingChecker(scope=()), """\
            import asyncio

            async def handler():
                await asyncio.sleep(1)
            """)
        assert report.findings == []
        report = run(tmp_path, AsyncBlockingChecker(scope=()), """\
            import time

            def sync_only():
                time.sleep(1)
            """, name="sync_mod.py")
        assert [f.path for f in report.findings if "sync_mod" in f.path] == []

    def test_nested_sync_def_is_executor_bound(self, tmp_path):
        report = run(tmp_path, AsyncBlockingChecker(scope=()), """\
            import time

            async def handler(loop):
                def blocking_work():
                    data = compute()
                    return data
                return await loop.run_in_executor(None, blocking_work)
            """)
        assert report.findings == []

    def test_suppressed(self, tmp_path):
        report = run(tmp_path, AsyncBlockingChecker(scope=()), """\
            import time

            async def serve():
                return 1

            def backoff_helper():
                # repro: allow[async-blocking] runs on the executor
                time.sleep(0.1)
            """)
        assert report.findings and report.ok


class TestTrailDiscipline:
    CONTRACTS = {"snippet": ({"_trail", "_bounds"}, {"__init__", "record",
                                                     "undo_to"})}

    def test_rogue_mutations(self, tmp_path):
        checker = TrailDisciplineChecker(contracts=self.CONTRACTS)
        report = run(tmp_path, checker, """\
            class Engine:
                def __init__(self):
                    self._trail = []
                    self._bounds = {}

                def record(self, entry):
                    self._trail.append(entry)

                def rogue(self, var, bound):
                    self._bounds[var] = bound
                    self._trail.pop()
                    del self._bounds[var]
            """)
        assert [(f.line, f.message) for f in report.findings] == [
            (10, "trail-backed self._bounds mutated in rogue(), which is "
                 "not a registered trail-recording helper"),
            (11, "trail-backed self._trail.pop() called in rogue(), which "
                 "is not a registered trail-recording helper"),
            (12, "trail-backed self._bounds mutated in rogue(), which is "
                 "not a registered trail-recording helper"),
        ]

    def test_reads_are_fine(self, tmp_path):
        checker = TrailDisciplineChecker(contracts=self.CONTRACTS)
        report = run(tmp_path, checker, """\
            class Engine:
                def __init__(self):
                    self._trail = []

                def depth(self):
                    return len(self._trail)

                def peek(self):
                    return self._trail[-1]
            """)
        assert report.findings == []

    def test_suppressed(self, tmp_path):
        checker = TrailDisciplineChecker(contracts=self.CONTRACTS)
        report = run(tmp_path, checker, """\
            class Engine:
                def __init__(self):
                    self._trail = []

                def replay(self):
                    self._trail.clear()  # repro: allow[trail-discipline]
            """)
        assert report.findings and report.ok


class TestDeterminism:
    def test_violations(self, tmp_path):
        report = run(tmp_path, DeterminismChecker(scope=()), """\
            import random
            import time

            def jitter():
                return random.random() + random.Random().random()

            def stamp():
                return time.time()

            def walk(items):
                for item in set(items):
                    yield item
                return [x for x in set(items) & set(items)]
            """)
        messages = [f.message for f in report.findings]
        assert sum("unseeded randomness" in m or "process-global" in m
                   for m in messages) >= 2
        assert any("wall clock" in m for m in messages)
        assert sum("unordered set expression" in m for m in messages) == 2

    def test_clean(self, tmp_path):
        report = run(tmp_path, DeterminismChecker(scope=()), """\
            import random
            import time

            def jitter(seed):
                rng = random.Random(seed)
                return rng.random()

            def elapsed(t0):
                return time.perf_counter() - t0

            def walk(items):
                for item in sorted(set(items)):
                    yield item
            """)
        assert report.findings == []

    def test_suppressed(self, tmp_path):
        report = run(tmp_path, DeterminismChecker(scope=()), """\
            import time

            def stamp():
                return time.time()  # repro: allow[determinism] log only
            """)
        assert report.findings and report.ok
