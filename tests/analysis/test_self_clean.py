"""The toolkit's own gate: the shipped tree has zero unsuppressed findings.

This is the test-shaped twin of CI's ``analysis`` job — if a PR
introduces a finding, it fails here first, with the rendered findings
in the assertion message.
"""

from pathlib import Path

from repro.analysis import analyze
from repro.analysis.checkers import default_checkers

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def test_src_tree_is_clean():
    report = analyze([REPO_SRC], default_checkers())
    rendered = "\n".join(f.render() for f in report.unsuppressed)
    assert report.ok, f"unsuppressed findings:\n{rendered}"
    assert report.files_checked > 70


def test_no_stale_pragmas():
    # Every suppression pragma in the tree must still suppress at least
    # one finding — the dataflow rewrite deleted the pragmas it
    # obsoleted, and this keeps the remainder honest.
    report = analyze([REPO_SRC], default_checkers(), check_pragmas=True)
    stale = [f.render() for f in report.findings
             if f.rule == "unused-pragma"]
    assert not stale, "stale pragmas:\n" + "\n".join(stale)


def test_every_rule_is_exercised_by_a_suppression_or_scope():
    # The tree's suppression inventory should stay tracked: if a rule's
    # annotated sites disappear, this inventory check prompts a doc and
    # baseline update rather than silent drift.
    report = analyze([REPO_SRC], default_checkers())
    suppressed_rules = {f.rule for f in report.findings if f.suppressed}
    assert suppressed_rules == {
        "exact-arith",       # the simplex float-mirror region
        "frame-drift",       # fault-injection frame forgery fixture
        "frame-protocol",    # worker error-result after a broken send
        "resource-hygiene",  # unstarted Process on the OSError path
        "async-blocking",    # executor-bound sleep in the server
    }
