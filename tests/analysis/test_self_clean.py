"""The toolkit's own gate: the shipped tree has zero unsuppressed findings.

This is the test-shaped twin of CI's ``analysis`` job — if a PR
introduces a finding, it fails here first, with the rendered findings
in the assertion message.
"""

from pathlib import Path

from repro.analysis import analyze
from repro.analysis.checkers import default_checkers

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def test_src_tree_is_clean():
    report = analyze([REPO_SRC], default_checkers())
    rendered = "\n".join(f.render() for f in report.unsuppressed)
    assert report.ok, f"unsuppressed findings:\n{rendered}"
    assert report.files_checked > 70


def test_every_rule_is_exercised_by_a_suppression_or_scope():
    # The tree's suppression inventory should stay tracked: if a rule's
    # annotated sites disappear, this inventory check prompts a doc and
    # baseline update rather than silent drift.
    report = analyze([REPO_SRC], default_checkers())
    suppressed_rules = {f.rule for f in report.findings if f.suppressed}
    assert "exact-arith" in suppressed_rules
    assert "frame-drift" in suppressed_rules
    assert "async-blocking" in suppressed_rules
