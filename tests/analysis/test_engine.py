"""Engine-level behavior: suppression, units, the report, the CLI."""

import io
import json
import textwrap

from repro.analysis import analyze, load_unit, scan_suppressions
from repro.analysis.checkers.exact_arith import ExactArithChecker
from repro.analysis.cli import run


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return path


class TestSuppressionScanning:
    def test_same_line_pragma(self):
        allowed = scan_suppressions("x = 1.0  # repro: allow[exact-arith]\n")
        assert allowed[1] == {"exact-arith"}

    def test_comment_line_covers_next_code_line(self):
        src = "# repro: allow[exact-arith] mirror region\nx = 1.0\n"
        allowed = scan_suppressions(src)
        assert "exact-arith" in allowed[1]
        assert "exact-arith" in allowed[2]

    def test_chains_through_comment_block(self):
        src = ("# repro: allow[exact-arith] a justification\n"
               "# that needs two lines\n"
               "x = 1.0\n")
        allowed = scan_suppressions(src)
        assert "exact-arith" in allowed[3]

    def test_pragma_inside_string_is_inert(self):
        src = 's = "# repro: allow[exact-arith]"\nx = 1.0\n'
        allowed = scan_suppressions(src)
        assert allowed == {}

    def test_multiple_rules_one_comment(self):
        src = "y = 2  # repro: allow[a-rule] repro: allow[b-rule]\n"
        allowed = scan_suppressions(src)
        assert allowed[1] == {"a-rule", "b-rule"}


class TestModuleUnit:
    def test_module_name_inside_package(self, tmp_path):
        pkg = tmp_path / "mypkg" / "sub"
        pkg.mkdir(parents=True)
        (tmp_path / "mypkg" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        mod = pkg / "thing.py"
        mod.write_text("x = 1\n")
        assert load_unit(mod).module == "mypkg.sub.thing"

    def test_multiline_statement_anchor(self, tmp_path):
        # Pragma above a parenthesized statement covers its later lines.
        path = _write(tmp_path, "snippet.py", """\
            # repro: allow[exact-arith] spans the whole statement
            value = (
                float(3)
            )
            """)
        unit = load_unit(path)
        assert unit.allows("exact-arith", 3)

    def test_pragma_does_not_blanket_a_block(self, tmp_path):
        path = _write(tmp_path, "snippet.py", """\
            # repro: allow[exact-arith]
            if True:
                x = float(3)
            """)
        unit = load_unit(path)
        assert not unit.allows("exact-arith", 3)


class TestAnalyze:
    def test_findings_sorted_and_stamped(self, tmp_path):
        _write(tmp_path, "b.py", "y = float(2)\n")
        _write(tmp_path, "a.py", "x = 1.5  # repro: allow[exact-arith]\n")
        report = analyze([tmp_path], [ExactArithChecker(scope=())])
        assert report.files_checked == 2
        assert [f.suppressed for f in report.findings] == [True, False]
        assert not report.ok
        assert len(report.unsuppressed) == 1

    def test_syntax_error_is_a_finding(self, tmp_path):
        _write(tmp_path, "bad.py", "def broken(:\n")
        report = analyze([tmp_path], [])
        assert [f.rule for f in report.findings] == ["parse-error"]
        assert not report.ok


class TestCli:
    def test_text_output_and_exit_codes(self, tmp_path):
        _write(tmp_path, "clean.py", "x = 1\n")
        out = io.StringIO()
        assert run([str(tmp_path)], stream=out) == 0
        assert "0 finding(s)" in out.getvalue()

    def test_json_output_shape(self, tmp_path):
        _write(tmp_path, "clean.py", "x = 1\n")
        out = io.StringIO()
        assert run([str(tmp_path), "--format=json"], stream=out) == 0
        payload = json.loads(out.getvalue())
        assert payload["ok"] is True
        assert payload["files_checked"] == 1
        assert len(payload["rules"]) == 7

    def test_unknown_rule_filter_is_an_error(self, tmp_path):
        assert run([str(tmp_path), "--rules=no-such-rule"],
                   stream=io.StringIO()) == 2

    def test_rule_filter_runs_subset(self, tmp_path):
        _write(tmp_path, "f.py", "x = float(2)\n")
        out = io.StringIO()
        # exact-arith scoping excludes the fixture module, so a scoped
        # run over it is clean even with the filter active.
        code = run([str(tmp_path), "--rules=exact-arith",
                    "--format=json"], stream=out)
        payload = json.loads(out.getvalue())
        assert payload["rules"] == ["exact-arith"]
        assert code == 0

    def test_check_pragmas_gate(self, tmp_path):
        _write(tmp_path, "clean.py",
               "x = 1  # repro: allow[exact-arith]\n")
        assert run([str(tmp_path)], stream=io.StringIO()) == 0
        out = io.StringIO()
        assert run([str(tmp_path), "--check-pragmas"], stream=out) == 1
        assert "unused-pragma" in out.getvalue()

    def test_max_seconds_budget(self, tmp_path):
        _write(tmp_path, "clean.py", "x = 1\n")
        assert run([str(tmp_path), "--max-seconds=120"],
                   stream=io.StringIO()) == 0
        # An impossible budget trips the distinct exit code even on a
        # clean tree.
        assert run([str(tmp_path), "--max-seconds=0"],
                   stream=io.StringIO()) == 3


class TestSarif:
    def _in_scope_tree(self, tmp_path):
        # exact-arith's production scope wants repro.smt.*, so build a
        # real package spine around the fixture module.
        pkg = tmp_path / "repro" / "smt"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "simplex.py").write_text(
            "x = 1.5\n"
            "y = 2.5  # repro: allow[exact-arith] fixture\n")

    def test_sarif_log_shape(self, tmp_path):
        self._in_scope_tree(tmp_path)
        out = io.StringIO()
        code = run([str(tmp_path), "--format=sarif"], stream=out)
        assert code == 1
        sarif = json.loads(out.getvalue())
        assert sarif["version"] == "2.1.0"
        (run_obj,) = sarif["runs"]
        driver = run_obj["tool"]["driver"]
        assert driver["name"] == "repro-analysis"
        rule_ids = [r["id"] for r in driver["rules"]]
        assert "exact-arith" in rule_ids
        by_line = {r["locations"][0]["physicalLocation"]["region"]
                   ["startLine"]: r for r in run_obj["results"]
                   if r["ruleId"] == "exact-arith"}
        assert set(by_line) == {1, 2}
        assert "suppressions" not in by_line[1]
        assert by_line[2]["suppressions"][0]["kind"] == "inSource"
        for result in run_obj["results"]:
            assert rule_ids[result["ruleIndex"]] == result["ruleId"]

    def test_sarif_covers_engine_rules(self, tmp_path):
        _write(tmp_path, "stale.py",
               "x = 1  # repro: allow[no-such-rule]\n")
        out = io.StringIO()
        code = run([str(tmp_path), "--format=sarif", "--check-pragmas"],
                   stream=out)
        assert code == 1
        sarif = json.loads(out.getvalue())
        driver = sarif["runs"][0]["tool"]["driver"]
        assert "unused-pragma" in [r["id"] for r in driver["rules"]]
        (result,) = sarif["runs"][0]["results"]
        assert result["ruleId"] == "unused-pragma"
        assert "suppressions" not in result


class TestPragmaHygiene:
    def test_region_suppresses_between_markers(self, tmp_path):
        _write(tmp_path, "snippet.py", """\
            # repro: allow[exact-arith]:begin advisory mirror
            x = 1.5
            y = float(2)
            # repro: allow[exact-arith]:end
            z = 2.5
            """)
        report = analyze([tmp_path], [ExactArithChecker(scope=())])
        assert [(f.line, f.suppressed) for f in report.findings] == [
            (2, True), (3, True), (5, False)]

    def test_unmatched_begin_extends_to_eof(self, tmp_path):
        _write(tmp_path, "snippet.py", """\
            # repro: allow[exact-arith]:begin whole-file mirror
            x = 1.5
            y = 2.5
            """)
        report = analyze([tmp_path], [ExactArithChecker(scope=())])
        assert [f.suppressed for f in report.findings] == [True, True]

    def test_used_pragma_survives_check(self, tmp_path):
        _write(tmp_path, "snippet.py",
               "x = 1.5  # repro: allow[exact-arith]\n")
        report = analyze([tmp_path], [ExactArithChecker(scope=())],
                         check_pragmas=True)
        assert [f.rule for f in report.findings] == ["exact-arith"]
        assert report.ok

    def test_stale_pragma_flagged(self, tmp_path):
        _write(tmp_path, "snippet.py",
               "x = 1  # repro: allow[exact-arith]\n")
        report = analyze([tmp_path], [ExactArithChecker(scope=())],
                         check_pragmas=True)
        (finding,) = report.findings
        assert finding.rule == "unused-pragma"
        assert "suppresses nothing" in finding.message
        assert not report.ok

    def test_stale_region_flagged(self, tmp_path):
        _write(tmp_path, "snippet.py", """\
            # repro: allow[exact-arith]:begin nothing here
            x = 1
            # repro: allow[exact-arith]:end
            """)
        report = analyze([tmp_path], [ExactArithChecker(scope=())],
                         check_pragmas=True)
        (finding,) = report.findings
        assert finding.line == 1
        assert "region suppresses no findings" in finding.message

    def test_unknown_rule_pragma_flagged(self, tmp_path):
        _write(tmp_path, "snippet.py",
               "x = 1  # repro: allow[no-such-rule]\n")
        report = analyze([tmp_path], [ExactArithChecker(scope=())],
                         check_pragmas=True)
        (finding,) = report.findings
        assert "unknown rule 'no-such-rule'" in finding.message
        assert "exact-arith" in finding.message

    def test_orphan_end_flagged(self, tmp_path):
        _write(tmp_path, "snippet.py", """\
            x = 1
            # repro: allow[exact-arith]:end
            """)
        report = analyze([tmp_path], [ExactArithChecker(scope=())],
                         check_pragmas=True)
        (finding,) = report.findings
        assert "has no matching :begin" in finding.message

    def test_unused_pragma_is_unsuppressible(self, tmp_path):
        # A pragma cannot vouch for itself: even an allow[unused-pragma]
        # comment on the same line leaves the finding open.
        _write(tmp_path, "snippet.py",
               "x = 1  # repro: allow[exact-arith] "
               "repro: allow[unused-pragma]\n")
        report = analyze([tmp_path], [ExactArithChecker(scope=())],
                         check_pragmas=True)
        assert report.findings
        assert all(f.rule == "unused-pragma" and not f.suppressed
                   for f in report.findings)
        assert not report.ok
