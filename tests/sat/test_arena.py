"""Arena mechanics, learnt-DB policy fixes, and budget/interrupt aborts.

The flat-array clause arena replaced the per-clause object store; these
tests pin its invariants directly (handle stability across compaction,
free-slot recycling, wasted-space accounting) plus the two learnt-DB
policy fixes that rode along:

* glue clauses (LBD <= 2) survive every reduction — LBD is the primary
  eviction key, activity only tie-breaks;
* the learnt cap grows geometrically across restarts and persists
  across ``solve()`` calls, surfaced as ``statistics()["max_learnts"]``.
"""

import pytest

from repro.sat.arena import ClauseArena
from repro.sat.literals import from_dimacs, lit
from repro.sat.solver import SatSolver


def _lits(*ints):
    """DIMACS-style ints -> internal literals."""
    return [from_dimacs(i) for i in ints]


class TestClauseArena:
    def test_round_trip_and_metadata(self):
        arena = ClauseArena()
        a = arena.new_clause([2, 5, 7], learnt=False)
        b = arena.new_clause([4, 9], learnt=True, lbd=2)
        assert arena.literals(a) == [2, 5, 7]
        assert arena.literals(b) == [4, 9]
        assert not arena.learnt[a] and arena.learnt[b]
        assert arena.lbd[b] == 2
        assert arena.size[a] == 3 and arena.size[b] == 2

    def test_delete_marks_dead_and_accounts_waste(self):
        arena = ClauseArena()
        a = arena.new_clause([2, 5, 7], learnt=True, lbd=3)
        assert arena.wasted == 0
        arena.delete(a)
        assert arena.dead[a]
        assert arena.wasted == 3

    def test_handles_are_not_recycled_before_compaction(self):
        arena = ClauseArena()
        a = arena.new_clause([2, 5], learnt=True, lbd=2)
        arena.delete(a)
        b = arena.new_clause([7, 9], learnt=True, lbd=2)
        # A dead handle must stay distinct (reasons/watches may still
        # name it) until compact() explicitly frees it.
        assert b != a
        assert arena.literals(b) == [7, 9]

    def test_compact_preserves_live_handles_and_literals(self):
        arena = ClauseArena()
        handles = [arena.new_clause([2 * k, 2 * k + 4, 2 * k + 6], learnt=True,
                                    lbd=3) for k in range(1, 9)]
        doomed = handles[::2]
        for h in doomed:
            arena.delete(h)
        survivors = {h: arena.literals(h) for h in handles[1::2]}
        freed = arena.compact()
        assert freed == len(doomed)
        assert arena.wasted == 0
        for h, lits in survivors.items():
            assert arena.literals(h) == lits
        # Freed ids become available for new clauses only now.
        fresh = arena.new_clause([2, 4], learnt=False)
        assert fresh in set(doomed)

    def test_live_literals_counts_only_live_clauses(self):
        arena = ClauseArena()
        a = arena.new_clause([2, 5, 7], learnt=False)
        b = arena.new_clause([4, 9], learnt=True, lbd=2)
        arena.delete(b)
        assert arena.live_literals == 3
        assert a is not None


class TestGlueSurvival:
    """Regression: _reduce_db must never evict glue (LBD <= 2) clauses."""

    def _solver_with_learnts(self, lbds):
        s = SatSolver()
        for _ in range(12):
            s.new_var()
        handles = []
        for i, lbd in enumerate(lbds):
            # Three unassigned literals each: never locked, size > 2.
            base = 1 + (3 * i) % 9
            lits = _lits(base, -(base + 1), base + 2)
            h = s._arena.new_clause(lits, learnt=True, lbd=lbd)
            s._learnts.append(h)
            s._attach(h)
            handles.append(h)
        return s, handles

    def test_glue_survives_forced_reduction(self):
        lbds = [2, 9, 1, 8, 2, 7, 6, 2, 5, 4]
        s, handles = self._solver_with_learnts(lbds)
        s._reduce_db()
        survivors = set(s._learnts)
        for h, lbd in zip(handles, lbds):
            if lbd <= 2:
                assert h in survivors, f"glue clause (lbd={lbd}) was evicted"
        # The reduction did do real work: some high-LBD clause is gone.
        assert len(survivors) < len(handles)

    def test_eviction_order_is_lbd_first_activity_tiebreak(self):
        lbds = [5, 5, 9, 9]
        s, handles = self._solver_with_learnts(lbds)
        # Same LBD pair: the less active clause must go first.
        s._arena.activity[handles[0]] = 10.0
        s._arena.activity[handles[1]] = 1.0
        s._arena.activity[handles[2]] = 10.0
        s._arena.activity[handles[3]] = 1.0
        s._reduce_db()
        survivors = set(s._learnts)
        # Worst half = the two LBD-9 clauses; both LBD-5 stay.
        assert handles[0] in survivors and handles[1] in survivors
        assert handles[2] not in survivors and handles[3] not in survivors

    def test_binary_and_locked_clauses_survive(self):
        s = SatSolver()
        for _ in range(6):
            s.new_var()
        binary = s._arena.new_clause(_lits(1, 2), learnt=True, lbd=9)
        s._learnts.append(binary)
        s._attach(binary)
        for lbd in (9, 9, 9, 9):
            h = s._arena.new_clause(_lits(3, -4, 5), learnt=True, lbd=lbd)
            s._learnts.append(h)
            s._attach(h)
        s._reduce_db()
        assert binary in s._learnts


class TestMaxLearntsPolicy:
    def test_cap_is_surfaced_and_persists(self):
        s = SatSolver()
        for _ in range(4):
            s.new_var()
        s.add_clause(_lits(1, 2))
        s.add_clause(_lits(-1, 3))
        assert s.statistics["max_learnts"] == 0  # not yet solving
        assert s.solve() is True
        cap = s.statistics["max_learnts"]
        assert cap >= 1000
        # A second solve must not shrink the cap (no re-derivation from
        # scratch at every call — the pre-fix bug).
        assert s.solve(_lits(4)) is True
        assert s.statistics["max_learnts"] >= cap

    def test_cap_grows_across_restarts(self):
        s = SatSolver()
        for _ in range(4):
            s.new_var()
        s.add_clause(_lits(1, 2))
        assert s.solve() is True
        base = s._max_learnts
        # Simulate what the restart path does.
        s._max_learnts *= s._max_learnts_growth
        assert s._max_learnts == pytest.approx(base * 1.1)


class TestBudgetAndInterrupt:
    def _hard_solver(self):
        """A small unsat pigeonhole instance (7 pigeons, 6 holes)."""
        n_p, n_h = 7, 6
        s = SatSolver()
        var = [[s.new_var() for _ in range(n_h)] for _ in range(n_p)]
        for p in range(n_p):
            s.add_clause([lit(var[p][h], True) for h in range(n_h)])
        for h in range(n_h):
            for p1 in range(n_p):
                for p2 in range(p1 + 1, n_p):
                    s.add_clause([lit(var[p1][h], False),
                                  lit(var[p2][h], False)])
        return s

    def test_max_conflicts_aborts_with_none(self):
        s = self._hard_solver()
        assert s.solve(max_conflicts=20) is None
        assert s.decision_level == 0
        assert s.statistics["conflicts"] >= 20

    def test_abort_fires_on_restart_hook(self):
        s = self._hard_solver()
        fired = []
        s.on_restart = lambda solver: fired.append(
            solver.statistics["conflicts"])
        assert s.solve(max_conflicts=20) is None
        assert fired, "abort must flush through on_restart"

    def test_budget_is_per_call_and_resumable(self):
        s = self._hard_solver()
        assert s.solve(max_conflicts=20) is None
        # Unbounded resume completes the proof; learnt state carried over.
        assert s.solve() is False

    def test_interrupt_flag_aborts_next_boundary(self):
        s = self._hard_solver()

        def stop_soon(solver):
            solver.interrupt()

        s.on_restart = stop_soon
        assert s.solve() is None  # first restart raises the flag
        s.on_restart = None
        assert s.solve() is False  # flag cleared on entry; run completes

    def test_unit_contradiction_gives_false_not_none(self):
        s = SatSolver()
        s.new_var()
        s.add_clause(_lits(1))
        assert s.add_clause(_lits(-1)) is False
        assert s.solve(max_conflicts=5) is False
