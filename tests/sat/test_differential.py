"""Differential tests: the arena solver tracks the pre-arena oracle.

``tests/sat/reference_solver.py`` is a frozen copy of the object-based
CDCL solver as it stood before the flat-array arena rewrite (with the
same two learnt-DB policy fixes applied, so policy and layout changes
are isolated from each other).  Because the rewrite only changed the
clause *storage* — never the search heuristics, propagation order, or
reduction policy — the two solvers must walk literally the same search
tree: identical verdicts, identical models, identical failed-assumption
cores, and identical conflict/decision/propagation/restart counters, on
every input.

The streams below are seeded and deterministic: random 3-ish-CNF
streams, incremental episodes with activation literals standing in for
push/pop scopes, and assumption probes.  The hard instances drive the
pair through restarts and clause-database reductions, so the lazy
watcher deletion and arena compaction paths are exercised, not just the
happy path.
"""

import random

import pytest

from repro.sat.literals import from_dimacs, lit
from repro.sat.solver import SatSolver

from .reference_solver import SatSolver as ReferenceSolver


def _new_pair(num_vars):
    arena, oracle = SatSolver(), ReferenceSolver()
    for _ in range(num_vars):
        arena.new_var()
        oracle.new_var()
    return arena, oracle


def _random_clause(rng, num_vars, max_len=4):
    length = rng.randint(1, max_len)
    return [rng.randint(1, num_vars) * rng.choice((1, -1))
            for _ in range(length)]


_COMPARED_COUNTERS = ("conflicts", "decisions", "propagations", "restarts",
                      "learnts", "max_learnts")


def _assert_in_lockstep(arena, oracle, verdict_a, verdict_o, ctx=""):
    assert verdict_a == verdict_o, f"verdict diverged {ctx}"
    sa, so = arena.statistics, oracle.statistics
    for key in _COMPARED_COUNTERS:
        assert sa[key] == so[key], (
            f"{key} diverged {ctx}: arena={sa[key]} oracle={so[key]}"
        )
    if verdict_a is True:
        for v in range(1, arena.num_vars + 1):
            assert arena.model_value(v) == oracle.model_value(v), (
                f"model diverged at var {v} {ctx}"
            )
    elif verdict_a is False:
        assert arena.failed_assumptions == oracle.failed_assumptions, (
            f"failed-assumption core diverged {ctx}"
        )


@pytest.mark.parametrize("seed", range(40))
def test_random_streams_identical_trajectories(seed):
    """One-shot random CNF: same verdict, model/core, and counters."""
    rng = random.Random(7000 + seed)
    num_vars = rng.randint(5, 30)
    n_clauses = rng.randint(num_vars, 5 * num_vars)
    arena, oracle = _new_pair(num_vars)
    ok_a = ok_o = True
    for _ in range(n_clauses):
        clause = [from_dimacs(d) for d in _random_clause(rng, num_vars)]
        ok_a = arena.add_clause(list(clause)) and ok_a
        ok_o = oracle.add_clause(list(clause)) and ok_o
    assert ok_a == ok_o
    if not ok_a:
        return
    _assert_in_lockstep(arena, oracle, arena.solve(), oracle.solve(),
                        f"(seed={seed})")


@pytest.mark.parametrize("seed", range(25))
def test_incremental_episodes_with_assumptions(seed):
    """Interleaved add/solve episodes under random assumption probes."""
    rng = random.Random(8100 + seed)
    num_vars = rng.randint(8, 24)
    arena, oracle = _new_pair(num_vars)
    alive = True
    for episode in range(rng.randint(2, 5)):
        for _ in range(rng.randint(2, 3 * num_vars // 2)):
            clause = [from_dimacs(d) for d in _random_clause(rng, num_vars)]
            ra = arena.add_clause(list(clause))
            ro = oracle.add_clause(list(clause))
            assert ra == ro
            alive = alive and ra
        if not alive:
            return
        n_assume = rng.randint(0, 3)
        assumed_vars = rng.sample(range(1, num_vars + 1), k=min(n_assume,
                                                                num_vars))
        assumptions = [lit(v, rng.random() < 0.5) for v in assumed_vars]
        va = arena.solve(list(assumptions))
        vo = oracle.solve(list(assumptions))
        _assert_in_lockstep(arena, oracle, va, vo,
                            f"(seed={seed}, episode={episode})")
        if va is False and not assumptions:
            return  # permanently unsat: nothing further to compare


@pytest.mark.parametrize("seed", range(12))
def test_activation_literal_scopes(seed):
    """Push/pop emulation: clause groups guarded by activation literals.

    Scope k's clauses all carry the disabling literal ``a_k``; solving
    under assumptions ``~a_1..~a_j, a_{j+1}..`` activates exactly the
    first j scopes — the session layer's push/pop encoding.  Arena and
    oracle must agree at every activation depth, both ways through the
    stack.
    """
    rng = random.Random(9300 + seed)
    num_problem_vars = rng.randint(6, 14)
    n_scopes = rng.randint(2, 4)
    arena, oracle = _new_pair(num_problem_vars + n_scopes)
    act = [num_problem_vars + 1 + k for k in range(n_scopes)]
    for k in range(n_scopes):
        for _ in range(rng.randint(3, 8)):
            clause = _random_clause(rng, num_problem_vars)
            internal = [from_dimacs(d) for d in clause] + [lit(act[k], True)]
            assert arena.add_clause(list(internal))
            assert oracle.add_clause(list(internal))
    for depth in list(range(n_scopes + 1)) + [1, n_scopes]:
        assumptions = [lit(act[k], False) for k in range(depth)]
        va = arena.solve(list(assumptions))
        vo = oracle.solve(list(assumptions))
        _assert_in_lockstep(arena, oracle, va, vo,
                            f"(seed={seed}, depth={depth})")


def _pigeonhole_clauses(n_pigeons, n_holes, var):
    clauses = [[lit(var[p][h], True) for h in range(n_holes)]
               for p in range(n_pigeons)]
    for h in range(n_holes):
        for p1 in range(n_pigeons):
            for p2 in range(p1 + 1, n_pigeons):
                clauses.append([lit(var[p1][h], False),
                                lit(var[p2][h], False)])
    return clauses


def test_hard_unsat_instance_reaches_restarts_in_lockstep():
    """PHP(8,7): enough conflicts for restarts + learnt-DB churn."""
    n_p, n_h = 8, 7
    arena, oracle = SatSolver(), ReferenceSolver()
    var = [[arena.new_var() for _ in range(n_h)] for _ in range(n_p)]
    for _ in range(n_p * n_h):
        oracle.new_var()
    for clause in _pigeonhole_clauses(n_p, n_h, var):
        assert arena.add_clause(list(clause))
        assert oracle.add_clause(list(clause))
    _assert_in_lockstep(arena, oracle, arena.solve(), oracle.solve(),
                        "(php-8-7)")
    assert arena.statistics["restarts"] > 0, (
        "instance too easy to exercise the restart path"
    )


def test_forced_reduction_and_compaction_in_lockstep():
    """Drive both solvers through _reduce_db and arena compaction.

    A guarded PHP(8,7) — every pigeon clause carries an escape literal
    ``e`` — is refuted under ``~e`` (thousands of conflicts, learnt DB in
    the thousands), then both caps are manually lowered below the DB size
    so the next refutation must reduce (and, on the arena side, compact).
    Counters must stay identical through eviction and the final sat
    solve under ``e``.
    """
    n_p, n_h = 8, 7

    def build(cls):
        s = cls()
        var = [[s.new_var() for _ in range(n_h)] for _ in range(n_p)]
        e = s.new_var()
        for p in range(n_p):
            s.add_clause([lit(var[p][h], True) for h in range(n_h)]
                         + [lit(e, True)])
        for h in range(n_h):
            for p1 in range(n_p):
                for p2 in range(p1 + 1, n_p):
                    s.add_clause([lit(var[p1][h], False),
                                  lit(var[p2][h], False)])
        return s, e

    arena, e = build(SatSolver)
    oracle, _ = build(ReferenceSolver)
    _assert_in_lockstep(arena, oracle, arena.solve([lit(e, False)]),
                        oracle.solve([lit(e, False)]), "(guarded-php refute)")
    learnts_before = arena.statistics["learnts"]
    assert learnts_before > 1500, "instance too easy to force a reduction"
    # Lower both caps below the DB size (above the 1000 floor, so the
    # next solve() keeps it): the next search must reduce immediately.
    arena._max_learnts = oracle._max_learnts = 1500.0
    _assert_in_lockstep(arena, oracle, arena.solve([lit(e, False)]),
                        oracle.solve([lit(e, False)]), "(forced reduction)")
    assert arena.statistics["learnts"] < learnts_before
    assert arena._arena._free, "reduction should have compacted the arena"
    _assert_in_lockstep(arena, oracle, arena.solve([lit(e, True)]),
                        oracle.solve([lit(e, True)]), "(post-reduction sat)")


@pytest.mark.parametrize("seed", range(6))
def test_hard_random_instances_near_phase_transition(seed):
    """Random 3-SAT at clause ratio ~4.3: restarts and DB reductions."""
    rng = random.Random(11_000 + seed)
    num_vars = 46
    arena, oracle = _new_pair(num_vars)
    for _ in range(int(num_vars * 4.3)):
        vs = rng.sample(range(1, num_vars + 1), k=3)
        clause = [lit(v, rng.random() < 0.5) for v in vs]
        assert arena.add_clause(list(clause))
        assert oracle.add_clause(list(clause))
    _assert_in_lockstep(arena, oracle, arena.solve(), oracle.solve(),
                        f"(seed={seed})")
