"""Frozen pre-arena reference CDCL solver (test oracle only).

This is the object-based (``_Clause`` instances, per-clause watcher
lists) SAT core exactly as it stood before the flat-array arena rewrite
of :mod:`repro.sat.solver`, kept as the differential-testing oracle: the
equivalence property tests replay identical clause streams through both
implementations and require identical verdicts, models,
failed-assumption cores, and conflict/decision counters.

The two learnt-database management bugfixes that shipped *with* the
arena PR are applied here too — LBD-aware reduction with glue-clause
survival, and geometric ``max_learnts`` growth at restarts — so the
reference and the arena solver follow the same search trajectory and the
differential tests isolate the memory-layout change alone.

Not part of the package; nothing outside ``tests/sat`` may import it.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import SolverError
from repro.sat.literals import FALSE, TRUE, UNASSIGNED, is_positive, neg, var_of

#: A theory-implied literal with its explanation: the asserted literals
#: that jointly entail it.  The explanation is only materialized into a
#: reason *clause* if conflict analysis ever resolves on the implication.
TheoryImplication = Tuple[int, Tuple[int, ...]]


class TheoryBackend:
    """No-op theory backend: plain SAT solving."""

    def on_assert(self, literal: int) -> Optional[List[int]]:
        """Observe a newly asserted trail literal; return a conflict or None."""
        return None

    def on_backjump(self, n_kept: int) -> None:
        """Undo theory state for trail literals beyond position ``n_kept``."""

    def final_check(self) -> Optional[List[int]]:
        """Check a full assignment; return a conflict explanation or None."""
        return None

    def propagate(self, assigns: Sequence[int]) -> List[TheoryImplication]:
        """Implied literals entailed by the current theory state.

        ``assigns`` is the solver's per-variable assignment array (indexed
        by SAT variable, ``UNASSIGNED`` for open variables) so the theory
        can skip already-assigned atoms without allocating.
        """
        return []


def luby(i: int) -> int:
    """The Luby restart sequence (1,1,2,1,1,2,4,...), 1-indexed.

    O(log i): find the smallest complete binary run containing ``i``
    (``i == 2**k - 1`` means ``i`` ends a run and the value is ``2**(k-1)``),
    otherwise recurse into the tail — realized iteratively, shrinking ``i``
    at least one bit per step instead of rescanning ``k`` downward.
    """
    k = i.bit_length()
    while True:
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i -= (1 << (k - 1)) - 1
        k = i.bit_length()


class _TheoryReason:
    """Reason clause for a theory-propagated literal, materialized lazily.

    Duck-types the parts of :class:`_Clause` that conflict analysis uses
    (``lits``, ``learnt``, ``activity``).  ``lits`` is built on first
    access: ``[implied, -e1, -e2, ...]`` — a clause that is valid by theory
    reasoning and asserting under the trail that produced it.  The
    explanation may have any arity: difference-logic path implications
    carry every asserted literal of the deriving path, and both 1-UIP
    and final-conflict analysis expand such reasons like any clause.
    """

    __slots__ = ("_implied", "_explain", "_lits", "learnt", "activity")

    def __init__(self, implied: int, explain: Tuple[int, ...]):
        self._implied = implied
        self._explain = explain
        self._lits: Optional[List[int]] = None
        self.learnt = False
        self.activity = 0.0

    @property
    def lits(self) -> List[int]:
        if self._lits is None:
            self._lits = [self._implied] + [neg(e) for e in self._explain]
        return self._lits


class _Clause:
    """A clause with activity bookkeeping for database reduction.

    ``lbd`` (literal block distance: distinct decision levels among the
    literals at learning time) is recorded for learned clauses; it ranks
    sharing-export candidates (low LBD = likely to propagate elsewhere).
    """

    __slots__ = ("lits", "learnt", "activity", "lbd")

    def __init__(self, lits: List[int], learnt: bool, lbd: int = 0):
        self.lits = lits
        self.learnt = learnt
        self.activity = 0.0
        self.lbd = lbd


def _clause_quality(c: _Clause):
    # Worst-first: highest LBD, then lowest activity.
    return (-c.lbd, c.activity)


class SatSolver:
    """Incremental CDCL SAT solver over internal literals.

    Public entry points use the *internal* literal encoding of
    :mod:`repro.sat.literals`; the DIMACS convenience layer lives in
    :mod:`repro.sat.dimacs`.
    """

    def __init__(self, theory: Optional[TheoryBackend] = None):
        self.theory = theory or TheoryBackend()
        self._nvars = 0
        # Indexed by variable (1-based; index 0 unused).
        self._assigns: List[int] = [UNASSIGNED]
        self._levels: List[int] = [0]
        self._reasons: List[Optional[_Clause]] = [None]
        self._activity: List[float] = [0.0]
        self._saved_phase: List[bool] = [False]
        # Indexed by literal.
        self._watches: List[List[_Clause]] = [[], []]
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._clauses: List[_Clause] = []
        self._learnts: List[_Clause] = []
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._order_heap: List[int] = []
        self._heap_pos: List[int] = [-1]
        self._ok = True
        self._conflicts = 0
        self._decisions = 0
        self._propagations = 0
        self._theory_propagations = 0
        self._restarts = 0
        self._max_learnts_factor = 1.0 / 3.0
        self._max_learnts: Optional[float] = None
        self._max_learnts_growth = 1.1
        self._model: List[int] = []
        self._theory_qhead = 0
        self._failed_assumptions: List[int] = []

    # ------------------------------------------------------------------
    # Variables and clauses
    # ------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        return self._nvars

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    @property
    def statistics(self) -> dict:
        """Search statistics of the most recent / cumulative solving run."""
        return {
            "conflicts": self._conflicts,
            "decisions": self._decisions,
            "propagations": self._propagations,
            "theory_propagations": self._theory_propagations,
            "restarts": self._restarts,
            "max_learnts": int(self._max_learnts or 0),
            "clauses": len(self._clauses),
            "learnts": len(self._learnts),
            "vars": self._nvars,
        }

    def new_var(self) -> int:
        """Allocate and return a fresh variable (1-based index)."""
        self._nvars += 1
        v = self._nvars
        self._assigns.append(UNASSIGNED)
        self._levels.append(0)
        self._reasons.append(None)
        self._activity.append(0.0)
        self._saved_phase.append(False)
        self._watches.append([])
        self._watches.append([])
        self._heap_pos.append(-1)
        self._heap_insert(v)
        return v

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause of internal literals.

        Returns False if the solver became trivially UNSAT (empty clause or a
        unit contradicting a root-level assignment).  Clauses may only be
        added at decision level 0 (call :meth:`cancel_until` first if
        needed); this is the standard incremental-SAT interface.
        """
        if self._trail_lim:
            raise SolverError("clauses may only be added at decision level 0")
        if not self._ok:
            return False
        seen = {}
        out: List[int] = []
        for l in lits:
            v = var_of(l)
            if v < 1 or v > self._nvars:
                raise SolverError(f"literal {l} references unknown variable {v}")
            val = self._lit_value(l)
            if val == TRUE:
                return True  # clause already satisfied at root
            if val == FALSE:
                continue  # root-level falsified literal: drop it
            prev = seen.get(v)
            if prev is None:
                seen[v] = l
                out.append(l)
            elif prev != l:
                return True  # tautology (x or not x)
        if not out:
            self._ok = False
            return False
        if len(out) == 1:
            if not self._enqueue(out[0], None):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                return False
            return True
        clause = _Clause(out, learnt=False)
        self._clauses.append(clause)
        self._attach(clause)
        return True

    # ------------------------------------------------------------------
    # Assignment helpers
    # ------------------------------------------------------------------

    def _lit_value(self, l: int) -> int:
        a = self._assigns[var_of(l)]
        if a == UNASSIGNED:
            return UNASSIGNED
        return a if is_positive(l) else a ^ 1

    def value(self, var: int) -> int:
        """Current assignment of ``var``: TRUE, FALSE or UNASSIGNED."""
        return self._assigns[var]

    def model_value(self, var: int) -> bool:
        """Value of ``var`` in the model of the last successful solve."""
        if not self._model:
            raise SolverError("no model available; call solve() first")
        return self._model[var] == TRUE

    def learned_clauses(self) -> List[_Clause]:
        """The live learned-clause database (read-only view for export).

        Unit learned clauses are asserted directly on the trail and never
        stored, so they do not appear here.
        """
        return list(self._learnts)

    @property
    def failed_assumptions(self) -> List[int]:
        """The assumption literals responsible for the last UNSAT answer.

        A subset of the ``assumptions`` passed to the failing
        :meth:`solve` call, jointly inconsistent with the clause database
        (the *unsat core* over assumptions, from final-conflict analysis).
        Empty when the formula is unsat regardless of assumptions, and
        after any SAT answer.
        """
        return list(self._failed_assumptions)

    @property
    def decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, l: int, reason: Optional[_Clause]) -> bool:
        val = self._lit_value(l)
        if val == FALSE:
            return False
        if val == TRUE:
            return True
        v = var_of(l)
        self._assigns[v] = TRUE if is_positive(l) else FALSE
        self._levels[v] = self.decision_level
        self._reasons[v] = reason
        self._trail.append(l)
        return True

    # ------------------------------------------------------------------
    # Watched-literal propagation
    # ------------------------------------------------------------------

    def _attach(self, clause: _Clause) -> None:
        self._watches[neg(clause.lits[0])].append(clause)
        self._watches[neg(clause.lits[1])].append(clause)

    def _propagate(self) -> Optional[_Clause]:
        """Unit propagation to fixpoint; returns a conflicting clause or None."""
        while self._qhead < len(self._trail):
            p = self._trail[self._qhead]
            self._qhead += 1
            self._propagations += 1
            watch_list = self._watches[p]
            new_list: List[_Clause] = []
            i = 0
            n = len(watch_list)
            conflict: Optional[_Clause] = None
            while i < n:
                clause = watch_list[i]
                i += 1
                lits = clause.lits
                # Ensure the falsified literal is at position 1.
                if lits[0] == neg(p):
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self._lit_value(first) == TRUE:
                    new_list.append(clause)
                    continue
                # Search a new literal to watch.
                moved = False
                for k in range(2, len(lits)):
                    if self._lit_value(lits[k]) != FALSE:
                        lits[1], lits[k] = lits[k], lits[1]
                        self._watches[neg(lits[1])].append(clause)
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit or conflicting.
                new_list.append(clause)
                if not self._enqueue(first, clause):
                    conflict = clause
                    # Copy the rest of the watch list and stop.
                    while i < n:
                        new_list.append(watch_list[i])
                        i += 1
                    self._qhead = len(self._trail)
            self._watches[p] = new_list
            if conflict is not None:
                return conflict
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------

    def _analyze(self, conflict: _Clause) -> tuple[List[int], int]:
        """Derive a 1-UIP learned clause and its backjump level."""
        learnt: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self._nvars + 1)
        counter = 0
        p: Optional[int] = None
        reason: Optional[_Clause] = conflict
        index = len(self._trail) - 1
        while True:
            assert reason is not None
            self._bump_clause(reason)
            for q in reason.lits:
                if p is not None and q == p:
                    continue
                v = var_of(q)
                if not seen[v] and self._levels[v] > 0:
                    seen[v] = True
                    self._bump_var(v)
                    if self._levels[v] >= self.decision_level:
                        counter += 1
                    else:
                        learnt.append(q)
            # Select next trail literal to expand.
            while not seen[var_of(self._trail[index])]:
                index -= 1
            p = self._trail[index]
            v = var_of(p)
            reason = self._reasons[v]
            seen[v] = False
            counter -= 1
            index -= 1
            if counter == 0:
                break
        learnt[0] = neg(p)
        # Clause minimization: drop literals implied by the rest.
        kept = [learnt[0]]
        for q in learnt[1:]:
            r = self._reasons[var_of(q)]
            if r is None:
                kept.append(q)
                continue
            if any(
                not seen[var_of(x)] and self._levels[var_of(x)] > 0
                for x in r.lits
                if x != neg(q)
            ):
                kept.append(q)
        learnt = kept
        lbd = len({self._levels[var_of(q)] for q in learnt})
        if len(learnt) == 1:
            back_level = 0
        else:
            # Find the literal with the second-highest level; move it to slot 1.
            max_i = 1
            for k in range(2, len(learnt)):
                if self._levels[var_of(learnt[k])] > self._levels[var_of(learnt[max_i])]:
                    max_i = k
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            back_level = self._levels[var_of(learnt[1])]
        return learnt, back_level, lbd

    def _analyze_final(
        self, conflict_lits: Sequence[int], assumptions: Sequence[int]
    ) -> List[int]:
        """Assumption literals reachable from a final conflict (MiniSat's
        ``analyzeFinal``).

        Walks the implication graph backwards from ``conflict_lits``: a
        reached literal with a reason clause is expanded, a reached
        *decision* is — at decision levels at or below the assumption
        prefix — one of the assumption literals and joins the core.  Must
        run before the trail is cancelled.  Returns a subset of
        ``assumptions`` in trail order.
        """
        if not self._trail_lim:
            return []
        assumption_set = set(assumptions)
        seen = bytearray(self._nvars + 1)
        core: List[int] = []
        for l in conflict_lits:
            v = var_of(l)
            if self._levels[v] > 0:
                seen[v] = 1
        start = self._trail_lim[0]
        for i in range(len(self._trail) - 1, start - 1, -1):
            l = self._trail[i]
            v = var_of(l)
            if not seen[v]:
                continue
            seen[v] = 0
            reason = self._reasons[v]
            if reason is None:
                if l in assumption_set:
                    core.append(l)
            else:
                for q in reason.lits:
                    qv = var_of(q)
                    if self._levels[qv] > 0:
                        seen[qv] = 1
        core.reverse()
        return core

    def _record_learnt(self, learnt: List[int], lbd: int = 0) -> None:
        """Install a learned clause and assert its first literal."""
        if len(learnt) == 1:
            self._enqueue(learnt[0], None)
            return
        clause = _Clause(learnt, learnt=True, lbd=lbd)
        self._learnts.append(clause)
        self._attach(clause)
        self._bump_clause(clause)
        self._enqueue(learnt[0], clause)

    # ------------------------------------------------------------------
    # Activity bookkeeping
    # ------------------------------------------------------------------

    def _bump_var(self, v: int) -> None:
        self._activity[v] += self._var_inc
        if self._activity[v] > 1e100:
            for i in range(1, self._nvars + 1):
                self._activity[i] *= 1e-100
            self._var_inc *= 1e-100
        if self._heap_pos[v] >= 0:
            self._heap_sift_up(self._heap_pos[v])

    def _decay_var_activity(self) -> None:
        self._var_inc /= self._var_decay

    def _bump_clause(self, c: _Clause) -> None:
        if not c.learnt:
            return
        c.activity += self._cla_inc
        if c.activity > 1e20:
            for cl in self._learnts:
                cl.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _decay_clause_activity(self) -> None:
        self._cla_inc /= self._cla_decay

    # ------------------------------------------------------------------
    # Order heap (max-heap on activity with lazy re-insertion)
    # ------------------------------------------------------------------

    def _heap_less(self, a: int, b: int) -> bool:
        return self._activity[a] > self._activity[b]

    def _heap_insert(self, v: int) -> None:
        if self._heap_pos[v] >= 0:
            return
        self._order_heap.append(v)
        self._heap_pos[v] = len(self._order_heap) - 1
        self._heap_sift_up(self._heap_pos[v])

    def _heap_sift_up(self, i: int) -> None:
        heap, pos = self._order_heap, self._heap_pos
        v = heap[i]
        while i > 0:
            parent = (i - 1) >> 1
            if self._heap_less(v, heap[parent]):
                heap[i] = heap[parent]
                pos[heap[i]] = i
                i = parent
            else:
                break
        heap[i] = v
        pos[v] = i

    def _heap_sift_down(self, i: int) -> None:
        heap, pos = self._order_heap, self._heap_pos
        v = heap[i]
        n = len(heap)
        while True:
            left = 2 * i + 1
            if left >= n:
                break
            right = left + 1
            child = right if right < n and self._heap_less(heap[right], heap[left]) else left
            if self._heap_less(heap[child], v):
                heap[i] = heap[child]
                pos[heap[i]] = i
                i = child
            else:
                break
        heap[i] = v
        pos[v] = i

    def _heap_pop(self) -> int:
        heap, pos = self._order_heap, self._heap_pos
        top = heap[0]
        last = heap.pop()
        pos[top] = -1
        if heap:
            heap[0] = last
            pos[last] = 0
            self._heap_sift_down(0)
        return top

    def _pick_branch_var(self) -> int:
        while self._order_heap:
            v = self._heap_pop()
            if self._assigns[v] == UNASSIGNED:
                return v
        return 0

    # ------------------------------------------------------------------
    # Backjumping
    # ------------------------------------------------------------------

    def cancel_until(self, level: int) -> None:
        """Undo all assignments above the given decision level."""
        if self.decision_level <= level:
            return
        keep = self._trail_lim[level]
        for i in range(len(self._trail) - 1, keep - 1, -1):
            l = self._trail[i]
            v = var_of(l)
            self._saved_phase[v] = is_positive(l)
            self._assigns[v] = UNASSIGNED
            self._reasons[v] = None
            self._heap_insert(v)
        del self._trail[keep:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)
        self._theory_qhead = min(self._theory_qhead, keep)
        self.theory.on_backjump(keep)

    # ------------------------------------------------------------------
    # Theory interaction
    # ------------------------------------------------------------------

    def _theory_notify(self, start: int) -> Optional[List[int]]:
        """Feed trail literals from position ``start`` to the theory.

        Returns a learned conflict clause (list of literals) or None.
        Because ``on_assert`` consumes the trail in order, the theory sees
        exactly the asserted literal sequence and can maintain incremental
        state keyed by trail position.
        """
        i = start
        while i < len(self._trail):
            explanation = self.theory.on_assert(self._trail[i])
            i += 1
            if explanation is not None:
                return [neg(l) for l in explanation]
        return None

    def _conflict_clause_from_explanation(self, clause_lits: List[int]) -> _Clause:
        return _Clause(clause_lits, learnt=True)

    def _theory_propagate(self) -> Optional[List[int]]:
        """Assign theory-implied literals; return a conflict clause or None.

        Each implied literal is enqueued with a :class:`_TheoryReason`
        whose explanation clause is built only if conflict analysis ever
        resolves on it.  An implied literal that is already false is a
        theory conflict: its (eagerly materialized) reason clause — which
        the current assignment falsifies — is returned for analysis.
        """
        for implied, explain in self.theory.propagate(self._assigns):
            val = self._lit_value(implied)
            if val == TRUE:
                continue
            if val == FALSE:
                return [implied] + [neg(e) for e in explain]
            self._theory_propagations += 1
            self._enqueue(implied, _TheoryReason(implied, explain))
        return None

    # ------------------------------------------------------------------
    # Clause database reduction
    # ------------------------------------------------------------------

    def _locked(self, c: _Clause) -> bool:
        v = var_of(c.lits[0])
        return self._reasons[v] is c and self._assigns[v] != UNASSIGNED

    def _reduce_db(self) -> None:
        """Drop the worse half of the learnt clauses, in place.

        Glucose-style quality ordering: LBD is the primary key (highest
        first — those are dropped), activity breaks ties (least active
        dropped first).  Locked, binary, and glue (LBD <= 2) clauses
        survive regardless of position.  The list is compacted with a
        write cursor (no rebuilt list, no churn for the kept majority).
        """
        learnts = self._learnts
        learnts.sort(key=_clause_quality)
        lim = len(learnts) // 2
        write = 0
        for i, c in enumerate(learnts):
            if (len(c.lits) > 2 and c.lbd > 2 and not self._locked(c)
                    and i < lim):
                self._detach(c)
            else:
                learnts[write] = c
                write += 1
        del learnts[write:]

    def _detach(self, c: _Clause) -> None:
        for w in (neg(c.lits[0]), neg(c.lits[1])):
            try:
                self._watches[w].remove(c)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # Main search loop
    # ------------------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = ()) -> bool:
        """Solve under the given assumption literals.

        Returns True (SAT: model available through :meth:`model_value`) or
        False (UNSAT under these assumptions; the responsible assumption
        subset is then available via :attr:`failed_assumptions`).
        """
        self._failed_assumptions = []
        if not self._ok:
            return False
        self.cancel_until(0)
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            return False
        restart_count = 0
        conflict_budget = 100 * luby(restart_count + 1)
        conflicts_here = 0
        base = max(1000, int(len(self._clauses) * self._max_learnts_factor))
        if self._max_learnts is None or self._max_learnts < base:
            self._max_learnts = float(base)
        assumptions = list(assumptions)

        while True:
            conflict = self._propagate()
            learned_from_theory: Optional[List[int]] = None
            if conflict is None:
                start = self._theory_head()
                theory_clause = self._theory_notify(start)
                if theory_clause is not None:
                    learned_from_theory = theory_clause
                else:
                    learned_from_theory = self._theory_propagate()
                    if learned_from_theory is None and self._qhead < len(self._trail):
                        # Implied literals were enqueued: run BCP over them
                        # (and let the theory observe them) before deciding.
                        continue
            if conflict is not None or learned_from_theory is not None:
                self._conflicts += 1
                conflicts_here += 1
                if learned_from_theory is not None:
                    if not learned_from_theory:
                        self._ok = False
                        return False
                    conflict = self._conflict_clause_from_explanation(learned_from_theory)
                    # A theory conflict may only involve literals below the
                    # current decision level; jump there so that _analyze's
                    # invariant (>= 1 literal at the current level) holds.
                    clause_level = max(self._levels[var_of(l)] for l in conflict.lits)
                    if clause_level < self.decision_level:
                        self.cancel_until(clause_level)
                if self.decision_level <= len(assumptions):
                    # The conflict depends only on root facts and assumptions.
                    if self.decision_level == 0 or not assumptions:
                        self._ok = False
                    else:
                        self._failed_assumptions = self._analyze_final(
                            conflict.lits, assumptions
                        )
                    self.cancel_until(0)
                    return False
                learnt, back_level, lbd = self._analyze(conflict)
                self.cancel_until(back_level)
                self._record_learnt(learnt, lbd)
                self._decay_var_activity()
                self._decay_clause_activity()
                continue

            # No propositional or theory conflict at this point.
            if conflicts_here >= conflict_budget:
                restart_count += 1
                self._restarts += 1
                conflicts_here = 0
                conflict_budget = 100 * luby(restart_count + 1)
                self._max_learnts *= self._max_learnts_growth
                self.cancel_until(self._assumption_level(assumptions))
                continue
            if len(self._learnts) >= self._max_learnts + len(self._trail):
                self._reduce_db()

            next_lit = self._next_assumption(assumptions)
            if next_lit is None and len(self._trail) == self._nvars:
                final = self.theory.final_check()
                if final is not None:
                    clause = [neg(l) for l in final]
                    self._conflicts += 1
                    if not clause:
                        self._ok = False
                        return False
                    conflict = self._conflict_clause_from_explanation(clause)
                    clause_level = max(self._levels[var_of(l)] for l in conflict.lits)
                    if clause_level < self.decision_level:
                        self.cancel_until(clause_level)
                    if self.decision_level <= len(assumptions):
                        if self.decision_level == 0 or not assumptions:
                            self._ok = False
                        else:
                            self._failed_assumptions = self._analyze_final(
                                conflict.lits, assumptions
                            )
                        self.cancel_until(0)
                        return False
                    learnt, back_level, lbd = self._analyze(conflict)
                    self.cancel_until(back_level)
                    self._record_learnt(learnt, lbd)
                    continue
                self._model = list(self._assigns)
                self.cancel_until(0)
                return True
            if next_lit is not None:
                val = self._lit_value(next_lit)
                if val == FALSE:
                    # Assumptions are inconsistent: ``next_lit`` plus the
                    # assumptions its negation was derived from.
                    self._failed_assumptions = [next_lit] + self._analyze_final(
                        [next_lit], assumptions
                    )
                    self.cancel_until(0)
                    return False
                self._trail_lim.append(len(self._trail))
                if val == UNASSIGNED:
                    self._decisions += 1
                    self._enqueue(next_lit, None)
                continue
            v = self._pick_branch_var()
            if v == 0:
                # All vars assigned (handled above), defensive fallback.
                self._model = list(self._assigns)
                self.cancel_until(0)
                return True
            self._decisions += 1
            self._trail_lim.append(len(self._trail))
            phase = self._saved_phase[v]
            self._enqueue(2 * v if phase else 2 * v + 1, None)

    def _theory_head(self) -> int:
        head = getattr(self, "_theory_qhead", 0)
        self._theory_qhead = len(self._trail)
        return head

    def cancel_theory_head(self, n_kept: int) -> None:
        self._theory_qhead = min(getattr(self, "_theory_qhead", 0), n_kept)

    def _assumption_level(self, assumptions: Sequence[int]) -> int:
        return min(len(assumptions), self.decision_level)

    def _next_assumption(self, assumptions: Sequence[int]) -> Optional[int]:
        lvl = self.decision_level
        if lvl < len(assumptions):
            return assumptions[lvl]
        return None
