"""Property-based tests: CDCL agrees with brute-force enumeration."""

from itertools import product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import DimacsSolver


def brute_force_sat(num_vars, clauses):
    """Reference oracle: enumerate all assignments."""
    for bits in product([False, True], repeat=num_vars):
        ok = True
        for clause in clauses:
            if not any(bits[abs(l) - 1] == (l > 0) for l in clause):
                ok = False
                break
        if ok:
            return True
    return False


@st.composite
def cnf_formulas(draw, max_vars=6, max_clauses=14, max_len=4):
    num_vars = draw(st.integers(min_value=1, max_value=max_vars))
    n_clauses = draw(st.integers(min_value=0, max_value=max_clauses))
    clauses = []
    for _ in range(n_clauses):
        length = draw(st.integers(min_value=1, max_value=max_len))
        clause = [
            draw(st.integers(min_value=1, max_value=num_vars))
            * (1 if draw(st.booleans()) else -1)
            for _ in range(length)
        ]
        clauses.append(clause)
    return num_vars, clauses


@given(cnf_formulas())
@settings(max_examples=200, deadline=None)
def test_cdcl_matches_brute_force(formula):
    num_vars, clauses = formula
    solver = DimacsSolver()
    solver.ensure_vars(num_vars)
    trivially_unsat = False
    for clause in clauses:
        if not solver.add_clause(clause):
            trivially_unsat = True
    expected = brute_force_sat(num_vars, clauses)
    got = solver.solve() and not trivially_unsat
    assert got == expected


@given(cnf_formulas(max_vars=5, max_clauses=10))
@settings(max_examples=100, deadline=None)
def test_model_satisfies_formula(formula):
    num_vars, clauses = formula
    solver = DimacsSolver()
    solver.ensure_vars(num_vars)
    ok = True
    for clause in clauses:
        ok = solver.add_clause(clause) and ok
    if ok and solver.solve():
        model = set(solver.model())
        for clause in clauses:
            assert any(l in model for l in clause)


@given(cnf_formulas(max_vars=5, max_clauses=8), st.integers(min_value=1, max_value=5))
@settings(max_examples=100, deadline=None)
def test_assumptions_consistent_with_added_units(formula, assume_var):
    """solve([a]) must equal solve() of the formula with unit clause a."""
    num_vars, clauses = formula
    if assume_var > num_vars:
        assume_var = num_vars
    s1 = DimacsSolver()
    s1.ensure_vars(num_vars)
    ok1 = all(s1.add_clause(c) for c in clauses)
    res_assume = ok1 and s1.solve([assume_var])

    s2 = DimacsSolver()
    s2.ensure_vars(num_vars)
    ok2 = all(s2.add_clause(c) for c in clauses)
    ok2 = s2.add_clause([assume_var]) and ok2
    res_unit = ok2 and s2.solve()
    assert res_assume == res_unit
