"""Unit tests for the CDCL SAT solver."""

import pytest

from repro.errors import SolverError
from repro.sat import DimacsSolver, SatSolver, lit, luby, neg


def make_solver(n):
    s = SatSolver()
    for _ in range(n):
        s.new_var()
    return s


class TestBasics:
    def test_empty_formula_is_sat(self):
        s = SatSolver()
        assert s.solve()

    def test_single_unit_clause(self):
        s = make_solver(1)
        assert s.add_clause([lit(1)])
        assert s.solve()
        assert s.model_value(1) is True

    def test_negative_unit_clause(self):
        s = make_solver(1)
        assert s.add_clause([lit(1, False)])
        assert s.solve()
        assert s.model_value(1) is False

    def test_contradicting_units_unsat(self):
        s = make_solver(1)
        s.add_clause([lit(1)])
        assert not s.add_clause([lit(1, False)]) or not s.solve()

    def test_two_var_implication_chain(self):
        s = make_solver(3)
        s.add_clause([lit(1)])
        s.add_clause([lit(1, False), lit(2)])
        s.add_clause([lit(2, False), lit(3)])
        assert s.solve()
        assert s.model_value(1) and s.model_value(2) and s.model_value(3)

    def test_simple_unsat_triangle(self):
        s = make_solver(2)
        s.add_clause([lit(1), lit(2)])
        s.add_clause([lit(1, False), lit(2)])
        s.add_clause([lit(1), lit(2, False)])
        s.add_clause([lit(1, False), lit(2, False)])
        assert not s.solve()

    def test_tautological_clause_ignored(self):
        s = make_solver(2)
        assert s.add_clause([lit(1), lit(1, False)])
        s.add_clause([lit(2)])
        assert s.solve()
        assert s.model_value(2)

    def test_duplicate_literals_collapsed(self):
        s = make_solver(1)
        s.add_clause([lit(1), lit(1), lit(1)])
        assert s.solve()
        assert s.model_value(1)

    def test_unknown_variable_rejected(self):
        s = make_solver(1)
        with pytest.raises(SolverError):
            s.add_clause([lit(5)])

    def test_model_query_before_solve_raises(self):
        s = make_solver(1)
        with pytest.raises(SolverError):
            s.model_value(1)

    def test_model_satisfies_all_clauses(self):
        s = make_solver(4)
        clauses = [
            [lit(1), lit(2, False)],
            [lit(2), lit(3)],
            [lit(3, False), lit(4, False)],
            [lit(1, False), lit(4)],
        ]
        for c in clauses:
            s.add_clause(list(c))
        assert s.solve()
        for c in clauses:
            assert any(
                s.model_value(v // 2) == (v % 2 == 0) for v in c
            ), f"clause {c} falsified"


class TestAssumptions:
    def test_assumption_forces_value(self):
        s = make_solver(2)
        s.add_clause([lit(1), lit(2)])
        assert s.solve([lit(1, False)])
        assert s.model_value(2)

    def test_unsat_under_assumptions_recoverable(self):
        s = make_solver(2)
        s.add_clause([lit(1), lit(2)])
        assert not s.solve([lit(1, False), lit(2, False)])
        # Solver stays usable afterwards.
        assert s.solve()
        assert s.solve([lit(1)])

    def test_conflicting_assumptions(self):
        s = make_solver(1)
        assert not s.solve([lit(1), lit(1, False)])
        assert s.solve()


class TestIncremental:
    def test_add_clauses_between_solves(self):
        s = make_solver(3)
        s.add_clause([lit(1), lit(2)])
        assert s.solve()
        s.add_clause([lit(1, False)])
        assert s.solve()
        assert s.model_value(2)
        s.add_clause([lit(2, False)])
        assert not s.solve()

    def test_php_3_pigeons_2_holes_unsat(self):
        # Pigeonhole principle: var p_ij = pigeon i in hole j.
        s = SatSolver()
        v = {}
        for i in range(3):
            for j in range(2):
                v[i, j] = s.new_var()
        for i in range(3):
            s.add_clause([lit(v[i, 0]), lit(v[i, 1])])
        for j in range(2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    s.add_clause([lit(v[i1, j], False), lit(v[i2, j], False)])
        assert not s.solve()

    def test_php_4_pigeons_3_holes_unsat(self):
        s = SatSolver()
        v = {}
        pigeons, holes = 4, 3
        for i in range(pigeons):
            for j in range(holes):
                v[i, j] = s.new_var()
        for i in range(pigeons):
            s.add_clause([lit(v[i, j]) for j in range(holes)])
        for j in range(holes):
            for i1 in range(pigeons):
                for i2 in range(i1 + 1, pigeons):
                    s.add_clause([lit(v[i1, j], False), lit(v[i2, j], False)])
        assert not s.solve()

    def test_statistics_populated(self):
        s = make_solver(2)
        s.add_clause([lit(1), lit(2)])
        s.solve()
        stats = s.statistics
        assert stats["vars"] == 2
        assert stats["clauses"] >= 0


class TestLuby:
    def test_luby_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]


class TestDimacsSolver:
    def test_signed_interface(self):
        s = DimacsSolver()
        s.add_clause([1, -2])
        s.add_clause([2, 3])
        s.add_clause([-1, -3])
        assert s.solve()
        model = set(s.model())
        for clause in ([1, -2], [2, 3], [-1, -3]):
            assert any(l in model for l in clause)

    def test_solve_under_signed_assumptions(self):
        s = DimacsSolver()
        s.add_clause([1, 2])
        assert s.solve([-1])
        assert 2 in s.model()
