"""Tests for DIMACS parsing/writing."""

import io

import pytest

from repro.errors import SolverError
from repro.sat import load_dimacs, parse_dimacs, write_dimacs


EXAMPLE = """\
c a comment
p cnf 3 4
1 -2 0
2 3 0
-1 -3 0
-2 0
"""


def test_parse_example():
    num_vars, clauses = parse_dimacs(EXAMPLE)
    assert num_vars == 3
    assert clauses == [[1, -2], [2, 3], [-1, -3], [-2]]


def test_parse_multiline_clause():
    num_vars, clauses = parse_dimacs("p cnf 2 1\n1\n2 0\n")
    assert clauses == [[1, 2]]


def test_parse_rejects_bad_problem_line():
    with pytest.raises(SolverError):
        parse_dimacs("p cnf 3\n1 0\n")


def test_load_and_solve():
    solver = load_dimacs(EXAMPLE)
    assert solver.solve()
    model = set(solver.model())
    assert -2 in model


def test_load_unsat():
    text = "p cnf 1 2\n1 0\n-1 0\n"
    solver = load_dimacs(text)
    assert not solver.solve()


def test_write_roundtrip():
    buf = io.StringIO()
    write_dimacs(3, [[1, -2], [3]], buf)
    num_vars, clauses = parse_dimacs(buf.getvalue())
    assert num_vars == 3
    assert clauses == [[1, -2], [3]]
