"""Table I — the General Motors automotive case study.

Paper: 20 control applications (camera/radar/lidar sensors and ECUs for
perception, tracking, active safety, autonomous control) on the 8-switch
Fig. 1 topology; 106 messages per 200 ms hyper-period; 10 Mbit/s links
(ld = 1.2 ms), sd = 5 us; 3 candidate routes, 5 stages.

Claims reproduced:
* stability-aware synthesis finds a schedule where **all** applications
  meet the worst-case stability condition (paper: 20/20, 112 s);
* deadline-only synthesis (the state of the art) satisfies every deadline
  but leaves a subset of applications **unstable** (paper: only 14/20
  stable, with 3 of the 5 published rows unstable).
"""

from repro.eval import run_table1


def test_table1_automotive(benchmark, is_paper_scale):
    n_apps = 20 if is_paper_scale else 8
    result = benchmark.pedantic(
        run_table1, kwargs=dict(n_apps=n_apps, routes=3, stages=5),
        rounds=1, iterations=1,
    )
    print()
    print(result.render())
    assert result.stability_status == "sat"
    # Claim 1: stability-aware keeps every application stable.
    assert result.stability_stable_count == result.n_apps
    # Claim 2: the deadline baseline leaves some applications unstable.
    assert result.deadline_status == "sat"
    assert result.deadline_stable_count < result.n_apps


def test_table1_message_count():
    """The full-scale case study carries exactly the paper's 106 messages."""
    from repro.eval import gm_case_study

    problem = gm_case_study(n_apps=20)
    assert problem.num_messages == 106
    assert float(problem.hyperperiod) == 0.2
