"""Fig. 5 — percentage of unsatisfied problems vs number of stages.

Paper: the incremental heuristic trades completeness for speed; with 5-7
stages exploration quality is "still very good" (single-digit % unsolved)
and the unsolved fraction grows as slices multiply.

The laptop default asserts the figure's two claims: a small stage count
solves (almost) everything that the large stage count solves, and the
unsolved percentage is non-decreasing-ish in the stage count (we allow
equality since small samples may see no failures at all).
"""

from repro.eval import run_fig5


def test_fig5_unsolved_rate(benchmark, is_paper_scale):
    if is_paper_scale:
        kwargs = dict(n_problems=20, stages_list=(2, 4, 6, 8, 10, 12, 14),
                      routes=4, n_apps=10)
    else:
        kwargs = dict(n_problems=4, stages_list=(2, 6, 12), routes=4, n_apps=5)
    result = benchmark.pedantic(run_fig5, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(result.render())
    pcts = dict(result.unsolved_pct)
    stages = sorted(pcts)
    # Few stages: high-quality exploration (low unsolved rate).
    assert pcts[stages[0]] <= 50.0
    # The unsolved rate must not *improve* dramatically with more slices.
    assert pcts[stages[-1]] >= pcts[stages[0]] - 1e-9
