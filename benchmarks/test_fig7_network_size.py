"""Fig. 7 — synthesis time vs number of Ethernet switches.

Paper: 10 applications generating 45 messages per hyper-period, random
Erdős–Rényi topologies with 10..45 switches; synthesis time grows with
network size (larger route sets and more gamma variables per route).
"""

from repro.eval import run_fig7


def test_fig7_network_size(benchmark, is_paper_scale):
    if is_paper_scale:
        kwargs = dict(switch_counts=(10, 15, 20, 25, 30, 35, 40, 45),
                      n_messages=45, n_apps=10)
    else:
        kwargs = dict(switch_counts=(6, 10, 14), n_messages=24, n_apps=5)
    result = benchmark.pedantic(run_fig7, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(result.render())
    solved = [(n, t) for n, t, status in result.times if status == "sat"]
    assert solved, "no network size solved"
    # Growth claim: the largest solved network costs at least as much as
    # the smallest (weak form of Fig. 7's trend, robust to noise).
    assert solved[-1][1] >= solved[0][1] * 0.5
