"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures at a
laptop-scale default; pass ``--repro-scale=paper`` to approach the paper's
problem sizes (slow: the paper used native Z3 on a Xeon, this repo runs a
pure-Python DPLL(T)).
"""

import pathlib

import pytest

_BENCH_DIR = pathlib.Path(__file__).parent.resolve()


def pytest_collection_modifyitems(config, items):
    # This hook sees every item of the session (e.g. `pytest tests
    # benchmarks`); only mark the ones that live in this directory.
    for item in items:
        if _BENCH_DIR in pathlib.Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.benchmark)


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        action="store",
        default="laptop",
        choices=("laptop", "paper"),
        help="experiment scale: 'laptop' (default, minutes) or 'paper'",
    )


@pytest.fixture(scope="session")
def scale(request):
    return request.config.getoption("--repro-scale")


@pytest.fixture(scope="session")
def is_paper_scale(scale):
    return scale == "paper"
