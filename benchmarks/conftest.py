"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures at a
laptop-scale default; pass ``--repro-scale=paper`` to approach the paper's
problem sizes (slow: the paper used native Z3 on a Xeon, this repo runs a
pure-Python DPLL(T)).
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        action="store",
        default="laptop",
        choices=("laptop", "paper"),
        help="experiment scale: 'laptop' (default, minutes) or 'paper'",
    )


@pytest.fixture(scope="session")
def scale(request):
    return request.config.getoption("--repro-scale")


@pytest.fixture(scope="session")
def is_paper_scale(scale):
    return scale == "paper"
