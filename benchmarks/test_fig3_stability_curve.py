"""Fig. 3 — stability curve for the DC servo + piecewise lower bound.

Paper: DC servo 1000/(s^2 + s) with an LQG controller at h = 6 ms; the
curve starts around J_max ~ 8 ms at L = 0 and the stable region ends near
2 periods of latency; the red piecewise-linear bound (3 segments) lies
below the curve everywhere.
"""

from fractions import Fraction

from repro.eval import run_fig3


def check_fig3(result):
    curve, bound = result.curve, result.bound
    h = curve.sample_period
    # Shape claim 1: meaningful margin at zero latency (order of h).
    assert curve.margins[0] > 0.5 * h
    # Shape claim 2: the stable region ends between 1 and 4 periods.
    assert h < curve.max_latency < 4 * h
    # Shape claim 3: the curve decays to zero at the boundary.
    assert curve.margins[-1] == 0.0
    # Safety: the piecewise bound is below the curve everywhere.
    for lat in [float(x) for x in curve.latencies]:
        flat = Fraction(lat).limit_denominator(10**12)
        for seg in bound.segments:
            if seg.l_lo <= flat <= seg.l_hi:
                assert float(seg.jitter_bound(flat)) <= curve.margin_at(lat) + 1e-9


def test_fig3_stability_curve(benchmark, is_paper_scale):
    n_points = 25 if is_paper_scale else 9
    result = benchmark.pedantic(
        run_fig3, kwargs={"n_points": n_points, "n_segments": 3},
        rounds=1, iterations=1,
    )
    check_fig3(result)
    print()
    print(result.render())
