"""Fig. 6 — scalability of the route-subset heuristic.

Paper: stages = 5, routes in {1, 3, 5, 7, 20}: fewer candidate routes
means faster synthesis; but 1-2 routes leave >90% of problems unsolved
while >= 3 routes keep <10% unsolved.
"""

import statistics

from repro.eval import run_fig6


def mean_time(points):
    sat_times = [p.time_s for p in points if p.status == "sat"]
    return statistics.mean(sat_times) if sat_times else float("inf")


def test_fig6_route_subset_scaling(benchmark, is_paper_scale):
    if is_paper_scale:
        kwargs = dict(n_problems=20, routes_list=(1, 3, 5, 7, 20),
                      stages=5, n_apps=10)
    else:
        kwargs = dict(n_problems=3, routes_list=(1, 3, 7), stages=5, n_apps=5)
    result = benchmark.pedantic(run_fig6, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(result.render())
    means = {r: mean_time(pts) for r, pts in result.points.items()}
    routes = sorted(means)
    solved_any = [r for r in routes if means[r] != float("inf")]
    assert solved_any, "no configuration solved anything"
    # Fewer routes -> faster (among configurations that solve problems).
    if len(solved_any) >= 2:
        assert means[solved_any[0]] <= means[solved_any[-1]] * 1.5
    # Route subsets >= 3 solve the vast majority of problems.
    assert result.unsolved_pct[max(routes)] <= 35.0
