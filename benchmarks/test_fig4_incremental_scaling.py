"""Fig. 4 — scalability of the incremental synthesis heuristic.

Paper: 60 random problems on a 35-node network, routes = 4, stages in
{3, 4, 5, 7, 9, 11}; increasing the number of stages dramatically reduces
synthesis time (problems unsolved in a day at stages=1 finish in under a
minute at stages=5).

Laptop default: fewer/smaller problems; the monotone trend
(more stages -> less time on average) is asserted, which is the figure's
claim.
"""

import statistics

from repro.eval import run_fig4


def mean_time(points):
    sat_times = [p.time_s for p in points if p.status == "sat"]
    return statistics.mean(sat_times) if sat_times else float("inf")


def test_fig4_incremental_scaling(benchmark, is_paper_scale):
    if is_paper_scale:
        kwargs = dict(n_problems=20, stages_list=(3, 4, 5, 7, 9, 11),
                      routes=4, n_apps=10)
    else:
        kwargs = dict(n_problems=3, stages_list=(2, 5, 9), routes=4, n_apps=5)
    result = benchmark.pedantic(run_fig4, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(result.render())
    means = {s: mean_time(pts) for s, pts in result.points.items()}
    stages = sorted(means)
    # The paper's claim: many stages are much faster than few stages.
    assert means[stages[-1]] <= means[stages[0]], means
