"""SAT-core throughput microbench: flat arena vs the frozen reference.

Reproduces the table in docs/perf.md ("The flat-arena SAT core"): both
solvers refute PHP(n+1, n) — pure SAT, ~3,200 conflicts at the default
size, restarts and learnt-DB churn included — and report wall time and
propagations/second.  The trajectories must be identical (same layout-
independent search), so the ratio isolates the clause-store layout.

Usage:
    PYTHONPATH=src python benchmarks/sat_throughput.py [n_holes] [rounds]
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.sat.literals import lit  # noqa: E402
from repro.sat.solver import SatSolver  # noqa: E402
from tests.sat.reference_solver import SatSolver as ReferenceSolver  # noqa: E402


def _pigeonhole(solver, n_pigeons, n_holes):
    var = [[solver.new_var() for _ in range(n_holes)]
           for _ in range(n_pigeons)]
    for p in range(n_pigeons):
        solver.add_clause([lit(var[p][h], True) for h in range(n_holes)])
    for h in range(n_holes):
        for p1 in range(n_pigeons):
            for p2 in range(p1 + 1, n_pigeons):
                solver.add_clause([lit(var[p1][h], False),
                                   lit(var[p2][h], False)])


def run_one(cls, n_holes):
    s = cls()
    _pigeonhole(s, n_holes + 1, n_holes)
    start = time.perf_counter()
    verdict = s.solve()
    wall = time.perf_counter() - start
    assert verdict is False, "PHP(n+1, n) must be unsat"
    return wall, s.statistics


def main():
    n_holes = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    rounds = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    contenders = (("arena", SatSolver), ("reference", ReferenceSolver))
    trajectories = set()
    # Interleave rounds so machine-speed drift hits both solvers alike.
    for r in range(rounds):
        for name, cls in contenders:
            wall, stats = run_one(cls, n_holes)
            trajectories.add((stats["conflicts"], stats["decisions"],
                              stats["propagations"], stats["restarts"]))
            print(f"[round {r + 1}] {name:<9}  {wall:6.3f}s  "
                  f"{stats['propagations'] / wall:>9,.0f} props/s  "
                  f"(conflicts={stats['conflicts']}, "
                  f"restarts={stats['restarts']})")
    assert len(trajectories) == 1, (
        f"solvers walked different search trees: {trajectories}"
    )
    print("trajectories identical across solvers and rounds")


if __name__ == "__main__":
    main()
