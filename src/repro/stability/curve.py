"""Stability curves: ``J_max`` as a function of latency (paper Fig. 3).

A :class:`StabilityCurve` samples the jitter margin on a latency grid
until the nominal loop goes unstable, reproducing the solid curve of
Fig. 3 ("the area below the curve is the stable area").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import StabilityAnalysisError
from ..control.lqg import design_lqg
from ..control.lti import StateSpace
from .jitter_margin import (
    JitterMarginOptions,
    delay_margin,
    jitter_margin,
    nominal_loop_stable,
)


@dataclass
class StabilityCurve:
    """Sampled stability boundary ``(L_i, Jmax_i)`` for one application."""

    latencies: np.ndarray
    margins: np.ndarray
    sample_period: float

    def __post_init__(self) -> None:
        if len(self.latencies) != len(self.margins):
            raise StabilityAnalysisError("latency/margin arrays differ in length")
        if len(self.latencies) < 2:
            raise StabilityAnalysisError("a curve needs at least two samples")

    @property
    def max_latency(self) -> float:
        """Largest latency with a positive margin sample."""
        positive = self.latencies[self.margins > 0]
        return float(positive[-1]) if len(positive) else 0.0

    def margin_at(self, latency: float) -> float:
        """Linear interpolation of ``J_max`` (0 beyond the sampled range)."""
        if latency < self.latencies[0] or latency > self.latencies[-1]:
            return 0.0
        return float(np.interp(latency, self.latencies, self.margins))

    def is_stable(self, latency: float, jitter: float) -> bool:
        """Point-below-curve test (the paper's green region)."""
        return jitter <= self.margin_at(latency) and self.margin_at(latency) > 0

    def as_table(self) -> List[Tuple[float, float]]:
        return list(zip(self.latencies.tolist(), self.margins.tolist()))


def compute_stability_curve(
    plant: StateSpace,
    h: float,
    controller: Optional[StateSpace] = None,
    max_latency: Optional[float] = None,
    n_points: int = 25,
    options: Optional[JitterMarginOptions] = None,
) -> StabilityCurve:
    """Sample ``J_max(L)`` for a plant/controller pair.

    Args:
        plant: continuous-time plant.
        h: sampling period.
        controller: discrete controller; an LQG design is synthesized when
            omitted (the paper's experimental setup).
        max_latency: largest latency to sample; defaults to the point
            where the nominal loop loses stability (capped at ``4 h``).
        n_points: number of latency samples.
        options: frequency-sweep options.

    Raises:
        StabilityAnalysisError: when even the zero-latency loop is
            unstable (no stability curve exists).
    """
    ctrl = controller if controller is not None else design_lqg(plant, h)
    if not nominal_loop_stable(plant, ctrl, h, 0.0):
        raise StabilityAnalysisError(
            "closed loop is unstable even at zero latency; no stability curve"
        )
    boundary = delay_margin(plant, ctrl, h)
    if max_latency is None:
        max_latency = boundary
    if max_latency <= 0:
        raise StabilityAnalysisError("no positive latency is stabilizable")
    lats = np.linspace(0.0, max_latency, n_points)
    margins = np.array(
        [
            jitter_margin(plant, ctrl, h, float(L), options,
                          stability_boundary=boundary)
            for L in lats
        ]
    )
    return StabilityCurve(lats, margins, sample_period=h)
