"""Stability analysis substrate (DESIGN.md S6; paper Sec. IV).

Replaces the MATLAB Jitter Margin toolbox: a sufficient frequency-domain
small-gain criterion gives the maximum tolerable response-time jitter
``J_max(L)`` per latency; :func:`compute_stability_curve` samples the
stability boundary (Fig. 3) and :func:`fit_lower_bound` extracts the
verified piecewise-linear (alpha, beta, L) segments of Eq. (2)/(3) that
the synthesizer turns into SMT constraints.
"""

from .curve import StabilityCurve, compute_stability_curve
from .jitter_margin import (
    JitterMarginOptions,
    delay_margin,
    jitter_margin,
    nominal_loop_stable,
)
from .piecewise import Segment, StabilitySpec, fit_lower_bound

__all__ = [
    "JitterMarginOptions",
    "Segment",
    "StabilityCurve",
    "StabilitySpec",
    "compute_stability_curve",
    "delay_margin",
    "fit_lower_bound",
    "jitter_margin",
    "nominal_loop_stable",
]
