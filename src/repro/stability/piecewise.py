"""Piecewise-linear lower bound of the stability curve (paper Eq. 2-3).

The stability curve is "safely approximated by a piecewise linear
(lower-bound) function of the latency and jitter" — the red curve in
Fig. 3.  Each segment ``k`` yields the constraint::

    L + alpha_k * J <= beta_k        for  L_{k-1} <= L <= L_k

with non-negative constants, and the stability margin ``delta`` of Eq. (3)
is ``beta_k - (L + alpha_k J)`` in the active segment (``-inf`` beyond the
last breakpoint).

The fitter verifies the bound against *every* curve sample in each
segment and shrinks ``beta`` until the bound is genuinely below the curve
(a safety property the SMT encoding relies on).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Tuple, Union

from ..errors import StabilityAnalysisError
from .curve import StabilityCurve

Number = Union[int, float, Fraction]

#: Slope used to express (nearly) flat jitter bounds in the paper's
#: ``L + alpha J <= beta`` form, which can only describe bounds that
#: decrease with latency.
_FLAT_ALPHA = Fraction(10_000)


@dataclass(frozen=True)
class Segment:
    """One linear piece: ``L + alpha * J <= beta`` valid on ``[l_lo, l_hi]``."""

    alpha: Fraction
    beta: Fraction
    l_lo: Fraction
    l_hi: Fraction

    def margin(self, latency: Fraction, jitter: Fraction) -> Fraction:
        return self.beta - (latency + self.alpha * jitter)

    def jitter_bound(self, latency: Fraction) -> Fraction:
        """The jitter bound ``(beta - L)/alpha`` this segment certifies."""
        return (self.beta - latency) / self.alpha


@dataclass(frozen=True)
class StabilitySpec:
    """The per-application stability data consumed by the synthesizer.

    ``segments`` are ordered by latency range; stability of ``(L, J)``
    requires the active segment's constraint to hold (Eq. 2).
    """

    segments: Tuple[Segment, ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise StabilityAnalysisError("a stability spec needs >= 1 segment")
        for seg in self.segments:
            if seg.alpha < 0 or seg.beta < 0:
                raise StabilityAnalysisError("alpha/beta must be non-negative")
        for a, b in zip(self.segments, self.segments[1:]):
            if a.l_hi != b.l_lo:
                raise StabilityAnalysisError("segments must tile the latency axis")

    @property
    def max_latency(self) -> Fraction:
        return self.segments[-1].l_hi

    def margin(self, latency: Number, jitter: Number) -> float:
        """Stability margin ``delta`` of Eq. (3); ``-inf`` if out of range."""
        lat = Fraction(latency).limit_denominator(10**12)
        jit = Fraction(jitter).limit_denominator(10**12)
        for seg in self.segments:
            if seg.l_lo <= lat <= seg.l_hi:
                return float(seg.margin(lat, jit))
        return -math.inf

    def is_stable(self, latency: Number, jitter: Number) -> bool:
        """Eq. (10): non-negative margin guarantees worst-case stability."""
        return self.margin(latency, jitter) >= 0

    @staticmethod
    def single_line(alpha: Number, beta: Number) -> "StabilitySpec":
        """A one-segment spec, as used for the Table I applications.

        The paper estimates each GM application's curve "by one line",
        giving a single (alpha, beta) pair; the segment covers the full
        latency range ``[0, beta]`` on which the bound is non-negative.
        """
        a = Fraction(alpha).limit_denominator(10**9)
        b = Fraction(beta).limit_denominator(10**9)
        return StabilitySpec((Segment(a, b, Fraction(0), b),))


def fit_lower_bound(curve: StabilityCurve, n_segments: int = 3) -> StabilitySpec:
    """Fit a verified piecewise-linear lower bound to a stability curve.

    Breakpoints are spread uniformly over the curve's positive-margin
    range; each segment starts as the chord between the curve values at
    its endpoints and is then *verified* against every sample inside the
    segment, shrinking ``beta`` until the bound lies below the curve
    everywhere (with the flat-slope fallback for non-decreasing pieces).
    """
    if n_segments < 1:
        raise StabilityAnalysisError("need at least one segment")
    l_end = curve.max_latency
    if l_end <= 0:
        raise StabilityAnalysisError("curve has no stable region to bound")
    lats = [Fraction(l_end) * k / n_segments for k in range(n_segments + 1)]
    segments: List[Segment] = []
    for k in range(n_segments):
        l0, l1 = lats[k], lats[k + 1]
        j0 = Fraction(curve.margin_at(float(l0))).limit_denominator(10**12)
        j1 = Fraction(curve.margin_at(float(l1))).limit_denominator(10**12)
        if j1 < j0:
            # Decreasing chord: L + alpha J <= beta through both endpoints.
            alpha = (l1 - l0) / (j0 - j1)
            beta = l0 + alpha * j0
        else:
            # Flat (or increasing) piece: bound by j0 with a huge slope.
            alpha = _FLAT_ALPHA
            beta = l0 + alpha * j0
        # Verify against all samples in [l0, l1]; shrink beta if needed.
        for lat, margin in zip(curve.latencies, curve.margins):
            flat = Fraction(float(lat)).limit_denominator(10**12)
            if not l0 <= flat <= l1:
                continue
            fmargin = Fraction(float(margin)).limit_denominator(10**12)
            bound = (beta - flat) / alpha
            if bound > fmargin:
                beta = flat + alpha * fmargin
        beta = max(beta, l0)  # keep beta >= l_lo so the segment is non-empty
        segments.append(Segment(alpha, beta, l0, l1))
    return StabilitySpec(tuple(segments))
