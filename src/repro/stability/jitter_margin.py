"""Jitter-margin analysis (paper Sec. IV; substitution for [5]).

The paper uses Cervin's MATLAB *Jitter Margin* toolbox, which provides
"sufficient conditions for the worst-case stability of a closed-loop
system with a linear continuous-time plant and a linear discrete-time
controller" as a function of the latency ``L`` (constant delay part) and
the worst-case response-time jitter ``J``.

We implement the published frequency-domain criterion behind that
analysis (Kao & Lincoln 2004, used by Cervin's 2012 jitter-margin paper):

* **Nominal stability**: the sampled-data loop with *constant* input
  delay ``L`` must be Schur stable.  This is checked exactly by
  discretizing the plant with delay ``L`` (:func:`repro.control.c2d_delayed`)
  and closing the loop with the discrete controller.
* **Jitter robustness** (small-gain): for time-varying delay in
  ``[L, L + J]`` the loop remains stable if::

      J * sup_w  w * |P(jw) C(e^{jwh})| / |1 + P(jw) C(e^{jwh}) e^{-jwL}| < 1

  because the deviation from the nominal delay is a multiplicative
  uncertainty ``e^{-jw(d-L)} - 1`` of gain at most ``w * J`` on the
  nominal complementary sensitivity.  Hence::

      J_max(L) = 1 / sup_w ( w * |T_L(jw)| )

The criterion is *sufficient* (conservative), exactly matching the role
the paper assigns the toolbox: the area below the returned curve is
guaranteed stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import StabilityAnalysisError
from ..control.discretize import c2d_delayed
from ..control.lqg import closed_loop
from ..control.lti import StateSpace


@dataclass(frozen=True)
class JitterMarginOptions:
    """Frequency-sweep options for the small-gain supremum.

    The supremum is approximated on a dense log/linear grid up to
    ``omega_max_factor * pi / h`` (several controller Nyquist periods) and
    refined around the peak; ``safety`` shrinks the resulting margin to
    absorb the residual grid error.
    """

    n_grid: int = 4000
    omega_max_factor: float = 40.0
    refine_rounds: int = 3
    safety: float = 0.98


def nominal_loop_stable(plant: StateSpace, controller: StateSpace,
                        h: float, latency: float) -> bool:
    """Exact Schur check of the sampled-data loop with constant delay."""
    if latency < 0:
        raise StabilityAnalysisError("latency must be non-negative")
    pd = c2d_delayed(plant, h, latency)
    cl = closed_loop(pd, controller)
    return cl.is_stable(tol=1e-10)


def _loop_gain(plant: StateSpace, controller: StateSpace,
               omega: np.ndarray) -> np.ndarray:
    """``P(jw) * C(e^{jwh})`` on the grid (SISO)."""
    return plant.siso_response(omega) * controller.siso_response(omega)


def delay_margin(
    plant: StateSpace,
    controller: StateSpace,
    h: float,
    upper: Optional[float] = None,
    iterations: int = 48,
) -> float:
    """Largest constant delay keeping the sampled loop Schur stable.

    Found by bisection over the exact delayed discretization.  ``upper``
    caps the search (default ``8 h``); if the loop is still stable there,
    ``upper`` itself is returned.
    """
    cap = 8.0 * h if upper is None else upper
    if not nominal_loop_stable(plant, controller, h, 0.0):
        return 0.0
    if nominal_loop_stable(plant, controller, h, cap):
        return cap
    lo, hi = 0.0, cap
    for _ in range(iterations):
        mid = (lo + hi) / 2
        if nominal_loop_stable(plant, controller, h, mid):
            lo = mid
        else:
            hi = mid
    return lo


def jitter_margin(
    plant: StateSpace,
    controller: StateSpace,
    h: float,
    latency: float = 0.0,
    options: Optional[JitterMarginOptions] = None,
    stability_boundary: Optional[float] = None,
) -> float:
    """Maximum tolerable jitter ``J_max`` at constant latency ``L``.

    The returned margin is the *intersection* of two conditions:

    * the small-gain bound described above, and
    * ``L + J <= delay_margin`` — necessary, because a delay pinned
      constantly at ``L + J`` is a legal realization of the jitter, so no
      sound criterion may admit points beyond the constant-delay margin.

    ``stability_boundary`` passes a precomputed :func:`delay_margin` to
    avoid re-bisecting when sampling whole curves.

    Returns 0.0 when the nominal loop itself is unstable at this latency
    (no jitter is tolerable; the stability curve has ended).
    """
    if plant.is_discrete:
        raise StabilityAnalysisError("plant must be continuous-time")
    if not controller.is_discrete:
        raise StabilityAnalysisError("controller must be discrete-time")
    opts = options or JitterMarginOptions()
    if not nominal_loop_stable(plant, controller, h, latency):
        return 0.0

    omega_max = opts.omega_max_factor * np.pi / h
    # Log-spaced low end + linear high end to capture both the resonance
    # peak and the periodic controller response.
    grid = np.unique(
        np.concatenate(
            [
                np.logspace(np.log10(omega_max) - 6, np.log10(omega_max), opts.n_grid),
                np.linspace(omega_max / opts.n_grid, omega_max, opts.n_grid),
            ]
        )
    )

    def gain(omega: np.ndarray) -> np.ndarray:
        pc = _loop_gain(plant, controller, omega)
        t_l = pc * np.exp(-1j * omega * latency)
        denom = 1 + t_l
        with np.errstate(divide="ignore", invalid="ignore"):
            val = omega * np.abs(t_l) / np.abs(denom)
        val[~np.isfinite(val)] = np.inf
        return val

    values = gain(grid)
    if np.any(np.isinf(values)):
        # The nominal characteristic equation touches the critical point on
        # the grid: treat as no margin.
        return 0.0
    peak_idx = int(np.argmax(values))
    peak = float(values[peak_idx])
    # Local refinement around the peak.
    for _ in range(opts.refine_rounds):
        lo = grid[max(0, peak_idx - 1)]
        hi = grid[min(len(grid) - 1, peak_idx + 1)]
        local = np.linspace(lo, hi, 200)
        lv = gain(local)
        li = int(np.argmax(lv))
        if lv[li] > peak:
            peak = float(lv[li])
        grid, values, peak_idx = local, lv, li
    if peak <= 0:
        raise StabilityAnalysisError("degenerate loop gain (zero everywhere)")
    small_gain = opts.safety / peak
    boundary = (
        stability_boundary
        if stability_boundary is not None
        else delay_margin(plant, controller, h)
    )
    return max(0.0, min(small_gain, boundary - latency))
