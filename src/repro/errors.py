"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SolverError(ReproError):
    """Raised when the SAT/SMT machinery is used incorrectly.

    Examples: querying a model before a satisfiable ``check()``, adding a
    malformed clause, or referencing an undeclared variable.
    """


class EncodingError(ReproError):
    """Raised when a synthesis problem cannot be encoded.

    Examples: a sensor with no path to its controller, a non-positive
    period, or an empty candidate-route set.
    """


class TopologyError(ReproError):
    """Raised for malformed network topologies (unknown nodes, self-loops,
    duplicate links, or type-invalid attachments)."""


class ControlDesignError(ReproError):
    """Raised when controller synthesis fails (non-stabilizable plant,
    Riccati iteration divergence, or invalid sampling period)."""


class StabilityAnalysisError(ReproError):
    """Raised when the jitter-margin analysis cannot produce a stability
    curve (e.g. the nominal loop is unstable for every latency)."""


class ValidationError(ReproError):
    """Raised by the independent solution validator when a synthesized
    solution violates one of the paper's constraints."""


class SimulationError(ReproError):
    """Raised by the discrete-event network simulator on impossible events
    (e.g. a frame scheduled to transmit before it arrived)."""
