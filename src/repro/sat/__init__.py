"""From-scratch CDCL SAT solver (propositional core of the SMT substrate).

See DESIGN.md S1: this package replaces the propositional engine of Z3 used
by the paper.  :class:`~repro.sat.solver.SatSolver` exposes a theory hook
that :mod:`repro.smt` uses to implement DPLL(T).
"""

from .dimacs import DimacsSolver, load_dimacs, parse_dimacs, write_dimacs
from .literals import (
    FALSE,
    TRUE,
    UNASSIGNED,
    from_dimacs,
    is_positive,
    lit,
    neg,
    to_dimacs,
    var_of,
)
from .solver import SatSolver, TheoryBackend, luby

__all__ = [
    "DimacsSolver",
    "FALSE",
    "SatSolver",
    "TheoryBackend",
    "TRUE",
    "UNASSIGNED",
    "from_dimacs",
    "is_positive",
    "lit",
    "load_dimacs",
    "luby",
    "neg",
    "parse_dimacs",
    "to_dimacs",
    "var_of",
    "write_dimacs",
]
