"""Variable and literal encoding for the CDCL SAT solver.

Variables are positive integers ``1..n`` (DIMACS convention).  Internally the
solver works with *literals* encoded as non-negative integers::

    lit(v, positive)  = 2*v     if positive
                      = 2*v + 1 if negated

which makes negation a single XOR and allows literal-indexed arrays (watch
lists, assignment values) without hashing.
"""

from __future__ import annotations

UNASSIGNED = -1
TRUE = 1
FALSE = 0


def lit(var: int, positive: bool = True) -> int:
    """Encode DIMACS variable ``var`` (>= 1) as an internal literal."""
    if var < 1:
        raise ValueError(f"variable index must be >= 1, got {var}")
    return 2 * var if positive else 2 * var + 1


def neg(literal: int) -> int:
    """Negate an internal literal."""
    return literal ^ 1


def var_of(literal: int) -> int:
    """Return the DIMACS variable (>= 1) of an internal literal."""
    return literal >> 1


def is_positive(literal: int) -> bool:
    """True if the literal is the positive phase of its variable."""
    return (literal & 1) == 0


def from_dimacs(dimacs_lit: int) -> int:
    """Convert a signed DIMACS literal (e.g. ``-3``) to internal encoding."""
    if dimacs_lit == 0:
        raise ValueError("0 is not a valid DIMACS literal")
    return lit(abs(dimacs_lit), dimacs_lit > 0)


def to_dimacs(literal: int) -> int:
    """Convert an internal literal back to signed DIMACS form."""
    v = var_of(literal)
    return v if is_positive(literal) else -v
