"""Flat int-arena clause store for the CDCL core.

All clause literals live in ONE flat Python list; a clause is an integer
*handle* (clause id) indexing parallel side arrays that hold the
``(offset, size)`` slice plus the reduction metadata (LBD, activity,
learnt flag, dead flag).  This is the memory layout that makes MiniSat
fast (Eén & Sörensson, SAT 2003): propagation walks one contiguous
buffer instead of chasing per-clause Python objects, and deleting a
clause is a flag write instead of an O(n) ``list.remove`` on two watcher
lists.

Why a plain ``list`` and not ``array('l')``: CPython boxes a fresh int
object on *every* ``array`` subscript, so in the propagation hot loop an
``array('l')`` is ~30% slower than a list, whose slots are already
pointers to cached small-int objects.  The flat layout (one allocation,
offset arithmetic, slice-copy compaction) is what pays here — only
``activity`` stays an ``array('d')``, since floats gain nothing from
list storage and halve their footprint packed.

Lifecycle contract (enforced by the solver, not the arena):

* ``delete`` only marks the clause dead and counts its literals as
  wasted; watcher lists drop dead handles lazily during propagation.
* ``compact`` may only run after the caller has purged every dead
  handle from its watcher lists: it repacks the literal array in place
  (handles keep their ids — only offsets move, so reasons and watcher
  entries never need remapping) and recycles the dead ids through a
  free list for subsequent ``new_clause`` calls.
* Free slots are marked with ``size == -1`` so they are distinguishable
  from dead-but-not-yet-compacted slots (``dead[cid] == 1``).
"""

from __future__ import annotations

from array import array
from typing import List, Sequence


class ClauseArena:
    """Parallel-array clause database addressed by integer handles."""

    __slots__ = ("lits", "off", "size", "lbd", "activity", "learnt",
                 "dead", "wasted", "_free")

    def __init__(self) -> None:
        #: Packed literals of every live clause, internal encoding.
        self.lits: List[int] = []
        #: Per-handle slice start into :attr:`lits` (-1 for free slots).
        self.off: List[int] = []
        #: Per-handle literal count (-1 for free slots).
        self.size: List[int] = []
        #: Literal block distance recorded at learning time.
        self.lbd: List[int] = []
        #: Reduction activity (bumped on conflict-analysis resolution).
        self.activity = array("d")
        #: 1 for learned clauses, 0 for problem clauses.
        self.learnt = bytearray()
        #: 1 between ``delete(cid)`` and the next ``compact()``.
        self.dead = bytearray()
        #: Literals occupied by dead clauses (compaction trigger).
        self.wasted = 0
        self._free: List[int] = []

    def __len__(self) -> int:
        """Number of allocated handles (live + dead + free slots)."""
        return len(self.off)

    @property
    def live_literals(self) -> int:
        return len(self.lits) - self.wasted

    def new_clause(self, literals: Sequence[int], learnt: bool,
                   lbd: int = 0) -> int:
        """Append a clause and return its handle, recycling freed ids."""
        off = len(self.lits)
        self.lits.extend(literals)
        if self._free:
            cid = self._free.pop()
            self.off[cid] = off
            self.size[cid] = len(literals)
            self.lbd[cid] = lbd
            self.activity[cid] = 0.0
            self.learnt[cid] = 1 if learnt else 0
            self.dead[cid] = 0
        else:
            cid = len(self.off)
            self.off.append(off)
            self.size.append(len(literals))
            self.lbd.append(lbd)
            self.activity.append(0.0)
            self.learnt.append(1 if learnt else 0)
            self.dead.append(0)
        return cid

    def literals(self, cid: int) -> List[int]:
        """The clause's literals as a fresh list (slice copy)."""
        o = self.off[cid]
        return self.lits[o:o + self.size[cid]]

    def delete(self, cid: int) -> None:
        """Mark the clause dead; its id is recycled at the next compact."""
        self.dead[cid] = 1
        self.wasted += self.size[cid]

    def compact(self) -> int:
        """Repack live literals in place and free dead ids.

        Precondition: no watcher list (or any other consumer) still holds
        a dead handle — after this call those ids may be reissued.
        Handles of live clauses are preserved; only their offsets move,
        in ascending-offset order, so relative clause layout is stable.
        Returns the number of ids freed.
        """
        lits, off, size, dead = self.lits, self.off, self.size, self.dead
        live = sorted(
            (cid for cid in range(len(off))
             if not dead[cid] and size[cid] >= 0),
            key=off.__getitem__,
        )
        write = 0
        for cid in live:
            o = off[cid]
            s = size[cid]
            if o != write:
                lits[write:write + s] = lits[o:o + s]
            off[cid] = write
            write += s
        del lits[write:]
        freed = 0
        for cid in range(len(off)):
            if dead[cid]:
                dead[cid] = 0
                off[cid] = -1
                size[cid] = -1
                self._free.append(cid)
                freed += 1
        self.wasted = 0
        return freed
