"""DIMACS CNF reading/writing and a signed-literal convenience wrapper.

The synthesis pipeline talks to :class:`repro.sat.solver.SatSolver` through
the SMT layer, but a DIMACS front-end makes the SAT core independently
usable and testable against standard benchmark files.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, TextIO

from ..errors import SolverError
from .literals import from_dimacs
from .solver import SatSolver


class DimacsSolver:
    """A :class:`SatSolver` facade that speaks signed DIMACS literals."""

    def __init__(self) -> None:
        self._solver = SatSolver()

    @property
    def solver(self) -> SatSolver:
        return self._solver

    def ensure_vars(self, max_var: int) -> None:
        while self._solver.num_vars < max_var:
            self._solver.new_var()

    def add_clause(self, clause: Sequence[int]) -> bool:
        """Add a clause of signed DIMACS literals, growing vars on demand."""
        if not clause:
            raise SolverError("empty clause; use solver state directly")
        self.ensure_vars(max(abs(l) for l in clause))
        return self._solver.add_clause([from_dimacs(l) for l in clause])

    def solve(self, assumptions: Iterable[int] = ()) -> bool:
        lits = [from_dimacs(l) for l in assumptions]
        for l in lits:
            if (l >> 1) > self._solver.num_vars:
                raise SolverError("assumption references unknown variable")
        return self._solver.solve(lits)

    def model(self) -> List[int]:
        """Return the model as signed DIMACS literals (sorted by variable)."""
        out = []
        for v in range(1, self._solver.num_vars + 1):
            out.append(v if self._solver.model_value(v) else -v)
        return out


def parse_dimacs(text: str) -> tuple[int, List[List[int]]]:
    """Parse DIMACS CNF text into ``(num_vars, clauses)``."""
    num_vars = 0
    clauses: List[List[int]] = []
    current: List[int] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise SolverError(f"malformed problem line: {line!r}")
            num_vars = int(parts[2])
            continue
        for tok in line.split():
            val = int(tok)
            if val == 0:
                clauses.append(current)
                current = []
            else:
                current.append(val)
    if current:
        clauses.append(current)
    return num_vars, clauses


def load_dimacs(text: str) -> DimacsSolver:
    """Build a solver from DIMACS CNF text."""
    num_vars, clauses = parse_dimacs(text)
    solver = DimacsSolver()
    solver.ensure_vars(num_vars)
    for clause in clauses:
        if not clause:
            # Explicit empty clause: formula is UNSAT.
            solver.solver.add_clause([])  # type: ignore[arg-type]
        else:
            solver.add_clause(clause)
    return solver


def write_dimacs(num_vars: int, clauses: Iterable[Sequence[int]], out: TextIO) -> None:
    """Write clauses of signed DIMACS literals in DIMACS CNF format."""
    clause_list = [list(c) for c in clauses]
    out.write(f"p cnf {num_vars} {len(clause_list)}\n")
    for clause in clause_list:
        out.write(" ".join(str(l) for l in clause) + " 0\n")
