"""SMT encoding of the joint routing + scheduling problem (paper Sec. V).

The paper's decision variables are, per message ``m_{i,j}`` and switch
``v_k``, the output port ``eta_ijk`` and release time ``gamma_ijk``.  We
realize the same formulation over the paper's own Eq.-(8) route sets: each
message picks one of its candidate simple routes (one-hot Booleans), which
fixes every ``eta`` along the route; the ``gamma`` variables are reals per
(message, switch).  The constraint map:

=====================  =====================================================
Paper constraint        Encoding
=====================  =====================================================
Topology (Eq. 4)        by construction of candidate simple paths
Contention-free (5)     per directed link, for each pair of (message,
                        route) usages: ``sel1 & sel2 -> |g1 - g2| >= ld``
Transposition (6)       along each candidate route: ``sel -> gamma_next >=
                        gamma_prev + sd + ld`` (sensor release anchored at
                        the sampling instant ``j h_i``)
No-loop (7)             by construction (simple paths)
Route (8)               one-hot selection over the candidate set
Stability (9)+(10)      exact ``Lmin/Lmax`` min/max encoding plus the
                        piecewise segments of Eq. (2) -- see
                        :func:`Encoder.add_stability_constraints`
Implicit deadline       ``e2e <= h_i`` (both modes; makes one-hyper-period
                        contention analysis exact, DESIGN.md §4)
=====================  =====================================================
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import EncodingError
from ..network.frames import MessageInstance
from ..network.paths import route_candidates
from ..smt import (
    And,
    Bool,
    BoolExpr,
    BoolVal,
    FALSE_EXPR,
    Implies,
    LinExpr,
    Not,
    Or,
    Real,
    Solver,
)
from .problem import ControlApplication, SynthesisProblem

_NAMESPACE = itertools.count()


@dataclass
class FixedMessage:
    """A message scheduled in an earlier incremental stage (now constant)."""

    uid: str
    app: str
    route: List[str]
    gammas: Dict[str, Fraction]
    release: Fraction
    e2e: Fraction


@dataclass
class MessagePlan:
    """Encoding artifacts for one message being synthesized."""

    message: MessageInstance
    routes: List[List[str]]
    selectors: List[BoolExpr]
    gammas: Dict[str, LinExpr]
    e2e_by_route: List[LinExpr]


class Encoder:
    """Builds the SMT formulation into a :class:`repro.smt.Solver`.

    One encoder instance corresponds to one solver invocation (one stage
    of the incremental heuristic, or the whole problem when stages=1).
    """

    def __init__(
        self,
        problem: SynthesisProblem,
        solver: Solver,
        route_limit: Optional[int] = None,
        path_cutoff: Optional[int] = None,
        namespace: Optional[str] = None,
    ):
        self.problem = problem
        self.solver = solver
        self.route_limit = route_limit
        self.path_cutoff = path_cutoff
        # ``namespace`` pins the variable-name prefix.  The synthesis
        # driver passes a fixed one so selector/gamma names are identical
        # across portfolio strategies and worker processes (the shared
        # vocabulary of repro.portfolio.sharing); the default stays a
        # fresh counter for ad-hoc encoders.  Name reuse across solver
        # instances is safe: terms intern globally, but each solver maps
        # them to its own SAT variables.
        self._ns = namespace if namespace is not None else f"q{next(_NAMESPACE)}"
        self._route_cache: Dict[str, List[List[str]]] = {}
        self.plans: Dict[str, MessagePlan] = {}
        # Directed-link usage: (u, v) -> list of
        # (uid, guard BoolExpr or None, start-time LinExpr or Fraction)
        self._link_usage: Dict[Tuple[str, str], List] = {}
        # Per-link count of usages already covered by emitted contention
        # constraints, so incremental stages only pair *new* usages.
        self._contention_done: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    # Route candidates (Eq. 8 / route-subset heuristic)
    # ------------------------------------------------------------------

    def candidates_for(self, app: ControlApplication) -> List[List[str]]:
        routes = self._route_cache.get(app.name)
        if routes is None:
            routes = route_candidates(
                self.problem.network, app.sensor, app.controller,
                self.route_limit, cutoff=self.path_cutoff,
            )
            if not routes:
                raise EncodingError(
                    f"app {app.name!r}: no route from {app.sensor!r} to "
                    f"{app.controller!r}"
                )
            self._route_cache[app.name] = routes
        return routes

    # ------------------------------------------------------------------
    # Per-message constraints (Eqs. 4, 6, 7, 8 + implicit deadline)
    # ------------------------------------------------------------------

    def encode_message(self, message: MessageInstance) -> MessagePlan:
        """Create variables and routing/scheduling constraints for ``m``."""
        app = self.problem.app_of(message)
        routes = self.candidates_for(app)
        sd, ld = self.problem.delays.sd, self.problem.delays.ld
        uid = message.uid
        release = message.release

        selectors = [
            Bool(f"{self._ns}/R[{uid}][{r}]") for r in range(len(routes))
        ]
        # Route constraint (Eq. 8): exactly one candidate.
        self.solver.add(Or(selectors))
        for a, b in itertools.combinations(selectors, 2):
            self.solver.add(Or(Not(a), Not(b)))

        gammas: Dict[str, LinExpr] = {}
        for route in routes:
            for node in route[1:-1]:
                if node not in gammas:
                    gammas[node] = Real(f"{self._ns}/g[{uid}][{node}]")

        e2e_by_route: List[LinExpr] = []
        for r, route in enumerate(routes):
            sel = selectors[r]
            switches = route[1:-1]
            if not switches:
                raise EncodingError(
                    f"app {app.name!r}: direct sensor-controller links are "
                    "not expressible in the switch model"
                )
            # Transposition (Eq. 6) along the chain; the sensor release is
            # the sampling instant (constant).
            prev_time: LinExpr | Fraction = release
            for node in switches:
                g = gammas[node]
                self.solver.add(Implies(sel, g - prev_time >= sd + ld))
                prev_time = g
            e2e = gammas[switches[-1]] + ld - release
            e2e_by_route.append(e2e)
            # Implicit deadline: e2e <= h_i.
            self.solver.add(Implies(sel, e2e <= app.period))
            # Record link usages for the contention constraints.
            for u, v in zip(route, route[1:]):
                start = release if u == app.sensor else gammas[u]
                self._link_usage.setdefault((u, v), []).append(
                    (uid, sel, start)
                )
        plan = MessagePlan(message, routes, selectors, gammas, e2e_by_route)
        self.plans[uid] = plan
        return plan

    def add_fixed_message(self, fixed: FixedMessage) -> None:
        """Register an earlier stage's message as constant link usage."""
        app = self.problem.app_by_name[fixed.app]
        for u, v in zip(fixed.route, fixed.route[1:]):
            start = fixed.release if u == app.sensor else fixed.gammas[u]
            self._link_usage.setdefault((u, v), []).append(
                (fixed.uid, None, start)
            )

    def freeze_message(self, plan: MessagePlan, model, pin: bool = True,
                       guard: Optional[BoolExpr] = None) -> FixedMessage:
        """Extract ``plan``'s schedule from ``model`` and optionally pin it.

        This is the incremental-synthesis freeze: instead of re-encoding a
        solved message as constants in a fresh solver, the route selectors
        and the selected route's release times are *asserted as equalities*
        in the same solver, so later stages see the earlier schedule while
        all learned clauses stay valid.  ``pin=False`` only extracts (used
        for the final stage, where nothing solves after it).

        With ``guard`` the equalities are asserted under that literal
        (``guard -> eq``) instead of permanently: assuming the guard on
        later checks enforces the freeze, and dropping it re-opens the
        message — the lever of core-driven stage repair.
        """
        selected = [r for r, sel in enumerate(plan.selectors) if model[sel]]
        if len(selected) != 1:
            raise EncodingError(
                f"{plan.message.uid}: route selection not one-hot in model"
            )
        choice = selected[0]
        route = plan.routes[choice]
        gammas: Dict[str, Fraction] = {}
        for node in route[1:-1]:
            gammas[node] = model[plan.gammas[node]]
        e2e = model[plan.e2e_by_route[choice]]
        if pin:
            pinned = [plan.selectors[choice]]
            pinned.extend(
                Not(sel) for r, sel in enumerate(plan.selectors) if r != choice
            )
            pinned.extend(
                plan.gammas[node] == value for node, value in gammas.items()
            )
            for constraint in pinned:
                if guard is not None:
                    self.solver.add(Implies(guard, constraint))
                else:
                    self.solver.add(constraint)
        return FixedMessage(
            uid=plan.message.uid,
            app=plan.message.flow.name,
            route=route,
            gammas=gammas,
            release=plan.message.release,
            e2e=e2e,
        )

    # ------------------------------------------------------------------
    # Contention-free constraints (Eq. 5)
    # ------------------------------------------------------------------

    def add_contention_constraints(self) -> None:
        """Pairwise link-exclusive transmission windows.

        For each directed link and each pair of usages by *different*
        messages: if both routes are selected, their start times must be
        at least ``ld`` apart (the paper's Eq. 5 with uniform ``ld``).

        The method is incremental: calling it again after more
        ``encode_message`` calls only emits the pairs involving at least
        one usage recorded since the previous call.
        """
        ld = self.problem.delays.ld
        for link, usages in self._link_usage.items():
            done = self._contention_done.get(link, 0)
            if done >= len(usages):
                continue
            pairs = (
                (usages[i], usages[j])
                for j in range(done, len(usages))
                for i in range(j)
            )
            self._contention_done[link] = len(usages)
            for (uid1, g1, t1), (uid2, g2, t2) in pairs:
                if uid1 == uid2:
                    # Two candidate routes of the same message share a
                    # link prefix; selection is exclusive, no conflict.
                    continue
                both_const = not isinstance(t1, LinExpr) and not isinstance(t2, LinExpr)
                if both_const:
                    if abs(t1 - t2) >= ld:
                        continue
                    guards = [Not(g) for g in (g1, g2) if g is not None]
                    self.solver.add(Or(guards) if guards else FALSE_EXPR)
                    continue
                separation = Or(
                    LinExpr.coerce(t1) - LinExpr.coerce(t2) >= ld,
                    LinExpr.coerce(t2) - LinExpr.coerce(t1) >= ld,
                )
                guards = [Not(g) for g in (g1, g2) if g is not None]
                self.solver.add(Or(*guards, separation))

    # ------------------------------------------------------------------
    # Stability constraints (Sec. V-B, Eqs. 9 + 10)
    # ------------------------------------------------------------------

    def add_stability_constraints(
        self,
        app: ControlApplication,
        fixed_e2es: Sequence[Fraction] = (),
        tag: Optional[str] = None,
    ) -> Tuple[LinExpr, LinExpr]:
        """Encode ``delta_i >= 0`` for one application.

        ``Lmin/Lmax`` are tied *exactly* to the min/max end-to-end delay
        over the app's messages: bounded on one side by every message
        (``Lmin <= e2e``), and attained on the other via a disjunction
        (``Lmin >= e2e`` for at least one selected route).  The piecewise
        condition of Eq. (2) is a disjunction over segments of

            l_lo <= Lmin <= l_hi  and  Lmin + alpha (Lmax - Lmin) <= beta

        ``fixed_e2es`` carries already-known constant delays (messages
        frozen *outside* this encoder).  With a persistent encoder the
        app's earlier-stage messages are instead covered by the plan loop
        below: their selectors and gammas are pinned by
        :meth:`freeze_message`, so their terms evaluate to the frozen
        constants.  ``tag`` namespaces the ``Lmin``/``Lmax`` variables so
        each incremental stage gets a fresh, tighter pair.

        Returns the ``(Lmin, Lmax)`` terms for model extraction.
        """
        spec = app.stability
        if spec is None:
            raise EncodingError(f"app {app.name!r} lacks a stability spec")
        suffix = f"@{tag}" if tag else ""
        lmin = Real(f"{self._ns}/Lmin[{app.name}]{suffix}")
        lmax = Real(f"{self._ns}/Lmax[{app.name}]{suffix}")

        attain_min: List[BoolExpr] = []
        attain_max: List[BoolExpr] = []
        n_bounded = 0
        for plan in self.plans.values():
            if plan.message.flow.name != app.name:
                continue
            for sel, e2e in zip(plan.selectors, plan.e2e_by_route):
                self.solver.add(Implies(sel, lmin <= e2e))
                self.solver.add(Implies(sel, lmax >= e2e))
                attain_min.append(And(sel, lmin >= e2e))
                attain_max.append(And(sel, lmax <= e2e))
            n_bounded += 1
        for e2e in fixed_e2es:
            self.solver.add(lmin <= e2e)
            self.solver.add(lmax >= e2e)
            attain_min.append(lmin >= LinExpr.constant(e2e))
            attain_max.append(lmax <= LinExpr.constant(e2e))
            n_bounded += 1
        if n_bounded == 0:
            raise EncodingError(
                f"app {app.name!r}: stability constraints need >= 1 message"
            )
        self.solver.add(Or(attain_min))
        self.solver.add(Or(attain_max))

        segments = []
        for seg in spec.segments:
            jitter_term = lmax - lmin
            condition = And(
                lmin >= seg.l_lo,
                lmin <= seg.l_hi,
                lmin + seg.alpha * jitter_term <= seg.beta,
            )
            segments.append(condition)
        self.solver.add(Or(segments))
        return lmin, lmax
