"""Synthesis output: routes, release tables, per-app reports, GCL export.

A :class:`Solution` holds the values of the paper's decision variables —
``eta_ijk`` (output ports, via the selected route) and ``gamma_ijk``
(release times) — and derives everything the evaluation reports: per-app
latency ``L_i``, jitter ``J_i`` (Eq. 9), stability margins (Eq. 3), and
the per-switch 802.1Qbv artifacts (forwarding tables and gate control
lists) that the discrete-event simulator executes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional

from ..errors import ValidationError
from ..network.switch import TsnSwitch
from .problem import SynthesisProblem


@dataclass(frozen=True)
class MessageSchedule:
    """Route and release times of one message instance."""

    uid: str
    app: str
    route: List[str]
    gammas: Dict[str, Fraction]
    release: Fraction
    e2e: Fraction

    @property
    def arrival(self) -> Fraction:
        """Arrival time at the controller."""
        return self.release + self.e2e


@dataclass(frozen=True)
class AppReport:
    """Per-application evaluation row (the paper's Table I columns)."""

    name: str
    period: Fraction
    latency: Fraction          # L_i = min_j e2e_ij
    jitter: Fraction           # J_i = max_j - min_j
    max_e2e: Fraction
    margin: float              # delta_i of Eq. (3); -inf outside the spec
    stable: Optional[bool]     # None when the app has no stability spec

    def as_row(self) -> Dict[str, object]:
        return {
            "app": self.name,
            "period_ms": float(self.period * 1000),
            "max_e2e_ms": float(self.max_e2e * 1000),
            "latency_ms": float(self.latency * 1000),
            "jitter_ms": float(self.jitter * 1000),
            "stable": self.stable,
        }


class Solution:
    """A complete synthesized schedule for one problem."""

    def __init__(
        self,
        problem: SynthesisProblem,
        schedules: Dict[str, MessageSchedule],
        synthesis_time: float = 0.0,
        mode: str = "stability",
    ):
        self.problem = problem
        self.schedules = schedules
        self.synthesis_time = synthesis_time
        self.mode = mode

    # ------------------------------------------------------------------
    # The paper's decision variables
    # ------------------------------------------------------------------

    def eta_tables(self) -> Dict[str, Dict[str, str]]:
        """Per-switch forwarding tables: switch -> {uid -> next node}."""
        tables: Dict[str, Dict[str, str]] = {}
        for sched in self.schedules.values():
            for u, v in zip(sched.route[1:-1], sched.route[2:]):
                tables.setdefault(u, {})[sched.uid] = v
        return tables

    def gamma_tables(self) -> Dict[str, Dict[str, Fraction]]:
        """Per-switch release tables: switch -> {uid -> gamma}."""
        tables: Dict[str, Dict[str, Fraction]] = {}
        for sched in self.schedules.values():
            for node, g in sched.gammas.items():
                tables.setdefault(node, {})[sched.uid] = g
        return tables

    # ------------------------------------------------------------------
    # Evaluation reports (Eq. 9 + Table I)
    # ------------------------------------------------------------------

    def app_e2es(self, app_name: str) -> List[Fraction]:
        out = [s.e2e for s in self.schedules.values() if s.app == app_name]
        if not out:
            raise ValidationError(f"no scheduled messages for app {app_name!r}")
        return out

    def app_report(self, app_name: str) -> AppReport:
        app = self.problem.app_by_name[app_name]
        e2es = self.app_e2es(app_name)
        latency = min(e2es)
        jitter = max(e2es) - latency
        if app.stability is not None:
            margin = app.stability.margin(latency, jitter)
            stable: Optional[bool] = margin >= 0
        else:
            margin, stable = math.nan, None
        return AppReport(
            name=app_name,
            period=app.period,
            latency=latency,
            jitter=jitter,
            max_e2e=max(e2es),
            margin=margin,
            stable=stable,
        )

    def reports(self) -> List[AppReport]:
        return [self.app_report(a.name) for a in self.problem.apps]

    def all_stable(self) -> bool:
        """Eq. (10): every application's margin is non-negative."""
        return all(r.stable for r in self.reports() if r.stable is not None)

    # ------------------------------------------------------------------
    # 802.1Qbv artifacts
    # ------------------------------------------------------------------

    def program_switches(self) -> Dict[str, TsnSwitch]:
        """Instantiate and program TSN switches from the eta/gamma tables."""
        net = self.problem.network
        switches = {
            name: TsnSwitch(name, sorted(net.neighbors(name)), self.problem.delays.sd)
            for name in net.switches
        }
        for sched in self.schedules.values():
            for u, v in zip(sched.route[1:-1], sched.route[2:]):
                switches[u].program(sched.uid, v, sched.gammas[u])
        return switches

    def build_gcls(self):
        """Cyclic gate control lists for every switch (validates overlap)."""
        hp = self.problem.hyperperiod
        ld = self.problem.delays.ld
        return {
            name: sw.build_gcl(ld, hp)
            for name, sw in self.program_switches().items()
        }

    def __repr__(self) -> str:
        return (
            f"Solution(mode={self.mode}, messages={len(self.schedules)}, "
            f"time={self.synthesis_time:.2f}s)"
        )
