"""The synthesis driver: basic SMT solve + the two scalability heuristics.

* **Basic solution**: one SMT query over all messages of the hyper-period
  (``stages=1``), with ``routes=None`` meaning *all* simple routes are
  candidates (the paper's complete formulation).
* **Route subset** (Sec. V-C-1): ``routes=K`` restricts each application
  to its first K shortest routes.
* **Incremental synthesis** (Sec. V-C-2): ``stages=S`` divides the
  hyper-period into S time slices; each stage solves only the messages
  released in its slice, with all earlier stages' routes and release
  times frozen as constants.  Stability constraints for an application
  are enforced in every stage that schedules one of its messages, over
  all of its messages known so far — so by an application's last stage
  the full Eq. (2) condition holds.  As the paper notes, the heuristics
  explore a subset of the solution space and may fail on solvable
  instances (evaluated in Fig. 5 / Fig. 6).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional

from ..errors import EncodingError
from ..network.frames import MessageInstance
from ..smt import Solver, sat
from .encoding import Encoder, FixedMessage
from .problem import SynthesisProblem
from .solution import MessageSchedule, Solution

MODE_STABILITY = "stability"
MODE_DEADLINE = "deadline"


@dataclass(frozen=True)
class SynthesisOptions:
    """Synthesis configuration (the knobs varied by the paper's figures).

    Attributes:
        mode: ``"stability"`` (Eqs. 2-3, 10) or ``"deadline"`` (the
            state-of-the-art baseline of Table I: only ``e2e <= period``).
        routes: number of candidate shortest routes per application
            (``None`` = all simple routes, the basic formulation).
        stages: number of incremental time slices (1 = monolithic).
        path_cutoff: optional hop bound when enumerating all routes.
    """

    mode: str = MODE_STABILITY
    routes: Optional[int] = None
    stages: int = 1
    path_cutoff: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in (MODE_STABILITY, MODE_DEADLINE):
            raise EncodingError(f"unknown mode {self.mode!r}")
        if self.routes is not None and self.routes < 1:
            raise EncodingError("routes must be >= 1 (or None for all)")
        if self.stages < 1:
            raise EncodingError("stages must be >= 1")


@dataclass
class SynthesisResult:
    """Outcome of a synthesis run."""

    status: str                      # "sat" or "unsat"
    solution: Optional[Solution]
    synthesis_time: float
    stages_completed: int
    failed_stage: Optional[int] = None
    statistics: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "sat"


def _slice_messages(
    problem: SynthesisProblem, stages: int
) -> List[List[MessageInstance]]:
    """Partition the hyper-period's messages into release-time slices."""
    hp = problem.hyperperiod
    width = hp / stages
    slices: List[List[MessageInstance]] = [[] for _ in range(stages)]
    for m in problem.messages:
        idx = min(int(m.release / width), stages - 1)
        slices[idx].append(m)
    return slices


def synthesize(
    problem: SynthesisProblem, options: Optional[SynthesisOptions] = None
) -> SynthesisResult:
    """Jointly route and schedule all messages of one hyper-period."""
    opts = options or SynthesisOptions()
    if opts.mode == MODE_STABILITY:
        problem.require_stability_specs()

    t0 = time.perf_counter()
    slices = _slice_messages(problem, opts.stages)
    fixed: List[FixedMessage] = []
    stats: Dict[str, int] = {"conflicts": 0, "decisions": 0, "propagations": 0}
    stages_done = 0

    for stage_idx, stage_messages in enumerate(slices):
        if not stage_messages:
            stages_done += 1
            continue
        solver = Solver()
        encoder = Encoder(problem, solver, opts.routes, opts.path_cutoff)
        for m in stage_messages:
            encoder.encode_message(m)
        for fm in fixed:
            encoder.add_fixed_message(fm)
        encoder.add_contention_constraints()

        if opts.mode == MODE_STABILITY:
            stage_apps = {m.flow.name for m in stage_messages}
            for app_name in sorted(stage_apps):
                app = problem.app_by_name[app_name]
                fixed_e2es = [f.e2e for f in fixed if f.app == app_name]
                encoder.add_stability_constraints(app, fixed_e2es)

        result = solver.check()
        for key in stats:
            stats[key] += solver.statistics.get(key, 0)
        if result != sat:
            return SynthesisResult(
                status="unsat",
                solution=None,
                synthesis_time=time.perf_counter() - t0,
                stages_completed=stages_done,
                failed_stage=stage_idx,
                statistics=stats,
            )
        model = solver.model()
        for plan in encoder.plans.values():
            selected = [
                r for r, sel in enumerate(plan.selectors) if model[sel]
            ]
            if len(selected) != 1:
                raise EncodingError(
                    f"{plan.message.uid}: route selection not one-hot in model"
                )
            route = plan.routes[selected[0]]
            gammas = {
                node: model[plan.gammas[node]] for node in route[1:-1]
            }
            e2e = model[plan.e2e_by_route[selected[0]]]
            fixed.append(
                FixedMessage(
                    uid=plan.message.uid,
                    app=plan.message.flow.name,
                    route=route,
                    gammas=gammas,
                    release=plan.message.release,
                    e2e=e2e,
                )
            )
        stages_done += 1

    elapsed = time.perf_counter() - t0
    schedules = {
        fm.uid: MessageSchedule(
            uid=fm.uid,
            app=fm.app,
            route=fm.route,
            gammas=fm.gammas,
            release=fm.release,
            e2e=fm.e2e,
        )
        for fm in fixed
    }
    solution = Solution(problem, schedules, synthesis_time=elapsed, mode=opts.mode)
    return SynthesisResult(
        status="sat",
        solution=solution,
        synthesis_time=elapsed,
        stages_completed=stages_done,
        statistics=stats,
    )
