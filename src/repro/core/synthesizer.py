"""The synthesis driver: basic SMT solve + the two scalability heuristics.

* **Basic solution**: one SMT query over all messages of the hyper-period
  (``stages=1``), with ``routes=None`` meaning *all* simple routes are
  candidates (the paper's complete formulation).
* **Route subset** (Sec. V-C-1): ``routes=K`` restricts each application
  to its first K shortest routes.
* **Incremental synthesis** (Sec. V-C-2): ``stages=S`` divides the
  hyper-period into S time slices; each stage solves only the messages
  released in its slice, with all earlier stages' routes and release
  times frozen.  Stability constraints for an application are enforced
  in every stage that schedules one of its messages, over all of its
  messages known so far — so by an application's last stage the full
  Eq. (2) condition holds.  As the paper notes, the heuristics explore
  a subset of the solution space and may fail on solvable instances
  (evaluated in Fig. 5 / Fig. 6).

The whole run — however many stages — uses exactly **one** solving
session (:class:`repro.api.Session`, backend selectable via
``SynthesisOptions.backend``) and one encoder.  Each stage adds its
slice's constraints on top of the previous ones, re-checks, and freezes
the new messages by asserting their model values as equalities
(:meth:`Encoder.freeze_message`), so clauses learned in earlier stages
keep pruning later ones instead of being rebuilt from scratch per stage.

On top of the plain per-stage solve the driver leans on the session
API's assumption machinery:

* **Route probing** (``probe_routes``, on by default): before the full
  stage solve, the stage's messages are *assumed* onto their first
  (shortest) candidate routes — a plain assumption check, nothing
  asserted.  If the probe is sat its model is used directly; if not,
  the probe's minimized unsat core names exactly the conflicting
  shortest-route choices, those are released, and the remainder is
  re-probed before falling back to the unrestricted stage solve
  (statistics: ``assumption_probes``, ``cores_extracted``).
* **Core-driven stage repair** (``repair``, opt-in): stage freezes are
  guarded by per-message assumption literals instead of permanent
  equalities.  When a later stage is infeasible, the failing check's
  unsat core names the frozen messages responsible; the driver unfreezes
  exactly those and re-solves the stage jointly with them
  (``stage_repairs``), recovering instances the plain incremental
  heuristic loses.  Off by default so the paper's Fig. 5/6 heuristic-
  failure rates stay reproducible.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..api import NativeBackend, Session
from ..errors import EncodingError
from ..network.frames import MessageInstance
from ..smt.solver import SolverEngine as Solver  # patchable engine factory
from ..smt.terms import Bool, BoolExpr
from .encoding import Encoder, FixedMessage, MessagePlan
from .problem import SynthesisProblem
from .solution import MessageSchedule, Solution

MODE_STABILITY = "stability"
MODE_DEADLINE = "deadline"

#: Solver search-effort counters aggregated into result statistics.
_SOLVER_KEYS = ("conflicts", "decisions", "propagations",
                "theory_propagations", "dl_propagations",
                "dl_explanation_lits")


@dataclass(frozen=True)
class SynthesisOptions:
    """Synthesis configuration (the knobs varied by the paper's figures).

    Attributes:
        mode: ``"stability"`` (Eqs. 2-3, 10) or ``"deadline"`` (the
            state-of-the-art baseline of Table I: only ``e2e <= period``).
        routes: number of candidate shortest routes per application
            (``None`` = all simple routes, the basic formulation).
        stages: number of incremental time slices (1 = monolithic).
        path_cutoff: optional hop bound when enumerating all routes.
        backend: solving backend for the run's session (``"native"`` or
            ``"serialization"``; see :mod:`repro.api.backends`).
        dl_propagation: transitive difference-logic propagation in the
            native engine (Cotton & Maler SSSP pass; on by default —
            A/B knob for the ``dl_propagation`` benchmark, counted by
            the ``dl_propagations`` statistic).
        probe_routes: probe shortest-route selections with assumptions
            before each full stage solve (complete: falls back on the
            unrestricted solve, so statuses never change).
        repair: guard stage freezes with assumption literals and use
            unsat cores to unfreeze/re-solve when a stage fails (may
            solve instances the plain heuristic cannot).
        max_repair_rounds: cap on unfreeze/re-solve iterations per stage.
        max_conflicts: conflict budget per native-engine check; an
            exhausted check answers ``unknown`` deterministically (after
            a final mid-check export flush), which portfolio races use
            to bound a worker without losing its learned knowledge.
        seed_knowledge: a :class:`repro.portfolio.sharing.SeedKnowledge`
            bundle from a portfolio race's shared pool — learned clauses,
            route vetoes and stage prefixes from sibling strategies are
            applied before/alongside the run's own search (statistics:
            ``clauses_imported``, ``route_vetoes_applied``,
            ``prefix_probes``/``prefix_hits``).
        faults: a :class:`repro.portfolio.faults.WorkerFaults` bundle —
            deterministic fault injection (crash-at-conflict, hang,
            slow start) applied around this run's engine, used by the
            portfolio fault-injection harness to rehearse worker
            failures on demand (see ``docs/robustness.md``).  None (the
            default) injects nothing.
    """

    mode: str = MODE_STABILITY
    routes: Optional[int] = None
    stages: int = 1
    path_cutoff: Optional[int] = None
    backend: str = "native"
    dl_propagation: bool = True
    probe_routes: bool = True
    repair: bool = False
    max_repair_rounds: int = 3
    max_conflicts: Optional[int] = None
    seed_knowledge: Optional["SeedKnowledge"] = None  # noqa: F821
    faults: Optional["WorkerFaults"] = None  # noqa: F821

    def __post_init__(self) -> None:
        if self.mode not in (MODE_STABILITY, MODE_DEADLINE):
            raise EncodingError(f"unknown mode {self.mode!r}")
        if self.routes is not None and self.routes < 1:
            raise EncodingError("routes must be >= 1 (or None for all)")
        if self.stages < 1:
            raise EncodingError("stages must be >= 1")
        if self.max_repair_rounds < 0:
            raise EncodingError("max_repair_rounds must be >= 0")
        if self.max_conflicts is not None and self.max_conflicts < 1:
            raise EncodingError("max_conflicts must be >= 1 (or None)")


@dataclass
class SynthesisResult:
    """Outcome of a synthesis run."""

    status: str                      # "sat", "unsat", or "unknown"
                                     # (undecided backend)
    solution: Optional[Solution]
    synthesis_time: float
    stages_completed: int
    failed_stage: Optional[int] = None
    statistics: Dict[str, int] = field(default_factory=dict)
    #: Per-solved-stage search-effort deltas (one entry per non-empty
    #: stage, summed over that stage's probe/repair/full checks).
    stage_statistics: List[Dict[str, int]] = field(default_factory=list)
    #: On unsat: human-readable labels of the failing check's unsat core
    #: (frozen messages / probed route selections), when one exists.
    unsat_explanation: Optional[List[str]] = None
    #: On a *provable* unsat (single-stage run, no heuristic freezes):
    #: ``(uid, candidate route count)`` per encoded message — the doomed
    #: route-subset selection a portfolio race shares with siblings.
    route_veto: Optional[Tuple[Tuple[str, int], ...]] = None

    @property
    def ok(self) -> bool:
        return self.status == "sat"


def _slice_messages(
    problem: SynthesisProblem, stages: int
) -> List[List[MessageInstance]]:
    """Partition the hyper-period's messages into release-time slices."""
    hp = problem.hyperperiod
    width = hp / stages
    slices: List[List[MessageInstance]] = [[] for _ in range(stages)]
    for m in problem.messages:
        idx = min(int(m.release / width), stages - 1)
        slices[idx].append(m)
    return slices


class _StageAccounting:
    """Accumulates per-stage and per-run solver statistics."""

    def __init__(self) -> None:
        self.totals: Dict[str, int] = {key: 0 for key in _SOLVER_KEYS}
        self.totals.update(assumption_probes=0, cores_extracted=0,
                           stage_repairs=0, clauses_imported=0,
                           route_vetoes_applied=0, prefix_probes=0,
                           prefix_hits=0)
        self.stage: Dict[str, int] = {}
        self.per_stage: List[Dict[str, int]] = []

    def begin_stage(self) -> None:
        self.stage = {key: 0 for key in _SOLVER_KEYS}

    def absorb(self, outcome) -> None:
        for key in _SOLVER_KEYS:
            delta = outcome.statistics.get(key, 0)
            self.stage[key] += delta
            self.totals[key] += delta

    def count(self, key: str, n: int = 1) -> None:
        self.totals[key] = self.totals.get(key, 0) + n

    def end_stage(self) -> None:
        self.per_stage.append(self.stage)


class _FreezeLedger:
    """Frozen-message bookkeeping for core-driven stage repair.

    In repair mode each frozen message is pinned under a fresh guard
    literal which is *assumed* on every later check; dropping the guard
    from the assumption set re-opens the message.  Without repair the
    ledger is pass-through (permanent freezes, no guards).
    """

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled
        self.guard_by_uid: Dict[str, BoolExpr] = {}
        self.uid_by_guard: Dict[BoolExpr, str] = {}
        self.plans: Dict[str, MessagePlan] = {}
        self._generation = 0

    def assumptions(self) -> List[BoolExpr]:
        return list(self.guard_by_uid.values())

    def new_guard(self, uid: str) -> Optional[BoolExpr]:
        if not self.enabled:
            return None
        self._generation += 1
        guard = Bool(f"__freeze!{self._generation}[{uid}]")
        self.guard_by_uid[uid] = guard
        self.uid_by_guard[guard] = uid
        return guard

    def release(self, guards: Sequence[BoolExpr]) -> List[str]:
        """Drop the given freeze guards; returns the re-opened uids."""
        uids = []
        for guard in guards:
            uid = self.uid_by_guard.pop(guard, None)
            if uid is not None and self.guard_by_uid.get(uid) is guard:
                del self.guard_by_uid[uid]
                uids.append(uid)
        return uids


#: Fixed encoder namespace for driver-built encodings: selector and
#: release-time variable names must be identical across portfolio
#: strategies and worker processes for shared knowledge to connect (see
#: :mod:`repro.portfolio.sharing`).  Reuse across runs is safe — terms
#: intern globally but SAT mappings are per-engine.
_SHARED_NAMESPACE = "p"


def solve(
    problem: SynthesisProblem,
    options: Optional[SynthesisOptions] = None,
    *,
    session: Optional[Session] = None,
    on_event: Optional[Callable[[dict], None]] = None,
) -> SynthesisResult:
    """Jointly route and schedule all messages of one hyper-period.

    This is the canonical entry point (the legacy :func:`synthesize`
    delegates here).  ``session`` injects a caller-owned
    :class:`repro.api.Session`; by default one is created according to
    ``options.backend`` and used for the entire run.  ``on_event``
    observes solve progress — currently one event kind,
    ``{"kind": "stage_frozen", "stage": i, "fixed": [...]}`` after each
    non-final incremental stage — which portfolio workers use to stream
    frozen prefixes to the race's shared knowledge pool.
    """
    opts = options or SynthesisOptions()
    if opts.mode == MODE_STABILITY:
        problem.require_stability_specs()

    t0 = time.perf_counter()
    slices = _slice_messages(problem, opts.stages)
    if session is None:
        if opts.backend == "native":
            # The module-level ``Solver`` name is the engine factory the
            # one-engine-per-run contract tests patch.
            session = Session(backend=NativeBackend(
                engine=Solver(dl_propagation=opts.dl_propagation,
                              max_conflicts=opts.max_conflicts)))
        else:
            session = Session(backend=opts.backend)
    if opts.faults:
        # Deferred import: repro.portfolio imports this module.  The
        # trigger wraps whatever on_restart hook the caller installed
        # (portfolio workers chain heartbeats/knowledge flushes there).
        from ..portfolio import faults as fault_injection
        fault_injection.apply_presolve(opts.faults)
        fault_engine = getattr(session.backend, "engine", None)
        if fault_engine is not None:
            fault_injection.install_engine_triggers(fault_engine, opts.faults)
    encoder = Encoder(problem, session, opts.routes, opts.path_cutoff,
                      namespace=_SHARED_NAMESPACE)

    acct = _StageAccounting()
    ledger = _FreezeLedger(opts.repair)
    fixed: Dict[str, FixedMessage] = {}
    stages_done = 0

    seed = opts.seed_knowledge
    vetoes_applied: set = set()
    if seed is not None:
        # Deferred import: repro.portfolio imports this module.
        from ..portfolio import sharing
        acct.count("clauses_imported",
                   sharing.import_presolve_clauses(session, opts))

    for stage_idx, stage_messages in enumerate(slices):
        if not stage_messages:
            stages_done += 1
            continue
        acct.begin_stage()
        new_plans = [encoder.encode_message(m) for m in stage_messages]
        encoder.add_contention_constraints()

        if opts.mode == MODE_STABILITY:
            stage_apps = {m.flow.name for m in stage_messages}
            for app_name in sorted(stage_apps):
                # The plan loop inside covers the app's earlier-stage
                # messages too: their variables are pinned by equalities.
                encoder.add_stability_constraints(
                    problem.app_by_name[app_name], tag=f"s{stage_idx}"
                )

        prefix_assumps: List[BoolExpr] = []
        if seed is not None:
            from ..portfolio import sharing
            acct.count("route_vetoes_applied", sharing.apply_route_vetoes(
                session, encoder, opts, vetoes_applied))
            if opts.stages == 1:
                acct.count("clauses_imported", sharing.import_padded_clauses(
                    session, encoder, opts))
            prefix_assumps = sharing.prefix_assumptions(opts, new_plans)

        outcome = _check_stage(session, opts, acct, ledger, new_plans,
                               prefix_assumps)

        if outcome != "sat":
            # An undecided backend (e.g. serialization with engine="none")
            # must not be reported as proven infeasibility.
            status_name = outcome.status.name
            veto: Optional[Tuple[Tuple[str, int], ...]] = None
            if status_name == "unsat" and opts.stages == 1:
                # Single-stage unsat is a real proof that this run's
                # route-subset selection is infeasible (no heuristic
                # freezes were involved) — exportable to siblings.
                veto = tuple(sorted(
                    (uid, len(plan.selectors))
                    for uid, plan in encoder.plans.items()
                ))
            return SynthesisResult(
                status=status_name,
                solution=None,
                synthesis_time=time.perf_counter() - t0,
                stages_completed=stages_done,
                failed_stage=stage_idx,
                statistics=acct.totals,
                stage_statistics=acct.per_stage + [acct.stage],
                unsat_explanation=_explain_core(outcome, ledger, encoder),
                route_veto=veto,
            )

        model = outcome.require_model()
        has_later_work = any(slices[stage_idx + 1:])
        refreeze = [encoder.plans[uid] for uid in ledger.plans
                    if uid not in ledger.guard_by_uid] if opts.repair else []
        for plan in refreeze + new_plans:
            uid = plan.message.uid
            fm = encoder.freeze_message(
                plan, model, pin=has_later_work,
                guard=ledger.new_guard(uid) if has_later_work else None,
            )
            fixed[uid] = fm
            if opts.repair:
                ledger.plans[uid] = plan
        acct.end_stage()
        stages_done += 1
        if on_event is not None and has_later_work:
            # Imported here, not at module level: repro.portfolio's
            # package __init__ pulls in engine.py, which imports this
            # module — a top-level import would be circular.
            from ..portfolio.frames import KIND_STAGE_FROZEN
            on_event({"kind": KIND_STAGE_FROZEN, "stage": stage_idx,
                      "fixed": list(fixed.values())})

    elapsed = time.perf_counter() - t0
    schedules = {
        fm.uid: MessageSchedule(
            uid=fm.uid,
            app=fm.app,
            route=fm.route,
            gammas=fm.gammas,
            release=fm.release,
            e2e=fm.e2e,
        )
        for fm in fixed.values()
    }
    solution = Solution(problem, schedules, synthesis_time=elapsed,
                        mode=opts.mode)
    return SynthesisResult(
        status="sat",
        solution=solution,
        synthesis_time=elapsed,
        stages_completed=stages_done,
        statistics=acct.totals,
        stage_statistics=acct.per_stage,
    )


def _check_stage(
    session: Session,
    opts: SynthesisOptions,
    acct: _StageAccounting,
    ledger: _FreezeLedger,
    new_plans: List[MessagePlan],
    prefix_assumps: Sequence[BoolExpr] = (),
):
    """One stage's probe ladder: shared-prefix probe -> greedy route
    probe -> core-relaxed re-probe -> unrestricted solve -> (repair mode)
    core-driven unfreezing.  Returns the final :class:`CheckOutcome`."""
    freezes = ledger.assumptions()

    if prefix_assumps:
        # Replay a sibling attempt's frozen prefix (portfolio knowledge
        # sharing).  Pure assumption probe: a miss costs one check and
        # falls through to the regular ladder, so statuses never change.
        acct.count("prefix_probes")
        probe = session.check(freezes + list(prefix_assumps))
        acct.absorb(probe)
        if probe == "sat":
            acct.count("prefix_hits")
            return probe

    if opts.probe_routes:
        greedy = [p.selectors[0] for p in new_plans if len(p.selectors) > 1]
        if greedy:
            acct.count("assumption_probes")
            probe = session.check(freezes + greedy)
            acct.absorb(probe)
            if probe == "sat":
                return probe
            core = set(probe.unsat_core or ())
            if core:
                acct.count("cores_extracted")
            # Release exactly the conflicting shortest-route choices and
            # try once more — unless the core blames frozen messages
            # (repair territory) or dissolves the whole probe.
            relaxed = [g for g in greedy if g not in core]
            if (core and relaxed and len(relaxed) < len(greedy)
                    and not core.intersection(freezes)):
                acct.count("assumption_probes")
                probe = session.check(freezes + relaxed)
                acct.absorb(probe)
                if probe == "sat":
                    return probe

    outcome = session.check(freezes)
    acct.absorb(outcome)

    if outcome != "sat" and opts.repair and freezes:
        rounds = 0
        while outcome != "sat" and rounds < opts.max_repair_rounds:
            core = outcome.unsat_core or ()
            blamed = [g for g in core if g in ledger.uid_by_guard]
            if not blamed:
                break  # the freezes are not at fault; genuinely unsat
            acct.count("cores_extracted")
            acct.count("stage_repairs")
            ledger.release(blamed)
            rounds += 1
            outcome = session.check(ledger.assumptions())
            acct.absorb(outcome)
    return outcome


def _explain_core(outcome, ledger: _FreezeLedger, encoder: Encoder):
    """Human-readable labels for a failing check's unsat core."""
    if outcome.unsat_core is None:
        return None
    labels: List[str] = []
    selector_names: Dict[BoolExpr, str] = {
        sel: f"route[{uid}][{r}]"
        for uid, plan in encoder.plans.items()
        for r, sel in enumerate(plan.selectors)
    }
    for expr in outcome.unsat_core:
        uid = ledger.uid_by_guard.get(expr)
        if uid is not None:
            labels.append(f"frozen[{uid}]")
        else:
            labels.append(selector_names.get(expr, repr(expr)))
    return labels


#: One-shot deprecation latch for the legacy ``synthesize`` entry point.
_SYNTHESIZE_DEPRECATION_WARNED = False


def synthesize(
    problem: SynthesisProblem, options: Optional[SynthesisOptions] = None
) -> SynthesisResult:
    """Deprecated alias of :func:`solve` (the session-based driver)."""
    global _SYNTHESIZE_DEPRECATION_WARNED
    if not _SYNTHESIZE_DEPRECATION_WARNED:
        _SYNTHESIZE_DEPRECATION_WARNED = True
        warnings.warn(
            "repro.core.synthesize is deprecated; use repro.core.solve",
            DeprecationWarning,
            stacklevel=2,
        )
    return solve(problem, options)
