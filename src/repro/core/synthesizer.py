"""The synthesis driver: basic SMT solve + the two scalability heuristics.

* **Basic solution**: one SMT query over all messages of the hyper-period
  (``stages=1``), with ``routes=None`` meaning *all* simple routes are
  candidates (the paper's complete formulation).
* **Route subset** (Sec. V-C-1): ``routes=K`` restricts each application
  to its first K shortest routes.
* **Incremental synthesis** (Sec. V-C-2): ``stages=S`` divides the
  hyper-period into S time slices; each stage solves only the messages
  released in its slice, with all earlier stages' routes and release
  times frozen.  Stability constraints for an application are enforced
  in every stage that schedules one of its messages, over all of its
  messages known so far — so by an application's last stage the full
  Eq. (2) condition holds.  As the paper notes, the heuristics explore
  a subset of the solution space and may fail on solvable instances
  (evaluated in Fig. 5 / Fig. 6).

The whole run — however many stages — uses exactly **one** SMT solver
and one encoder.  Each stage adds its slice's constraints on top of the
previous ones, re-checks, and freezes the new messages by asserting
their model values as equalities (:meth:`Encoder.freeze_message`), so
clauses learned in earlier stages keep pruning later ones instead of
being rebuilt from scratch per stage.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional

from ..errors import EncodingError
from ..network.frames import MessageInstance
from ..smt import Solver, sat
from .encoding import Encoder, FixedMessage
from .problem import SynthesisProblem
from .solution import MessageSchedule, Solution

MODE_STABILITY = "stability"
MODE_DEADLINE = "deadline"


@dataclass(frozen=True)
class SynthesisOptions:
    """Synthesis configuration (the knobs varied by the paper's figures).

    Attributes:
        mode: ``"stability"`` (Eqs. 2-3, 10) or ``"deadline"`` (the
            state-of-the-art baseline of Table I: only ``e2e <= period``).
        routes: number of candidate shortest routes per application
            (``None`` = all simple routes, the basic formulation).
        stages: number of incremental time slices (1 = monolithic).
        path_cutoff: optional hop bound when enumerating all routes.
    """

    mode: str = MODE_STABILITY
    routes: Optional[int] = None
    stages: int = 1
    path_cutoff: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in (MODE_STABILITY, MODE_DEADLINE):
            raise EncodingError(f"unknown mode {self.mode!r}")
        if self.routes is not None and self.routes < 1:
            raise EncodingError("routes must be >= 1 (or None for all)")
        if self.stages < 1:
            raise EncodingError("stages must be >= 1")


@dataclass
class SynthesisResult:
    """Outcome of a synthesis run."""

    status: str                      # "sat" or "unsat"
    solution: Optional[Solution]
    synthesis_time: float
    stages_completed: int
    failed_stage: Optional[int] = None
    statistics: Dict[str, int] = field(default_factory=dict)
    #: Per-solved-stage search-effort deltas (one entry per non-empty stage).
    stage_statistics: List[Dict[str, int]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == "sat"


def _slice_messages(
    problem: SynthesisProblem, stages: int
) -> List[List[MessageInstance]]:
    """Partition the hyper-period's messages into release-time slices."""
    hp = problem.hyperperiod
    width = hp / stages
    slices: List[List[MessageInstance]] = [[] for _ in range(stages)]
    for m in problem.messages:
        idx = min(int(m.release / width), stages - 1)
        slices[idx].append(m)
    return slices


def synthesize(
    problem: SynthesisProblem, options: Optional[SynthesisOptions] = None
) -> SynthesisResult:
    """Jointly route and schedule all messages of one hyper-period."""
    opts = options or SynthesisOptions()
    if opts.mode == MODE_STABILITY:
        problem.require_stability_specs()

    t0 = time.perf_counter()
    slices = _slice_messages(problem, opts.stages)
    fixed: List[FixedMessage] = []
    stats: Dict[str, int] = {"conflicts": 0, "decisions": 0,
                             "propagations": 0, "theory_propagations": 0}
    stage_stats: List[Dict[str, int]] = []
    stages_done = 0

    # One solver and one encoder for the entire run: later stages extend
    # the same formula, so learned clauses and theory state carry forward.
    solver = Solver()
    encoder = Encoder(problem, solver, opts.routes, opts.path_cutoff)

    for stage_idx, stage_messages in enumerate(slices):
        if not stage_messages:
            stages_done += 1
            continue
        new_plans = [encoder.encode_message(m) for m in stage_messages]
        encoder.add_contention_constraints()

        if opts.mode == MODE_STABILITY:
            stage_apps = {m.flow.name for m in stage_messages}
            for app_name in sorted(stage_apps):
                # The plan loop inside covers the app's earlier-stage
                # messages too: their variables are pinned by equalities.
                encoder.add_stability_constraints(
                    problem.app_by_name[app_name], tag=f"s{stage_idx}"
                )

        result = solver.check()
        delta = solver.last_check_statistics
        stage_stats.append(delta)
        for key in stats:
            stats[key] += delta.get(key, 0)
        if result != sat:
            return SynthesisResult(
                status="unsat",
                solution=None,
                synthesis_time=time.perf_counter() - t0,
                stages_completed=stages_done,
                failed_stage=stage_idx,
                statistics=stats,
                stage_statistics=stage_stats,
            )
        model = solver.model()
        has_later_work = any(slices[stage_idx + 1:])
        for plan in new_plans:
            fixed.append(encoder.freeze_message(plan, model, pin=has_later_work))
        stages_done += 1

    elapsed = time.perf_counter() - t0
    schedules = {
        fm.uid: MessageSchedule(
            uid=fm.uid,
            app=fm.app,
            route=fm.route,
            gammas=fm.gammas,
            release=fm.release,
            e2e=fm.e2e,
        )
        for fm in fixed
    }
    solution = Solution(problem, schedules, synthesis_time=elapsed, mode=opts.mode)
    return SynthesisResult(
        status="sat",
        solution=solution,
        synthesis_time=elapsed,
        stages_completed=stages_done,
        statistics=stats,
        stage_statistics=stage_stats,
    )
