"""Core synthesis: the paper's contribution (DESIGN.md S7-S9).

Stability-aware joint routing and scheduling of time-triggered Ethernet
messages via SMT, with the route-subset and incremental-stage heuristics,
plus the deadline-only baseline, the solution model, and an independent
exact validator.
"""

from .encoding import Encoder, FixedMessage, MessagePlan
from .export import render_switch_configs, solution_from_dict, solution_to_dict
from .problem import ControlApplication, SynthesisProblem
from .refine import RefinedResult, minimize_jitter
from .solution import AppReport, MessageSchedule, Solution
from .synthesizer import (
    MODE_DEADLINE,
    MODE_STABILITY,
    SynthesisOptions,
    SynthesisResult,
    solve,
    synthesize,
)
from .validator import collect_violations, validate_solution

__all__ = [
    "AppReport",
    "ControlApplication",
    "Encoder",
    "FixedMessage",
    "MODE_DEADLINE",
    "MODE_STABILITY",
    "MessagePlan",
    "MessageSchedule",
    "RefinedResult",
    "minimize_jitter",
    "render_switch_configs",
    "solution_from_dict",
    "solution_to_dict",
    "Solution",
    "SynthesisOptions",
    "SynthesisProblem",
    "SynthesisResult",
    "collect_violations",
    "solve",
    "synthesize",
    "validate_solution",
]
