"""Synthesis problem definition (paper Sec. III).

Inputs: the network topology, the delay parameters ``sd``/``ld``, and per
control application its period, endpoints, and stability specification
(the piecewise-linear lower bound of its jitter-margin curve).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from functools import cached_property
from typing import List, Optional, Sequence

from ..errors import EncodingError
from ..network.frames import Flow, MessageInstance, expand_messages, hyperperiod
from ..network.graph import Network, NodeKind
from ..network.timing import DelayModel, as_seconds
from ..stability.piecewise import StabilitySpec


@dataclass(frozen=True)
class ControlApplication:
    """One control application ``Lambda_i`` (sensor, controller, plant).

    ``stability`` carries the (alpha, beta, L) segments of Eq. (2); it may
    be None for applications synthesized in deadline-only mode.
    """

    name: str
    sensor: str
    controller: str
    period: Fraction
    stability: Optional[StabilitySpec] = None
    frame_bytes: int = 1500

    def __post_init__(self) -> None:
        object.__setattr__(self, "period", as_seconds(self.period))
        if self.period <= 0:
            raise EncodingError(f"app {self.name!r}: period must be positive")

    @property
    def flow(self) -> Flow:
        return Flow(self.name, self.sensor, self.controller, self.period,
                    self.frame_bytes)


@dataclass
class SynthesisProblem:
    """A complete joint routing + scheduling instance."""

    network: Network
    apps: List[ControlApplication]
    delays: DelayModel

    def __post_init__(self) -> None:
        names = [a.name for a in self.apps]
        if len(set(names)) != len(names):
            raise EncodingError("duplicate application names")
        if not self.apps:
            raise EncodingError("a problem needs at least one application")
        for app in self.apps:
            if app.sensor not in self.network:
                raise EncodingError(f"app {app.name!r}: unknown sensor {app.sensor!r}")
            if app.controller not in self.network:
                raise EncodingError(
                    f"app {app.name!r}: unknown controller {app.controller!r}"
                )
            if self.network.kind(app.sensor) != NodeKind.SENSOR:
                raise EncodingError(f"app {app.name!r}: {app.sensor!r} is not a sensor")
            if self.network.kind(app.controller) != NodeKind.CONTROLLER:
                raise EncodingError(
                    f"app {app.name!r}: {app.controller!r} is not a controller"
                )
            if app.period < self.delays.ld:
                raise EncodingError(
                    f"app {app.name!r}: period below the link transmission "
                    "delay; successive frames of the flow would collide on "
                    "the sensor link"
                )

    @cached_property
    def hyperperiod(self) -> Fraction:
        return hyperperiod([a.period for a in self.apps])

    @cached_property
    def messages(self) -> List[MessageInstance]:
        """All message instances of one hyper-period (the set ``M``)."""
        return expand_messages([a.flow for a in self.apps])

    @cached_property
    def app_by_name(self) -> dict:
        return {a.name: a for a in self.apps}

    def app_of(self, message: MessageInstance) -> ControlApplication:
        return self.app_by_name[message.flow.name]

    @property
    def num_messages(self) -> int:
        return len(self.messages)

    def require_stability_specs(self) -> None:
        missing = [a.name for a in self.apps if a.stability is None]
        if missing:
            raise EncodingError(
                "stability-aware synthesis requires a StabilitySpec for every "
                f"application; missing: {missing}"
            )
