"""Quality refinement: jitter-minimizing synthesis (extension).

The paper synthesizes *feasible* stable schedules (Eq. 10 as a
constraint).  A natural extension — enabled by the optimization layer of
:mod:`repro.smt.optimize` — is to *minimize* the total control jitter
subject to the same constraints, pushing every application deep into its
stability region instead of merely inside it.

This is a monolithic (stages = 1) formulation: the objective couples all
applications, so the incremental heuristic does not apply.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional

from ..api import Session
from ..errors import EncodingError
from ..smt import Sum
from ..smt.optimize import OptimizeResult, minimize
from .encoding import Encoder
from .problem import SynthesisProblem
from .solution import MessageSchedule, Solution


@dataclass
class RefinedResult:
    """Outcome of jitter-minimizing synthesis."""

    status: str                      # "optimal", "sat", or "unsat"
    solution: Optional[Solution]
    total_jitter: Optional[Fraction]
    probes: int

    @property
    def ok(self) -> bool:
        return self.solution is not None


def minimize_jitter(
    problem: SynthesisProblem,
    routes: Optional[int] = 3,
    path_cutoff: Optional[int] = None,
    tolerance: Fraction | None = None,
    max_probes: int = 16,
) -> RefinedResult:
    """Find a stable schedule minimizing the summed jitter over all apps.

    Returns the best schedule found within the probe budget (status
    ``"sat"``) or a certified near-optimum (status ``"optimal"``).
    """
    problem.require_stability_specs()
    session = Session()
    encoder = Encoder(problem, session, routes, path_cutoff)
    for message in problem.messages:
        encoder.encode_message(message)
    encoder.add_contention_constraints()
    jitters = []
    for app in problem.apps:
        lmin, lmax = encoder.add_stability_constraints(app)
        jitters.append(lmax - lmin)
    objective = Sum(jitters)

    # The constraints are already asserted in the session; the optimizer
    # probes it with push()/pop() bound scopes (no re-encoding).
    result: OptimizeResult = minimize(
        [], objective,
        lower_bound=0, tolerance=tolerance, max_probes=max_probes,
        session=session,
    )
    if not result.ok:
        return RefinedResult("unsat", None, None, result.probes)
    model = result.model
    assert model is not None
    schedules: Dict[str, MessageSchedule] = {}
    for plan in encoder.plans.values():
        selected = [r for r, sel in enumerate(plan.selectors) if model[sel]]
        if len(selected) != 1:
            raise EncodingError(
                f"{plan.message.uid}: route selection not one-hot in model"
            )
        route = plan.routes[selected[0]]
        schedules[plan.message.uid] = MessageSchedule(
            uid=plan.message.uid,
            app=plan.message.flow.name,
            route=route,
            gammas={node: model[plan.gammas[node]] for node in route[1:-1]},
            release=plan.message.release,
            e2e=model[plan.e2e_by_route[selected[0]]],
        )
    solution = Solution(problem, schedules, mode="stability")
    return RefinedResult(result.status, solution, result.objective_bound,
                         result.probes)
