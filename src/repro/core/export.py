"""Solution serialization and 802.1Qbv configuration export.

Two deployment artifacts:

* :func:`solution_to_dict` / :func:`solution_from_dict` — lossless JSON-
  friendly round trip of a synthesized schedule (routes and release
  times as exact rational strings), so schedules can be stored, diffed,
  and re-validated offline.
* :func:`render_switch_configs` — the per-switch configuration a TSN
  commissioning tool would push: the forwarding look-up table (eta) and
  the cyclic gate control list windows per egress port.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List

from ..errors import ValidationError
from .problem import SynthesisProblem
from .solution import MessageSchedule, Solution


def solution_to_dict(solution: Solution) -> dict:
    """A JSON-serializable description of the schedule."""
    return {
        "mode": solution.mode,
        "synthesis_time": solution.synthesis_time,
        "hyperperiod": str(solution.problem.hyperperiod),
        "messages": {
            uid: {
                "app": sched.app,
                "route": list(sched.route),
                "release": str(sched.release),
                "e2e": str(sched.e2e),
                "gammas": {node: str(g) for node, g in sched.gammas.items()},
            }
            for uid, sched in sorted(solution.schedules.items())
        },
    }


def solution_from_dict(problem: SynthesisProblem, data: dict) -> Solution:
    """Rebuild a :class:`Solution` against its problem definition."""
    try:
        schedules: Dict[str, MessageSchedule] = {}
        for uid, entry in data["messages"].items():
            schedules[uid] = MessageSchedule(
                uid=uid,
                app=entry["app"],
                route=list(entry["route"]),
                gammas={n: Fraction(g) for n, g in entry["gammas"].items()},
                release=Fraction(entry["release"]),
                e2e=Fraction(entry["e2e"]),
            )
        return Solution(
            problem,
            schedules,
            synthesis_time=float(data.get("synthesis_time", 0.0)),
            mode=data.get("mode", "stability"),
        )
    except (KeyError, ValueError) as exc:
        raise ValidationError(f"malformed solution dictionary: {exc}") from exc


def render_switch_configs(solution: Solution) -> str:
    """Human-readable per-switch configuration (eta tables + GCLs)."""
    lines: List[str] = []
    hp = solution.problem.hyperperiod
    lines.append(f"# 802.1Qbv configuration (hyper-period {float(hp) * 1000} ms)")
    gcls = solution.build_gcls()
    etas = solution.eta_tables()
    for switch in sorted(gcls):
        lines.append(f"\nswitch {switch}:")
        table = etas.get(switch, {})
        if table:
            lines.append("  forwarding (eta):")
            for uid, nxt in sorted(table.items()):
                lines.append(f"    {uid} -> port[{nxt}]")
        for peer, entries in sorted(gcls[switch].items()):
            if not entries:
                continue
            lines.append(f"  gate control list, port -> {peer}:")
            for e in entries:
                lines.append(
                    f"    open {float(e.start) * 1000:9.4f} ms .. "
                    f"{float(e.end) * 1000:9.4f} ms  queue {e.queue}  ({e.uid})"
                )
    return "\n".join(lines)
