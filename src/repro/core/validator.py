"""Independent exact validator for synthesized solutions.

Re-checks every constraint of paper Sec. V against a :class:`Solution`
using exact ``Fraction`` arithmetic, *without* going through the SMT
machinery — the classic "certify, don't trust" pattern: a bug anywhere in
the solver stack (SAT core, theory engines, encoding) surfaces here as a
:class:`ValidationError` instead of silently producing an invalid
schedule.
"""

from __future__ import annotations

from typing import List

from ..errors import ValidationError
from ..network.graph import NodeKind
from .solution import Solution


def validate_solution(solution: Solution, check_stability: bool = True) -> None:
    """Raise :class:`ValidationError` listing every violated constraint."""
    violations = collect_violations(solution, check_stability)
    if violations:
        raise ValidationError(
            f"{len(violations)} constraint violation(s):\n  " + "\n  ".join(violations)
        )


def collect_violations(solution: Solution, check_stability: bool = True) -> List[str]:
    """All constraint violations (empty list == valid)."""
    problem = solution.problem
    net = problem.network
    sd, ld = problem.delays.sd, problem.delays.ld
    out: List[str] = []

    # Every message of the hyper-period must be scheduled exactly once.
    expected = {m.uid for m in problem.messages}
    got = set(solution.schedules)
    for uid in sorted(expected - got):
        out.append(f"{uid}: message not scheduled")
    for uid in sorted(got - expected):
        out.append(f"{uid}: schedule for unknown message")

    link_windows = []  # (u, v, start, uid)
    for uid in sorted(got & expected):
        sched = solution.schedules[uid]
        app = problem.app_by_name[sched.app]
        route = sched.route

        # Route constraint (Eq. 8) + topology (Eq. 4) + no-loop (Eq. 7).
        if route[0] != app.sensor:
            out.append(f"{uid}: route does not start at sensor {app.sensor!r}")
        if route[-1] != app.controller:
            out.append(f"{uid}: route does not end at controller {app.controller!r}")
        if len(set(route)) != len(route):
            out.append(f"{uid}: route visits a node twice (Eq. 7)")
        for u, v in zip(route, route[1:]):
            if not net.has_link(u, v):
                out.append(f"{uid}: route uses missing link {u!r}-{v!r} (Eq. 4)")
        for node in route[1:-1]:
            if net.kind(node) != NodeKind.SWITCH:
                out.append(f"{uid}: intermediate node {node!r} is not a switch")

        # Transposition (Eq. 6).
        prev = sched.release
        for node in route[1:-1]:
            g = sched.gammas.get(node)
            if g is None:
                out.append(f"{uid}: missing release time at {node!r}")
                break
            if g < prev + sd + ld:
                out.append(
                    f"{uid}: transposition violated at {node!r} "
                    f"({g} < {prev} + sd + ld) (Eq. 6)"
                )
            prev = g
        else:
            # e2e consistency and the implicit deadline.
            last_sw = route[-2]
            e2e = sched.gammas[last_sw] + ld - sched.release
            if e2e != sched.e2e:
                out.append(f"{uid}: recorded e2e {sched.e2e} != derived {e2e}")
            if e2e > app.period:
                out.append(f"{uid}: e2e {e2e} exceeds period {app.period}")

        # Collect directed-link transmission windows for Eq. 5.
        for u, v in zip(route, route[1:]):
            start = sched.release if u == app.sensor else sched.gammas.get(u)
            if start is not None:
                link_windows.append((u, v, start, uid))

    # Contention-free (Eq. 5): per directed link, starts >= ld apart.
    by_link = {}
    for u, v, start, uid in link_windows:
        by_link.setdefault((u, v), []).append((start, uid))
    for (u, v), entries in sorted(by_link.items()):
        entries.sort()
        for (t1, u1), (t2, u2) in zip(entries, entries[1:]):
            if t2 - t1 < ld:
                out.append(
                    f"link {u}->{v}: {u1} and {u2} overlap "
                    f"({t1} vs {t2}, ld={ld}) (Eq. 5)"
                )

    # Stability (Eqs. 3 + 10).
    if check_stability:
        for app in problem.apps:
            if app.stability is None:
                continue
            try:
                report = solution.app_report(app.name)
            except ValidationError:
                continue  # unscheduled messages already reported
            if report.margin < 0:
                out.append(
                    f"app {app.name}: stability margin {report.margin:.6g} < 0 "
                    f"(L={float(report.latency):.6g}, J={float(report.jitter):.6g}) "
                    "(Eq. 10)"
                )
    return out
