"""ASCII reporting of experiment results (series and tables).

The paper presents scatter/line plots (Figs. 3-7) and Table I; these
helpers print the same data as aligned text so the benchmark harness can
regenerate every figure's content on a terminal.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Simple aligned text table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_series(
    title: str,
    series: Mapping[str, Sequence[Tuple[float, float]]],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Print named (x, y) series like the paper's line plots."""
    lines = [title, "=" * len(title)]
    for name in series:
        lines.append(f"\n[{name}]  ({x_label} -> {y_label})")
        for x, y in series[name]:
            lines.append(f"  {x:>10.3f}  {y:>12.4f}")
    return "\n".join(lines)


def format_scatter(
    title: str,
    points_by_series: Mapping[str, Sequence[Tuple[float, float]]],
    x_label: str,
    y_label: str,
    bins: int = 10,
) -> str:
    """Summarize scatter data (like Fig. 4/6 point clouds) by x-bins."""
    lines = [title, "=" * len(title), f"({x_label} vs {y_label}, bin means)"]
    for name, pts in points_by_series.items():
        if not pts:
            lines.append(f"\n[{name}]  (no data)")
            continue
        xs = [p[0] for p in pts]
        lo, hi = min(xs), max(xs)
        width = (hi - lo) / bins if hi > lo else 1.0
        lines.append(f"\n[{name}]")
        for b in range(bins):
            x0, x1 = lo + b * width, lo + (b + 1) * width
            members = [
                y for x, y in pts if x0 <= x < x1 or (b == bins - 1 and x == x1)
            ]
            if members:
                lines.append(
                    f"  {x_label} in [{x0:7.1f},{x1:7.1f}):"
                    f"  n={len(members):3d}  mean {y_label}="
                    f"{sum(members) / len(members):10.4f}"
                )
    return "\n".join(lines)
