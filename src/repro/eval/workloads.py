"""Workload generation for the paper's experiments (Sec. VI).

* Random problems: a 35-node network (15 Erdős–Rényi switches, 10 sensors,
  10 controllers) with 10 control applications drawn from the plant
  database, periods from the paper's {20, 40, 50} ms set (hyper-period
  200 ms, so problems carry 40..100 messages — the x-axis of Figs. 4/6).
* The General Motors case study (Table I): the 8-switch Fig. 1 topology
  with 20 applications and exactly 106 messages per 200 ms hyper-period,
  using the published (period, alpha, beta) rows verbatim.

Stability specs for generated apps come from the *real* analysis pipeline
(LQG design -> jitter-margin curve -> piecewise bound), cached per
(plant, period) pair since the curve computation is the expensive step.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..control.plants import PLANT_FACTORIES, paper_controller
from ..core.problem import ControlApplication, SynthesisProblem
from ..network.graph import Network
from ..network.timing import DelayModel, microseconds
from ..network.topology import attach_endpoints, erdos_renyi_topology, gm_topology
from ..stability.curve import compute_stability_curve
from ..stability.jitter_margin import JitterMarginOptions
from ..stability.piecewise import StabilitySpec, fit_lower_bound

#: The paper's period set for the evaluation (ms -> Fraction seconds).
PAPER_PERIODS = (Fraction(20, 1000), Fraction(40, 1000), Fraction(50, 1000))

#: Plant assigned to each period in random workloads: the period must be a
#: sensible sampling rate for the plant's dynamics.
PERIOD_PLANTS: Dict[Fraction, str] = {
    Fraction(20, 1000): "inverted_pendulum",
    Fraction(40, 1000): "ball_and_beam",
    Fraction(50, 1000): "harmonic_oscillator",
}

#: Fast 100 Mbit/s links for the random experiments: ld = 120 us, so tens
#: of messages fit each 200 ms hyper-period with room for contention.
FAST_DELAYS = DelayModel(sd=microseconds(5), ld=Fraction(120, 1_000_000))

_SPEC_CACHE: Dict[Tuple[str, Fraction], StabilitySpec] = {}


def stability_spec_for(
    plant_name: str,
    period: Fraction,
    n_segments: int = 3,
    coarse: bool = True,
) -> StabilitySpec:
    """The (alpha, beta, L) bound for a plant sampled at ``period``.

    Runs the full analysis pipeline (LQG design, jitter-margin curve,
    verified piecewise fit) once per (plant, period) and caches the
    result.  ``coarse`` uses a lighter frequency grid — the specs feed
    synthesis *constraints*, where conservative values are fine.
    """
    key = (plant_name, period)
    spec = _SPEC_CACHE.get(key)
    if spec is None:
        plant = PLANT_FACTORIES[plant_name]()
        h = float(period)
        ctrl = paper_controller(plant, h)
        options = (
            JitterMarginOptions(n_grid=800, refine_rounds=2) if coarse else None
        )
        curve = compute_stability_curve(
            plant.system, h, ctrl, n_points=9, options=options
        )
        spec = fit_lower_bound(curve, n_segments)
        _SPEC_CACHE[key] = spec
    return spec


def experiment_network(seed: int, n_switches: int = 15,
                       n_sensors: int = 10, n_controllers: int = 10,
                       p: float = 0.3) -> Network:
    """The 35-node network of the paper's first two experiments."""
    rng = random.Random(seed)
    net = erdos_renyi_topology(n_switches, p, rng)
    return attach_endpoints(net, n_sensors, n_controllers, rng)


def random_apps(
    rng: random.Random,
    n_apps: int,
    sensors: Sequence[str],
    controllers: Sequence[str],
    periods: Sequence[Fraction] = PAPER_PERIODS,
) -> List[ControlApplication]:
    """Draw ``n_apps`` applications with plant-matched periods and specs."""
    apps = []
    for i in range(n_apps):
        period = rng.choice(list(periods))
        plant_name = PERIOD_PLANTS.get(period, "ball_and_beam")
        spec = stability_spec_for(plant_name, period)
        apps.append(
            ControlApplication(
                name=f"app{i}",
                sensor=sensors[i % len(sensors)],
                controller=controllers[i % len(controllers)],
                period=period,
                stability=spec,
            )
        )
    return apps


def random_problem(
    seed: int,
    n_apps: int = 10,
    n_switches: int = 15,
    delays: DelayModel = FAST_DELAYS,
    periods: Sequence[Fraction] = PAPER_PERIODS,
) -> SynthesisProblem:
    """One of the paper's random 35-node synthesis problems."""
    rng = random.Random(seed)
    net = experiment_network(seed, n_switches=n_switches,
                             n_sensors=max(n_apps, 1),
                             n_controllers=max(n_apps, 1))
    apps = random_apps(rng, n_apps, sorted(net.sensors), sorted(net.controllers),
                       periods)
    return SynthesisProblem(net, apps, delays)


def fixed_message_count_periods(n_apps: int, n_messages: int) -> List[Fraction]:
    """Period multiset over {20, 40, 50} ms yielding ``n_messages`` per
    200 ms hyper-period: solves 10a + 5b + 4c = n_messages, a+b+c = n_apps.
    """
    for a in range(n_apps + 1):
        for b in range(n_apps - a + 1):
            c = n_apps - a - b
            if 10 * a + 5 * b + 4 * c == n_messages:
                return (
                    [Fraction(20, 1000)] * a
                    + [Fraction(40, 1000)] * b
                    + [Fraction(50, 1000)] * c
                )
    raise ValueError(
        f"no {{20,40,50}} ms period mix gives {n_messages} messages "
        f"for {n_apps} apps"
    )


def problem_with_message_count(
    seed: int,
    n_messages: int,
    n_apps: int = 10,
    n_switches: int = 15,
    delays: DelayModel = FAST_DELAYS,
) -> SynthesisProblem:
    """A random problem with an exact message count (Fig. 7 uses 45)."""
    rng = random.Random(seed)
    periods = fixed_message_count_periods(n_apps, n_messages)
    rng.shuffle(periods)
    net = experiment_network(seed, n_switches=n_switches,
                             n_sensors=n_apps, n_controllers=n_apps)
    sensors, controllers = sorted(net.sensors), sorted(net.controllers)
    apps = []
    for i, period in enumerate(periods):
        plant_name = PERIOD_PLANTS[period]
        apps.append(
            ControlApplication(
                name=f"app{i}",
                sensor=sensors[i % len(sensors)],
                controller=controllers[i % len(controllers)],
                period=period,
                stability=stability_spec_for(plant_name, period),
            )
        )
    return SynthesisProblem(net, apps, delays)


# ---------------------------------------------------------------------------
# Bottleneck workloads (assumption probing / unsat cores)
# ---------------------------------------------------------------------------

#: Link/switch delays of the bottleneck instances: ld dominates, so link
#: capacity (not switch latency) is the binding resource.
BOTTLENECK_DELAYS = DelayModel(sd=microseconds(5), ld=Fraction(1, 1000))


def bottleneck_network(n_apps: int, islands: int = 0) -> Network:
    """``n_apps`` sensor/controller pairs funnelled through one link.

    All apps share switch ``A`` -> ``B``: the direct link A-B is the
    shortest route for everyone, with a single relief path through
    ``D``.  ``islands`` adds that many *independent* copies (prefix
    ``I<k>.``) whose apps never contend with the main funnel — their
    shortest routes are always feasible, which makes them the
    non-conflicting remainder a core-guided probe keeps.
    """
    net = Network()
    for sw in ("A", "D", "B"):
        net.add_switch(sw)
    net.add_link("A", "B")
    net.add_link("A", "D")
    net.add_link("D", "B")
    for i in range(n_apps):
        net.add_sensor(f"S{i}")
        net.add_controller(f"C{i}")
        net.add_link(f"S{i}", "A")
        net.add_link("B", f"C{i}")
    for k in range(islands):
        pre = f"I{k}."
        for sw in ("A", "D", "B"):
            net.add_switch(pre + sw)
        net.add_link(pre + "A", pre + "B")
        net.add_link(pre + "A", pre + "D")
        net.add_link(pre + "D", pre + "B")
        net.add_sensor(pre + "S")
        net.add_controller(pre + "C")
        net.add_link(pre + "S", pre + "A")
        net.add_link(pre + "B", pre + "C")
    return net


def bottleneck_problem(
    n_apps: int = 3,
    period: Fraction = Fraction(45, 10000),
    islands: int = 0,
    island_period: Optional[Fraction] = None,
) -> SynthesisProblem:
    """A contention-tight funnel where shortest-route probing must fail.

    With the default 4.5 ms period and 1 ms link delay the direct link
    holds only two of the three messages (window < 2 separations), while
    the relief path holds exactly one — so the instance is *satisfiable*
    but every all-shortest-routes selection is not: the greedy
    assumption probe fails and its minimized unsat core names the
    funnel's selectors.  Shrinking the period below the relief path's
    latency (e.g. 3.5 ms) makes the instance infeasible outright.
    """
    net = bottleneck_network(n_apps, islands=islands)
    apps = [
        ControlApplication(
            f"app{i}", f"S{i}", f"C{i}", period,
            StabilitySpec.single_line("1.5", str(float(period))),
        )
        for i in range(n_apps)
    ]
    for k in range(islands):
        pre = f"I{k}."
        p = island_period or period
        apps.append(
            ControlApplication(
                f"island{k}", pre + "S", pre + "C", p,
                StabilitySpec.single_line("1.5", str(float(p))),
            )
        )
    return SynthesisProblem(net, apps, BOTTLENECK_DELAYS)


def bottleneck_repair_problem() -> SynthesisProblem:
    """A staged-heuristic trap that core-driven repair recovers.

    Six 9 ms apps and one 4.5 ms app share the funnel.  With ``stages=2``
    the first stage freezes the 9 ms messages wherever it likes — and the
    tight-stability "crowd" plus the loose pair deterministically land on
    positions that leave no room for the 4.5 ms app's second message, so
    stage 1 is unsat even though the monolithic formulation is sat.  With
    ``repair=True`` the failing check's unsat core names exactly the
    blocking frozen messages; unfreezing them and re-solving stage 1
    jointly recovers the instance (see ``tests/core/test_repair.py``).
    """
    hyper = Fraction(9, 1000)
    e2e_min = Fraction(3010, 1000000)  # 2*(sd+ld) + ld on the direct route
    net = bottleneck_network(6)
    apps = [
        ControlApplication(
            "x", "S0", "C0", hyper / 2,
            StabilitySpec.single_line("1.5", str(float(hyper / 2))),
        )
    ]
    crowd_beta = e2e_min + Fraction(45, 10000)
    for j in range(3):
        apps.append(
            ControlApplication(
                f"c{j}", f"S{j + 1}", f"C{j + 1}", hyper,
                StabilitySpec.single_line("1.5", str(float(crowd_beta))),
            )
        )
    for j in range(2):
        i = 4 + j
        apps.append(
            ControlApplication(
                f"a{j}", f"S{i}", f"C{i}", hyper,
                StabilitySpec.single_line("1.5", str(float(hyper))),
            )
        )
    return SynthesisProblem(net, apps, BOTTLENECK_DELAYS)


def sharing_problem(n_apps: int = 4, islands: int = 2) -> SynthesisProblem:
    """The portfolio knowledge-sharing workload (deterministic).

    A satisfiable funnel instance on which a ``routes-1`` strategy
    *provably* prunes ``routes-2``'s search: the per-app delay bounds
    admit fewer direct A->B transmission slots than there are funnel
    messages, so restricting every app to its single shortest route is
    infeasible — ``routes-1`` returns a genuine unsat (single-stage, no
    heuristic freezes) whose route veto says "not every message fits
    within its first candidate".  ``routes-2`` sees the relief path
    through ``D`` and is sat; seeded with the veto (plus routes-1's
    learned clauses, padded with the second-route selectors), its solver
    refutes the doomed all-shortest subtree by unit propagation instead
    of search, so the race's summed conflict count drops while statuses
    and the certified schedule stay identical.  The ``islands`` add
    independent apps whose shortest routes are always feasible — they
    enlarge the veto clause and the shared search space without changing
    any status.  Island stability bounds are pinned to the minimal
    end-to-end delay, so their schedules are *unique*: the sat model is
    identical with sharing on and off (the regression test asserts it).
    """
    n_apps = max(n_apps, 3)
    period = Fraction(9, 1000)
    sd, ld = BOTTLENECK_DELAYS.sd, BOTTLENECK_DELAYS.ld
    hop = sd + ld
    direct_min = 2 * hop + ld   # tightest e2e on the 2-switch direct route
    relief_min = 3 * hop + ld   # tightest e2e via the relief switch D
    net = bottleneck_network(n_apps, islands=islands)
    # Per-app delay bounds pin a *unique* schedule: app0 must take the
    # direct link's first transmission slot (beta = direct_min), app1 the
    # second, app3.. the following ones (one link delay later each), and
    # app2 can afford neither a direct slot behind them nor a delayed
    # relief detour — only the relief path at its exact minimum.  So the
    # all-shortest-routes selection is infeasible (routes-1 proves unsat)
    # while routes-2 has exactly one model.
    betas = [direct_min, direct_min + ld, relief_min]
    betas += [direct_min + (i - 1) * ld for i in range(3, n_apps)]
    apps = [
        ControlApplication(
            f"app{i}", f"S{i}", f"C{i}", period,
            StabilitySpec.single_line("1", str(Fraction(betas[i]))),
        )
        for i in range(n_apps)
    ]
    for k in range(islands):
        pre = f"I{k}."
        apps.append(
            ControlApplication(
                f"island{k}", pre + "S", pre + "C", period,
                StabilitySpec.single_line("1", str(Fraction(direct_min))),
            )
        )
    return SynthesisProblem(net, apps, BOTTLENECK_DELAYS)


def sharing_unsat_problem(n_apps: int = 3, islands: int = 1) -> SynthesisProblem:
    """Infeasible companion of :func:`sharing_problem` (deterministic).

    The funnel period is shrunk below the relief path's latency, so the
    instance is unsat under *any* route selection.  In a shared-knowledge
    race ordered ``routes-2, routes-1, monolithic``, routes-2's genuine
    unsat proof exports its learned clauses and the route veto covering
    both candidates; seeded with them, routes-1 refutes by the veto's
    empty escape clause and the monolithic (complete) strategy proves
    unsat by propagation alone — supplying the race's sound ``unsat``
    verdict at a fraction of the unshared conflict count.
    """
    return bottleneck_problem(n_apps, period=Fraction(35, 10000),
                              islands=islands)


# ---------------------------------------------------------------------------
# Difference-chain workloads (transitive DL propagation)
# ---------------------------------------------------------------------------


def difference_chain_formulas(seed: int = 0, n_chains: int = 3,
                              chain_len: int = 7,
                              spans_per_chain: int = 4) -> list:
    """Deterministic chain-heavy QF_LRA formulas (solver-level).

    Each chain asserts ``x[i+1] - x[i] >= step`` as unit facts and then
    guards *span atoms* ``x[j] - x[i] >= step*(j-i)`` — entailed only
    through the chain, never through a single constraint — plus one
    provably refuted wrap-around atom per chain, inside clauses with
    fresh Booleans.  With transitive DL propagation the entailed spans
    are assigned at decision level 0 (and the refuted atom's negation
    unit-propagates its companion), so a propagating solver needs
    strictly fewer decisions and conflicts than ``dl_propagation=False``
    on the same formulas; both must agree on sat plus a certifying
    model.  This is the ``dl_propagation`` benchmark's microworkload.
    """
    from ..smt.terms import Bool, Or, Real

    rng = random.Random(10_000 + seed)
    clauses = []
    for c in range(n_chains):
        xs = [Real(f"dlchain{seed}c{c}_x{i}") for i in range(chain_len)]
        step = rng.randint(1, 3)
        for i in range(chain_len - 1):
            # Precedence-style steps: the resulting negative-weight DL
            # edges move the feasible potential, which is what schedules
            # a transitive propagation pass.
            clauses.append(xs[i + 1] - xs[i] >= step)
        for k in range(spans_per_chain):
            i = rng.randrange(chain_len - 2)
            j = rng.randrange(i + 2, chain_len)
            guard = Bool(f"dlchain{seed}c{c}_y{k}")
            clauses.append(Or(xs[j] - xs[i] >= step * (j - i), guard))
        forced = Bool(f"dlchain{seed}c{c}_z")
        clauses.append(Or(xs[0] - xs[-1] >= step, forced))
    return clauses


def chain_network(n_apps: int, n_switches: int) -> Network:
    """``n_apps`` sensor/controller pairs across one line of switches.

    Every message traverses the whole line, so its per-hop release
    times form one long difference chain and all messages contend on
    every link — the transposition/contention constraints then relate
    release times *across* chains, exactly the structure transitive DL
    propagation exploits.
    """
    net = Network()
    for k in range(n_switches):
        net.add_switch(f"A{k}")
        if k:
            net.add_link(f"A{k - 1}", f"A{k}")
    for i in range(n_apps):
        net.add_sensor(f"S{i}")
        net.add_controller(f"C{i}")
        net.add_link(f"S{i}", "A0")
        net.add_link(f"A{n_switches - 1}", f"C{i}")
    return net


def chain_problem(
    n_apps: int = 4,
    n_switches: int = 5,
    period: Fraction = Fraction(95, 10000),
) -> SynthesisProblem:
    """A deterministic line-topology instance (difference-chain-heavy).

    There is exactly one route per application (the line), so the whole
    search is about serializing ``n_apps`` messages on every shared
    link of a ``n_switches``-hop path under end-to-end bounds — long
    per-message precedence chains coupled by contention constraints.
    The default 9.5 ms period is tight but satisfiable (transitive DL
    propagation assigns part of the serialization instead of branching
    on it); shrinking to 9 ms makes the line infeasible, where
    propagation shortens the unsat proof.  The ``dl_propagation``
    benchmark solves both with propagation on and off.
    """
    net = chain_network(n_apps, n_switches)
    apps = [
        ControlApplication(
            f"app{i}", f"S{i}", f"C{i}", period,
            StabilitySpec.single_line("1.5", str(float(period))),
        )
        for i in range(n_apps)
    ]
    return SynthesisProblem(net, apps, BOTTLENECK_DELAYS)


# ---------------------------------------------------------------------------
# The General Motors case study (Table I)
# ---------------------------------------------------------------------------

#: The five published rows of Table I: (period ms, alpha, beta ms).
TABLE1_ROWS: Tuple[Tuple[int, str, str], ...] = (
    (20, "1.53", "27.78"),
    (40, "2.27", "15.70"),
    (50, "1.07", "80.71"),
    (40, "2.27", "15.70"),
    (50, "1.07", "80.71"),
)

#: Stability parameters per period for the remaining 15 GM applications
#: (the paper publishes one (alpha, beta) pair per period class).
_GM_BY_PERIOD = {20: ("1.53", "27.78"), 40: ("2.27", "15.70"),
                 50: ("1.07", "80.71")}

#: Period mix (a, b, c) = #apps at (20, 40, 50) ms: the unique-ish mix with
#: 3*10 + 8*5 + 9*4 = 106 messages whose first five entries can match the
#: published rows (see tests/network/test_frames.py).
GM_PERIOD_MIX = (3, 8, 9)


def gm_case_study(
    n_apps: int = 20,
    delays: Optional[DelayModel] = None,
) -> SynthesisProblem:
    """The Table I problem: 20 apps, Fig. 1 topology, 106 messages.

    ``n_apps < 20`` scales the case study down (keeping the Table I rows
    first) for quick runs; the message mix stays proportional.
    """
    delays = delays or DelayModel.table1()
    periods_ms: List[int] = [p for p, _, _ in TABLE1_ROWS]
    a, b, c = GM_PERIOD_MIX
    remaining = [20] * (a - 1) + [40] * (b - 2) + [50] * (c - 2)
    periods_ms.extend(remaining)
    periods_ms = periods_ms[:n_apps]
    net = gm_topology(len(periods_ms), len(periods_ms))
    apps = []
    for i, period_ms in enumerate(periods_ms):
        alpha, beta_ms = _GM_BY_PERIOD[period_ms]
        spec = StabilitySpec.single_line(alpha, str(Fraction(beta_ms) / 1000))
        apps.append(
            ControlApplication(
                name=f"gm{i}",
                sensor=f"S{i}",
                controller=f"C{i}",
                period=Fraction(period_ms, 1000),
                stability=spec,
            )
        )
    return SynthesisProblem(net, apps, delays)
