"""Evaluation harness (DESIGN.md S11-S12): workload generators and the
runners that regenerate every table and figure of the paper (Sec. VI)."""

from .experiments import (
    Fig3Result,
    Fig4Result,
    Fig5Result,
    Fig6Result,
    Fig7Result,
    Table1Result,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_table1,
)
from .reporting import format_scatter, format_series, format_table
from .workloads import (
    FAST_DELAYS,
    PAPER_PERIODS,
    TABLE1_ROWS,
    experiment_network,
    fixed_message_count_periods,
    gm_case_study,
    problem_with_message_count,
    random_apps,
    random_problem,
    stability_spec_for,
)

__all__ = [
    "FAST_DELAYS",
    "Fig3Result",
    "Fig4Result",
    "Fig5Result",
    "Fig6Result",
    "Fig7Result",
    "PAPER_PERIODS",
    "TABLE1_ROWS",
    "Table1Result",
    "experiment_network",
    "fixed_message_count_periods",
    "format_scatter",
    "format_series",
    "format_table",
    "gm_case_study",
    "problem_with_message_count",
    "random_apps",
    "random_problem",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_table1",
    "stability_spec_for",
]
