"""Command-line experiment runner: ``python -m repro.eval <experiment>``.

Regenerates any of the paper's tables/figures from the terminal::

    python -m repro.eval fig3
    python -m repro.eval fig4 --problems 5 --apps 6
    python -m repro.eval table1 --apps 20
    python -m repro.eval all
"""

from __future__ import annotations

import argparse
import sys

from . import experiments


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Regenerate the paper's evaluation figures/tables.",
    )
    parser.add_argument(
        "experiment",
        choices=("fig3", "fig4", "fig5", "fig6", "fig7", "table1",
                 "portfolio", "all"),
        help="which artifact to regenerate",
    )
    parser.add_argument("--problems", type=int, default=5,
                        help="number of random problems (figs 4-6)")
    parser.add_argument("--apps", type=int, default=6,
                        help="control applications per problem")
    parser.add_argument("--routes", type=int, default=4,
                        help="candidate routes per application")
    args = parser.parse_args(argv)

    runners = {
        "fig3": lambda: experiments.run_fig3(),
        "fig4": lambda: experiments.run_fig4(
            n_problems=args.problems, n_apps=args.apps, routes=args.routes),
        "fig5": lambda: experiments.run_fig5(
            n_problems=args.problems, n_apps=args.apps, routes=args.routes),
        "fig6": lambda: experiments.run_fig6(
            n_problems=args.problems, n_apps=args.apps),
        "fig7": lambda: experiments.run_fig7(
            switch_counts=(6, 10, 14, 18), n_messages=24, n_apps=5),
        "table1": lambda: experiments.run_table1(n_apps=args.apps),
        "portfolio": lambda: experiments.run_portfolio(
            n_problems=args.problems, n_apps=args.apps),
    }
    names = list(runners) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(f"\n===== {name} =====")
        result = runners[name]()
        print(result.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
