"""Command-line experiment runner: ``python -m repro.eval <experiment>``.

Regenerates any of the paper's tables/figures from the terminal::

    python -m repro.eval fig3
    python -m repro.eval fig4 --problems 5 --apps 6 --jobs 4
    python -m repro.eval table1 --apps 20
    python -m repro.eval all

The sweep experiments (fig4/fig5/fig6) accept ``--jobs N`` to fan their
(seed, configuration) grid out over a process pool; results are identical
to the serial run.  ``bench`` runs the regression-tracked benchmark suite
(:mod:`repro.eval.bench`), writing ``BENCH_<name>.json`` files and
optionally failing on regression against a committed baseline::

    python -m repro.eval bench --bench-names table1 fig3 \
        --baseline-dir benchmarks/baselines --fail-threshold 0.25
"""

from __future__ import annotations

import argparse
import sys

from . import experiments


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Regenerate the paper's evaluation figures/tables.",
    )
    parser.add_argument(
        "experiment",
        choices=("fig3", "fig4", "fig5", "fig6", "fig7", "table1",
                 "portfolio", "bench", "all"),
        help="which artifact to regenerate (or 'bench' for the "
             "regression-tracked benchmark suite)",
    )
    parser.add_argument("--problems", type=int, default=5,
                        help="number of random problems (figs 4-6)")
    parser.add_argument("--apps", type=int, default=6,
                        help="control applications per problem")
    parser.add_argument("--routes", type=int, default=4,
                        help="candidate routes per application")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the fig4-6 sweeps "
                             "(default: serial)")
    parser.add_argument("--bench-names", nargs="+", default=None,
                        metavar="NAME",
                        help="benchmarks to run with 'bench' (default: "
                             "table1 fig3 fig4 backends unsat_core "
                             "portfolio dl_propagation faults service)")
    parser.add_argument("--out", default=".",
                        help="directory for BENCH_<name>.json files")
    parser.add_argument("--baseline-dir", default=None,
                        help="directory with committed BENCH baselines to "
                             "compare against")
    parser.add_argument("--fail-threshold", type=float, default=0.25,
                        help="regression tolerance vs baseline "
                             "(default 0.25 = +25%%)")
    parser.add_argument("--no-wall-gate", action="store_true",
                        help="skip the wall-time gate (statuses and "
                             "deterministic solver-work counters only); "
                             "use when the baseline was recorded on "
                             "different hardware")
    args = parser.parse_args(argv)

    if args.experiment == "bench":
        from .bench import run_suite

        names = args.bench_names or ["table1", "fig3", "fig4",
                                     "backends", "unsat_core", "portfolio",
                                     "dl_propagation", "faults", "service"]
        regressions = run_suite(
            names,
            out_dir=args.out,
            baseline_dir=args.baseline_dir,
            threshold=args.fail_threshold,
            wall_gate=not args.no_wall_gate,
        )
        return 1 if regressions else 0

    runners = {
        "fig3": lambda: experiments.run_fig3(),
        "fig4": lambda: experiments.run_fig4(
            n_problems=args.problems, n_apps=args.apps, routes=args.routes,
            jobs=args.jobs),
        "fig5": lambda: experiments.run_fig5(
            n_problems=args.problems, n_apps=args.apps, routes=args.routes,
            jobs=args.jobs),
        "fig6": lambda: experiments.run_fig6(
            n_problems=args.problems, n_apps=args.apps, jobs=args.jobs),
        "fig7": lambda: experiments.run_fig7(
            switch_counts=(6, 10, 14, 18), n_messages=24, n_apps=5),
        "table1": lambda: experiments.run_table1(n_apps=args.apps),
        "portfolio": lambda: experiments.run_portfolio(
            n_problems=args.problems, n_apps=args.apps),
    }
    names = list(runners) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(f"\n===== {name} =====")
        result = runners[name]()
        print(result.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
