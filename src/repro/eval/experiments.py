"""Experiment runners: one per table/figure of the paper's evaluation.

Each ``run_figN``/``run_table1`` function regenerates the corresponding
plot's data (see DESIGN.md §2 for the experiment index).  All runners are
parameterized by a scale so the laptop-default benchmarks stay fast while
``--full``-style invocations approach the paper's sizes; the *shape*
claims hold at either scale (EXPERIMENTS.md records both the paper's
numbers and ours).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..control.plants import paper_controller, plant_database
from ..core.synthesizer import (
    MODE_DEADLINE,
    MODE_STABILITY,
    SynthesisOptions,
    SynthesisResult,
    solve,
)
from ..core.validator import collect_violations
from ..portfolio import PortfolioResult, Strategy, default_portfolio, synthesize_portfolio
from ..stability.curve import StabilityCurve, compute_stability_curve
from ..stability.piecewise import StabilitySpec, fit_lower_bound
from . import workloads
from .reporting import format_scatter, format_series, format_table


# ---------------------------------------------------------------------------
# Process-pool fan-out for the sweep experiments
# ---------------------------------------------------------------------------


def _map_tasks(fn: Callable, tasks: Sequence, jobs: Optional[int]) -> List:
    """Map ``fn`` over ``tasks``, fanning out to ``jobs`` worker processes.

    The figure sweeps are embarrassingly parallel across (seed, config)
    pairs: every task rebuilds its problem from the seed, so workers share
    nothing and the result list is identical to the serial run (same tasks,
    same order; only wall times differ).  ``jobs=None``/``1`` runs serially
    in-process; a pool that cannot be launched (restricted sandbox)
    degrades to serial automatically.
    """
    if jobs is not None and jobs > 1:
        try:
            ctx = multiprocessing.get_context()
            with ctx.Pool(processes=jobs) as pool:
                return pool.map(fn, tasks)
        except OSError:
            pass
    return [fn(t) for t in tasks]


def _sweep_task(args: Tuple) -> Tuple:
    """One (seed, stages, routes) synthesis cell of a fig4/5/6 sweep."""
    seed, n_apps, stages, routes = args
    problem = workloads.random_problem(seed, n_apps=n_apps)
    res = solve(problem, SynthesisOptions(routes=routes, stages=stages))
    return (seed, stages, routes, problem.num_messages,
            res.synthesis_time, res.status)


# ---------------------------------------------------------------------------
# Fig. 3 — stability curve + piecewise linear lower bound
# ---------------------------------------------------------------------------


@dataclass
class Fig3Result:
    curve: StabilityCurve
    bound: StabilitySpec

    def render(self) -> str:
        rows = []
        for lat, margin in self.curve.as_table():
            bound_val = None
            flat = Fraction(lat).limit_denominator(10**12)
            for seg in self.bound.segments:
                if seg.l_lo <= flat <= seg.l_hi:
                    bound_val = float(seg.jitter_bound(flat))
            rows.append(
                (
                    lat * 1000,
                    margin * 1000,
                    bound_val * 1000 if bound_val is not None else float("nan"),
                )
            )
        return format_table(
            ["L (ms)", "Jmax curve (ms)", "piecewise bound (ms)"], rows
        )


def run_fig3(n_points: int = 13, n_segments: int = 3) -> Fig3Result:
    """The paper's Fig. 3: DC servo 1000/(s^2+s), LQG, h = 6 ms."""
    spec = [p for p in plant_database() if p.name == "dc_servo"][0]
    ctrl = paper_controller(spec)
    curve = compute_stability_curve(
        spec.system, spec.nominal_period, ctrl, n_points=n_points
    )
    bound = fit_lower_bound(curve, n_segments)
    return Fig3Result(curve, bound)


# ---------------------------------------------------------------------------
# Fig. 4 — incremental-synthesis scalability (time vs #messages x stages)
# ---------------------------------------------------------------------------


@dataclass
class ScalingPoint:
    seed: int
    n_messages: int
    time_s: float
    status: str


@dataclass
class Fig4Result:
    points: Dict[int, List[ScalingPoint]]  # stages -> points
    routes: int

    def render(self) -> str:
        series = {
            f"stages={s}": [(p.n_messages, p.time_s) for p in pts if p.status == "sat"]
            for s, pts in self.points.items()
        }
        return format_scatter(
            f"Fig. 4 — synthesis time vs messages (routes={self.routes})",
            series, "messages", "time (s)",
        )


def run_fig4(
    n_problems: int = 10,
    stages_list: Sequence[int] = (3, 4, 5, 7, 9, 11),
    routes: int = 4,
    n_apps: int = 10,
    seed0: int = 0,
    jobs: Optional[int] = None,
) -> Fig4Result:
    """Paper setup: 60 random 35-node problems x stages in {3..11}.

    ``jobs`` fans the (problem, stages) grid out over a process pool; the
    resulting points are identical to the serial run.
    """
    tasks = [
        (seed0 + i, n_apps, stages, routes)
        for i in range(n_problems)
        for stages in stages_list
    ]
    points: Dict[int, List[ScalingPoint]] = {s: [] for s in stages_list}
    for seed, stages, _routes, n_msgs, time_s, status in _map_tasks(
        _sweep_task, tasks, jobs
    ):
        points[stages].append(ScalingPoint(seed, n_msgs, time_s, status))
    return Fig4Result(points, routes)


# ---------------------------------------------------------------------------
# Fig. 5 — % unsolved vs number of stages
# ---------------------------------------------------------------------------


@dataclass
class Fig5Result:
    unsolved_pct: List[Tuple[int, float]]  # (stages, % unsolved)

    def render(self) -> str:
        return format_series(
            "Fig. 5 — unsatisfied problems vs incremental stages",
            {"unsolved %": [(float(s), pct) for s, pct in self.unsolved_pct]},
            "stages", "% unsolved",
        )


def run_fig5(
    n_problems: int = 10,
    stages_list: Sequence[int] = (2, 4, 6, 8, 10, 12, 14),
    routes: int = 4,
    n_apps: int = 10,
    seed0: int = 0,
    jobs: Optional[int] = None,
) -> Fig5Result:
    tasks = [
        (seed0 + i, n_apps, stages, routes)
        for stages in stages_list
        for i in range(n_problems)
    ]
    failures: Dict[int, int] = {s: 0 for s in stages_list}
    for _seed, stages, _routes, _n_msgs, _time_s, status in _map_tasks(
        _sweep_task, tasks, jobs
    ):
        if status != "sat":
            failures[stages] += 1
    out = [
        (stages, 100.0 * failures[stages] / max(1, n_problems))
        for stages in stages_list
    ]
    return Fig5Result(out)


# ---------------------------------------------------------------------------
# Fig. 6 — route-subset scalability (time vs #messages x routes)
# ---------------------------------------------------------------------------


@dataclass
class Fig6Result:
    points: Dict[int, List[ScalingPoint]]  # routes -> points
    stages: int
    unsolved_pct: Dict[int, float]

    def render(self) -> str:
        series = {
            f"routes={r}": [(p.n_messages, p.time_s) for p in pts if p.status == "sat"]
            for r, pts in self.points.items()
        }
        body = format_scatter(
            f"Fig. 6 — synthesis time vs messages (stages={self.stages})",
            series, "messages", "time (s)",
        )
        rows = [(r, pct) for r, pct in sorted(self.unsolved_pct.items())]
        return body + "\n\n" + format_table(["routes", "% unsolved"], rows)


def run_fig6(
    n_problems: int = 10,
    routes_list: Sequence[int] = (1, 3, 5, 7, 20),
    stages: int = 5,
    n_apps: int = 10,
    seed0: int = 0,
    jobs: Optional[int] = None,
) -> Fig6Result:
    tasks = [
        (seed0 + i, n_apps, stages, routes)
        for i in range(n_problems)
        for routes in routes_list
    ]
    points: Dict[int, List[ScalingPoint]] = {r: [] for r in routes_list}
    unsolved: Dict[int, int] = {r: 0 for r in routes_list}
    for _seed, _stages, routes, n_msgs, time_s, status in _map_tasks(
        _sweep_task, tasks, jobs
    ):
        points[routes].append(ScalingPoint(0, n_msgs, time_s, status))
        if status != "sat":
            unsolved[routes] += 1
    pct = {r: 100.0 * n / max(1, n_problems) for r, n in unsolved.items()}
    return Fig6Result(points, stages, pct)


# ---------------------------------------------------------------------------
# Fig. 7 — scalability with network size
# ---------------------------------------------------------------------------


@dataclass
class Fig7Result:
    times: List[Tuple[int, float, str]]  # (n_switches, time, status)

    def render(self) -> str:
        return format_series(
            "Fig. 7 — synthesis time vs Ethernet switches (45 messages)",
            {"time (s)": [(float(n), t) for n, t, s in self.times if s == "sat"]},
            "switches", "time (s)",
        )


def run_fig7(
    switch_counts: Sequence[int] = (10, 15, 20, 25, 30, 35, 40, 45),
    n_messages: int = 45,
    n_apps: int = 10,
    routes: int = 3,
    stages: int = 5,
    seed0: int = 0,
) -> Fig7Result:
    times = []
    for n_switches in switch_counts:
        problem = workloads.problem_with_message_count(
            seed0 + n_switches, n_messages, n_apps=n_apps, n_switches=n_switches
        )
        res = solve(problem, SynthesisOptions(routes=routes, stages=stages))
        times.append((n_switches, res.synthesis_time, res.status))
    return Fig7Result(times)


# ---------------------------------------------------------------------------
# Portfolio — race the heuristics instead of fixing one configuration
# ---------------------------------------------------------------------------


@dataclass
class PortfolioPoint:
    seed: int
    n_messages: int
    winner: Optional[str]
    time_s: float
    statuses: Dict[str, str]           # strategy name -> terminal status
    strategy_times: Dict[str, float]   # strategy name -> wall seconds


@dataclass
class PortfolioExperimentResult:
    """Win/time attribution of the strategy race over random problems."""

    points: List[PortfolioPoint]
    win_counts: Dict[str, int]
    solved: int

    def render(self) -> str:
        rows = [
            (p.seed, p.n_messages, p.winner or "-", p.time_s)
            for p in self.points
        ]
        body = format_table(["seed", "messages", "winner", "time (s)"], rows)
        wins = format_table(
            ["strategy", "wins"],
            sorted(self.win_counts.items(), key=lambda kv: -kv[1]),
        )
        head = (
            f"Portfolio race — {self.solved}/{len(self.points)} solved, "
            "first-sat strategy per problem"
        )
        return "\n".join([head, body, "", wins])


def run_portfolio(
    n_problems: int = 5,
    n_apps: int = 6,
    strategies: Optional[Sequence[Strategy]] = None,
    max_workers: Optional[int] = None,
    timeout: Optional[float] = None,
    backend: str = "process",
    seed0: int = 0,
) -> PortfolioExperimentResult:
    """Race the default (or given) portfolio over the Fig. 4/6 workload."""
    entries = list(strategies) if strategies is not None else default_portfolio()
    points: List[PortfolioPoint] = []
    win_counts: Dict[str, int] = {s.name: 0 for s in entries}
    solved = 0
    for i in range(n_problems):
        problem = workloads.random_problem(seed0 + i, n_apps=n_apps)
        res: PortfolioResult = synthesize_portfolio(
            problem, entries, max_workers=max_workers,
            timeout=timeout, backend=backend,
        )
        if res.ok:
            assert collect_violations(res.solution) == []
            solved += 1
            win_counts[res.winner] += 1
        points.append(
            PortfolioPoint(
                seed=seed0 + i,
                n_messages=problem.num_messages,
                winner=res.winner,
                time_s=res.total_time,
                statuses={sr.name: sr.status for sr in res.strategy_results},
                strategy_times={
                    sr.name: sr.wall_time for sr in res.strategy_results
                },
            )
        )
    return PortfolioExperimentResult(points, win_counts, solved)


# ---------------------------------------------------------------------------
# Table I — the GM automotive case study
# ---------------------------------------------------------------------------


@dataclass
class Table1Row:
    app: str
    period_ms: float
    alpha: float
    beta_ms: float
    max_e2e_ms: float
    latency_ms: float
    jitter_ms: float
    stable: bool


@dataclass
class Table1Result:
    stability_rows: List[Table1Row]
    deadline_rows: List[Table1Row]
    stability_time: float
    deadline_time: float
    stability_stable_count: int
    deadline_stable_count: int
    n_apps: int
    n_messages: int
    stability_status: str
    deadline_status: str

    def render(self) -> str:
        def table(rows: List[Table1Row]) -> str:
            return format_table(
                ["app", "period(ms)", "alpha", "beta(ms)", "max e2e(ms)",
                 "latency(ms)", "jitter(ms)", "stable"],
                [
                    (r.app, r.period_ms, r.alpha, r.beta_ms, r.max_e2e_ms,
                     r.latency_ms, r.jitter_ms, r.stable)
                    for r in rows
                ],
            )

        parts = [
            f"Table I — GM case study ({self.n_apps} apps, "
            f"{self.n_messages} messages)",
            "",
            f"[Stability-Aware]  status={self.stability_status}  "
            f"time={self.stability_time:.1f}s  "
            f"stable: {self.stability_stable_count}/{self.n_apps}",
            table(self.stability_rows),
            "",
            f"[Deadline]  status={self.deadline_status}  "
            f"time={self.deadline_time:.1f}s  "
            f"stable: {self.deadline_stable_count}/{self.n_apps}",
            table(self.deadline_rows),
        ]
        return "\n".join(parts)


def run_table1(
    n_apps: int = 20,
    routes: int = 3,
    stages: int = 5,
    show_rows: int = 5,
) -> Table1Result:
    """Both columns of Table I: stability-aware vs deadline synthesis."""
    problem = workloads.gm_case_study(n_apps=n_apps)

    def rows_of(result: SynthesisResult) -> Tuple[List[Table1Row], int]:
        if not result.ok:
            return [], 0
        rows = []
        stable_count = 0
        for app in problem.apps:
            report = result.solution.app_report(app.name)
            seg = app.stability.segments[0]
            if report.stable:
                stable_count += 1
            rows.append(
                Table1Row(
                    app=app.name,
                    period_ms=float(app.period * 1000),
                    alpha=float(seg.alpha),
                    beta_ms=float(seg.beta * 1000),
                    max_e2e_ms=float(report.max_e2e * 1000),
                    latency_ms=float(report.latency * 1000),
                    jitter_ms=float(report.jitter * 1000),
                    stable=bool(report.stable),
                )
            )
        return rows, stable_count

    res_stab = solve(
        problem, SynthesisOptions(mode=MODE_STABILITY, routes=routes, stages=stages)
    )
    if res_stab.ok:
        assert collect_violations(res_stab.solution) == []
    res_dead = solve(
        problem, SynthesisOptions(mode=MODE_DEADLINE, routes=routes, stages=stages)
    )
    if res_dead.ok:
        assert collect_violations(res_dead.solution, check_stability=False) == []

    stab_rows, stab_count = rows_of(res_stab)
    dead_rows, dead_count = rows_of(res_dead)
    return Table1Result(
        stability_rows=stab_rows[:show_rows],
        deadline_rows=dead_rows[:show_rows],
        stability_time=res_stab.synthesis_time,
        deadline_time=res_dead.synthesis_time,
        stability_stable_count=stab_count,
        deadline_stable_count=dead_count,
        n_apps=len(problem.apps),
        n_messages=problem.num_messages,
        stability_status=res_stab.status,
        deadline_status=res_dead.status,
    )
