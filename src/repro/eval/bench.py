"""Regression-tracked benchmark harness: ``BENCH_<name>.json`` emission.

Every perf-sensitive experiment can be run through :func:`run_bench`, which
measures wall time, collects the solver's search/theory statistics (per
check and aggregated), records the sat/unsat statuses and whether the
produced models certify, and writes the whole trajectory to
``BENCH_<name>.json``.  Perf PRs are quantified by comparing such a file
against a committed baseline (:func:`compare`): a wall-time increase past
the threshold, or *any* status mismatch, is a regression.

CLI (see ``python -m repro.eval bench --help``)::

    python -m repro.eval bench --bench table1 fig3 --out .
    python -m repro.eval bench --baseline-dir benchmarks/baselines \
        --fail-threshold 0.25

The committed baselines live in ``benchmarks/baselines/``; CI reruns the
quick suite, uploads the fresh ``BENCH_*.json`` as an artifact and fails
on >25% wall-time regression (see ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import hashlib
import json
import platform
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from . import experiments

#: Quick (CI-sized) scales: small enough for a laptop/CI smoke run while
#: still exercising the theory hot path (table1 is simplex/DL dominated).
QUICK_SCALES: Dict[str, dict] = {
    "table1": {"n_apps": 4, "routes": 3, "stages": 5},
    "fig3": {"n_points": 13, "n_segments": 3},
    "fig4": {"n_problems": 2, "stages_list": (3, 5), "routes": 3, "n_apps": 5},
    "backends": {"n_apps": 3, "routes": 2, "stages": 3},
    "unsat_core": {"routes": 2},
    "portfolio": {"n_apps": 4, "islands": 2, "midcheck_apps": 4},
    "dl_propagation": {"n_systems": 3, "n_apps": 4, "n_switches": 5},
    "faults": {"n_apps": 4, "gm_apps": 4, "timeout": 60.0},
    "service": {"workers": 2, "deadline": 120.0},
}


def _digest(text: str) -> str:
    """Stable fingerprint of a rendered result (identical-output evidence)."""
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def _bench_table1(scale: dict) -> dict:
    result = experiments.run_table1(**scale)
    return {
        "statuses": {
            "stability": result.stability_status,
            "deadline": result.deadline_status,
        },
        "stable_counts": {
            "stability": result.stability_stable_count,
            "deadline": result.deadline_stable_count,
        },
        "solve_times": {
            "stability": result.stability_time,
            "deadline": result.deadline_time,
        },
        # run_table1 asserts collect_violations() == [] on every sat
        # result, so reaching this point certifies the models.
        "certified": result.stability_status == "sat",
        "render_digest": _digest(result.render()),
    }


def _bench_fig3(scale: dict) -> dict:
    result = experiments.run_fig3(**scale)
    return {
        "statuses": {"fig3": "ok"},
        "n_points": len(result.curve.as_table()),
        "render_digest": _digest(result.render()),
    }


def _bench_fig4(scale: dict) -> dict:
    result = experiments.run_fig4(**scale)
    statuses = {
        f"stages={s}/seed={p.seed}": p.status
        for s, pts in sorted(result.points.items())
        for p in pts
    }
    return {"statuses": statuses, "render_digest": _digest(result.render())}


def _bench_backends(scale: dict) -> dict:
    """Native vs serialization backend agreement on the automotive case.

    Runs the same quick-scale synthesis through both registered session
    backends; any status disagreement is a hard regression (the
    acceptance gate of the pluggable-backend seam).
    """
    from ..core.synthesizer import SynthesisOptions, solve
    from . import workloads

    n_apps = scale.get("n_apps", 3)
    routes = scale.get("routes", 2)
    stages = scale.get("stages", 3)
    problem = workloads.gm_case_study(n_apps=n_apps)
    statuses: Dict[str, str] = {}
    times: Dict[str, float] = {}
    for backend in ("native", "serialization"):
        result = solve(problem, SynthesisOptions(
            routes=routes, stages=stages, backend=backend))
        statuses[backend] = result.status
        times[backend] = round(result.synthesis_time, 4)
    statuses["agreement"] = (
        "ok" if statuses["native"] == statuses["serialization"] else "MISMATCH"
    )
    return {
        "statuses": statuses,
        "solve_times": times,
        "render_digest": _digest(repr(sorted(statuses.items()))),
    }


def _bench_unsat_core(scale: dict) -> dict:
    """Assumption probing and unsat-core extraction on funnel workloads.

    Three deterministic instances: a satisfiable funnel whose shortest-
    route probe must fail (core-guided relaxation), an infeasible funnel
    (unsat outright), and the staged-heuristic trap that core-driven
    repair recovers.  Statuses and the probe/core counters are the
    regression surface.
    """
    from fractions import Fraction

    from ..core.synthesizer import SynthesisOptions, solve
    from . import workloads

    routes = scale.get("routes", 2)
    statuses: Dict[str, str] = {}
    counters: Dict[str, int] = {
        "assumption_probes": 0, "cores_extracted": 0, "stage_repairs": 0,
    }

    def absorb(result) -> None:
        for key in counters:
            counters[key] += result.statistics.get(key, 0)

    probe = solve(workloads.bottleneck_problem(3, islands=1),
                  SynthesisOptions(routes=routes))
    statuses["probe_conflict"] = probe.status
    absorb(probe)
    infeasible = solve(
        workloads.bottleneck_problem(3, period=Fraction(35, 10000)),
        SynthesisOptions(routes=routes))
    statuses["infeasible"] = infeasible.status
    absorb(infeasible)
    trapped = solve(workloads.bottleneck_repair_problem(),
                    SynthesisOptions(routes=routes, stages=2))
    statuses["staged_trap"] = trapped.status
    absorb(trapped)
    repaired = solve(workloads.bottleneck_repair_problem(),
                     SynthesisOptions(routes=routes, stages=2, repair=True))
    statuses["staged_repaired"] = repaired.status
    absorb(repaired)
    statuses["cores_seen"] = "yes" if counters["cores_extracted"] > 0 else "NO"
    return {
        "statuses": statuses,
        "core_counters": counters,
        "render_digest": _digest(repr(sorted(statuses.items()))),
    }


def _bench_portfolio(scale: dict) -> dict:
    """Portfolio races with knowledge sharing on vs off (deterministic).

    Serial-backend races on the two sharing workloads — the sat funnel
    (routes-1's veto prunes routes-2) and its infeasible companion
    (routes-2's clauses + veto make the monolithic unsat proof nearly
    free).  The regression surface: every per-strategy and race status,
    the requirement that sharing strictly reduces summed search work
    (conflicts + decisions) at identical outcomes, and the sharing
    counters themselves.  Worker
    engines tag the per-check statistics stream as ``native[<strategy>]``,
    so the record's ``by_backend`` roll-up attributes time and conflicts
    per *strategy* (closing the per-strategy attribution item).

    A third race exercises the *mid-check* export path: a monolithic
    worker on the hard mesh case study, budgeted to ``max_conflicts=150``,
    aborts ``unknown`` inside its first long check — but its ``on_restart``
    hook has already streamed learned clauses (tagged ``origin:
    mid-check``) into the pool at each restart and at the abort itself.
    ``routes-1`` then races to ``sat`` seeded with them.  The regression
    surface adds: the monolithic worker's ``unknown`` (never a race
    verdict), a nonzero ``midcheck_clauses_pooled`` pool counter, and at
    least one clause actually *imported* by the seeded winner.
    """
    from ..core.synthesizer import SynthesisOptions
    from ..portfolio import Strategy, synthesize_portfolio
    from . import workloads

    n_apps = scale.get("n_apps", 4)
    islands = scale.get("islands", 2)
    sat_problem = workloads.sharing_problem(n_apps=n_apps, islands=islands)
    unsat_problem = workloads.sharing_unsat_problem()
    # dl_propagation off: it prunes the funnel's doomed subtrees on its
    # own (see the dl_propagation bench), which would leave the sharing
    # channel nothing measurable to reduce here.
    sat_strategies = [
        Strategy("routes-1", SynthesisOptions(routes=1, dl_propagation=False)),
        Strategy("routes-2", SynthesisOptions(routes=2, dl_propagation=False)),
    ]
    unsat_strategies = [
        Strategy("routes-2", SynthesisOptions(routes=2, dl_propagation=False)),
        Strategy("routes-1", SynthesisOptions(routes=1, dl_propagation=False)),
        Strategy("monolithic",
                 SynthesisOptions(routes=None, dl_propagation=False)),
    ]

    statuses: Dict[str, str] = {}
    sharing: Dict[str, int] = {}
    times: Dict[str, float] = {}
    for label, problem, strategies in (
        ("sat", sat_problem, sat_strategies),
        ("unsat", unsat_problem, unsat_strategies),
    ):
        conflicts = {}
        work = {}
        for share in (False, True):
            res = synthesize_portfolio(problem, strategies, backend="serial",
                                       share_knowledge=share)
            mode = "share" if share else "solo"
            statuses[f"{label}/{mode}/race"] = res.status
            for sr in res.strategy_results:
                statuses[f"{label}/{mode}/{sr.name}"] = sr.status
            conflicts[share] = sum(
                sr.statistics.get("conflicts", 0)
                for sr in res.strategy_results
            )
            work[share] = conflicts[share] + sum(
                sr.statistics.get("decisions", 0)
                for sr in res.strategy_results
            )
            times[f"{label}/{mode}"] = round(res.total_time, 4)
            if share:
                sharing[f"{label}_clauses_imported"] = sum(
                    sr.statistics.get("clauses_imported", 0)
                    for sr in res.strategy_results
                )
                sharing[f"{label}_vetoes_applied"] = sum(
                    sr.statistics.get("route_vetoes_applied", 0)
                    for sr in res.strategy_results
                )
                for key, value in res.pool_statistics.items():
                    sharing[f"{label}_{key}"] = value
        sharing[f"{label}_conflicts_solo"] = conflicts[False]
        sharing[f"{label}_conflicts_shared"] = conflicts[True]
        sharing[f"{label}_work_solo"] = work[False]
        sharing[f"{label}_work_shared"] = work[True]
        # Sharing must strictly reduce summed search work (conflicts +
        # decisions) at identical statuses; conflicts alone can sit at
        # the floor on these small funnels now that the theory layer
        # refutes most of the doomed subtrees by propagation.
        statuses[f"{label}/sharing_reduces_work"] = (
            "yes" if work[True] < work[False]
            and conflicts[True] <= conflicts[False] else "NO"
        )

    # Mid-check export race: the monolithic worker is budget-killed
    # inside one check; its restart-boundary exports must still reach
    # (and measurably seed) the routes-1 winner.
    midcheck_problem = workloads.gm_case_study(
        n_apps=scale.get("midcheck_apps", 4))
    midcheck_strategies = [
        Strategy("monolithic", SynthesisOptions(
            routes=None, dl_propagation=False, max_conflicts=150)),
        Strategy("routes-1", SynthesisOptions(routes=1, dl_propagation=False)),
    ]
    res = synthesize_portfolio(midcheck_problem, midcheck_strategies,
                               backend="serial", share_knowledge=True)
    statuses["midcheck/race"] = res.status
    for sr in res.strategy_results:
        statuses[f"midcheck/{sr.name}"] = sr.status
    times["midcheck"] = round(res.total_time, 4)
    imported = sum(sr.statistics.get("clauses_imported", 0)
                   for sr in res.strategy_results)
    sharing["midcheck_clauses_imported"] = imported
    for key, value in res.pool_statistics.items():
        sharing[f"midcheck_{key}"] = value
    statuses["midcheck/import_seen"] = (
        "yes" if imported > 0
        and res.pool_statistics.get("midcheck_clauses_pooled", 0) > 0
        else "NO"
    )
    return {
        "statuses": statuses,
        "sharing": sharing,
        "solve_times": times,
        "render_digest": _digest(repr(sorted(statuses.items()))),
    }


def _bench_dl_propagation(scale: dict) -> dict:
    """Transitive difference-logic propagation on vs off (deterministic).

    Two difference-chain-heavy workload families, each solved with
    ``dl_propagation`` on and off:

    * the seeded :func:`~repro.eval.workloads.difference_chain_formulas`
      microworkloads, checked through one session per configuration
      (models re-certified against every clause);
    * the line-topology :func:`~repro.eval.workloads.chain_problem` at
      its satisfiable (9.5 ms) and infeasible (9 ms) periods, run
      through the full synthesis driver.

    The regression surface: identical statuses per instance, a strict
    reduction of summed decisions with propagation on, and nonzero
    ``dl_propagations`` counters (asserted again by CI on the uploaded
    trajectory).
    """
    from fractions import Fraction

    from ..api import Session
    from ..core import collect_violations
    from ..core.synthesizer import SynthesisOptions, solve
    from . import workloads

    n_systems = scale.get("n_systems", 3)
    n_apps = scale.get("n_apps", 4)
    n_switches = scale.get("n_switches", 5)
    statuses: Dict[str, str] = {}
    decisions = {False: 0, True: 0}
    counters: Dict[str, int] = {"dl_propagations": 0,
                                "dl_explanation_lits": 0}
    certified = True

    for seed in range(n_systems):
        clauses = workloads.difference_chain_formulas(seed)
        for dl in (False, True):
            with Session(dl_propagation=dl) as session:
                session.add(clauses)
                out = session.check()
                mode = "on" if dl else "off"
                statuses[f"chains{seed}/{mode}"] = out.status.name
                decisions[dl] += out.statistics.get("decisions", 0)
                if dl:
                    for key in counters:
                        counters[key] += out.statistics.get(key, 0)
                if out == "sat":
                    model = out.require_model()
                    certified &= all(model.eval_bool(c) for c in clauses)

    for label, period in (("sat", Fraction(95, 10000)),
                          ("unsat", Fraction(9, 1000))):
        problem = workloads.chain_problem(n_apps=n_apps,
                                          n_switches=n_switches,
                                          period=period)
        for dl in (False, True):
            result = solve(problem, SynthesisOptions(dl_propagation=dl))
            mode = "on" if dl else "off"
            statuses[f"line_{label}/{mode}"] = result.status
            decisions[dl] += result.statistics.get("decisions", 0)
            if dl:
                for key in counters:
                    counters[key] += result.statistics.get(key, 0)
            if result.status == "sat":
                certified &= collect_violations(result.solution) == []

    counters["decisions_off"] = decisions[False]
    counters["decisions_on"] = decisions[True]
    statuses["decisions_reduced"] = (
        "yes" if decisions[True] < decisions[False] else "NO"
    )
    statuses["dl_propagations_nonzero"] = (
        "yes" if counters["dl_propagations"] > 0 else "NO"
    )
    return {
        "statuses": statuses,
        "dl_counters": counters,
        "certified": certified,
        "render_digest": _digest(repr(sorted(statuses.items()))),
    }


def _bench_faults(scale: dict) -> dict:
    """Chaos races under deterministic fault injection (robustness gate).

    Four supervised scenarios (see ``docs/robustness.md``), every fault
    seeded and reproducible:

    * ``sharing``/``gm`` — the acceptance races: one worker SIGKILLed at
      start, one injected into a hang, one artifact frame corrupted, on
      the sharing funnel and the automotive case study.  The regression
      surface is *verdict preservation*: the chaos race must report the
      same status (and winner) as the identical fault-free race, with
      ``crash_retries >= 1`` and the corrupt frame quarantined instead
      of imported.
    * ``stall`` — the only strategy hangs on attempt 1; the missed-
      heartbeat detector must kill and relaunch it (``stalls_detected``
      and a sat verdict from attempt 2).
    * ``degrade`` — the only strategy is crashed on its first three
      process attempts, exhausting ``max_crash_retries=2``; the race
      must degrade to the serial backend and still solve
      (``degraded_to_serial`` plus ``crash_budget_exhausted``).

    The record's ``supervision`` block carries the summed supervision
    counters (CI asserts the key ones nonzero) and ``no_leaked_workers``
    certifies that every spawned process was reaped.
    """
    import multiprocessing as mp

    from ..core.synthesizer import SynthesisOptions
    from ..portfolio import (FaultPlan, FaultSpec, Strategy,
                             SupervisionPolicy, synthesize_portfolio)
    from ..portfolio.faults import CORRUPT, CRASH, HANG
    from . import workloads

    timeout = scale.get("timeout", 60.0)
    policy = SupervisionPolicy(heartbeat_interval=0.05, stall_timeout=0.6,
                               backoff_base=0.01, kill_grace=0.5)
    statuses: Dict[str, str] = {}
    supervision: Dict[str, int] = {}
    times: Dict[str, float] = {}

    def record(label: str, res) -> None:
        statuses[f"{label}/race"] = res.status
        for sr in res.strategy_results:
            statuses[f"{label}/{sr.name}"] = sr.status
        times[label] = round(res.total_time, 4)
        for key, value in res.supervision_statistics.items():
            supervision[key] = supervision.get(key, 0) + value
        supervision[f"{label}_degraded"] = int(res.degraded_to_serial)

    # -- acceptance races: SIGKILL + hang + corrupt, verdict preserved --
    chaos_cases = {
        "sharing": (
            lambda: workloads.sharing_problem(n_apps=scale.get("n_apps", 4)),
            lambda: [
                Strategy("monolithic", SynthesisOptions()),
                Strategy("routes-1", SynthesisOptions(routes=1)),
                Strategy("routes-2", SynthesisOptions(routes=2)),
                Strategy("stages-2", SynthesisOptions(routes=3, stages=2)),
            ],
            FaultPlan([
                # routes-1 solves (unsat) fastest and exports its proof
                # artifacts: corrupting its first frame tests quarantine
                # on a frame that reliably reaches the pool boundary.
                FaultSpec(CRASH, strategy="routes-2", attempt=1),
                FaultSpec(HANG, strategy="stages-2", attempt=1),
                FaultSpec(CORRUPT, strategy="routes-1", attempt=0, frame=0),
            ], seed=11),
        ),
        "gm": (
            lambda: workloads.gm_case_study(n_apps=scale.get("gm_apps", 4)),
            lambda: [
                # The budgeted monolithic aborts unknown at 150 conflicts
                # but flushes learned clauses mid-check — the corrupt
                # target on a sat instance (winners export nothing).
                Strategy("monolithic", SynthesisOptions(max_conflicts=150)),
                Strategy("routes-1", SynthesisOptions(routes=1)),
                Strategy("stages-2", SynthesisOptions(routes=3, stages=2)),
            ],
            FaultPlan([
                FaultSpec(CRASH, strategy="routes-1", attempt=1),
                FaultSpec(HANG, strategy="stages-2", attempt=1),
                FaultSpec(CORRUPT, strategy="monolithic", attempt=0, frame=0),
            ], seed=13),
        ),
    }
    for label, (mk_problem, mk_strategies, plan) in chaos_cases.items():
        base = synthesize_portfolio(mk_problem(), mk_strategies(),
                                    timeout=timeout, supervision=policy)
        statuses[f"{label}/fault_free"] = base.status
        chaos = synthesize_portfolio(mk_problem(), mk_strategies(),
                                     timeout=timeout, supervision=policy,
                                     fault_plan=plan)
        record(label, chaos)
        statuses[f"{label}/verdict_preserved"] = (
            "yes" if chaos.status == base.status
            and chaos.winner == base.winner else "NO"
        )

    # -- stall detection: the hung winner must be killed and relaunched --
    plan = FaultPlan([FaultSpec(HANG, strategy="monolithic", attempt=1)])
    res = synthesize_portfolio(
        workloads.sharing_problem(n_apps=scale.get("n_apps", 4)),
        [Strategy("monolithic", SynthesisOptions())],
        timeout=timeout, supervision=policy, fault_plan=plan)
    record("stall", res)
    statuses["stall/detected"] = (
        "yes" if res.supervision_statistics.get("stalls_detected", 0) >= 1
        and res.status == "sat" else "NO"
    )

    # -- crash-budget exhaustion: degrade to serial, still solve --
    plan = FaultPlan([FaultSpec(CRASH, strategy="monolithic", attempt=a)
                      for a in (1, 2, 3)])
    res = synthesize_portfolio(
        workloads.sharing_problem(n_apps=scale.get("n_apps", 4)),
        [Strategy("monolithic", SynthesisOptions())],
        timeout=timeout, supervision=policy, fault_plan=plan)
    record("degrade", res)
    statuses["degrade/degraded_to_serial"] = (
        "yes" if res.degraded_to_serial and res.status == "sat" else "NO"
    )

    statuses["supervision/crash_retries_nonzero"] = (
        "yes" if supervision.get("crash_retries", 0) >= 1 else "NO"
    )
    statuses["supervision/quarantine_nonzero"] = (
        "yes" if supervision.get("quarantined_artifacts", 0) >= 1 else "NO"
    )
    for proc in mp.active_children():
        proc.join(timeout=2.0)
    statuses["no_leaked_workers"] = (
        "yes" if not mp.active_children() else "NO"
    )
    return {
        "statuses": statuses,
        "supervision": supervision,
        "solve_times": times,
        "render_digest": _digest(repr(sorted(statuses.items()))),
    }


def _bench_service(scale: dict) -> dict:
    """The synthesis service under a seeded batched stream (cache gate).

    One process-worker :class:`~repro.service.SynthesisServer` with a
    fresh disk cache serves a deterministic request stream in two
    phases: every unique problem cold, then every problem again —
    byte-identical, so each repeat must resolve to an **exact**
    fingerprint hit and warm-start from the stored knowledge.  The
    regression surface:

    * per-problem ``pair<i>`` statuses (``cold/warm``) — any flip is a
      hard regression;
    * ``warm_work_strictly_less`` — the summed conflicts+decisions of
      the warm phase must be *strictly* below the cold phase (the
      cache's whole point), with per-pair work recorded for diagnosis;
    * chaos: one request is SIGKILLed mid-solve (``chaos_retried``) and
      one long solve is cancelled mid-flight (``cancelled_clean``),
      after which ``no_leaked_workers`` certifies a clean reap.

    The ``service`` block carries the throughput/latency roll-up
    (req/sec, queue-wait and total p50/p99) plus the cache and
    supervision counters.  Solver work happens in worker processes, so
    the record's global ``statistics`` stay near zero — the gates above
    are the deterministic regression surface instead.
    """
    import asyncio
    import multiprocessing as mp
    import tempfile
    from fractions import Fraction

    from ..core.synthesizer import SynthesisOptions
    from ..portfolio import FaultPlan, FaultSpec, SupervisionPolicy
    from ..portfolio.faults import CRASH
    from ..service import (KnowledgeCache, ServiceClient, ServicePolicy,
                           SynthesisRequest, SynthesisServer)
    from . import workloads

    workers = scale.get("workers", 2)
    deadline = scale.get("deadline", 120.0)

    # Instances where the cached knowledge demonstrably pays: the GM
    # case study is route-search dominated (the stage prefix collapses
    # it), and the unsat bottleneck re-derives infeasibility straight
    # from the stored veto.  Schedule-search-heavy random instances are
    # deliberately absent — fixing routes does not shrink their offset
    # search, so they would not gate anything.
    uniques = [
        (workloads.gm_case_study(3), SynthesisOptions(routes=2)),
        (workloads.gm_case_study(3), SynthesisOptions(routes=3)),
        (workloads.bottleneck_problem(3), SynthesisOptions(routes=2)),
        (workloads.bottleneck_problem(3, period=Fraction(35, 10000)),
         SynthesisOptions(routes=2)),
    ]
    n_unique = len(uniques)

    statuses: Dict[str, str] = {}
    service: Dict[str, object] = {}

    async def drive(cache_dir: str) -> None:
        cache = KnowledgeCache(cache_dir)
        plan = FaultPlan([FaultSpec(CRASH, strategy="chaos", attempt=1)])
        policy = ServicePolicy(
            workers=workers, max_queue=4 * n_unique + 8,
            worker_mode="process",
            supervision=SupervisionPolicy(backoff_base=0.01,
                                          backoff_cap=0.05, kill_grace=0.5),
        )
        async with SynthesisServer(policy=policy, cache=cache,
                                   fault_plan=plan) as server:
            client = ServiceClient(server)
            t0 = time.perf_counter()
            cold = await client.solve_batch([
                SynthesisRequest(id=f"cold-{i}", problem=p, options=opts,
                                 deadline=deadline)
                for i, (p, opts) in enumerate(uniques)
            ])
            warm = await client.solve_batch([
                SynthesisRequest(id=f"warm-{i}", problem=p, options=opts,
                                 deadline=deadline)
                for i, (p, opts) in enumerate(uniques)
            ])
            # Chaos 1: SIGKILL the worker on this request's first
            # attempt; supervision must retry and still answer.
            chaos = await client.solve(uniques[0][0], uniques[0][1],
                                       deadline=deadline,
                                       request_id="chaos")
            # Chaos 2: cancel a long solve mid-flight.
            _, pending = await client.submit(
                workloads.gm_case_study(5), deadline=deadline,
                request_id="cancelme")
            for _ in range(100):
                await asyncio.sleep(0.05)
                if server.stats()["inflight"] >= 1:
                    break
            await asyncio.sleep(0.25)
            await client.cancel("cancelme")
            cancelled = await pending
            wall = time.perf_counter() - t0
            stats = server.stats()

        def work(reply: dict) -> int:
            counters = reply.get("statistics", {})
            return counters.get("conflicts", 0) + counters.get("decisions", 0)

        cold_work = sum(work(r) for r in cold)
        warm_work = sum(work(r) for r in warm)
        pair_work = {}
        for i, (c, w) in enumerate(zip(cold, warm)):
            statuses[f"pair{i}"] = (f"{c.get('status', c['type'])}"
                                    f"/{w.get('status', w['type'])}")
            pair_work[f"pair{i}"] = {"cold": work(c), "warm": work(w)}
        statuses["warm_statuses_match"] = (
            "yes" if all(c.get("status") == w.get("status")
                         for c, w in zip(cold, warm)) else "NO"
        )
        statuses["warm_all_exact_hits"] = (
            "yes" if all(w["cache"]["hit"] == "exact" for w in warm)
            else "NO"
        )
        statuses["warm_work_strictly_less"] = (
            "yes" if warm_work < cold_work
            and all(work(w) < work(c) for c, w in zip(cold, warm))
            else "NO"
        )
        statuses["chaos_retried"] = (
            "yes" if chaos["type"] == "result" and chaos["attempts"] >= 2
            and stats["supervision"].get("crashes", 0) >= 1 else "NO"
        )
        statuses["cancelled_clean"] = (
            "yes" if cancelled["type"] == "cancelled" else "NO"
        )
        for proc in mp.active_children():
            proc.join(timeout=2.0)
        statuses["no_leaked_workers"] = (
            "yes" if not mp.active_children() else "NO"
        )

        completed = len(cold) + len(warm) + 2
        service.update({
            "requests": completed,
            "throughput_rps": round(completed / wall, 3) if wall else 0.0,
            "latency": stats["latency"],
            "cache": stats["cache"],
            "supervision": stats["supervision"],
            "cold_work": cold_work,
            "warm_work": warm_work,
            "warm_savings": cold_work - warm_work,
            "pair_work": pair_work,
        })

    with tempfile.TemporaryDirectory() as tmp:
        asyncio.run(drive(tmp))
    return {
        "statuses": statuses,
        "service": service,
        "render_digest": _digest(repr(sorted(statuses.items()))),
    }


_RUNNERS: Dict[str, Callable[[dict], dict]] = {
    "table1": _bench_table1,
    "fig3": _bench_fig3,
    "fig4": _bench_fig4,
    "backends": _bench_backends,
    "unsat_core": _bench_unsat_core,
    "portfolio": _bench_portfolio,
    "dl_propagation": _bench_dl_propagation,
    "faults": _bench_faults,
    "service": _bench_service,
}


def run_bench(name: str, scale: Optional[dict] = None,
              out_dir: str | Path = ".") -> dict:
    """Run one named benchmark and write ``BENCH_<name>.json``.

    Returns the record that was written.  Solver search statistics are
    collected through :func:`repro.smt.solver.drain_global_check_stats`,
    which every ``Solver`` feeds: the record carries one entry per
    ``check()`` (the *trajectory*) plus the aggregate.
    """
    from ..smt.solver import drain_global_check_stats

    runner = _RUNNERS.get(name)
    if runner is None:
        raise ValueError(f"unknown benchmark {name!r} (have {sorted(_RUNNERS)})")
    scale = dict(QUICK_SCALES[name] if scale is None else scale)
    drain_global_check_stats()  # discard anything from earlier runs
    t0 = time.perf_counter()
    payload = runner(scale)
    wall = time.perf_counter() - t0
    per_check = drain_global_check_stats()
    # Entries mix numeric counters with tags (the "backend" attribution);
    # totals sum the counters overall and per backend.
    totals: Dict[str, int] = {}
    by_backend: Dict[str, Dict[str, int]] = {}
    for entry in per_check:
        backend = str(entry.get("backend", "native"))
        bucket = by_backend.setdefault(backend, {})
        for key, value in entry.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            totals[key] = totals.get(key, 0) + value
            bucket[key] = bucket.get(key, 0) + value
    record = {
        "name": name,
        "scale": {k: list(v) if isinstance(v, tuple) else v
                  for k, v in scale.items()},
        "wall_s": round(wall, 4),
        # Propagations per wall second: the arena PR's headline perf
        # metric.  Machine-dependent (like wall_s), so compare() never
        # gates on it, but re-recorded baselines must not regress it.
        "props_per_sec": round(totals.get("propagations", 0) / wall, 1)
        if wall > 0 else 0.0,
        "checks": len(per_check),
        "statistics": totals,
        "by_backend": by_backend,
        "per_check": per_check,
        "meta": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        **payload,
    }
    out_path = Path(out_dir) / f"BENCH_{name}.json"
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return record


#: Solver-work counters that are deterministic for a given code state and
#: benchmark scale (the solver is single-threaded and seeded), so they
#: regress-compare cleanly even across machines of different speeds.
_WORK_COUNTERS = ("conflicts", "decisions", "propagations")


def compare(current: dict, baseline: dict, threshold: float = 0.25,
            wall_gate: bool = True) -> List[str]:
    """Regressions of ``current`` vs ``baseline`` (empty list = clean).

    * any sat/unsat status difference is a hard regression;
    * search-effort counters above ``baseline * (1 + threshold)`` are a
      regression (deterministic, machine-independent);
    * wall time above ``baseline * (1 + threshold)`` is a regression when
      ``wall_gate`` is on — disable it when the baseline was recorded on
      different hardware (CI does; see .github/workflows/ci.yml).
    """
    problems: List[str] = []
    name = current.get("name", "?")
    base_statuses = baseline.get("statuses", {})
    cur_statuses = current.get("statuses", {})
    for key, expected in base_statuses.items():
        got = cur_statuses.get(key)
        if got != expected:
            problems.append(
                f"{name}: status of {key!r} changed {expected!r} -> {got!r}"
            )
    base_stats = baseline.get("statistics", {})
    cur_stats = current.get("statistics", {})
    for key in _WORK_COUNTERS:
        base_val = base_stats.get(key, 0)
        cur_val = cur_stats.get(key, 0)
        if base_val and cur_val > base_val * (1.0 + threshold):
            problems.append(
                f"{name}: {key} regressed {base_val} -> {cur_val} "
                f"(>{threshold:.0%} over baseline)"
            )
    base_wall = baseline.get("wall_s")
    cur_wall = current.get("wall_s")
    if (wall_gate and base_wall and cur_wall
            and cur_wall > base_wall * (1.0 + threshold)):
        problems.append(
            f"{name}: wall time regressed {base_wall:.2f}s -> {cur_wall:.2f}s "
            f"(>{threshold:.0%} over baseline)"
        )
    return problems


def run_suite(
    names: Sequence[str],
    out_dir: str | Path = ".",
    baseline_dir: Optional[str | Path] = None,
    threshold: float = 0.25,
    wall_gate: bool = True,
) -> int:
    """Run benchmarks, report, and compare against committed baselines.

    Returns the number of regressions found (0 = success), printing a
    human-readable summary along the way.
    """
    regressions: List[str] = []
    for name in names:
        record = run_bench(name, out_dir=out_dir)
        line = (f"BENCH {name}: {record['wall_s']:.2f}s, "
                f"{record['checks']} checks")
        stats = record.get("statistics", {})
        if stats:
            keys = ("conflicts", "decisions", "propagations",
                    "theory_propagations")
            line += ", " + ", ".join(
                f"{k}={stats[k]}" for k in keys if k in stats
            )
        print(line)
        if baseline_dir is not None:
            base_path = Path(baseline_dir) / f"BENCH_{name}.json"
            if base_path.exists():
                baseline = json.loads(base_path.read_text())
                found = compare(record, baseline, threshold, wall_gate=wall_gate)
                for p in found:
                    print(f"  REGRESSION: {p}")
                if not found:
                    speed = baseline["wall_s"] / record["wall_s"] if record["wall_s"] else 0
                    print(f"  vs baseline {base_path}: {speed:.2f}x")
                regressions.extend(found)
            else:
                print(f"  (no baseline at {base_path})")
    return len(regressions)
