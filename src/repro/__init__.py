"""repro — stability-aware integrated routing and scheduling for control
applications in Ethernet networks (Mahfouzi et al., DATE 2018).

Public API re-exports: the most common entry points from each subpackage.
See README.md for the architecture and DESIGN.md for the system inventory.
"""

from .api import CheckOutcome, Session
from .core import (
    ControlApplication,
    MODE_DEADLINE,
    MODE_STABILITY,
    Solution,
    SynthesisOptions,
    SynthesisProblem,
    SynthesisResult,
    solve,
    synthesize,
    validate_solution,
)
from .errors import (
    ControlDesignError,
    EncodingError,
    ReproError,
    SimulationError,
    SolverError,
    StabilityAnalysisError,
    TopologyError,
    ValidationError,
)
from .network import DelayModel, Flow, Network, gm_topology, simple_testbed
from .portfolio import (
    PortfolioResult,
    Strategy,
    StrategyResult,
    default_portfolio,
    synthesize_portfolio,
)
from .sim import simulate_solution
from .stability import (
    StabilityCurve,
    StabilitySpec,
    compute_stability_curve,
    fit_lower_bound,
    jitter_margin,
)

__version__ = "1.0.0"

__all__ = [
    "CheckOutcome",
    "ControlApplication",
    "ControlDesignError",
    "DelayModel",
    "EncodingError",
    "Flow",
    "MODE_DEADLINE",
    "MODE_STABILITY",
    "Network",
    "PortfolioResult",
    "ReproError",
    "Session",
    "SimulationError",
    "Solution",
    "SolverError",
    "StabilityAnalysisError",
    "StabilityCurve",
    "StabilitySpec",
    "Strategy",
    "StrategyResult",
    "SynthesisOptions",
    "SynthesisProblem",
    "SynthesisResult",
    "TopologyError",
    "ValidationError",
    "compute_stability_curve",
    "default_portfolio",
    "fit_lower_bound",
    "gm_topology",
    "jitter_margin",
    "simple_testbed",
    "simulate_solution",
    "solve",
    "synthesize",
    "synthesize_portfolio",
    "validate_solution",
    "__version__",
]
