"""``python -m repro.analysis`` — run the rule catalog over a tree.

Exit status is 0 when every finding is suppressed (or there are none),
1 on unsuppressed findings, 2 on usage errors, and 3 when the run blew
the ``--max-seconds`` wall-time budget, so CI can gate on it directly.
``--format=json`` emits the full machine-readable report (suppressed
findings included, marked) for artifact upload; ``--format=sarif``
emits SARIF 2.1.0 for GitHub code scanning (suppressed findings carry
an ``inSource`` suppression so they show as dismissed, not open); the
default text format prints one ``path:line: [rule] message`` per
finding.  ``--check-pragmas`` additionally turns stale suppression
pragmas into findings.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from .checkers import default_checkers
from .core import Checker, Report, analyze

#: Engine-emitted rules that have no checker class behind them.
_ENGINE_RULES = {
    "parse-error": "file does not parse",
    "unused-pragma": "suppression pragma that no longer suppresses "
                     "anything (stale, unknown rule, or orphan :end)",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Solver-aware static analysis for the repro codebase.")
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)")
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="include suppressed findings in text output")
    parser.add_argument(
        "--check-pragmas", action="store_true",
        help="flag suppression pragmas that suppress nothing")
    parser.add_argument(
        "--max-seconds", type=float, default=None, metavar="S",
        help="fail (exit 3) when analysis wall time exceeds S seconds")
    return parser


def run(argv: Optional[List[str]] = None,
        stream=None) -> int:
    out = stream if stream is not None else sys.stdout
    args = build_parser().parse_args(argv)
    checkers = default_checkers()
    if args.rules:
        wanted = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = wanted - {c.rule for c in checkers}
        if unknown:
            print(f"unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
        checkers = [c for c in checkers if c.rule in wanted]
    started = time.perf_counter()
    report = analyze([Path(p) for p in args.paths], checkers,
                     check_pragmas=args.check_pragmas)
    elapsed = time.perf_counter() - started
    if args.format == "json":
        json.dump(report.to_dict(), out, indent=2, sort_keys=True)
        out.write("\n")
    elif args.format == "sarif":
        json.dump(to_sarif(report, checkers), out, indent=2,
                  sort_keys=True)
        out.write("\n")
    else:
        _render_text(report, out, show_suppressed=args.show_suppressed)
    if args.max_seconds is not None and elapsed > args.max_seconds:
        print(f"analysis wall time {elapsed:.2f}s exceeds the "
              f"--max-seconds budget of {args.max_seconds:g}s",
              file=sys.stderr)
        return 3
    return 0 if report.ok else 1


def to_sarif(report: Report, checkers: Sequence[Checker]) -> dict:
    """The report as a SARIF 2.1.0 log (one run, one driver).

    Suppressed findings are included with an ``inSource`` suppression
    object, which GitHub code scanning renders as dismissed alerts —
    the pragma inventory stays visible without opening alerts.
    """
    rule_meta = [
        {"id": c.rule,
         "shortDescription": {"text": c.description or c.rule},
         "defaultConfiguration": {"level": "error"}}
        for c in checkers
    ]
    known = {r["id"] for r in rule_meta}
    emitted = sorted({f.rule for f in report.findings} - known)
    rule_meta.extend(
        {"id": rule,
         "shortDescription": {"text": _ENGINE_RULES.get(rule, rule)},
         "defaultConfiguration": {"level": "error"}}
        for rule in emitted)
    index = {meta["id"]: i for i, meta in enumerate(rule_meta)}
    results = []
    for f in report.findings:
        result = {
            "ruleId": f.rule,
            "ruleIndex": index[f.rule],
            "level": "error",
            "message": {"text": f.message},
            "locations": [{"physicalLocation": {
                "artifactLocation": {"uri": f.path.replace("\\", "/"),
                                     "uriBaseId": "%SRCROOT%"},
                "region": {"startLine": max(f.line, 1)},
            }}],
        }
        if f.suppressed:
            result["suppressions"] = [{
                "kind": "inSource",
                "justification": "repro: allow pragma",
            }]
        results.append(result)
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-analysis",
                "rules": rule_meta,
            }},
            "results": results,
        }],
    }


def _render_text(report: Report, out, show_suppressed: bool) -> None:
    shown = 0
    for finding in report.findings:
        if finding.suppressed and not show_suppressed:
            continue
        print(finding.render(), file=out)
        shown += 1
    suppressed = sum(1 for f in report.findings if f.suppressed)
    unsuppressed = len(report.unsuppressed)
    print(f"{report.files_checked} files checked, "
          f"{len(report.rules)} rules, "
          f"{unsuppressed} finding(s), {suppressed} suppressed",
          file=out)


def main() -> int:
    return run()
