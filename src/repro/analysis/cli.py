"""``python -m repro.analysis`` — run the rule catalog over a tree.

Exit status is 0 when every finding is suppressed (or there are none)
and 1 otherwise, so CI can gate on it directly.  ``--format=json``
emits the full machine-readable report (suppressed findings included,
marked) for artifact upload; the default text format prints one
``path:line: [rule] message`` per finding.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .checkers import default_checkers
from .core import Report, analyze


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Solver-aware static analysis for the repro codebase.")
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)")
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="include suppressed findings in text output")
    return parser


def run(argv: Optional[List[str]] = None,
        stream=None) -> int:
    out = stream if stream is not None else sys.stdout
    args = build_parser().parse_args(argv)
    checkers = default_checkers()
    if args.rules:
        wanted = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = wanted - {c.rule for c in checkers}
        if unknown:
            print(f"unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
        checkers = [c for c in checkers if c.rule in wanted]
    report = analyze([Path(p) for p in args.paths], checkers)
    if args.format == "json":
        json.dump(report.to_dict(), out, indent=2, sort_keys=True)
        out.write("\n")
    else:
        _render_text(report, out, show_suppressed=args.show_suppressed)
    return 0 if report.ok else 1


def _render_text(report: Report, out, show_suppressed: bool) -> None:
    shown = 0
    for finding in report.findings:
        if finding.suppressed and not show_suppressed:
            continue
        print(finding.render(), file=out)
        shown += 1
    suppressed = sum(1 for f in report.findings if f.suppressed)
    unsuppressed = len(report.unsuppressed)
    print(f"{report.files_checked} files checked, "
          f"{len(report.rules)} rules, "
          f"{unsuppressed} finding(s), {suppressed} suppressed",
          file=out)


def main() -> int:
    return run()
