"""Dataflow analysis over per-function control-flow graphs.

PR 9's checkers were syntactic: they pattern-matched single AST nodes,
so a float smuggled through a variable, or a cleanup call an early
``return`` skips, passed unnoticed.  This package is the graduation to
real dataflow:

* :mod:`repro.analysis.dataflow.cfg` — a per-function (and per-module)
  control-flow graph builder over :mod:`ast`: branches, loops with
  ``else`` clauses, ``try``/``except``/``finally`` (finally bodies are
  cloned per abrupt exit, so a ``return`` inside ``try`` runs the right
  cleanup chain), ``with``, ``break``/``continue``/``return``/``raise``
  edges, and known-noreturn calls (``os._exit``, ``sys.exit``).
* :mod:`repro.analysis.dataflow.solver` — a generic forward/backward
  worklist fixed-point solver over lattice facts, parameterized by
  transfer and join; checkers re-walk blocks statement-by-statement
  afterwards to anchor findings to lines.
* :mod:`repro.analysis.dataflow.taint` — the float-taint lattice used by
  ``exact-arith`` v2: sources (float literals and casts, ``time.*`` and
  non-integer ``math.*``, true division between non-exact operands)
  propagate through assignments, augmented assigns, tuple unpacking,
  calls and comprehensions (with comprehension-scoped bindings) until
  they reach an exact sink.

The checkers rebased on this package (``exact-arith``,
``resource-hygiene``, ``frame-protocol``) live in
:mod:`repro.analysis.checkers`; see ``docs/analysis.md`` for the
architecture notes and the approximations (implicit exceptions are
modeled at block granularity, explicit ``raise`` precisely).
"""

from .cfg import CFG, Block, Edge, build_cfg, header_exprs, reachable_blocks
from .solver import run_block, solve
from .taint import ModuleTaint, eval_taint, join_envs, transfer_stmt

__all__ = [
    "CFG",
    "Block",
    "Edge",
    "ModuleTaint",
    "build_cfg",
    "eval_taint",
    "header_exprs",
    "join_envs",
    "reachable_blocks",
    "run_block",
    "solve",
    "transfer_stmt",
]
