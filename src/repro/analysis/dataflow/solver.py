"""A generic worklist fixed-point solver over CFG blocks.

The solver is direction-agnostic: a *forward* analysis joins facts over
predecessor exits and pushes through each block's statements in order; a
*backward* analysis joins over successor entries and walks statements in
reverse.  Facts are opaque to the solver — callers supply ``join`` (the
lattice least-upper-bound for may-analyses or greatest-lower-bound for
must-analyses; the solver does not care which, only that the combination
of ``join``/``transfer`` is monotone on a finite-height lattice) and
``transfer`` (whole-block transfer; see :func:`run_block` for the
element-wise helper).

After the fixed point, checkers typically re-walk each block with its
entry fact and the per-element step function to anchor findings to
specific statements; :func:`run_block` is that same walk.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Tuple, TypeVar

from .cfg import CFG, Block

F = TypeVar("F")

#: Safety valve: no real lattice here needs anywhere near this many
#: passes; hitting it means a non-monotone transfer, which should fail
#: loudly instead of spinning.
_MAX_SWEEPS = 10_000


def solve(cfg: CFG, *,
          direction: str = "forward",
          init: F,
          boundary: F,
          transfer: Callable[[Block, F], F],
          join: Callable[[F, F], F],
          ) -> Dict[int, Tuple[F, F]]:
    """Run ``transfer`` to a fixed point; returns block id -> (in, out).

    ``boundary`` seeds the entry block (exit block for backward runs);
    every other block starts from ``init`` (the lattice's neutral
    starting value — bottom for may-analyses, top for must-analyses).
    ``in`` is always the fact at the block's *entry in program order*
    and ``out`` the fact at its exit, regardless of direction, so
    finding passes can re-walk statements forward with ``in`` (forward
    analyses) or backward with ``out`` (backward analyses).
    """
    if direction not in ("forward", "backward"):
        raise ValueError(f"unknown direction {direction!r}")
    forward = direction == "forward"
    start = cfg.entry if forward else cfg.exit
    before: Dict[int, F] = {b.id: init for b in cfg.blocks}
    after: Dict[int, F] = {}
    before[start.id] = boundary
    pending = {b.id for b in cfg.blocks}
    order = [b.id for b in cfg.blocks]
    by_id = {b.id: b for b in cfg.blocks}
    sweeps = 0
    while pending:
        sweeps += 1
        if sweeps > _MAX_SWEEPS:
            raise RuntimeError("dataflow solver failed to converge "
                               "(non-monotone transfer?)")
        changed = False
        for block_id in order:
            if block_id not in pending:
                continue
            pending.discard(block_id)
            block = by_id[block_id]
            edges = block.preds if forward else block.succs
            fact = before[block_id]
            if block_id != start.id:
                incoming = None
                for e in edges:
                    neighbor = (e.src if forward else e.dst).id
                    if neighbor not in after:
                        continue
                    incoming = (after[neighbor] if incoming is None
                                else join(incoming, after[neighbor]))
                if incoming is not None:
                    fact = incoming
            out = transfer(block, fact)
            if block_id not in after or after[block_id] != out \
                    or before[block_id] != fact:
                before[block_id] = fact
                after[block_id] = out
                changed = True
                for e in (block.succs if forward else block.preds):
                    pending.add((e.dst if forward else e.src).id)
        if not pending and not changed:
            break
    result: Dict[int, Tuple[F, F]] = {}
    for block in cfg.blocks:
        b = before.get(block.id, init)
        a = after.get(block.id, transfer(block, b))
        result[block.id] = (b, a) if forward else (a, b)
    return result


def run_block(block: Block, fact: F,
              step: Callable[[object, F], F],
              *, backward: bool = False) -> F:
    """Fold ``step`` over a block's elements (reversed when backward)."""
    elements: Iterable = reversed(block.stmts) if backward else block.stmts
    for element in elements:
        fact = step(element, fact)
    return fact
