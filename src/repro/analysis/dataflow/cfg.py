"""Per-function control-flow graphs over :mod:`ast`.

The graph is statement-granular: every :class:`Block` holds a run of
simple statements, and compound statements contribute only their
*header* (an ``If``'s test, a ``For``'s iterable, a ``With``'s context
expressions) to the block that branches on them — bodies live in
successor blocks.  Use :func:`header_exprs` in transfer functions to
evaluate exactly the header of a compound element.

Modeled control flow
--------------------

* ``if``/``elif``/``else`` with ``true``/``false`` edges.
* ``while``/``for`` (+ ``else`` clauses) with back edges (``loop``) and
  ``break``/``continue`` edges; a constant-true ``while`` gets no false
  edge, so code after ``while True:`` without ``break`` is unreachable.
* ``try``/``except``/``else``/``finally``: finally bodies are **cloned
  per abrupt exit** — a ``return`` inside ``try`` flows through its own
  copy of every enclosing ``finally`` chain before reaching the exit
  block, which is what makes "must-happen-on-every-path" analyses
  path-sensitive across cleanup code.  Explicit ``raise`` statements are
  routed precisely (innermost registered handlers, else through the
  finally chain to the exit block); *implicit* exceptions are modeled at
  block granularity — every block of a ``try`` body gets an ``except``
  edge to each handler entry, read as "control may leave this block for
  the handler after its statements ran".
* ``with``/``async with`` are transparent (headers in-block); the
  ``__exit__`` cleanup semantics are a checker-level concern.
* Known-noreturn calls: ``os._exit`` jumps straight to the exit block
  (skipping finally clones, as at runtime); ``sys.exit`` routes through
  the finally chain like a ``raise``.

Not modeled (documented approximations): exceptions raised by arbitrary
expressions do not create edges beyond the block-granular ``except``
edges above; ``assert`` is a simple statement; dead code after a
diverging statement is dropped.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

_NORETURN_DIRECT = {("os", "_exit")}
_NORETURN_RAISING = {("sys", "exit")}


class Edge:
    """One directed control-flow edge with a kind tag."""

    __slots__ = ("src", "dst", "kind")

    def __init__(self, src: "Block", dst: "Block", kind: str) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind

    def __repr__(self) -> str:
        return f"b{self.src.id} -> b{self.dst.id} [{self.kind}]"


class Block:
    """A straight-line run of statements (or compound-statement headers)."""

    __slots__ = ("id", "label", "stmts", "succs", "preds")

    def __init__(self, block_id: int, label: str) -> None:
        self.id = block_id
        self.label = label
        self.stmts: List[ast.stmt] = []
        self.succs: List[Edge] = []
        self.preds: List[Edge] = []

    def __repr__(self) -> str:
        return f"<Block b{self.id} {self.label}>"


class CFG:
    """The control-flow graph of one function (or module) body."""

    def __init__(self, node: ast.AST, blocks: List[Block],
                 entry: Block, exit_block: Block) -> None:
        self.node = node
        self.blocks = blocks
        self.entry = entry
        self.exit = exit_block

    def edges(self) -> List[Edge]:
        out: List[Edge] = []
        for block in self.blocks:
            out.extend(block.succs)
        return out

    def edge_list(self) -> List[str]:
        """Deterministic ``"label -> label kind"`` strings (golden fixtures)."""
        names = {b.id: f"b{b.id}:{b.label}" for b in self.blocks}
        return [f"{names[e.src.id]} -> {names[e.dst.id]} {e.kind}"
                for e in self.edges()]

    def dump(self) -> str:
        """Stable text rendering: blocks with statement lines, then edges."""
        lines = []
        for block in self.blocks:
            stmt_lines = ",".join(str(s.lineno) for s in block.stmts)
            lines.append(f"b{block.id}:{block.label} [{stmt_lines}]")
        lines.extend(self.edge_list())
        return "\n".join(lines)


def header_exprs(stmt: ast.stmt) -> Optional[List[ast.expr]]:
    """The expressions a block evaluates for a compound-statement header.

    Returns None for simple statements (the whole node is the element)
    and a possibly-empty expression list for compound ones, so transfer
    functions never accidentally descend into a body that lives in
    other blocks.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    if hasattr(ast, "Match") and isinstance(stmt, ast.Match):
        return [stmt.subject]
    return None


class _Cleanup:
    """One enclosing ``finally`` body and the context stacks it closes over."""

    __slots__ = ("body", "index", "handlers_len", "loops_len", "regions_len")

    def __init__(self, body, index, handlers_len, loops_len, regions_len):
        self.body = body
        self.index = index
        self.handlers_len = handlers_len
        self.loops_len = loops_len
        self.regions_len = regions_len


class _Handlers:
    """The handler entries of one enclosing ``try`` with ``except`` arms."""

    __slots__ = ("blocks", "cleanups_len")

    def __init__(self, blocks: List[Block], cleanups_len: int) -> None:
        self.blocks = blocks
        self.cleanups_len = cleanups_len


class _Loop:
    __slots__ = ("head", "after", "cleanups_len")

    def __init__(self, head: Block, after: Block, cleanups_len: int) -> None:
        self.head = head
        self.after = after
        self.cleanups_len = cleanups_len


class _Builder:
    def __init__(self, node: ast.AST) -> None:
        self.node = node
        self.blocks: List[Block] = []
        self.cleanups: List[_Cleanup] = []
        self.handlers: List[_Handlers] = []
        self.loops: List[_Loop] = []
        #: Stack of block-id sets: one per ``try`` body being lowered,
        #: for the block-granular implicit ``except`` edges.
        self.regions: List[Set[int]] = []
        self.entry = self.new_block("entry")
        self.exit = self.new_block("exit")

    # -- plumbing --------------------------------------------------------

    def new_block(self, label: str) -> Block:
        block = Block(len(self.blocks), label)
        self.blocks.append(block)
        for region in self.regions:
            region.add(block.id)
        return block

    def edge(self, src: Block, dst: Block, kind: str) -> None:
        for existing in src.succs:
            if existing.dst is dst and existing.kind == kind:
                return
        e = Edge(src, dst, kind)
        src.succs.append(e)
        dst.preds.append(e)

    # -- finally cloning -------------------------------------------------

    def _run_cleanups(self, cur: Optional[Block],
                      depth: int) -> Optional[Block]:
        """Clone every finally body above ``depth``, innermost first.

        Returns the block where control continues, or None when a clone
        itself diverged (e.g. a ``return`` inside ``finally`` swallows
        the original exit and routes on its own).
        """
        for frame in reversed(self.cleanups[depth:]):
            if cur is None:
                return None
            saved = (self.cleanups, self.handlers, self.loops, self.regions)
            self.cleanups = self.cleanups[:frame.index]
            self.handlers = self.handlers[:frame.handlers_len]
            self.loops = self.loops[:frame.loops_len]
            self.regions = self.regions[:frame.regions_len]
            entry = self.new_block("finally")
            self.edge(cur, entry, "finally")
            cur = self.lower_body(frame.body, entry)
            (self.cleanups, self.handlers, self.loops, self.regions) = saved
        return cur

    # -- statement lowering ---------------------------------------------

    def lower_body(self, stmts: Sequence[ast.stmt],
                   cur: Optional[Block]) -> Optional[Block]:
        for stmt in stmts:
            if cur is None:
                break  # dead code after a diverging statement: dropped
            cur = self.lower_stmt(stmt, cur)
        return cur

    def lower_stmt(self, stmt: ast.stmt, cur: Block) -> Optional[Block]:
        if isinstance(stmt, ast.If):
            return self._lower_if(stmt, cur)
        if isinstance(stmt, (ast.While,)):
            return self._lower_while(stmt, cur)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._lower_for(stmt, cur)
        if isinstance(stmt, ast.Try):
            return self._lower_try(stmt, cur)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            cur.stmts.append(stmt)
            return self.lower_body(stmt.body, cur)
        if hasattr(ast, "Match") and isinstance(stmt, ast.Match):
            return self._lower_match(stmt, cur)
        if isinstance(stmt, ast.Return):
            cur.stmts.append(stmt)
            end = self._run_cleanups(cur, 0)
            if end is not None:
                self.edge(end, self.exit, "return")
            return None
        if isinstance(stmt, ast.Raise):
            return self._lower_raise(stmt, cur)
        if isinstance(stmt, ast.Break):
            cur.stmts.append(stmt)
            if self.loops:
                loop = self.loops[-1]
                end = self._run_cleanups(cur, loop.cleanups_len)
                if end is not None:
                    self.edge(end, loop.after, "break")
            return None
        if isinstance(stmt, ast.Continue):
            cur.stmts.append(stmt)
            if self.loops:
                loop = self.loops[-1]
                end = self._run_cleanups(cur, loop.cleanups_len)
                if end is not None:
                    self.edge(end, loop.head, "continue")
            return None
        # Known-noreturn calls divert control like a return/raise.
        noreturn = self._noreturn_kind(stmt)
        if noreturn == "direct":
            cur.stmts.append(stmt)
            self.edge(cur, self.exit, "exit")
            return None
        if noreturn == "raising":
            cur.stmts.append(stmt)
            end = self._run_cleanups(cur, 0)
            if end is not None:
                self.edge(end, self.exit, "exit")
            return None
        # Everything else (incl. nested def/class) is a simple statement.
        cur.stmts.append(stmt)
        return cur

    @staticmethod
    def _noreturn_kind(stmt: ast.stmt) -> Optional[str]:
        if not (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)):
            return None
        func = stmt.value.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)):
            pair = (func.value.id, func.attr)
            if pair in _NORETURN_DIRECT:
                return "direct"
            if pair in _NORETURN_RAISING:
                return "raising"
        return None

    def _lower_if(self, stmt: ast.If, cur: Block) -> Optional[Block]:
        cur.stmts.append(stmt)
        then_entry = self.new_block("then")
        self.edge(cur, then_entry, "true")
        then_end = self.lower_body(stmt.body, then_entry)
        else_end: Optional[Block] = None
        else_from_header = not stmt.orelse
        if stmt.orelse:
            else_entry = self.new_block("else")
            self.edge(cur, else_entry, "false")
            else_end = self.lower_body(stmt.orelse, else_entry)
        if then_end is None and else_end is None and not else_from_header:
            return None
        join = self.new_block("join")
        if else_from_header:
            self.edge(cur, join, "false")
        for end in (then_end, else_end):
            if end is not None:
                self.edge(end, join, "next")
        return join

    @staticmethod
    def _constant_true(test: ast.expr) -> bool:
        return isinstance(test, ast.Constant) and bool(test.value)

    def _lower_while(self, stmt: ast.While, cur: Block) -> Optional[Block]:
        head = self.new_block("while")
        self.edge(cur, head, "next")
        head.stmts.append(stmt)
        after = self.new_block("after")
        body_entry = self.new_block("body")
        self.edge(head, body_entry, "true")
        self.loops.append(_Loop(head, after, len(self.cleanups)))
        body_end = self.lower_body(stmt.body, body_entry)
        self.loops.pop()
        if body_end is not None:
            self.edge(body_end, head, "loop")
        if not self._constant_true(stmt.test):
            # The else clause runs only on normal loop exhaustion; a
            # break jumps past it straight to ``after``.
            if stmt.orelse:
                else_entry = self.new_block("loop-else")
                self.edge(head, else_entry, "false")
                else_end = self.lower_body(stmt.orelse, else_entry)
                if else_end is not None:
                    self.edge(else_end, after, "next")
            else:
                self.edge(head, after, "false")
        return after if after.preds else None

    def _lower_for(self, stmt, cur: Block) -> Optional[Block]:
        head = self.new_block("for")
        self.edge(cur, head, "next")
        head.stmts.append(stmt)
        after = self.new_block("after")
        body_entry = self.new_block("body")
        self.edge(head, body_entry, "true")
        self.loops.append(_Loop(head, after, len(self.cleanups)))
        body_end = self.lower_body(stmt.body, body_entry)
        self.loops.pop()
        if body_end is not None:
            self.edge(body_end, head, "loop")
        if stmt.orelse:
            else_entry = self.new_block("loop-else")
            self.edge(head, else_entry, "false")
            else_end = self.lower_body(stmt.orelse, else_entry)
            if else_end is not None:
                self.edge(else_end, after, "next")
        else:
            self.edge(head, after, "false")
        return after if after.preds else None

    def _lower_raise(self, stmt: ast.Raise, cur: Block) -> Optional[Block]:
        cur.stmts.append(stmt)
        if self.handlers:
            frame = self.handlers[-1]
            end = self._run_cleanups(cur, frame.cleanups_len)
            if end is not None:
                for handler in frame.blocks:
                    self.edge(end, handler, "raise")
        else:
            end = self._run_cleanups(cur, 0)
            if end is not None:
                self.edge(end, self.exit, "raise")
        return None

    def _lower_try(self, stmt: ast.Try, cur: Block) -> Optional[Block]:
        body_entry = self.new_block("try")
        self.edge(cur, body_entry, "next")
        handler_entries = [self.new_block("except") for _ in stmt.handlers]
        if stmt.finalbody:
            self.cleanups.append(_Cleanup(
                stmt.finalbody, len(self.cleanups), len(self.handlers),
                len(self.loops), len(self.regions)))
        if stmt.handlers:
            self.handlers.append(
                _Handlers(handler_entries, len(self.cleanups)))
            self.regions.append({body_entry.id})
        body_end = self.lower_body(stmt.body, body_entry)
        if stmt.handlers:
            region = self.regions.pop()
            self.handlers.pop()
            for block_id in sorted(region):
                for handler in handler_entries:
                    self.edge(self.blocks[block_id], handler, "except")
        if body_end is not None and stmt.orelse:
            body_end = self.lower_body(stmt.orelse, body_end)
        handler_ends = [self.lower_body(h.body, entry)
                        for h, entry in zip(stmt.handlers, handler_entries)]
        if stmt.finalbody:
            self.cleanups.pop()
        ends = [e for e in [body_end, *handler_ends] if e is not None]
        if not ends:
            return None
        if stmt.finalbody:
            fin_entry = self.new_block("finally")
            for end in ends:
                self.edge(end, fin_entry, "finally")
            return self.lower_body(stmt.finalbody, fin_entry)
        # Always a fresh block: statements after the ``try`` must not
        # share a block with the try body (which carries except edges).
        join = self.new_block("join")
        for end in ends:
            self.edge(end, join, "next")
        return join

    def _lower_match(self, stmt, cur: Block) -> Optional[Block]:
        cur.stmts.append(stmt)
        ends = []
        wildcard = False
        for case in stmt.cases:
            entry = self.new_block("case")
            self.edge(cur, entry, "case")
            ends.append(self.lower_body(case.body, entry))
            if (isinstance(case.pattern, ast.MatchAs)
                    and case.pattern.pattern is None
                    and case.guard is None):
                wildcard = True
        live = [e for e in ends if e is not None]
        if not live and wildcard:
            return None
        join = self.new_block("join")
        if not wildcard:
            self.edge(cur, join, "false")
        for end in live:
            self.edge(end, join, "next")
        return join


def build_cfg(node: ast.AST) -> CFG:
    """Build the CFG of a function, module, or comprehension-free body.

    ``node`` is an ``ast.Module``, ``ast.FunctionDef`` or
    ``ast.AsyncFunctionDef``; nested function/class definitions inside
    the body are treated as simple binding statements (build a separate
    CFG per function to analyze them).
    """
    builder = _Builder(node)
    body = node.body if isinstance(
        node, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)) else [node]
    end = builder.lower_body(body, builder.entry)
    if end is not None:
        builder.edge(end, builder.exit, "next")
    return CFG(node, builder.blocks, builder.entry, builder.exit)


def reachable_blocks(cfg: CFG) -> List[Block]:
    """Blocks reachable from the entry, in deterministic id order."""
    seen: Set[int] = set()
    stack = [cfg.entry]
    while stack:
        block = stack.pop()
        if block.id in seen:
            continue
        seen.add(block.id)
        for e in block.succs:
            stack.append(e.dst)
    return [b for b in cfg.blocks if b.id in seen]
