"""Float-taint lattice for the ``exact-arith`` dataflow checker.

The fact is a mapping ``name -> origin``: every binding currently known
to (possibly) hold a float-derived value, with a human-readable origin
string for the finding message.  Names are plain locals (``"g"``) or
``self`` attributes (``"self._beta_f"``), so attribute laundering inside
one method is tracked intraprocedurally.  The join keeps the
lexicographically smallest origin per name, making fixed points
deterministic.

Taint sources
-------------

* float literals and ``float(...)`` casts;
* any ``time.*`` read or call (wall-clock values are floats);
* ``math.*`` reads/calls except the integer-valued ones
  (:data:`MATH_EXACT`);
* true division ``/`` (and ``/=``) — *unless* an operand is provably
  ``Fraction``-typed (a ``Fraction(...)`` call, a module-level constant
  bound to one, or a ``.real``/``.delta`` DeltaRational component), in
  which case the result is again an exact ``Fraction``.  ``int/int`` is
  a float and stays a source;
* anything computed *from* a tainted value: arithmetic, subscripts of
  tainted containers, calls with tainted arguments or receivers,
  conditional expressions, f-string-free joins, comprehensions whose
  element expression is tainted.

Comparisons and ``not`` produce booleans and drop taint; ``int(...)``
and the other :data:`EXACT_CALLS` launder deliberately (an explicit
rounding decision, not an accidental leak).  Comprehension target names
are scoped to the comprehension (Python 3 semantics) and never leak
into the enclosing fact.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, Optional, Tuple

#: Modules whose every attribute/call is a taint source.
TAINT_MODULES = ("time",)

#: Integer-valued ``math`` members: exact, not taint sources.
MATH_EXACT = frozenset({
    "gcd", "lcm", "isqrt", "factorial", "comb", "perm", "floor", "ceil",
    "trunc",
})

#: Calls whose result is never float-tainted regardless of arguments —
#: deliberate laundering points (``int(x)`` is an explicit rounding
#: decision) and exact constructors.
EXACT_CALLS = frozenset({
    "Fraction", "int", "bool", "len", "str", "repr", "hash", "id", "ord",
    "round", "range", "isinstance", "sorted",
})

#: Attribute names that denote ``Fraction``-typed components.
FRACTION_ATTRS = frozenset({"real", "delta"})

TaintEnv = Dict[str, str]


class ModuleTaint:
    """Module-level context: exact constants and module-tainted names."""

    def __init__(self) -> None:
        self.fraction_names: set = set()
        self.tainted: TaintEnv = {}

    @classmethod
    def of_module(cls, tree: ast.AST) -> "ModuleTaint":
        ctx = cls()
        for stmt in getattr(tree, "body", ()):
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if is_fraction_expr(stmt.value, ctx):
                ctx.fraction_names.add(target.id)
            else:
                origin = eval_taint(stmt.value, dict(ctx.tainted), ctx)
                if origin is not None:
                    ctx.tainted[target.id] = origin
        return ctx


def _dotted(expr: ast.AST) -> Optional[str]:
    """``self.attr`` -> ``"self.attr"``; plain names -> the name."""
    if isinstance(expr, ast.Name):
        return expr.id
    if (isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)):
        return f"{expr.value.id}.{expr.attr}"
    return None


def is_fraction_expr(expr: ast.AST, ctx: ModuleTaint) -> bool:
    """Conservatively: does ``expr`` evaluate to a ``Fraction``?"""
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
            and expr.func.id == "Fraction":
        return True
    if isinstance(expr, ast.Name):
        return expr.id in ctx.fraction_names
    if isinstance(expr, ast.Attribute) and expr.attr in FRACTION_ATTRS:
        return True
    if isinstance(expr, ast.BinOp):
        return (is_fraction_expr(expr.left, ctx)
                or is_fraction_expr(expr.right, ctx))
    if isinstance(expr, ast.UnaryOp):
        return is_fraction_expr(expr.operand, ctx)
    return False


def _loc(expr: ast.AST) -> str:
    return f"line {getattr(expr, 'lineno', '?')}"


def _call_source(call: ast.Call, ctx: ModuleTaint) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "float":
            return f"float() cast ({_loc(call)})"
        return None
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        mod, attr = func.value.id, func.attr
        if mod in TAINT_MODULES:
            return f"{mod}.{attr}() wall-clock value ({_loc(call)})"
        if mod == "math" and attr not in MATH_EXACT:
            return f"math.{attr}() float result ({_loc(call)})"
    return None


def eval_taint(expr: ast.AST, env: TaintEnv,
               ctx: ModuleTaint) -> Optional[str]:
    """Origin string when ``expr`` may carry a float, else None.

    ``env`` may be mutated by walrus assignments inside ``expr``.
    """
    if isinstance(expr, ast.Constant):
        if isinstance(expr.value, float):
            return f"float literal {expr.value!r} ({_loc(expr)})"
        return None
    if isinstance(expr, ast.Name):
        return env.get(expr.id) or ctx.tainted.get(expr.id)
    if isinstance(expr, ast.Attribute):
        dotted = _dotted(expr)
        if dotted is not None and dotted in env:
            return env[dotted]
        if isinstance(expr.value, ast.Name):
            mod = expr.value.id
            if mod in TAINT_MODULES:
                return f"{mod}.{expr.attr} ({_loc(expr)})"
            if mod == "math" and expr.attr not in MATH_EXACT:
                return f"math.{expr.attr} ({_loc(expr)})"
        return eval_taint(expr.value, env, ctx)
    if isinstance(expr, ast.NamedExpr):
        origin = eval_taint(expr.value, env, ctx)
        if isinstance(expr.target, ast.Name):
            if origin is None:
                env.pop(expr.target.id, None)
            else:
                env[expr.target.id] = origin
        return origin
    if isinstance(expr, ast.Call):
        source = _call_source(expr, ctx)
        if source is not None:
            return source
        if isinstance(expr.func, ast.Name) and expr.func.id in EXACT_CALLS:
            for arg in _call_args(expr):
                eval_taint(arg, env, ctx)  # walrus side effects only
            return None
        origins = []
        if isinstance(expr.func, ast.Attribute):
            origins.append(eval_taint(expr.func.value, env, ctx))
        origins.extend(eval_taint(arg, env, ctx)
                       for arg in _call_args(expr))
        return next((o for o in origins if o is not None), None)
    if isinstance(expr, ast.BinOp):
        left = eval_taint(expr.left, env, ctx)
        right = eval_taint(expr.right, env, ctx)
        if left is not None or right is not None:
            return left if left is not None else right
        if isinstance(expr.op, ast.Div):
            if is_fraction_expr(expr.left, ctx) \
                    or is_fraction_expr(expr.right, ctx):
                return None  # Fraction division stays exact
            return ("true division between values not proven exact "
                    f"({_loc(expr)})")
        return None
    if isinstance(expr, ast.UnaryOp):
        origin = eval_taint(expr.operand, env, ctx)
        return None if isinstance(expr.op, ast.Not) else origin
    if isinstance(expr, ast.BoolOp):
        for value in expr.values:
            origin = eval_taint(value, env, ctx)
            if origin is not None:
                return origin
        return None
    if isinstance(expr, ast.Compare):
        eval_taint(expr.left, env, ctx)
        for comp in expr.comparators:
            eval_taint(comp, env, ctx)
        return None  # comparisons produce booleans
    if isinstance(expr, ast.IfExp):
        eval_taint(expr.test, env, ctx)
        body = eval_taint(expr.body, env, ctx)
        orelse = eval_taint(expr.orelse, env, ctx)
        return body if body is not None else orelse
    if isinstance(expr, ast.Subscript):
        origin = eval_taint(expr.value, env, ctx)
        eval_taint(expr.slice, env, ctx)
        return origin
    if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        for el in expr.elts:
            origin = eval_taint(el, env, ctx)
            if origin is not None:
                return origin
        return None
    if isinstance(expr, ast.Dict):
        for key, value in zip(expr.keys, expr.values):
            if key is not None and (o := eval_taint(key, env, ctx)):
                return o
            if (o := eval_taint(value, env, ctx)) is not None:
                return o
        return None
    if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
        return _comprehension_taint(expr, [expr.elt], env, ctx)
    if isinstance(expr, ast.DictComp):
        return _comprehension_taint(expr, [expr.key, expr.value], env, ctx)
    if isinstance(expr, ast.Starred):
        return eval_taint(expr.value, env, ctx)
    if isinstance(expr, ast.Await):
        return eval_taint(expr.value, env, ctx)
    if isinstance(expr, ast.JoinedStr):
        return None
    if isinstance(expr, ast.Lambda):
        return None
    if isinstance(expr, ast.Slice):
        return None
    return None


def _call_args(call: ast.Call) -> Iterator[ast.AST]:
    yield from call.args
    for kw in call.keywords:
        yield kw.value


def _comprehension_taint(expr, results, env: TaintEnv,
                         ctx: ModuleTaint) -> Optional[str]:
    """Comprehension scoping: targets bind locally, never leak outward."""
    inner = dict(env)
    for gen in expr.generators:
        iter_origin = eval_taint(gen.iter, inner, ctx)
        bind_targets(gen.target, iter_origin, inner)
        for cond in gen.ifs:
            eval_taint(cond, inner, ctx)
    for result in results:
        origin = eval_taint(result, inner, ctx)
        if origin is not None:
            return origin
    return None


def bind_targets(target: ast.AST, origin: Optional[str],
                 env: TaintEnv) -> None:
    """Apply one assignment's taint to its target pattern."""
    if isinstance(target, (ast.Tuple, ast.List)):
        for el in target.elts:
            bind_targets(el, origin, env)
        return
    if isinstance(target, ast.Starred):
        bind_targets(target.value, origin, env)
        return
    key = _dotted(target)
    if isinstance(target, ast.Subscript):
        # Storing into a container taints the container binding.
        base = _dotted(target.value)
        if base is not None and origin is not None:
            env[base] = origin
        return
    if key is None:
        return
    if origin is None:
        env.pop(key, None)
    else:
        env[key] = origin


def unpack_assign(target: ast.AST, value: ast.AST, env: TaintEnv,
                  ctx: ModuleTaint) -> None:
    """Element-wise tuple unpacking when both sides are literal tuples."""
    if isinstance(target, (ast.Tuple, ast.List)) \
            and isinstance(value, (ast.Tuple, ast.List)) \
            and len(target.elts) == len(value.elts) \
            and not any(isinstance(el, ast.Starred) for el in target.elts):
        for t, v in zip(target.elts, value.elts):
            unpack_assign(t, v, env, ctx)
        return
    bind_targets(target, eval_taint(value, env, ctx), env)


def transfer_stmt(stmt: ast.stmt, env: TaintEnv,
                  ctx: ModuleTaint) -> TaintEnv:
    """Forward transfer of one CFG element; returns the updated env."""
    env = dict(env)
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            unpack_assign(target, stmt.value, env, ctx)
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        unpack_assign(stmt.target, stmt.value, env, ctx)
    elif isinstance(stmt, ast.AugAssign):
        value_origin = eval_taint(stmt.value, env, ctx)
        key = _dotted(stmt.target)
        existing = env.get(key) if key is not None else None
        origin: Optional[str] = value_origin or existing
        if origin is None and isinstance(stmt.op, ast.Div) \
                and not is_fraction_expr(stmt.target, ctx):
            origin = f"in-place true division ({_loc(stmt)})"
        bind_targets(stmt.target, origin, env)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        bind_targets(stmt.target, eval_taint(stmt.iter, env, ctx), env)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            origin = eval_taint(item.context_expr, env, ctx)
            if item.optional_vars is not None:
                bind_targets(item.optional_vars, origin, env)
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            key = _dotted(target)
            if key is not None:
                env.pop(key, None)
    elif isinstance(stmt, ast.Expr):
        eval_taint(stmt.value, env, ctx)  # walrus side effects
    elif isinstance(stmt, (ast.If, ast.While)):
        eval_taint(stmt.test, env, ctx)
    elif isinstance(stmt, ast.Return) and stmt.value is not None:
        eval_taint(stmt.value, env, ctx)
    return env


def join_envs(a: TaintEnv, b: TaintEnv) -> TaintEnv:
    """Union of tainted names; smallest origin wins for determinism."""
    if a == b:
        return a
    out = dict(a)
    for name, origin in b.items():
        if name in out:
            out[name] = min(out[name], origin)
        else:
            out[name] = origin
    return out
