"""Solver-aware static analysis for the repro codebase.

Every hardening PR in this repo's history fixed a bug a *static* check
would have caught earlier: trail-hygiene violations in
``Simplex.undo_to()``, Connection leaks on worker exit paths, protocol
frame drift between producers and consumers, a blocking sleep on the
service's async path.  This package turns those bug classes into
repo-specific AST checkers with a CI gate.

Architecture
------------

* :mod:`repro.analysis.core` — the engine: :class:`Finding`,
  :class:`ModuleUnit` (parsed file + suppression map), the
  :class:`Checker` contract (per-module and cross-module project
  checks), and :func:`analyze`.
* :mod:`repro.analysis.checkers` — the rule catalog (one module per
  rule; see ``docs/analysis.md``).
* :mod:`repro.analysis.cli` / ``python -m repro.analysis`` — human and
  JSON output, exit status 1 on any unsuppressed finding.

Findings are suppressed in source with a justifying pragma on the
offending line or the comment line directly above it::

    time.sleep(delay)  # repro: allow[async-blocking] runs in executor

Rules fire only inside their declared scope (e.g. ``exact-arith`` only
in the exact solver cores), so the toolkit stays quiet by construction
everywhere a rule's invariant does not apply.
"""

from .core import (
    Checker,
    Finding,
    ModuleUnit,
    Report,
    analyze,
    load_unit,
    scan_suppressions,
)

__all__ = [
    "Checker",
    "Finding",
    "ModuleUnit",
    "Report",
    "analyze",
    "load_unit",
    "scan_suppressions",
]
