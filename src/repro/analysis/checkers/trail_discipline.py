"""``trail-discipline``: trail-backed state mutates only through its helpers.

PR 5 fixed backjump-hygiene bugs in ``Simplex.undo_to()``: state that
the trail is supposed to restore had been touched by code that did not
record an undo entry, so a backjump silently desynchronized bounds from
the SAT trail.  The invariant since then: every mutation of a
trail-backed structure goes through the small set of methods that pair
the mutation with its trail record (or replay the trail).

This rule hard-codes that contract per exact module: a registered
attribute set and the methods allowed to mutate it.  Any other method
assigning to, deleting from, or calling a mutating method on
``self.<attr>`` is a finding.  Reads are always fine.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Optional, Set, Tuple

from ..core import Checker, Finding, ModuleUnit

RULE = "trail-discipline"

_MUTATORS = {"append", "extend", "insert", "pop", "remove", "clear",
             "add", "discard", "update", "setdefault", "popitem"}

#: module -> (trail-backed attribute names, methods allowed to mutate them)
DEFAULT_CONTRACTS: Dict[str, Tuple[Set[str], Set[str]]] = {
    "repro.smt.simplex": (
        {"_lower", "_upper", "_lower_lit", "_upper_lit", "_trail",
         "touched_bounds"},
        {"__init__", "new_var", "undo_to", "assert_lower", "assert_upper"},
    ),
    "repro.smt.difflogic": (
        {"_out", "_in", "_trail", "_fresh"},
        {"__init__", "new_node", "undo_to", "assert_constraint",
         "_rescale", "implied_bounds"},
    ),
}


def _self_attr(node: ast.AST) -> Optional[str]:
    """The ``attr`` in a ``self.<attr>[...][...]`` access chain, if any."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


class TrailDisciplineChecker(Checker):
    rule = RULE
    description = "trail-backed state mutated outside its recording helpers"
    scope = tuple(sorted(DEFAULT_CONTRACTS))

    def __init__(self,
                 contracts: Optional[Dict[str, Tuple[Set[str], Set[str]]]]
                 = None) -> None:
        self.contracts = contracts if contracts is not None \
            else DEFAULT_CONTRACTS
        self.scope = tuple(sorted(self.contracts))

    def check_module(self, unit: ModuleUnit) -> Iterable[Finding]:
        attrs, allowed = self.contracts[unit.module]
        for cls in ast.walk(unit.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            for method in cls.body:
                if not isinstance(method, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                    continue
                if method.name in allowed:
                    continue
                yield from self._scan_method(unit, method, attrs)

    def _scan_method(self, unit: ModuleUnit, method: ast.FunctionDef,
                     attrs: Set[str]) -> Iterable[Finding]:
        for node in ast.walk(method):
            targets = ()
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = (node.target,)
            elif isinstance(node, ast.Delete):
                targets = node.targets
            for target in targets:
                attr = _self_attr(target)
                if attr in attrs:
                    yield Finding(
                        rule=RULE, path=unit.path, line=node.lineno,
                        message=f"trail-backed self.{attr} mutated in "
                                f"{method.name}(), which is not a "
                                "registered trail-recording helper")
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATORS):
                attr = _self_attr(node.func.value)
                if attr in attrs:
                    yield Finding(
                        rule=RULE, path=unit.path, line=node.lineno,
                        message=f"trail-backed self.{attr}."
                                f"{node.func.attr}() called in "
                                f"{method.name}(), which is not a "
                                "registered trail-recording helper")
