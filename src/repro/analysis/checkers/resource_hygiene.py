"""``resource-hygiene``: pipes and processes must be reaped on every path.

PR 7's leak class: a worker ``Connection`` or ``Process`` created in a
function where the cleanup call (``close`` / ``terminate`` / ``join``)
sits only on the happy path — an early return or exception path leaks
the fd or zombifies the child.

The rule finds ``...Pipe()`` tuple bindings and ``...Process(...)``
bindings to local names inside each function and requires, per bound
name, one of:

* the name **escapes** the function (returned, stored on an object or
  container, passed to a call) — ownership is transferred and the
  recipient is responsible;
* a cleanup call on the name that is not *conditional-only*: at least
  one cleanup sits in a ``finally`` block or on an unconditional
  statement path (not exclusively inside ``if`` arms or ``except``
  handlers).

This is a lexical approximation, not a full CFG — it is tuned to catch
the historical leak shape (cleanup only in an error branch) without
flagging the supervised teardown idioms the portfolio engine uses.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core import Checker, Finding, ModuleUnit

RULE = "resource-hygiene"

_CLEANUP_METHODS = {"close", "terminate", "join", "kill"}
_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _call_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class ResourceHygieneChecker(Checker):
    rule = RULE
    description = "Pipe/Process cleanup reachable on all exit paths"
    scope = ("repro.portfolio.", "repro.service.")

    def __init__(self, scope: Optional[Tuple[str, ...]] = None) -> None:
        if scope is not None:
            self.scope = scope

    def check_module(self, unit: ModuleUnit) -> Iterable[Finding]:
        for node in ast.walk(unit.tree):
            if isinstance(node, _FUNC_NODES):
                yield from self._check_function(unit, node)

    def _check_function(self, unit: ModuleUnit,
                        func: ast.FunctionDef) -> Iterable[Finding]:
        parents = self._parent_map(func)
        resources: Dict[str, Tuple[int, str]] = {}  # name -> (line, what)
        for node in ast.walk(func):
            if node is not func and isinstance(node, _FUNC_NODES):
                continue  # nested functions get their own pass
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            kind = _call_name(node.value.func)
            if kind == "Pipe":
                for target in node.targets:
                    if isinstance(target, ast.Tuple):
                        for el in target.elts:
                            if isinstance(el, ast.Name):
                                resources[el.id] = (node.lineno, "connection")
                    elif isinstance(target, ast.Name):
                        resources[target.id] = (node.lineno, "pipe")
            elif kind == "Process":
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        resources[target.id] = (node.lineno, "process")
        if not resources:
            return
        escaped: Set[str] = set()
        cleanups: Dict[str, List[ast.AST]] = {name: [] for name in resources}
        for node in ast.walk(func):
            if not (isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in resources):
                continue
            parent = parents.get(node)
            if isinstance(parent, ast.Attribute):
                call = parents.get(parent)
                if (isinstance(call, ast.Call) and call.func is parent
                        and parent.attr in _CLEANUP_METHODS):
                    cleanups[node.id].append(call)
                # plain attribute access (conn.poll(), proc.pid): not escape
                continue
            escaped.add(node.id)
        for name, (line, what) in sorted(resources.items()):
            if name in escaped:
                continue
            calls = cleanups[name]
            if not calls:
                yield Finding(
                    rule=RULE, path=unit.path, line=line,
                    message=f"{what} {name!r} is created here but never "
                            "closed, joined or handed off")
            elif not any(self._unconditional(c, func, parents)
                         for c in calls):
                yield Finding(
                    rule=RULE, path=unit.path, line=line,
                    message=f"{what} {name!r} is only cleaned up on "
                            "conditional paths; move a cleanup into a "
                            "finally block or the unconditional path")

    @staticmethod
    def _parent_map(root: ast.AST) -> Dict[ast.AST, ast.AST]:
        parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(root):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        return parents

    @staticmethod
    def _unconditional(node: ast.AST, func: ast.AST,
                       parents: Dict[ast.AST, ast.AST]) -> bool:
        """True if ``node`` is in a finally block or on no conditional arm."""
        child = node
        cur = parents.get(node)
        while cur is not None and cur is not func:
            if isinstance(cur, ast.Try):
                if child in cur.finalbody:
                    return True
            elif isinstance(cur, ast.ExceptHandler):
                return False  # cleanup only on the exception path
            elif isinstance(cur, (ast.If, ast.While, ast.For)):
                return False  # conditional arm / possibly-zero iterations
            child, cur = cur, parents.get(cur)
        return True
