"""``resource-hygiene`` v2: cleanup must be *reachable on every path*.

PR 7's leak class: a worker ``Connection`` or ``Process`` created in a
function where the cleanup call (``close`` / ``terminate`` / ``join`` /
``kill``) sits only on the happy path — an early return or exception
path leaks the fd or zombifies the child.

v1 was lexical ("some cleanup exists and at least one is not inside an
``if`` arm"), which both missed conditional-only closes hidden behind
gotos-in-disguise (``break``, early ``return``) and flagged perfectly
fine ``with``-managed resources.  v2 runs a backward **must**-analysis
over the :mod:`repro.analysis.dataflow` CFG: the fact is the set of
names guaranteed to be *released* on every path to the function exit,
with intersection as the meet.  A release is:

* a cleanup method call on the name;
* ownership escape — the bare name returned, stored, passed to a call
  (``contextlib.closing(conn)`` is therefore a release), or put in a
  container: the recipient is responsible;
* a ``with`` binding or a ``with`` whose context expression is the name
  (``__exit__`` runs on every path out of the block).

A creation site is flagged when its name is not in the must-release set
immediately after the creation: either no release exists at all, or
every release sits on a conditional path (the finally-cloned CFG makes
``try/finally`` cleanup count on *all* abrupt exits, so the classic
fix — move the close into ``finally`` — silences the rule for real).
Rebinding a name kills the guarantee for the old object.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from ..core import Checker, Finding, ModuleUnit
from ..dataflow import build_cfg, header_exprs, solve
from ..dataflow.solver import run_block

RULE = "resource-hygiene"

_CLEANUP_METHODS = {"close", "terminate", "join", "kill"}
_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def _call_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that skips nested def/class/lambda bodies."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, _DEFS):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _creation_bindings(stmt: ast.stmt) -> List[Tuple[str, int, str]]:
    """``(name, line, what)`` for resource constructors bound by ``stmt``."""
    if not (isinstance(stmt, ast.Assign)
            and isinstance(stmt.value, ast.Call)):
        return []
    kind = _call_name(stmt.value.func)
    out: List[Tuple[str, int, str]] = []
    if kind == "Pipe":
        for target in stmt.targets:
            if isinstance(target, ast.Tuple):
                for el in target.elts:
                    if isinstance(el, ast.Name):
                        out.append((el.id, stmt.lineno, "connection"))
            elif isinstance(target, ast.Name):
                out.append((target.id, stmt.lineno, "pipe"))
    elif kind == "Process":
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                out.append((target.id, stmt.lineno, "process"))
    return out


def _scan_roots(stmt: ast.stmt) -> List[ast.AST]:
    """The expression roots one CFG element actually evaluates."""
    headers = header_exprs(stmt)
    if headers is None:
        return [stmt]
    roots: List[ast.AST] = list(headers)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        roots.extend(item.optional_vars for item in stmt.items
                     if item.optional_vars is not None)
    return roots


class ResourceHygieneChecker(Checker):
    rule = RULE
    description = "Pipe/Process cleanup must reach every exit path"
    scope = ("repro.portfolio.", "repro.service.")

    def __init__(self, scope: Optional[Tuple[str, ...]] = None) -> None:
        if scope is not None:
            self.scope = scope

    def check_module(self, unit: ModuleUnit) -> Iterable[Finding]:
        for node in ast.walk(unit.tree):
            if isinstance(node, _FUNC_NODES):
                yield from self._check_function(unit, node)

    def _check_function(self, unit: ModuleUnit,
                        func: ast.AST) -> Iterator[Finding]:
        names: Set[str] = set()
        for node in _walk_shallow(func):
            if isinstance(node, ast.stmt):
                names.update(n for n, _, _ in _creation_bindings(node))
        if not names:
            return
        cfg = build_cfg(func)

        def step(stmt: ast.stmt, fact: FrozenSet[str]) -> FrozenSet[str]:
            return self._transfer(stmt, fact, names)

        def transfer(block, fact):
            return run_block(block, fact, step, backward=True)

        facts = solve(cfg, direction="backward",
                      init=frozenset(names), boundary=frozenset(),
                      transfer=transfer,
                      join=lambda a, b: a & b)
        released_somewhere = self._any_release_sites(func, names)
        for block in cfg.blocks:
            fact = facts[block.id][1]  # fact at the block's exit
            for stmt in reversed(block.stmts):
                fact_after = fact
                fact = step(stmt, fact)
                for name, line, what in _creation_bindings(stmt):
                    if name in fact_after:
                        continue
                    if name in released_somewhere:
                        message = (f"{what} {name!r} is not released on "
                                   "every path from here; move a cleanup "
                                   "into a finally block or the "
                                   "unconditional path")
                    else:
                        message = (f"{what} {name!r} is created here but "
                                   "never closed, joined or handed off")
                    yield Finding(rule=RULE, path=unit.path, line=line,
                                  message=message)

    # -- transfer --------------------------------------------------------

    def _transfer(self, stmt: ast.stmt, fact: FrozenSet[str],
                  names: Set[str]) -> FrozenSet[str]:
        out = set(fact)
        out.difference_update(self._killed(stmt, names))
        out.update(self._released(stmt, names))
        return frozenset(out)

    @staticmethod
    def _killed(stmt: ast.stmt, names: Set[str]) -> Set[str]:
        """Names rebound by this element (old object loses its releases)."""
        killed: Set[str] = set()

        def targets_of(node: ast.AST) -> Iterator[ast.AST]:
            if isinstance(node, ast.Assign):
                yield from node.targets
            elif isinstance(node, ast.AnnAssign):
                yield node.target
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield node.target

        def collect(target: ast.AST) -> None:
            if isinstance(target, ast.Name) and target.id in names:
                killed.add(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for el in target.elts:
                    collect(el)
            elif isinstance(target, ast.Starred):
                collect(target.value)

        if header_exprs(stmt) is None or isinstance(
                stmt, (ast.For, ast.AsyncFor)):
            for target in targets_of(stmt):
                collect(target)
        return killed

    def _released(self, stmt: ast.stmt, names: Set[str]) -> Set[str]:
        released: Set[str] = set()
        for root in _scan_roots(stmt):
            nodes = [root, *_walk_shallow(root)]
            parents: Dict[ast.AST, ast.AST] = {}
            for node in nodes:
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            for node in nodes:
                if isinstance(node, ast.Name) and node.id in names:
                    parent = parents.get(node)
                    if isinstance(parent, ast.Attribute) \
                            and parent.value is node:
                        call = parents.get(parent)
                        if (isinstance(call, ast.Call)
                                and call.func is parent
                                and parent.attr in _CLEANUP_METHODS):
                            released.add(node.id)
                        # plain attribute access (conn.poll(), proc.pid):
                        # neither escape nor cleanup
                        continue
                    if isinstance(node.ctx, ast.Load):
                        # bare use: returned / stored / passed / contained
                        # — ownership transfers (closing(conn), with conn)
                        released.add(node.id)
                    elif isinstance(node.ctx, ast.Store) and isinstance(
                            stmt, (ast.With, ast.AsyncWith)):
                        # with ... as name: __exit__ releases it
                        released.add(node.id)
        return released

    def _any_release_sites(self, func: ast.AST,
                           names: Set[str]) -> Set[str]:
        """Names with at least one release anywhere (message selection)."""
        released: Set[str] = set()
        for node in _walk_shallow(func):
            if isinstance(node, ast.stmt):
                released.update(self._released(node, names))
        return released
