"""``frame-protocol``: pipe traffic must follow the frame state machine.

``frame-drift`` checks the *vocabulary* (every kind is registered and
has both a producer and a consumer); this rule checks the *grammar*:
the order of frames on one Connection, as
:data:`repro.portfolio.frames.PIPE_PROTOCOL` specifies and the
consumers implement — heartbeat/artifact frames may stream before
exactly one result (``pump()`` stops reading at the result, so anything
after it is never consumed), ``request`` opens an exchange that must be
answered before the next one, ``shutdown``/``close()`` are terminal.

Per function, every connection expression (``conn``, ``self._conn``,
``att.conn``) gets a may-set of protocol states propagated forward over
the :mod:`repro.analysis.dataflow` CFG (union join, so a state that is
possible on *some* path is checked).  A ``send`` whose frame kind
resolves — a dict literal with a ``"kind"`` key, or a call to a frame
constructor harvested cross-file (any in-scope function returning such
a literal, e.g. ``heartbeat_frame``) — must be legal from every state
in the set; sends whose kind cannot be resolved statically are skipped
rather than guessed.  ``recv()`` starts a fresh exchange.

Two module-scoped extras ride along: the knowledge cache may only
construct ``ARTIFACT_*`` kinds (pipe envelopes never reach the cache),
and so may the sharing module's artifact builders.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..core import Checker, Finding, ModuleUnit
from ..dataflow import build_cfg, header_exprs, solve
from ..dataflow.solver import run_block

RULE = "frame-protocol"

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)

#: Modules whose ``{"kind": ...}`` literals must all be artifact kinds.
_ARTIFACT_ONLY_MODULES = ("repro.service.cache", "repro.portfolio.sharing")

StateSet = FrozenSet[str]
ProtoEnv = Dict[str, StateSet]


def _registry():
    from repro.portfolio import frames
    consts = {
        name: value for name, value in vars(frames).items()
        if isinstance(value, str) and not name.startswith("_")
    }
    return (consts, frames.PIPE_PROTOCOL, frames.ARTIFACT_KINDS,
            frames.PROTOCOL_START, frames.PROTOCOL_CLOSED)


def _walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, _DEFS):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _dotted(expr: ast.AST) -> Optional[str]:
    """``conn`` / ``self._conn`` / ``att.conn`` receiver names."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        return f"{expr.value.id}.{expr.attr}"
    return None


class _PipeCall:
    """One ``<conn>.send/recv/close(...)`` call in program order."""

    __slots__ = ("conn", "method", "node")

    def __init__(self, conn: str, method: str, node: ast.Call) -> None:
        self.conn = conn
        self.method = method
        self.node = node


class FrameProtocolChecker(Checker):
    rule = RULE
    description = "frame send/recv order vs. the pipe protocol machine"
    scope = (
        "repro.portfolio.engine",
        "repro.portfolio.sharing",
        "repro.portfolio.supervision",
        "repro.service.cache",
        "repro.service.server",
        "repro.service.workers",
    )

    def __init__(self, scope: Optional[Tuple[str, ...]] = None) -> None:
        if scope is not None:
            self.scope = scope
        (self._consts, self._protocol, self._artifact_kinds,
         self._start, self._closed) = _registry()

    # -- cross-file driver ----------------------------------------------

    def check_project(self, units: Sequence[ModuleUnit]) -> Iterable[Finding]:
        constructors = self._harvest_constructors(units)
        for unit in units:
            if unit.module in _ARTIFACT_ONLY_MODULES:
                yield from self._check_artifact_only(unit)
            for node in ast.walk(unit.tree):
                if isinstance(node, _FUNC_NODES):
                    yield from self._check_function(unit, node, constructors)

    def _harvest_constructors(self,
                              units: Sequence[ModuleUnit]) -> Dict[str, str]:
        """Function name -> frame kind, for every in-scope frame builder."""
        constructors: Dict[str, str] = {}
        for unit in units:
            for node in ast.walk(unit.tree):
                if not isinstance(node, _FUNC_NODES):
                    continue
                kinds = {
                    kind for child in _walk_shallow(node)
                    if isinstance(child, ast.Dict)
                    for kind in [self._dict_kind(child)]
                    if kind is not None
                }
                if len(kinds) == 1:
                    constructors[node.name] = next(iter(kinds))
        return constructors

    # -- kind resolution -------------------------------------------------

    def _resolve_const(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        return self._consts.get(name) if name is not None else None

    def _dict_kind(self, node: ast.Dict) -> Optional[str]:
        for key, value in zip(node.keys, node.values):
            if (isinstance(key, ast.Constant) and key.value == "kind"):
                return self._resolve_const(value)
        return None

    def _frame_kind(self, arg: ast.AST, fn: ast.AST,
                    constructors: Dict[str, str]) -> Optional[str]:
        """The kind ``conn.send(arg)`` puts on the wire, if resolvable."""
        if isinstance(arg, ast.Dict):
            return self._dict_kind(arg)
        if isinstance(arg, ast.Call):
            name = None
            if isinstance(arg.func, ast.Name):
                name = arg.func.id
            elif isinstance(arg.func, ast.Attribute):
                name = arg.func.attr
            if name is not None:
                return constructors.get(name)
        if isinstance(arg, ast.Name):
            kinds = set()
            for node in _walk_shallow(fn):
                if not (isinstance(node, ast.Assign)
                        and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Name)
                        and node.targets[0].id == arg.id):
                    continue
                kinds.add(self._frame_kind(node.value, fn, constructors))
            if len(kinds) == 1:
                return next(iter(kinds))
        return None

    # -- per-function state machine --------------------------------------

    def _pipe_calls(self, stmt: ast.stmt) -> List[_PipeCall]:
        """send/recv/close calls one CFG element evaluates, in order."""
        headers = header_exprs(stmt)
        roots: List[ast.AST] = list(headers) if headers is not None \
            else [stmt]
        calls: List[_PipeCall] = []
        for root in roots:
            for node in [root, *_walk_shallow(root)]:
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in ("send", "recv", "close")):
                    continue
                conn = _dotted(node.func.value)
                if conn is not None:
                    calls.append(_PipeCall(conn, node.func.attr, node))
        calls.sort(key=lambda c: (c.node.lineno, c.node.col_offset))
        return calls

    def _check_function(self, unit: ModuleUnit, fn: ast.AST,
                        constructors: Dict[str, str]) -> Iterator[Finding]:
        sends: List[Tuple[_PipeCall, str]] = []
        conns: Set[str] = set()
        for node in _walk_shallow(fn):
            if isinstance(node, ast.stmt):
                for call in self._pipe_calls(node):
                    conns.add(call.conn)
                    if call.method == "send" and call.node.args:
                        kind = self._frame_kind(call.node.args[0], fn,
                                                constructors)
                        if kind is not None and kind in self._protocol:
                            sends.append((call, kind))
        if not sends:
            return
        cfg = build_cfg(fn)
        start: StateSet = frozenset({self._start})

        def step(stmt: ast.stmt, env: ProtoEnv) -> ProtoEnv:
            for call in self._pipe_calls(stmt):
                env = self._apply_call(call, env, fn, constructors)
            return env

        def transfer(block, env):
            return run_block(block, env, step)

        def join(a: ProtoEnv, b: ProtoEnv) -> ProtoEnv:
            out: ProtoEnv = {}
            for key in set(a) | set(b):
                out[key] = a.get(key, start) | b.get(key, start)
            return out

        facts = solve(cfg, direction="forward", init={},
                      boundary={c: start for c in conns},
                      transfer=transfer, join=join)
        flagged_sends = {id(call.node): kind for call, kind in sends}
        for block in cfg.blocks:
            env = facts[block.id][0]
            for stmt in block.stmts:
                for call in self._pipe_calls(stmt):
                    kind = flagged_sends.get(id(call.node))
                    if kind is not None:
                        states = env.get(call.conn, start)
                        bad = states - self._protocol[kind][0]
                        if bad:
                            yield self._violation(unit, call, kind, bad)
                    env = self._apply_call(call, env, fn, constructors)

    def _apply_call(self, call: _PipeCall, env: ProtoEnv, fn: ast.AST,
                    constructors: Dict[str, str]) -> ProtoEnv:
        """One pipe call's effect on the per-connection state sets."""
        out = dict(env)
        if call.method == "recv":
            out[call.conn] = frozenset({self._start})
        elif call.method == "close":
            out[call.conn] = frozenset({self._closed})
        elif call.method == "send" and call.node.args:
            kind = self._frame_kind(call.node.args[0], fn, constructors)
            if kind is not None and kind in self._protocol:
                out[call.conn] = frozenset({self._protocol[kind][1]})
        return out

    def _violation(self, unit: ModuleUnit, call: _PipeCall, kind: str,
                   bad: StateSet) -> Finding:
        detail = {
            "done": "consumers stop reading after the first result frame",
            "closed": "the connection is already closed or shut down",
            "await": "the previous request has not been answered yet",
            "streaming": "streamed frames are already in flight",
        }
        reasons = "; ".join(detail[s] for s in sorted(bad) if s in detail)
        if not reasons:
            reasons = "illegal per the pipe protocol state machine"
        state_list = ", ".join(sorted(bad))
        return Finding(
            rule=RULE, path=unit.path, line=call.node.lineno,
            message=f"{kind!r} frame sent on `{call.conn}` which may be "
                    f"in state {state_list} here — {reasons}")

    # -- artifact-only modules -------------------------------------------

    def _check_artifact_only(self, unit: ModuleUnit) -> Iterator[Finding]:
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Dict):
                continue
            kind = self._dict_kind(node)
            if kind is not None and kind not in self._artifact_kinds:
                yield Finding(
                    rule=RULE, path=unit.path, line=node.lineno,
                    message=f"{kind!r} frame constructed in an artifact-"
                            "only module — cache entries and sharing "
                            "payloads carry ARTIFACT_* kinds only")
