"""``frame-drift``: every ``{"kind": ...}`` frame checked against the registry.

PR 4's phantom-``unsat`` bug was protocol drift: a producer shipping a
payload shape no consumer fully handled.  The wire vocabulary now lives
in :mod:`repro.portfolio.frames`; this cross-file rule enforces it:

* construction sites (``{"kind": X, ...}`` dict literals and
  ``frame["kind"] = X`` stores) must use a registry constant, not a
  bare string;
* every constructed kind must resolve to a registry member;
* every kind a consumer dispatches on (``== / != / in`` comparisons
  against a ``.get("kind")`` / ``["kind"]`` expression or a ``kind``
  variable) must be a registry member;
* project-wide, every constructed kind must have at least one consumer
  dispatch and vice versa — a frame nobody reads (or a dispatch arm
  nothing can reach) is drift.

Fault injection deliberately forges an off-registry kind to exercise
quarantine; that one site carries a justifying suppression.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core import Checker, Finding, ModuleUnit

RULE = "frame-drift"

_SET_NAMES = ("PIPE_KINDS", "ARTIFACT_KINDS", "EVENT_KINDS", "FRAME_KINDS")


def _registry() -> Tuple[Dict[str, str], Dict[str, frozenset]]:
    """(constant name -> kind string, set name -> kind strings)."""
    from repro.portfolio import frames
    consts = {
        name: value for name, value in vars(frames).items()
        if isinstance(value, str) and not name.startswith("_")
    }
    sets = {name: getattr(frames, name) for name in _SET_NAMES
            if hasattr(frames, name)}
    return consts, sets


class _Site:
    __slots__ = ("kind", "path", "line")

    def __init__(self, kind: str, path: str, line: int) -> None:
        self.kind = kind
        self.path = path
        self.line = line


class FrameDriftChecker(Checker):
    rule = RULE
    description = "frame kinds vs. the repro.portfolio.frames registry"
    scope = (
        "repro.core.synthesizer",
        "repro.portfolio.engine",
        "repro.portfolio.faults",
        "repro.portfolio.sharing",
        "repro.portfolio.supervision",
        "repro.service.cache",
        "repro.service.server",
        "repro.service.workers",
    )

    def __init__(self, scope: Optional[Tuple[str, ...]] = None) -> None:
        if scope is not None:
            self.scope = scope
        self._consts, self._sets = _registry()
        self._kinds = frozenset().union(*self._sets.values()) \
            if self._sets else frozenset(self._consts.values())

    # -- resolution ------------------------------------------------------

    def _resolve(self, node: ast.AST) -> Optional[str]:
        """The kind string a Name/Attribute/Constant expression denotes."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is not None:
            return self._consts.get(name)
        return None

    @staticmethod
    def _is_kind_expr(node: ast.AST) -> bool:
        """``x.get("kind")`` / ``x["kind"]`` / a variable named ``kind``."""
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get" and node.args
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value == "kind"):
            return True
        if (isinstance(node, ast.Subscript)
                and isinstance(node.slice, ast.Constant)
                and node.slice.value == "kind"):
            return True
        return isinstance(node, ast.Name) and node.id == "kind"

    # -- collection ------------------------------------------------------

    def _constructions(self, unit: ModuleUnit,
                       out: List[_Site]) -> Iterable[Finding]:
        for node in ast.walk(unit.tree):
            value = None
            if isinstance(node, ast.Dict):
                for key, val in zip(node.keys, node.values):
                    if (isinstance(key, ast.Constant)
                            and key.value == "kind"):
                        value = val
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (isinstance(target, ast.Subscript)
                            and isinstance(target.slice, ast.Constant)
                            and target.slice.value == "kind"):
                        value = node.value
            if value is None:
                continue
            line = value.lineno
            if isinstance(value, ast.Constant) and isinstance(value.value,
                                                              str):
                yield Finding(
                    rule=RULE, path=unit.path, line=line,
                    message=f"frame kind constructed as bare literal "
                            f"{value.value!r}; use the "
                            "repro.portfolio.frames constant")
                continue
            kind = self._resolve(value)
            if kind is None:
                yield Finding(
                    rule=RULE, path=unit.path, line=line,
                    message="frame kind constructed from an expression the "
                            "registry cannot resolve")
            elif kind not in self._kinds:
                yield Finding(
                    rule=RULE, path=unit.path, line=line,
                    message=f"constructed frame kind {kind!r} is not in "
                            "the frames registry")
            else:
                out.append(_Site(kind, unit.path, line))

    def _consumptions(self, unit: ModuleUnit,
                      out: List[_Site]) -> Iterable[Finding]:
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Compare) or len(node.ops) != 1:
                continue
            left, right = node.left, node.comparators[0]
            op = node.ops[0]
            if isinstance(op, (ast.In, ast.NotIn)):
                # kind in ARTIFACT_KINDS — dispatches on the whole set.
                if self._is_kind_expr(left):
                    set_name = None
                    if isinstance(right, ast.Name):
                        set_name = right.id
                    elif isinstance(right, ast.Attribute):
                        set_name = right.attr
                    if set_name in self._sets:
                        for kind in sorted(self._sets[set_name]):
                            out.append(_Site(kind, unit.path, node.lineno))
                continue
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for kind_side, value_side in ((left, right), (right, left)):
                if not self._is_kind_expr(kind_side):
                    continue
                kind = self._resolve(value_side)
                if kind is None:
                    continue
                if kind not in self._kinds:
                    yield Finding(
                        rule=RULE, path=unit.path, line=node.lineno,
                        message=f"consumer dispatches on frame kind "
                                f"{kind!r} which is not in the frames "
                                "registry")
                else:
                    out.append(_Site(kind, unit.path, node.lineno))

    # -- the cross-file check --------------------------------------------

    def check_project(self, units: Sequence[ModuleUnit],
                      ) -> Iterable[Finding]:
        constructed: List[_Site] = []
        consumed: List[_Site] = []
        for unit in units:
            yield from self._constructions(unit, constructed)
            yield from self._consumptions(unit, consumed)
        consumed_kinds = {site.kind for site in consumed}
        constructed_kinds = {site.kind for site in constructed}
        reported = set()
        for site in constructed:
            if site.kind not in consumed_kinds and site.kind not in reported:
                reported.add(site.kind)
                yield Finding(
                    rule=RULE, path=site.path, line=site.line,
                    message=f"frame kind {site.kind!r} is constructed but "
                            "no consumer dispatches on it")
        for site in consumed:
            if (site.kind not in constructed_kinds
                    and site.kind not in reported):
                reported.add(site.kind)
                yield Finding(
                    rule=RULE, path=site.path, line=site.line,
                    message=f"consumer dispatches on frame kind "
                            f"{site.kind!r} but nothing constructs it")
