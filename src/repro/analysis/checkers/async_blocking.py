"""``async-blocking``: no blocking calls on the service's event loop.

The synthesis server is a single asyncio loop fronting process workers;
one blocking call inside a coroutine stalls every connected client,
heartbeat and deadline at once.  Inside ``async def`` bodies in
``repro/service/`` this rule flags:

* ``time.sleep(...)`` (use ``await asyncio.sleep``),
* ``.recv()`` / ``.poll()`` on anything (a multiprocessing
  ``Connection`` blocks the loop; bridge through an executor),
* builtin ``open(...)`` (sync file I/O; stage it in an executor).

Because the service also runs *sync* helpers on executor threads, a
``time.sleep`` anywhere else in a module that defines coroutines is
reported too, with a softer message: prove it runs off-loop (e.g. via
``run_in_executor``) and annotate it.  Nested ``def`` bodies inside a
coroutine are skipped — they execute wherever they are called, which
for this codebase is the executor.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from ..core import Checker, Finding, ModuleUnit

RULE = "async-blocking"

_BLOCKING_ATTRS = {"recv", "poll"}


def _is_time_sleep(call: ast.Call) -> bool:
    func = call.func
    return (isinstance(func, ast.Attribute) and func.attr == "sleep"
            and isinstance(func.value, ast.Name)
            and func.value.id == "time")


class AsyncBlockingChecker(Checker):
    rule = RULE
    description = "blocking calls lexically inside service coroutines"
    scope = ("repro.service.",)

    def __init__(self, scope: Optional[Tuple[str, ...]] = None) -> None:
        if scope is not None:
            self.scope = scope

    def check_module(self, unit: ModuleUnit) -> Iterable[Finding]:
        async_defs = [n for n in ast.walk(unit.tree)
                      if isinstance(n, ast.AsyncFunctionDef)]
        if not async_defs:
            return
        inside: Set[int] = set()
        for coro in async_defs:
            for call, message in self._scan_coroutine(coro):
                inside.add(call.lineno)
                yield Finding(rule=RULE, path=unit.path, line=call.lineno,
                              message=message)
        # The module hosts coroutines: every other time.sleep must be
        # proven off-loop (executor thread) and annotated.
        for node in ast.walk(unit.tree):
            if (isinstance(node, ast.Call) and _is_time_sleep(node)
                    and node.lineno not in inside):
                yield Finding(
                    rule=RULE, path=unit.path, line=node.lineno,
                    message="time.sleep in a module with async entry "
                            "points; verify it only runs on an executor "
                            "thread and annotate it")

    def _scan_coroutine(self, coro: ast.AsyncFunctionDef,
                        ) -> List[Tuple[ast.Call, str]]:
        out: List[Tuple[ast.Call, str]] = []
        stack: List[ast.AST] = list(ast.iter_child_nodes(coro))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # runs where it is called, not on this loop
            stack.extend(ast.iter_child_nodes(node))
            if not isinstance(node, ast.Call):
                continue
            if _is_time_sleep(node):
                out.append((node, "time.sleep inside async def blocks the "
                                  "event loop; use await asyncio.sleep"))
            elif (isinstance(node.func, ast.Attribute)
                    and node.func.attr in _BLOCKING_ATTRS):
                out.append((node, f".{node.func.attr}() inside async def "
                                  "can block the event loop; bridge the "
                                  "Connection through an executor"))
            elif (isinstance(node.func, ast.Name)
                    and node.func.id == "open"):
                out.append((node, "sync open() inside async def blocks the "
                                  "event loop; do file I/O on an executor"))
        return out
