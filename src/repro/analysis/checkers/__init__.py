"""The rule catalog: one module per checker (see ``docs/analysis.md``).

Each checker encodes a bug class from this repo's actual history.  The
default scopes point at the production modules where the invariant
holds; tests instantiate checkers with custom scopes to run them over
fixtures.
"""

from __future__ import annotations

from typing import List

from ..core import Checker
from .async_blocking import AsyncBlockingChecker
from .determinism import DeterminismChecker
from .exact_arith import ExactArithChecker
from .frame_drift import FrameDriftChecker
from .frame_protocol import FrameProtocolChecker
from .resource_hygiene import ResourceHygieneChecker
from .trail_discipline import TrailDisciplineChecker

ALL_CHECKER_TYPES = (
    ExactArithChecker,
    FrameDriftChecker,
    FrameProtocolChecker,
    ResourceHygieneChecker,
    AsyncBlockingChecker,
    TrailDisciplineChecker,
    DeterminismChecker,
)


def default_checkers() -> List[Checker]:
    """One fresh instance of every rule, production scopes."""
    return [cls() for cls in ALL_CHECKER_TYPES]


__all__ = [
    "ALL_CHECKER_TYPES",
    "AsyncBlockingChecker",
    "DeterminismChecker",
    "ExactArithChecker",
    "FrameDriftChecker",
    "FrameProtocolChecker",
    "ResourceHygieneChecker",
    "TrailDisciplineChecker",
    "default_checkers",
]
