"""``exact-arith`` v2: intraprocedural float-taint in the exact cores.

The difference-logic engine is scaled-integer and the simplex core is
Fraction-exact; both prove *theory lemmas* the SAT core then treats as
ground truth, so a single rounding error becomes an unsound refutation.
PR 9's syntactic rule flagged direct float expressions only — a float
smuggled through a variable (``g = time.monotonic(); self._t = g``)
passed unnoticed, and every harmless advisory comparison in the
float-prefilter mirror needed its own pragma.

v2 runs the :mod:`repro.analysis.dataflow` taint analysis per function
and flags taint only where it *escapes* into exactness-critical places:

* stores into ``self.*`` solver state (including through subscripts and
  through local aliases of ``self`` attributes);
* arguments to the exact constructors ``Fraction``/``DeltaRational``;
* ``return`` values (a float handed to callers of an exact module);
* module- and class-level constant bindings;
* in-place true division on solver state.

Booleans from comparisons are not floats, so advisory prefilter
verdicts (ints/bools derived from the mirror) flow freely — the mirror
itself sits inside one ``allow[exact-arith]:begin``/``:end`` region.
Parameters with float defaults start tainted; other parameters are
assumed exact (the analysis is intraprocedural).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..core import Checker, Finding, ModuleUnit
from ..dataflow import build_cfg, header_exprs, solve
from ..dataflow.solver import run_block
from ..dataflow.taint import (
    ModuleTaint,
    TaintEnv,
    eval_taint,
    is_fraction_expr,
    join_envs,
    transfer_stmt,
)

RULE = "exact-arith"

#: Constructors whose arguments must be exact already.
EXACT_CONSTRUCTORS = ("Fraction", "DeltaRational")

_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def _iter_functions(tree: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested def/class/lambda."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, _DEFS):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _self_attr(expr: ast.AST) -> Optional[str]:
    if (isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"):
        return f"self.{expr.attr}"
    return None


def _self_aliases(fn: ast.AST) -> Dict[str, str]:
    """Local names bound to ``self`` attributes (``rows = self._rows``)."""
    aliases: Dict[str, str] = {}
    for node in _walk_shallow(fn):
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            dotted = _self_attr(node.value)
            if dotted is not None:
                aliases[node.targets[0].id] = dotted
    return aliases


def _param_taints(fn: ast.AST) -> TaintEnv:
    """Parameters with float defaults start tainted."""
    env: TaintEnv = {}
    args = fn.args
    positional = [*args.posonlyargs, *args.args]
    for arg, default in zip(positional[len(positional) - len(args.defaults):],
                            args.defaults):
        if isinstance(default, ast.Constant) \
                and isinstance(default.value, float):
            env[arg.arg] = (f"float default {default.value!r} "
                            f"(line {default.lineno})")
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if isinstance(default, ast.Constant) \
                and isinstance(default.value, float):
            env[arg.arg] = (f"float default {default.value!r} "
                            f"(line {default.lineno})")
    return env


class ExactArithChecker(Checker):
    rule = RULE
    description = ("float taint escaping into solver state, exact "
                   "constructors, or returns of exact modules")
    scope = ("repro.smt.difflogic", "repro.smt.simplex")

    def __init__(self, scope: Optional[Tuple[str, ...]] = None) -> None:
        if scope is not None:
            self.scope = scope

    # -- module driver ---------------------------------------------------

    def check_module(self, unit: ModuleUnit) -> Iterable[Finding]:
        ctx = ModuleTaint.of_module(unit.tree)
        yield from self._check_toplevel(unit, unit.tree.body, ctx)
        for stmt in unit.tree.body:
            if isinstance(stmt, ast.ClassDef):
                yield from self._check_toplevel(unit, stmt.body, ctx)
        for fn in _iter_functions(unit.tree):
            yield from self._check_function(unit, fn, ctx)

    def _check_toplevel(self, unit: ModuleUnit, body: List[ast.stmt],
                        ctx: ModuleTaint) -> Iterator[Finding]:
        """Module/class bodies: any tainted constant binding is a leak."""
        env: TaintEnv = {}
        for stmt in body:
            if isinstance(stmt, _DEFS):
                continue
            yield from self._constructor_sinks(unit, stmt, env, ctx)
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                value = stmt.value
                if value is not None and not is_fraction_expr(value, ctx):
                    origin = eval_taint(value, dict(env), ctx)
                    if origin is not None:
                        yield Finding(
                            rule=RULE, path=unit.path, line=stmt.lineno,
                            message="constant binding carries float "
                                    f"taint: {origin}")
            env = transfer_stmt(stmt, env, ctx)

    # -- function driver -------------------------------------------------

    def _check_function(self, unit: ModuleUnit, fn: ast.AST,
                        ctx: ModuleTaint) -> Iterator[Finding]:
        aliases = _self_aliases(fn)
        cfg = build_cfg(fn)

        def transfer(block, env):
            return run_block(block, env,
                             lambda s, e: transfer_stmt(s, e, ctx))

        facts = solve(cfg, direction="forward", init={},
                      boundary=_param_taints(fn), transfer=transfer,
                      join=join_envs)
        for block in cfg.blocks:
            env = facts[block.id][0]
            for stmt in block.stmts:
                yield from self._stmt_sinks(unit, stmt, env, ctx, aliases)
                env = transfer_stmt(stmt, env, ctx)

    # -- sinks -----------------------------------------------------------

    def _stmt_sinks(self, unit: ModuleUnit, stmt: ast.stmt, env: TaintEnv,
                    ctx: ModuleTaint,
                    aliases: Dict[str, str]) -> Iterator[Finding]:
        yield from self._constructor_sinks(unit, stmt, env, ctx)
        if header_exprs(stmt) is not None:
            return  # compound header: bodies live in other blocks
        if isinstance(stmt, ast.Assign):
            origin = eval_taint(stmt.value, dict(env), ctx)
            if origin is not None:
                for target in stmt.targets:
                    yield from self._store_sinks(
                        unit, target, origin, aliases)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            origin = eval_taint(stmt.value, dict(env), ctx)
            if origin is not None:
                yield from self._store_sinks(
                    unit, stmt.target, origin, aliases)
        elif isinstance(stmt, ast.AugAssign):
            state = self._state_name(stmt.target, aliases)
            origin = eval_taint(stmt.value, dict(env), ctx)
            if state is not None and origin is not None:
                yield Finding(
                    rule=RULE, path=unit.path, line=stmt.lineno,
                    message=f"float-tainted value folded into solver "
                            f"state `{state}`: {origin}")
            elif state is not None and isinstance(stmt.op, ast.Div) \
                    and not is_fraction_expr(stmt.target, ctx):
                yield Finding(
                    rule=RULE, path=unit.path, line=stmt.lineno,
                    message=f"in-place true division on solver state "
                            f"`{state}` (use Fraction or `//`)")
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            origin = eval_taint(stmt.value, dict(env), ctx)
            if origin is not None:
                yield Finding(
                    rule=RULE, path=unit.path, line=stmt.lineno,
                    message="float-tainted value returned from exact "
                            f"module: {origin}")

    def _constructor_sinks(self, unit: ModuleUnit, stmt: ast.stmt,
                           env: TaintEnv,
                           ctx: ModuleTaint) -> Iterator[Finding]:
        headers = header_exprs(stmt)
        roots: List[ast.AST] = list(headers) if headers is not None \
            else [stmt]
        for root in roots:
            nodes = [root, *_walk_shallow(root)] if headers is not None \
                else list(_walk_shallow(root))
            for node in nodes:
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id in EXACT_CONSTRUCTORS):
                    continue
                for arg in [*node.args,
                            *(kw.value for kw in node.keywords)]:
                    origin = eval_taint(arg, dict(env), ctx)
                    if origin is not None:
                        yield Finding(
                            rule=RULE, path=unit.path, line=node.lineno,
                            message=f"float-tainted argument to "
                                    f"{node.func.id}(): {origin}")

    def _state_name(self, target: ast.AST,
                    aliases: Dict[str, str]) -> Optional[str]:
        """``self.x`` / ``self.x[i]`` / alias-of-self ``rows[i]`` names."""
        dotted = _self_attr(target)
        if dotted is not None:
            return dotted
        if isinstance(target, ast.Subscript):
            dotted = _self_attr(target.value)
            if dotted is not None:
                return dotted
            if isinstance(target.value, ast.Name):
                return aliases.get(target.value.id)
        return None

    def _store_sinks(self, unit: ModuleUnit, target: ast.AST, origin: str,
                     aliases: Dict[str, str]) -> Iterator[Finding]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for el in target.elts:
                yield from self._store_sinks(unit, el, origin, aliases)
            return
        if isinstance(target, ast.Starred):
            yield from self._store_sinks(unit, target.value, origin, aliases)
            return
        state = self._state_name(target, aliases)
        if state is not None:
            yield Finding(
                rule=RULE, path=unit.path, line=target.lineno,
                message=f"float-tainted value stored into solver state "
                        f"`{state}`: {origin}")
