"""``exact-arith``: no float contamination in the exact solver cores.

The difference-logic engine is scaled-integer and the simplex core is
Fraction-exact; both prove *theory lemmas* the SAT core then treats as
ground truth, so a single rounding error becomes an unsound refutation
(the PR 2/PR 5 design forced every float into an explicitly *advisory*
mirror: the opt-in prefilter whose misses fall back to exact
arithmetic).  This rule flags, inside the declared exact modules:

* ``float(...)`` casts,
* float literals (``1e-6``, ``0.0`` — integer literals are fine),
* true division ``/`` (the exact cores use ``//`` on scaled ints or
  ``Fraction`` arithmetic; any ``/`` is either a float leak or an exact
  ``Fraction`` division that deserves an explicit
  ``# repro: allow[exact-arith]`` justification).

The float-prefilter mirror regions in ``smt/simplex.py`` are annotated;
everything else must stay exact.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Tuple

from ..core import Checker, Finding, ModuleUnit

RULE = "exact-arith"


class ExactArithChecker(Checker):
    rule = RULE
    description = "float casts/literals/true-division in exact modules"
    scope = ("repro.smt.difflogic", "repro.smt.simplex")

    def __init__(self, scope: Optional[Tuple[str, ...]] = None) -> None:
        if scope is not None:
            self.scope = scope

    def check_module(self, unit: ModuleUnit) -> Iterable[Finding]:
        for node in ast.walk(unit.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "float"):
                yield Finding(
                    rule=RULE, path=unit.path, line=node.lineno,
                    message="float(...) cast in exact-arithmetic module")
            elif (isinstance(node, ast.Constant)
                    and isinstance(node.value, float)):
                yield Finding(
                    rule=RULE, path=unit.path, line=node.lineno,
                    message=f"float literal {node.value!r} in "
                            "exact-arithmetic module")
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                yield Finding(
                    rule=RULE, path=unit.path, line=node.lineno,
                    message="true division `/` in exact-arithmetic module "
                            "(use `//` on scaled ints, or annotate exact "
                            "Fraction division)")
            elif (isinstance(node, ast.AugAssign)
                    and isinstance(node.op, ast.Div)):
                yield Finding(
                    rule=RULE, path=unit.path, line=node.lineno,
                    message="in-place true division `/=` in "
                            "exact-arithmetic module")
