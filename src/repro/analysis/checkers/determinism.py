"""``determinism``: result-determining modules must be reproducible.

The service's knowledge cache is keyed by a canonical problem
fingerprint, and the eval workload generators feed committed bench
baselines — a wall-clock read, an unseeded RNG, or iteration over an
unordered set in either would quietly change results between runs (or
python processes, under hash randomization).  Inside the declared
modules this rule flags:

* module-level ``random.*`` calls (``random.Random(seed)`` instances
  are the sanctioned idiom; a bare ``random.Random()`` is still
  unseeded and flagged),
* wall-clock reads whose value can reach a result: ``time.time``,
  ``time.time_ns``, ``datetime.now`` / ``utcnow``, ``date.today``,
* direct iteration over a set expression (``for x in set(...)``,
  set-literal or set-comprehension iterables) — wrap in ``sorted()``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Tuple

from ..core import Checker, Finding, ModuleUnit

RULE = "determinism"

_WALL_CLOCK = {
    ("time", "time"), ("time", "time_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("date", "today"),
}


class DeterminismChecker(Checker):
    rule = RULE
    description = "unseeded randomness / wall clock / set iteration"
    scope = ("repro.service.fingerprint", "repro.eval.workloads")

    def __init__(self, scope: Optional[Tuple[str, ...]] = None) -> None:
        if scope is not None:
            self.scope = scope

    def check_module(self, unit: ModuleUnit) -> Iterable[Finding]:
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(unit, node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iter(unit, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    yield from self._check_iter(unit, gen.iter)

    def _check_call(self, unit: ModuleUnit,
                    node: ast.Call) -> Iterable[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if isinstance(func.value, ast.Name) and func.value.id == "random":
            if func.attr == "Random" and node.args:
                return  # random.Random(seed): the sanctioned idiom
            yield Finding(
                rule=RULE, path=unit.path, line=node.lineno,
                message=f"random.{func.attr}() uses process-global or "
                        "unseeded randomness in a result-determining "
                        "module; thread a seeded random.Random through")
        elif isinstance(func.value, ast.Name) \
                and (func.value.id, func.attr) in _WALL_CLOCK:
            yield Finding(
                rule=RULE, path=unit.path, line=node.lineno,
                message=f"{func.value.id}.{func.attr}() reads the wall "
                        "clock in a result-determining module")

    @staticmethod
    def _check_iter(unit: ModuleUnit, it: ast.AST) -> Iterable[Finding]:
        unordered = (
            isinstance(it, (ast.Set, ast.SetComp))
            or (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
                and it.func.id in ("set", "frozenset"))
            or (isinstance(it, ast.BinOp)
                and isinstance(it.op, (ast.BitAnd, ast.BitOr, ast.BitXor))
                and any(isinstance(side, ast.Call)
                        and isinstance(side.func, ast.Name)
                        and side.func.id in ("set", "frozenset")
                        for side in (it.left, it.right)))
        )
        if unordered:
            yield Finding(
                rule=RULE, path=unit.path, line=it.lineno,
                message="iteration over an unordered set expression in a "
                        "result-determining module; wrap in sorted()")
