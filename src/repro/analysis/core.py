"""The analysis engine: findings, parsed units, suppression, driving.

The engine is deliberately small.  A *checker* is an object with a rule
id, a scope predicate over module dotted names, and two hooks:
``check_module`` (runs per file, sees one :class:`ModuleUnit`) and
``check_project`` (runs once, sees every in-scope unit — used by
cross-file rules like frame-drift).  :func:`analyze` parses the tree
once, fans units out to every checker, applies the suppression map, and
returns a :class:`Report` sorted for deterministic output.

Suppression is source-level: a ``# repro: allow[rule-id]`` pragma on
the finding's line, or on a comment-only line directly above it,
silences that rule there.  A *region* pragma pair —
``# repro: allow[rule-id]:begin <reason>`` ... ``# repro: allow[rule-id]:end``
— silences the rule for every line in between, so a deliberately
rule-breaking section (like the simplex float mirror) carries one
justification instead of one pragma per line.  Suppressed findings are
kept in the report (JSON consumers see them with ``"suppressed":
true``) but do not affect the exit status.  Every pragma records
whether it actually suppressed something; ``analyze(...,
check_pragmas=True)`` turns the stale ones into unsuppressible
``unused-pragma`` findings.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: ``repro: allow[...]`` with an optional ``:begin``/``:end`` region
#: marker — matched inside comment tokens only, so the leading ``#`` is
#: implied; several pragmas may share one comment.
_ALLOW_RE = re.compile(r"repro:\s*allow\[([a-z0-9-]+)\](?::(begin|end))?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    message: str
    suppressed: bool = False

    def to_dict(self) -> dict:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "message": self.message, "suppressed": self.suppressed}

    def render(self) -> str:
        mark = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}{mark}"


@dataclass
class Pragma:
    """One suppression comment, with its coverage and a used flag.

    ``kind`` is ``"line"`` (plain pragma), ``"region"`` (a
    ``:begin``/``:end`` pair — ``covers`` spans the whole region), or
    ``"end"`` (an orphan ``:end`` with no opener, kept so
    ``check_pragmas`` can flag it).  ``used`` is flipped by the engine
    when the pragma suppresses at least one finding.
    """

    rule: str
    line: int
    kind: str
    covers: Tuple[int, int]
    used: bool = False


@dataclass
class ModuleUnit:
    """One parsed source file plus everything checkers need from it."""

    path: str                    #: path as given (repo-relative in CI)
    module: str                  #: dotted module name, e.g. ``repro.smt.simplex``
    source: str
    tree: ast.AST
    lines: List[str]             #: source split into lines (1-based via index-1)
    #: line -> rule ids allowed there (pragma on the line or just above)
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    #: every pragma comment, for used-tracking (empty on hand-built units)
    pragmas: List[Pragma] = field(default_factory=list)
    #: line -> first line of the simple statement spanning it
    _anchors: Optional[Dict[int, int]] = field(default=None, repr=False)

    def allows(self, rule: str, line: int) -> bool:
        if self.pragmas:
            return self.suppressing_pragma(rule, line) is not None
        if rule in self.suppressions.get(line, ()):
            return True
        anchor = self._statement_anchors().get(line)
        return (anchor is not None
                and rule in self.suppressions.get(anchor, ()))

    def suppressing_pragma(self, rule: str, line: int) -> Optional[Pragma]:
        """The pragma suppressing ``rule`` at ``line``, if any.

        Line pragmas win over enclosing regions so used-tracking
        credits the most specific annotation.
        """
        anchor = self._statement_anchors().get(line)
        region: Optional[Pragma] = None
        for p in self.pragmas:
            if p.rule != rule or p.kind == "end":
                continue
            lo, hi = p.covers
            if not (lo <= line <= hi
                    or (anchor is not None and lo <= anchor <= hi)):
                continue
            if p.kind == "line":
                return p
            if region is None:
                region = p
        return region

    def _statement_anchors(self) -> Dict[int, int]:
        """Map every line of a multi-line *simple* statement to its first.

        A pragma on (or above) the first line of e.g. a parenthesized
        assignment then covers findings anywhere in that statement.
        Compound statements (def/if/for/try/...) are excluded so a
        pragma never silently blankets a whole block.
        """
        if self._anchors is None:
            anchors: Dict[int, int] = {}
            compound = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                        ast.If, ast.For, ast.AsyncFor, ast.While, ast.With,
                        ast.AsyncWith, ast.Try)
            for node in ast.walk(self.tree):
                if not isinstance(node, ast.stmt) \
                        or isinstance(node, compound):
                    continue
                end = getattr(node, "end_lineno", None) or node.lineno
                for line in range(node.lineno + 1, end + 1):
                    anchors.setdefault(line, node.lineno)
            self._anchors = anchors
        return self._anchors


def scan_pragmas(source: str) -> List[Pragma]:
    """Every suppression pragma in ``source``, with coverage resolved.

    A line pragma covers its own line; on a *comment-only* line it also
    covers the code line the comment block precedes (chaining through
    any further comment-only lines), so a statement can carry a
    multi-line justification comment above it.  A ``:begin`` marker
    opens a region closed by the next ``:end`` for the same rule (or
    the end of file when unmatched); an ``:end`` with no opener is kept
    as an orphan for ``check_pragmas`` to flag.  Pragmas are read from
    real tokens, not string-matched, so a pragma inside a string
    literal is inert.
    """
    pragmas: List[Pragma] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return pragmas
    lines = source.splitlines()

    def comment_only(line: int) -> bool:
        return (line <= len(lines)
                and lines[line - 1].strip().startswith("#"))

    open_regions: Dict[str, Pragma] = {}
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        line = tok.start[0]
        for match in _ALLOW_RE.finditer(tok.string):
            rule, marker = match.group(1), match.group(2)
            if marker == "begin":
                pragma = Pragma(rule=rule, line=line, kind="region",
                                covers=(line, max(len(lines), line)))
                pragmas.append(pragma)
                open_regions[rule] = pragma
            elif marker == "end":
                opener = open_regions.pop(rule, None)
                if opener is not None:
                    opener.covers = (opener.covers[0], line)
                else:
                    pragmas.append(Pragma(rule=rule, line=line, kind="end",
                                          covers=(line, line)))
            else:
                cover_end = line
                if comment_only(line):
                    nxt = line + 1
                    while comment_only(nxt):
                        nxt += 1
                    cover_end = nxt
                pragmas.append(Pragma(rule=rule, line=line, kind="line",
                                      covers=(line, cover_end)))
    return pragmas


def scan_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map each source line to the rule ids suppressed on it."""
    allowed: Dict[int, Set[str]] = {}
    for p in scan_pragmas(source):
        if p.kind == "end":
            continue
        if p.kind == "line":
            allowed.setdefault(p.line, set()).add(p.rule)
            if p.covers[1] != p.line:
                allowed.setdefault(p.covers[1], set()).add(p.rule)
        else:
            for line in range(p.covers[0], p.covers[1] + 1):
                allowed.setdefault(line, set()).add(p.rule)
    return allowed


def module_name_for(path: Path) -> str:
    """Dotted module name for ``path``, rooted at the innermost package.

    Walks up while ``__init__.py`` siblings exist, so both
    ``src/repro/smt/simplex.py`` and a copy in a tmpdir fixture resolve
    to the same ``repro.smt.simplex`` name checkers scope on.
    """
    parts = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if parts[-1] != path.stem and parts[0] == "__init__":
        parts = parts[1:]
    return ".".join(reversed(parts))


def load_unit(path: Path, display_path: Optional[str] = None) -> ModuleUnit:
    """Parse one file into a :class:`ModuleUnit` (raises ``SyntaxError``)."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return ModuleUnit(
        path=display_path or str(path),
        module=module_name_for(path),
        source=source,
        tree=tree,
        lines=source.splitlines(),
        suppressions=scan_suppressions(source),
        pragmas=scan_pragmas(source),
    )


def iter_python_files(roots: Sequence[Path]) -> List[Path]:
    """Every ``.py`` file under ``roots`` (files accepted verbatim), sorted."""
    out: Set[Path] = set()
    for root in roots:
        if root.is_file():
            if root.suffix == ".py":
                out.add(root)
        else:
            out.update(p for p in root.rglob("*.py"))
    return sorted(out)


class Checker:
    """Base contract for a rule.  Subclasses set ``rule`` and ``scope``.

    ``scope`` is a collection of dotted module names (or prefixes ending
    in ``.``); empty means every module.  Findings are yielded raw —
    the engine stamps suppression.
    """

    rule: str = ""
    description: str = ""
    scope: Tuple[str, ...] = ()

    def in_scope(self, module: str) -> bool:
        if not self.scope:
            return True
        for pat in self.scope:
            if pat.endswith("."):
                if module.startswith(pat) or module == pat[:-1]:
                    return True
            elif module == pat:
                return True
        return False

    def check_module(self, unit: ModuleUnit) -> Iterable[Finding]:
        return ()

    def check_project(self, units: Sequence[ModuleUnit]) -> Iterable[Finding]:
        return ()


@dataclass
class Report:
    """The outcome of one analysis run."""

    findings: List[Finding]
    files_checked: int
    rules: List[str]

    @property
    def unsuppressed(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def ok(self) -> bool:
        return not self.unsuppressed

    def to_dict(self) -> dict:
        return {
            "files_checked": self.files_checked,
            "rules": list(self.rules),
            "findings": [f.to_dict() for f in self.findings],
            "unsuppressed": len(self.unsuppressed),
            "ok": self.ok,
        }


def _stamp(finding: Finding, unit: ModuleUnit) -> Finding:
    if unit.pragmas:
        pragma = unit.suppressing_pragma(finding.rule, finding.line)
        if pragma is None:
            return finding
        pragma.used = True
    elif not unit.allows(finding.rule, finding.line):
        return finding
    return Finding(rule=finding.rule, path=finding.path,
                   line=finding.line, message=finding.message,
                   suppressed=True)


def _pragma_findings(units: Sequence[ModuleUnit],
                     known_rules: Set[str]) -> List[Finding]:
    """``unused-pragma`` findings: stale, unknown-rule, or orphan-end.

    These are deliberately unsuppressible — a pragma cannot vouch for
    itself; delete it or fix the rule id instead.
    """
    out: List[Finding] = []
    for unit in units:
        for p in unit.pragmas:
            if p.kind == "end":
                message = (f"allow[{p.rule}]:end has no matching :begin")
            elif p.rule not in known_rules:
                message = (f"pragma names unknown rule {p.rule!r}; "
                           "known rules: "
                           + ", ".join(sorted(known_rules)))
            elif not p.used:
                what = ("region suppresses no findings"
                        if p.kind == "region" else "suppresses nothing")
                message = (f"allow[{p.rule}] {what} — the code it excused "
                           "moved or the rule got more precise; delete it")
            else:
                continue
            out.append(Finding(rule="unused-pragma", path=unit.path,
                               line=p.line, message=message))
    return out


def analyze(roots: Sequence[Path], checkers: Sequence[Checker],
            *, check_pragmas: bool = False) -> Report:
    """Run ``checkers`` over every python file under ``roots``.

    With ``check_pragmas``, pragmas that suppressed nothing (or name an
    unknown rule, or are orphan ``:end`` markers) become unsuppressible
    ``unused-pragma`` findings after the regular rules have run.
    """
    units: List[ModuleUnit] = []
    findings: List[Finding] = []
    for path in iter_python_files(roots):
        try:
            units.append(load_unit(path))
        except SyntaxError as exc:
            findings.append(Finding(
                rule="parse-error", path=str(path),
                line=exc.lineno or 0,
                message=f"file does not parse: {exc.msg}"))
    by_path = {u.path: u for u in units}
    for checker in checkers:
        scoped = [u for u in units if checker.in_scope(u.module)]
        for unit in scoped:
            for f in checker.check_module(unit):
                findings.append(_stamp(f, unit))
        for f in checker.check_project(scoped):
            unit = by_path.get(f.path)
            findings.append(_stamp(f, unit) if unit is not None else f)
    if check_pragmas:
        findings.extend(_pragma_findings(
            units, {c.rule for c in checkers}))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return Report(findings=findings, files_checked=len(units),
                  rules=[c.rule for c in checkers])
