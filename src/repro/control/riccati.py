"""Discrete-time algebraic Riccati equation and LQR synthesis.

The DARE is solved by the structure-preserving *doubling* algorithm (SDA),
which converges quadratically and needs no Hamiltonian eigendecomposition;
a fixed-point fallback covers matrices where the doubling iteration is
ill-conditioned.  Cross-checked against ``scipy.linalg.solve_discrete_are``
in the tests.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ControlDesignError


def solve_dare(
    A: np.ndarray,
    B: np.ndarray,
    Q: np.ndarray,
    R: np.ndarray,
    max_iter: int = 200,
    tol: float = 1e-12,
) -> np.ndarray:
    """Solve ``P = A'PA - A'PB (R + B'PB)^-1 B'PA + Q``.

    Uses the structured doubling algorithm; raises
    :class:`ControlDesignError` on divergence (e.g. unstabilizable pairs).
    """
    A = np.asarray(A, dtype=float)
    B = np.asarray(B, dtype=float)
    Q = np.asarray(Q, dtype=float)
    R = np.asarray(R, dtype=float)
    n = A.shape[0]
    if A.shape != (n, n) or Q.shape != (n, n):
        raise ControlDesignError("A and Q must be square with matching size")
    if B.shape[0] != n or R.shape != (B.shape[1], B.shape[1]):
        raise ControlDesignError("B/R dimensions inconsistent")

    # Structured doubling: A_k, G_k, H_k with
    #   A_{k+1} = A_k (I + G_k H_k)^-1 A_k
    #   G_{k+1} = G_k + A_k (I + G_k H_k)^-1 G_k A_k'
    #   H_{k+1} = H_k + A_k' H_k (I + G_k H_k)^-1 A_k
    # converging H_k -> P.
    try:
        G = B @ np.linalg.solve(R, B.T)
    except np.linalg.LinAlgError as exc:
        raise ControlDesignError("R is singular") from exc
    Ak = A.copy()
    Gk = G
    Hk = Q.copy()
    eye = np.eye(n)
    for _ in range(max_iter):
        M = eye + Gk @ Hk
        try:
            Minv = np.linalg.inv(M)
        except np.linalg.LinAlgError as exc:
            raise ControlDesignError("doubling iteration became singular") from exc
        An = Ak @ Minv @ Ak
        Gn = Gk + Ak @ Minv @ Gk @ Ak.T
        Hn = Hk + Ak.T @ Hk @ Minv @ Ak
        diff = np.linalg.norm(Hn - Hk, ord="fro")
        scale = max(1.0, np.linalg.norm(Hn, ord="fro"))
        Ak, Gk, Hk = An, Gn, Hn
        if diff / scale < tol:
            P = (Hk + Hk.T) / 2
            try:
                _check_dare_residual(A, B, Q, R, P)
            except ControlDesignError:
                # Converged to a poorly conditioned point: re-solve with
                # Newton-Kleinman from a stabilizing seed (quadratic
                # convergence, exact Lyapunov steps).
                P = _newton_from_seeds(A, B, Q, R, P)
                _check_dare_residual(A, B, Q, R, P)
            return P
        if not np.all(np.isfinite(Hk)):
            break
    raise ControlDesignError("DARE doubling iteration did not converge")


def solve_discrete_lyapunov(F: np.ndarray, W: np.ndarray) -> np.ndarray:
    """Solve ``P = F' P F + W`` exactly via the Kronecker linear system.

    O(n^6) — intended for the small state dimensions of control design
    (the benchmark plants have n <= 4).
    """
    n = F.shape[0]
    lhs = np.eye(n * n) - np.kron(F.T, F.T)
    vec_p = np.linalg.solve(lhs, W.flatten(order="F"))
    P = vec_p.reshape((n, n), order="F")
    return (P + P.T) / 2


def _newton_kleinman(
    A: np.ndarray,
    B: np.ndarray,
    Q: np.ndarray,
    R: np.ndarray,
    P0: np.ndarray,
    max_iter: int = 100,
    tol: float = 1e-13,
) -> np.ndarray:
    """Newton's method for the DARE from a stabilizing initial guess.

    Each step solves the discrete Lyapunov equation of the current gain's
    closed loop; converges quadratically when ``A - B K0`` is Schur.
    """
    P = P0
    K = np.linalg.solve(R + B.T @ P @ B, B.T @ P @ A)
    return _newton_from_gain(A, B, Q, R, K, max_iter, tol)


def _newton_from_gain(A, B, Q, R, K, max_iter: int = 100,
                      tol: float = 1e-13) -> np.ndarray:
    if np.max(np.abs(np.linalg.eigvals(A - B @ K))) >= 1.0:
        raise ControlDesignError(
            "Newton-Kleinman needs a stabilizing initial gain"
        )
    P = None
    for _ in range(max_iter):
        F = A - B @ K
        P_next = solve_discrete_lyapunov(F, Q + K.T @ R @ K)
        K = np.linalg.solve(R + B.T @ P_next @ B, B.T @ P_next @ A)
        if P is not None:
            delta = np.linalg.norm(P_next - P, ord="fro")
            if delta <= tol * max(1.0, np.linalg.norm(P_next, ord="fro")):
                return P_next
        P = P_next
    if P is None:
        raise ControlDesignError("Newton-Kleinman made no progress")
    return P


def _newton_from_seeds(A, B, Q, R, P_doubling) -> np.ndarray:
    """Newton-Kleinman, trying progressively better stabilizing seeds.

    Seeds: the gain from the doubling solution, then gains from value
    iteration snapshots (value iteration stabilizes the gain long before
    its cost matrix converges).
    """
    seeds = []
    try:
        seeds.append(np.linalg.solve(R + B.T @ P_doubling @ B,
                                     B.T @ P_doubling @ A))
    except np.linalg.LinAlgError:
        pass
    P = Q.copy()
    for step in range(1, 501):
        BtPB = R + B.T @ P @ B
        K = np.linalg.solve(BtPB, B.T @ P @ A)
        P = Q + A.T @ P @ (A - B @ K)
        P = (P + P.T) / 2
        if not np.all(np.isfinite(P)):
            break
        if step % 25 == 0:
            seeds.append(K)
    last_error: Exception | None = None
    for K0 in seeds:
        try:
            return _newton_from_gain(A, B, Q, R, K0)
        except (ControlDesignError, np.linalg.LinAlgError) as exc:
            last_error = exc
    raise ControlDesignError(
        f"no stabilizing Newton-Kleinman seed found: {last_error}"
    )


def _check_dare_residual(A, B, Q, R, P, tol: float = 1e-6) -> None:
    BtPB = R + B.T @ P @ B
    K = np.linalg.solve(BtPB, B.T @ P @ A)
    residual = A.T @ P @ A - P - (A.T @ P @ B) @ K + Q
    scale = max(1.0, float(np.linalg.norm(P, ord="fro")))
    if np.linalg.norm(residual, ord="fro") / scale > tol:
        raise ControlDesignError("DARE residual too large (non-stabilizable?)")


def lqr_gain(
    A: np.ndarray, B: np.ndarray, Q: np.ndarray, R: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Discrete LQR: returns ``(K, P)`` with ``u = -K x`` optimal.

    ``K = (R + B'PB)^-1 B'PA`` where P solves the DARE.
    """
    P = solve_dare(A, B, Q, R)
    K = np.linalg.solve(R + B.T @ P @ B, B.T @ P @ A)
    return K, P


def kalman_gain(
    A: np.ndarray, C: np.ndarray, W: np.ndarray, V: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Steady-state Kalman predictor gain via the dual DARE.

    Process noise covariance ``W`` (on the state), measurement noise
    covariance ``V``.  Returns ``(L, S)`` with the predictor form
    ``xhat+ = A xhat + B u + L (y - C xhat)`` and state estimate
    covariance ``S``.
    """
    S = solve_dare(A.T, C.T, W, V)
    L = A @ S @ C.T @ np.linalg.inv(C @ S @ C.T + V)
    return L, S
