"""The benchmark plant database (paper Sec. VI).

"For the three experiments, we randomly choose control applications from a
database with inverted pendulums, ball and beam processes, DC servos, and
harmonic oscillators.  These plants are considered to be representative
for realistic control applications and are extensively used for
experimental evaluation in the literature [2]."

Each factory returns a continuous-time SISO :class:`StateSpace` with
standard textbook parameters plus a *nominal sampling period* suggestion
used by the workload generators.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from .lti import StateSpace, tf_to_ss


@dataclass(frozen=True)
class PlantSpec:
    """A named plant with its customary sampling period (seconds).

    ``control_r`` is the LQR input weight (with output weighting
    ``Q = C'C``) tuned so the resulting LQG loop has a realistic
    jitter-margin curve: ``J_max(0)`` on the order of the sampling period
    and nominal stability lost around 2-3 periods of latency, matching
    the shape of the paper's Fig. 3.
    """

    name: str
    system: StateSpace
    nominal_period: float
    control_r: float = 1e-4


def dc_servo(gain: float = 1000.0) -> PlantSpec:
    """The paper's Fig. 3 plant: ``G(s) = 1000 / (s^2 + s)``, h = 6 ms."""
    return PlantSpec(
        "dc_servo", tf_to_ss([gain], [1, 1, 0]), nominal_period=0.006,
        control_r=1e-3,
    )


def inverted_pendulum(
    length: float = 0.3, damping: float = 0.0, g: float = 9.81
) -> PlantSpec:
    """Linearized inverted pendulum around the upright equilibrium.

    ``theta'' = (g/l) theta - (b/l) theta' + (1/l) u`` — open-loop unstable
    with poles at ``+-sqrt(g/l)``.
    """
    a = g / length
    sys = StateSpace(
        A=[[0.0, 1.0], [a, -damping / length]],
        B=[[0.0], [1.0 / length]],
        C=[[1.0, 0.0]],
        D=[[0.0]],
    )
    return PlantSpec("inverted_pendulum", sys, nominal_period=0.02, control_r=1e-5)


def ball_and_beam(k: float = 7.0) -> PlantSpec:
    """Ball-and-beam process: double integrator ``G(s) = k / s^2``.

    The classic lab parameterization (Quanser-style) has gain around 7.
    """
    return PlantSpec(
        "ball_and_beam", tf_to_ss([k], [1, 0, 0]), nominal_period=0.04,
        control_r=1e-4,
    )


def harmonic_oscillator(omega: float = 10.0, zeta: float = 0.1) -> PlantSpec:
    """Lightly damped oscillator ``G(s) = w^2 / (s^2 + 2 z w s + w^2)``."""
    sys = tf_to_ss([omega**2], [1, 2 * zeta * omega, omega**2])
    return PlantSpec(
        "harmonic_oscillator", sys, nominal_period=0.05, control_r=1e-2
    )


#: The four families of the paper's plant database.
PLANT_FACTORIES: Dict[str, Callable[[], PlantSpec]] = {
    "dc_servo": dc_servo,
    "inverted_pendulum": inverted_pendulum,
    "ball_and_beam": ball_and_beam,
    "harmonic_oscillator": harmonic_oscillator,
}


def plant_database() -> List[PlantSpec]:
    """All default-parameter plants, in deterministic order."""
    return [PLANT_FACTORIES[name]() for name in sorted(PLANT_FACTORIES)]


def random_plant(rng: random.Random) -> PlantSpec:
    """Draw a plant uniformly from the database (paper Sec. VI)."""
    name = rng.choice(sorted(PLANT_FACTORIES))
    return PLANT_FACTORIES[name]()


def paper_controller(spec: PlantSpec, h: float | None = None) -> StateSpace:
    """The LQG controller used throughout the experiments.

    Output weighting ``Q = C'C`` with the plant's tuned input weight
    ``control_r`` — an aggressive design whose jitter-margin curve has the
    shape of the paper's Fig. 3 (see :class:`PlantSpec`).
    """
    from .lqg import LqgWeights, design_lqg  # local import: avoid cycle

    sys = spec.system
    period = spec.nominal_period if h is None else h
    weights = LqgWeights(Q=sys.C.T @ sys.C, R=np.array([[spec.control_r]]))
    return design_lqg(sys, period, weights)
