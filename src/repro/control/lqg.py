"""LQG controller synthesis (the paper's experimental controllers).

The paper evaluates plants "with a discrete-time Linear-Quadratic-Gaussian
(LQG) controller" (Fig. 3).  :func:`design_lqg` builds the standard
output-feedback LQG compensator for a ZOH-discretized plant: a steady-state
Kalman predictor combined with an LQR state feedback, packaged as one
discrete :class:`~repro.control.lti.StateSpace` from plant output ``y`` to
control ``u``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ControlDesignError
from .discretize import c2d
from .lti import StateSpace
from .riccati import kalman_gain, lqr_gain


@dataclass
class LqgWeights:
    """Design weights; ``None`` entries default to identity matrices."""

    Q: Optional[np.ndarray] = None   # state cost
    R: Optional[np.ndarray] = None   # input cost
    W: Optional[np.ndarray] = None   # process noise covariance
    V: Optional[np.ndarray] = None   # measurement noise covariance


def design_lqg(
    plant: StateSpace, h: float, weights: Optional[LqgWeights] = None
) -> StateSpace:
    """Design a discrete LQG output-feedback controller for ``plant``.

    Args:
        plant: continuous-time plant.
        h: sampling period.
        weights: optional LQG weights (default: identity).

    Returns:
        The discrete controller as a state-space system mapping the
        sampled plant output ``y_k`` to the control ``u_k``:

            xc+ = (A - BK - LC + LDK) xc + L y
            u   = -K xc

        (the standard observer-based compensator in predictor form).
    """
    if plant.is_discrete:
        raise ControlDesignError("design_lqg expects a continuous plant")
    weights = weights or LqgWeights()
    pd = c2d(plant, h)
    n, m, p = pd.n_states, pd.n_inputs, pd.n_outputs
    Q = np.eye(n) if weights.Q is None else np.asarray(weights.Q, dtype=float)
    R = np.eye(m) if weights.R is None else np.asarray(weights.R, dtype=float)
    W = np.eye(n) if weights.W is None else np.asarray(weights.W, dtype=float)
    V = np.eye(p) if weights.V is None else np.asarray(weights.V, dtype=float)

    K, _ = lqr_gain(pd.A, pd.B, Q, R)
    L, _ = kalman_gain(pd.A, pd.C, W, V)

    Ac = pd.A - pd.B @ K - L @ pd.C + L @ pd.D @ K
    Bc = L
    Cc = -K
    Dc = np.zeros((m, p))
    controller = StateSpace(Ac, Bc, Cc, Dc, dt=h)
    return controller


def closed_loop(plant_d: StateSpace, controller: StateSpace) -> StateSpace:
    """Discrete closed loop of a strictly-proper plant and a controller.

    Feedback convention: ``u = controller(y)`` with the loop sign baked
    into the controller (LQG above outputs ``-K xhat``).  Requires
    ``plant_d.D == 0`` (true for ZOH-discretized strictly proper plants).
    """
    if not plant_d.is_discrete or not controller.is_discrete:
        raise ControlDesignError("closed_loop expects two discrete systems")
    if np.any(plant_d.D != 0):
        raise ControlDesignError("closed_loop requires a strictly proper plant")
    A, B, C = plant_d.A, plant_d.B, plant_d.C
    Ac, Bc, Cc, Dc = controller.A, controller.B, controller.C, controller.D
    n, nc = plant_d.n_states, controller.n_states
    top = np.hstack([A + B @ Dc @ C, B @ Cc])
    bottom = np.hstack([Bc @ C, Ac])
    Acl = np.vstack([top, bottom])
    Bcl = np.zeros((n + nc, plant_d.n_inputs))
    Ccl = np.hstack([C, np.zeros((plant_d.n_outputs, nc))])
    Dcl = np.zeros((plant_d.n_outputs, plant_d.n_inputs))
    return StateSpace(Acl, Bcl, Ccl, Dcl, dt=plant_d.dt)
