"""Zero-order-hold discretization, including fractional input delay.

Implements the standard sampled-data machinery of Åström & Wittenmark,
*Computer-Controlled Systems* (the paper's reference [2]):

* :func:`expm` — matrix exponential via scaling-and-squaring with a
  Padé(6,6) approximant (written from scratch; cross-checked against
  ``scipy.linalg.expm`` in the tests);
* :func:`c2d` — ZOH discretization of ``x' = Ax + Bu``;
* :func:`c2d_delayed` — ZOH discretization with an input *time delay*
  ``tau`` (``0 <= tau <= h``), producing the augmented system whose extra
  state is the previous control sample.  This is how a constant network
  latency enters the closed-loop model used by the jitter-margin analysis.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ControlDesignError
from .lti import StateSpace


def expm(A: np.ndarray) -> np.ndarray:
    """Matrix exponential by scaling-and-squaring with Padé(6,6).

    Accurate to ~1e-12 for well-scaled matrices; the tests compare against
    scipy's Higham implementation.
    """
    A = np.asarray(A, dtype=float)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ControlDesignError("expm requires a square matrix")
    n = A.shape[0]
    if n == 0:
        return np.zeros((0, 0))
    norm = np.linalg.norm(A, ord=np.inf)
    # Scale so the norm is below 0.5, then square back.
    squarings = max(0, int(np.ceil(np.log2(norm))) + 1) if norm > 0.5 else 0
    As = A / (2.0**squarings)
    # Padé(6,6) coefficients for exp.
    c = [1.0, 0.5, 5 / 44, 1 / 66, 1 / 792, 1 / 15840, 1 / 665280]
    A2 = As @ As
    A4 = A2 @ A2
    A6 = A4 @ A2
    eye = np.eye(n)
    U = As @ (c[1] * eye + c[3] * A2 + c[5] * A4)
    V = c[0] * eye + c[2] * A2 + c[4] * A4 + c[6] * A6
    P = V + U
    Q = V - U
    F = np.linalg.solve(Q, P)
    for _ in range(squarings):
        F = F @ F
    return F


def _phi_gamma(A: np.ndarray, B: np.ndarray, h: float) -> Tuple[np.ndarray, np.ndarray]:
    """``Phi = e^{Ah}`` and ``Gamma = int_0^h e^{As} ds B`` via the block trick."""
    n, m = A.shape[0], B.shape[1]
    block = np.zeros((n + m, n + m))
    block[:n, :n] = A
    block[:n, n:] = B
    eb = expm(block * h)
    return eb[:n, :n], eb[:n, n:]


def c2d(sys: StateSpace, h: float) -> StateSpace:
    """Zero-order-hold discretization with sampling period ``h``."""
    if sys.is_discrete:
        raise ControlDesignError("c2d expects a continuous-time system")
    if h <= 0:
        raise ControlDesignError("sampling period must be positive")
    phi, gamma = _phi_gamma(sys.A, sys.B, h)
    return StateSpace(phi, gamma, sys.C.copy(), sys.D.copy(), dt=h)


def c2d_delayed(sys: StateSpace, h: float, tau: float) -> StateSpace:
    """ZOH discretization with input delay ``tau`` (Åström–Wittenmark 2.16).

    For ``0 < tau <= h`` the control applied during ``[kh, kh+tau)`` is the
    *previous* sample, so the discrete model is augmented with one extra
    input-memory state per input channel::

        [x_{k+1}]   [Phi  Gamma0] [x_k]   [Gamma1]
        [u_k    ] = [0    0     ] [u_-1] + [I     ] u_k

    where ``Gamma1 = int_0^{h-tau} e^{As} ds B`` (current sample active at
    the end of the period) and ``Gamma0 = e^{A(h-tau)} int_0^{tau} e^{As}
    ds B`` (previous sample active at the start).  ``tau = 0`` degenerates
    to plain :func:`c2d`.  Delays beyond one period are handled by adding
    whole-period memory states.
    """
    if sys.is_discrete:
        raise ControlDesignError("c2d_delayed expects a continuous-time system")
    if h <= 0:
        raise ControlDesignError("sampling period must be positive")
    if tau < 0:
        raise ControlDesignError("delay must be non-negative")
    if tau == 0:
        return c2d(sys, h)
    extra_periods, frac = divmod(tau, h)
    extra = int(round(extra_periods))
    if np.isclose(frac, 0.0):
        # Delay is an exact multiple of h: no fractional part.
        frac = 0.0
        if extra == 0:
            return c2d(sys, h)
    n, m = sys.n_states, sys.n_inputs
    phi = expm(sys.A * h)
    if frac > 0.0:
        _, gamma1 = _phi_gamma(sys.A, sys.B, h - frac)
        _, gamma_tau = _phi_gamma(sys.A, sys.B, frac)
        gamma0 = expm(sys.A * (h - frac)) @ gamma_tau

    # State: [x; u_{k-1-extra} ... ] -- build the delay chain.
    # Number of input-memory slots: extra whole periods + 1 fractional slot
    # (when frac > 0) or extra slots (when frac == 0).
    slots = extra + (1 if frac > 0.0 else 0)
    na = n + slots * m
    Aa = np.zeros((na, na))
    Ba = np.zeros((na, m))
    Aa[:n, :n] = phi
    if frac > 0.0:
        # Oldest memory slot feeds Gamma0; newest receives u_k.
        Aa[:n, n : n + m] = gamma0
        if slots == 1:
            # x+ = phi x + gamma0 u_{k-1} + gamma1 u_k
            Ba[:n, :] = gamma1
            Ba[n : n + m, :] = np.eye(m)
        else:
            # gamma1 couples to the second-oldest slot.
            Aa[:n, n + m : n + 2 * m] = gamma1
            for s in range(slots - 1):
                Aa[n + s * m : n + (s + 1) * m, n + (s + 1) * m : n + (s + 2) * m] = (
                    np.eye(m)
                )
            Ba[n + (slots - 1) * m : n + slots * m, :] = np.eye(m)
    else:
        # Pure multi-period delay: u acts through `extra` memory slots.
        Aa[:n, n : n + m] = _phi_gamma(sys.A, sys.B, h)[1]
        for s in range(slots - 1):
            Aa[n + s * m : n + (s + 1) * m, n + (s + 1) * m : n + (s + 2) * m] = np.eye(m)
        Ba[n + (slots - 1) * m : n + slots * m, :] = np.eye(m)
    Ca = np.zeros((sys.n_outputs, na))
    Ca[:, :n] = sys.C
    Da = sys.D.copy()
    return StateSpace(Aa, Ba, Ca, Da, dt=h)
