"""Linear time-invariant state-space systems (paper Sec. II-C, Eq. 1).

Plants are continuous-time LTI systems ``x' = A x + B u``; controllers are
discrete-time LTI systems.  Both are represented by :class:`StateSpace`
with a ``dt`` attribute (``None`` for continuous time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import ControlDesignError


def _as_matrix(m, rows: Optional[int] = None, cols: Optional[int] = None) -> np.ndarray:
    arr = np.atleast_2d(np.asarray(m, dtype=float))
    if rows is not None and arr.shape[0] != rows:
        raise ControlDesignError(f"expected {rows} rows, got {arr.shape[0]}")
    if cols is not None and arr.shape[1] != cols:
        raise ControlDesignError(f"expected {cols} cols, got {arr.shape[1]}")
    return arr


@dataclass
class StateSpace:
    """A state-space system ``(A, B, C, D)``, continuous or discrete.

    Attributes:
        A, B, C, D: system matrices with consistent dimensions.
        dt: sampling period for discrete-time systems, None for
            continuous time.
    """

    A: np.ndarray
    B: np.ndarray
    C: np.ndarray
    D: np.ndarray
    dt: Optional[float] = None

    def __post_init__(self) -> None:
        self.A = _as_matrix(self.A)
        n = self.A.shape[0]
        if self.A.shape[1] != n:
            raise ControlDesignError("A must be square")
        self.B = _as_matrix(self.B, rows=n)
        m = self.B.shape[1]
        self.C = _as_matrix(self.C, cols=n)
        p = self.C.shape[0]
        self.D = _as_matrix(self.D, rows=p, cols=m)
        if self.dt is not None and self.dt <= 0:
            raise ControlDesignError("dt must be positive for discrete systems")

    # ------------------------------------------------------------------

    @property
    def n_states(self) -> int:
        return self.A.shape[0]

    @property
    def n_inputs(self) -> int:
        return self.B.shape[1]

    @property
    def n_outputs(self) -> int:
        return self.C.shape[0]

    @property
    def is_discrete(self) -> bool:
        return self.dt is not None

    def poles(self) -> np.ndarray:
        return np.linalg.eigvals(self.A)

    def is_stable(self, tol: float = 1e-9) -> bool:
        """Hurwitz (continuous) or Schur (discrete) stability."""
        p = self.poles()
        if self.is_discrete:
            return bool(np.all(np.abs(p) < 1 - tol))
        return bool(np.all(p.real < -tol))

    # ------------------------------------------------------------------

    def frequency_response(self, omega: np.ndarray) -> np.ndarray:
        """Transfer matrix evaluated on the imaginary axis / unit circle.

        For continuous systems returns ``C (jwI - A)^-1 B + D``; for
        discrete systems ``C (e^{jw dt} I - A)^-1 B + D`` (so ``omega`` is
        still a *continuous* frequency in rad/s, as used by the
        jitter-margin criterion which mixes both domains).
        Output shape: ``(len(omega), p, m)``.
        """
        n = self.n_states
        omega = np.asarray(omega, dtype=float)
        if n == 0:
            return np.broadcast_to(
                self.D.astype(complex),
                (len(omega), self.n_outputs, self.n_inputs),
            ).copy()
        s = np.exp(1j * omega * self.dt) if self.is_discrete else 1j * omega
        # One batched solve over all frequencies: (W, n, n) \ (n, m) is an
        # order of magnitude faster than a Python loop of scalar solves
        # (this is the stability-curve hot path).
        lhs = s[:, None, None] * np.eye(n) - self.A
        try:
            resolvent = np.linalg.solve(lhs, np.broadcast_to(
                self.B, (len(omega),) + self.B.shape))
        except np.linalg.LinAlgError:
            # Some s hit a pole: fall back to per-frequency solves so only
            # those frequencies go unbounded.
            out = np.empty((len(omega), self.n_outputs, self.n_inputs),
                           dtype=complex)
            for i in range(len(omega)):
                try:
                    out[i] = self.C @ np.linalg.solve(lhs[i], self.B) + self.D
                except np.linalg.LinAlgError:
                    # s is a pole: the response is unbounded there.
                    out[i] = np.inf
            return out
        return self.C @ resolvent + self.D

    def siso_response(self, omega: np.ndarray) -> np.ndarray:
        """Scalar frequency response (requires a SISO system)."""
        if self.n_inputs != 1 or self.n_outputs != 1:
            raise ControlDesignError("siso_response requires a SISO system")
        return self.frequency_response(omega)[:, 0, 0]

    def __repr__(self) -> str:
        kind = f"discrete dt={self.dt}" if self.is_discrete else "continuous"
        return (
            f"StateSpace(n={self.n_states}, inputs={self.n_inputs}, "
            f"outputs={self.n_outputs}, {kind})"
        )


def tf_to_ss(num: Sequence[float], den: Sequence[float]) -> StateSpace:
    """SISO transfer function -> controllable canonical state space.

    >>> sys = tf_to_ss([1000], [1, 1, 0])   # the paper's DC servo
    >>> sys.n_states
    2
    """
    num = np.atleast_1d(np.asarray(num, dtype=float))
    den = np.atleast_1d(np.asarray(den, dtype=float))
    if den[0] == 0:
        raise ControlDesignError("leading denominator coefficient must be nonzero")
    num = num / den[0]
    den = den / den[0]
    n = len(den) - 1
    if n == 0:
        return StateSpace(np.zeros((0, 0)), np.zeros((0, 1)), np.zeros((1, 0)),
                          [[num[-1]]])
    if len(num) > len(den):
        raise ControlDesignError("improper transfer function (num order > den order)")
    num_padded = np.zeros(n + 1)
    num_padded[n + 1 - len(num):] = num
    d = num_padded[0]
    # Controllable canonical form.
    A = np.zeros((n, n))
    A[0, :] = -den[1:]
    A[1:, :-1] = np.eye(n - 1)
    B = np.zeros((n, 1))
    B[0, 0] = 1.0
    C = (num_padded[1:] - d * den[1:]).reshape(1, n)
    D = np.array([[d]])
    return StateSpace(A, B, C, D)
