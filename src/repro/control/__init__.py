"""Control-theory substrate (DESIGN.md S5): plants, discretization, LQG.

Implements the paper's control model (Sec. II-C): continuous LTI plants
sampled periodically, discrete LQG controllers, and the benchmark plant
database of Sec. VI, plus exact jittery closed-loop simulation used to
validate the stability analysis empirically.
"""

from .discretize import c2d, c2d_delayed, expm
from .lqg import LqgWeights, closed_loop, design_lqg
from .lti import StateSpace, tf_to_ss
from .plants import (
    PLANT_FACTORIES,
    PlantSpec,
    ball_and_beam,
    dc_servo,
    harmonic_oscillator,
    inverted_pendulum,
    plant_database,
    random_plant,
)
from .riccati import kalman_gain, lqr_gain, solve_dare
from .simulate import SimulationResult, simulate_with_delays

__all__ = [
    "LqgWeights",
    "PLANT_FACTORIES",
    "PlantSpec",
    "SimulationResult",
    "StateSpace",
    "ball_and_beam",
    "c2d",
    "c2d_delayed",
    "closed_loop",
    "dc_servo",
    "design_lqg",
    "expm",
    "harmonic_oscillator",
    "inverted_pendulum",
    "kalman_gain",
    "lqr_gain",
    "plant_database",
    "random_plant",
    "simulate_with_delays",
    "solve_dare",
    "tf_to_ss",
]
