"""Closed-loop simulation of sampled-data systems with network delays.

Validates the stability analysis empirically: simulate the continuous
plant with a discrete controller whose control updates arrive after the
per-sample delays produced by a synthesized network schedule, and check
that the state stays bounded (stable) or diverges (unstable).

The plant is integrated *exactly* between control updates using the
matrix exponential, so the simulation introduces no discretization error
beyond floating point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import ControlDesignError
from .discretize import _phi_gamma, expm
from .lti import StateSpace


@dataclass
class SimulationResult:
    """Trace of a jittery closed-loop simulation."""

    times: np.ndarray          # sampling instants
    states: np.ndarray         # plant state at sampling instants (n_steps x n)
    outputs: np.ndarray        # plant output at sampling instants
    controls: np.ndarray       # control value applied after each delay
    delays: np.ndarray         # the per-sample delays used

    @property
    def max_state_norm(self) -> float:
        return float(np.max(np.linalg.norm(self.states, axis=1)))

    @property
    def final_state_norm(self) -> float:
        return float(np.linalg.norm(self.states[-1]))

    def is_bounded(self, factor: float = 100.0) -> bool:
        """Heuristic boundedness: the trajectory never exceeds ``factor``
        times the initial state norm (plus a small absolute floor)."""
        x0 = max(1e-9, float(np.linalg.norm(self.states[0])))
        return self.max_state_norm <= factor * x0 + 1e-9


def simulate_with_delays(
    plant: StateSpace,
    controller: StateSpace,
    h: float,
    delays: Sequence[float],
    x0: Optional[np.ndarray] = None,
    n_steps: Optional[int] = None,
) -> SimulationResult:
    """Simulate sensor -> network -> controller -> actuator with jitter.

    Timeline per period ``[kh, (k+1)h)``:

    1. at ``kh`` the sensor samples ``y_k = C x(kh)``;
    2. the message traverses the network, arriving after ``delays[k]``
       (cyclically extended), with ``0 <= delays[k] <= h`` required;
    3. the controller computes ``u_k`` instantaneously on arrival (paper
       Sec. II-C: "the control signal ... is immediately applied to the
       plant by the actuator"), so the plant holds ``u_{k-1}`` during
       ``[kh, kh + delays[k])`` and ``u_k`` during the remainder.

    Args:
        plant: continuous-time plant.
        controller: discrete controller (from :func:`design_lqg`).
        h: sampling period; must equal the controller's ``dt``.
        delays: per-sample network delays, cycled over ``n_steps``.
        x0: initial plant state (default: ones).
        n_steps: number of periods to simulate (default: ``10 * len(delays)``
            or 200, whichever is larger).
    """
    if plant.is_discrete:
        raise ControlDesignError("plant must be continuous")
    if not controller.is_discrete or not np.isclose(controller.dt, h):
        raise ControlDesignError("controller.dt must equal the sampling period")
    delays = np.asarray(list(delays), dtype=float)
    if len(delays) == 0:
        delays = np.array([0.0])
    if np.any(delays < 0) or np.any(delays > h + 1e-12):
        raise ControlDesignError("delays must lie in [0, h]")
    if n_steps is None:
        n_steps = max(200, 10 * len(delays))

    n = plant.n_states
    x = np.ones(n) if x0 is None else np.asarray(x0, dtype=float).reshape(n)
    xc = np.zeros(controller.n_states)
    u_prev = np.zeros(plant.n_inputs)

    # Pre-compute segment transition matrices per distinct delay value.
    seg_cache = {}

    def segments(tau: float):
        key = round(tau, 15)
        if key not in seg_cache:
            phi1, gam1 = _phi_gamma(plant.A, plant.B, tau) if tau > 0 else (
                np.eye(n), np.zeros((n, plant.n_inputs)))
            phi2, gam2 = _phi_gamma(plant.A, plant.B, h - tau) if h - tau > 0 else (
                np.eye(n), np.zeros((n, plant.n_inputs)))
            seg_cache[key] = (phi1, gam1, phi2, gam2)
        return seg_cache[key]

    times = np.zeros(n_steps + 1)
    states = np.zeros((n_steps + 1, n))
    outputs = np.zeros((n_steps + 1, plant.n_outputs))
    controls = np.zeros((n_steps, plant.n_inputs))
    used_delays = np.zeros(n_steps)
    states[0] = x
    outputs[0] = (plant.C @ x + plant.D @ u_prev).ravel()

    for k in range(n_steps):
        tau = float(delays[k % len(delays)])
        used_delays[k] = tau
        y = plant.C @ x + plant.D @ u_prev
        # Discrete controller update at the sampling instant.
        u = controller.C @ xc + controller.D @ y
        xc = controller.A @ xc + controller.B @ y
        phi1, gam1, phi2, gam2 = segments(tau)
        # Old control during [kh, kh+tau), new control afterwards.
        x = phi1 @ x + gam1 @ u_prev
        x = phi2 @ x + gam2 @ u
        u_prev = u
        times[k + 1] = (k + 1) * h
        states[k + 1] = x
        outputs[k + 1] = (plant.C @ x + plant.D @ u_prev).ravel()
        controls[k] = u
        if not np.all(np.isfinite(x)) or np.linalg.norm(x) > 1e12:
            # Diverged: truncate the trace for the caller.
            return SimulationResult(
                times[: k + 2], states[: k + 2], outputs[: k + 2],
                controls[: k + 1], used_delays[: k + 1],
            )
    return SimulationResult(times, states, outputs, controls, used_delays)
