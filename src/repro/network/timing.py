"""Delay model (paper Sec. II-B): forwarding, transmission, end-to-end.

All times are exact :class:`fractions.Fraction` seconds so that the SMT
encoding, the validator, and the simulator agree bit-for-bit.

The paper's Table I parameters: 1500-byte frames on 10 Mbit/s links give
``ld = 1.2 ms``; switch forwarding delay ``sd = 5 us``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Union

Number = Union[int, Fraction, float, str]


def as_seconds(value: Number) -> Fraction:
    """Coerce a numeric time value to exact seconds."""
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, str):
        return Fraction(value)
    return Fraction(value).limit_denominator(10**12)


def milliseconds(value: Number) -> Fraction:
    return as_seconds(value) / 1000


def microseconds(value: Number) -> Fraction:
    return as_seconds(value) / 1_000_000


def transmission_delay(frame_bytes: int, link_rate_bps: int) -> Fraction:
    """Time to clock one frame onto a link (``ld`` in the paper).

    >>> transmission_delay(1500, 10_000_000)   # Table I parameters
    Fraction(3, 2500)
    """
    if frame_bytes <= 0:
        raise ValueError("frame size must be positive")
    if link_rate_bps <= 0:
        raise ValueError("link rate must be positive")
    return Fraction(8 * frame_bytes, link_rate_bps)


@dataclass(frozen=True)
class DelayModel:
    """Per-network delay parameters.

    Attributes:
        sd: switch forwarding delay (store-and-forward lookup time).
        ld: link transmission delay for the scheduled frames.

    The paper (footnote 1) assumes these are network-wide constants "only
    for simplifying the discussion"; the dataclass mirrors that while
    keeping the door open for per-link overrides via subclassing.
    """

    sd: Fraction
    ld: Fraction

    @staticmethod
    def table1() -> "DelayModel":
        """The General Motors case-study parameters from Table I."""
        return DelayModel(sd=microseconds(5), ld=transmission_delay(1500, 10_000_000))

    @staticmethod
    def fast_100mbit(frame_bytes: int = 1500) -> "DelayModel":
        """100 Mbit/s variant used by scale-down experiments."""
        return DelayModel(
            sd=microseconds(5), ld=transmission_delay(frame_bytes, 100_000_000)
        )

    def hop_delay(self) -> Fraction:
        """Minimum added delay per switch hop: forward + transmit."""
        return self.sd + self.ld
