"""Flows and message instances (paper Sec. II-C).

A control application's sensor emits one message per sampling period; the
series of instances is a *flow*.  All instances inside one hyper-period
(the LCM of all periods) constitute the message set ``M`` that the
synthesizer schedules and routes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Sequence

from ..errors import EncodingError
from .timing import Number, as_seconds


@dataclass(frozen=True)
class Flow:
    """A periodic sensor-to-controller stream.

    Attributes:
        name: unique flow identifier (conventionally the app name).
        source: sensor node name.
        dest: controller node name.
        period: sampling period ``h_i`` in seconds.
        frame_bytes: Ethernet frame size for each message instance.
    """

    name: str
    source: str
    dest: str
    period: Fraction
    frame_bytes: int = 1500

    def __post_init__(self) -> None:
        if as_seconds(self.period) <= 0:
            raise EncodingError(f"flow {self.name!r}: period must be positive")
        object.__setattr__(self, "period", as_seconds(self.period))
        if self.frame_bytes <= 0:
            raise EncodingError(f"flow {self.name!r}: frame size must be positive")


@dataclass(frozen=True)
class MessageInstance:
    """The j-th message ``m_{i,j}`` of a flow inside the hyper-period.

    ``release`` is the sensor sampling instant ``j * h_i`` at which the
    message enters the network (time-driven sampling; DESIGN.md §4).
    """

    flow: Flow
    index: int
    release: Fraction

    @property
    def uid(self) -> str:
        return f"{self.flow.name}#{self.index}"

    def __repr__(self) -> str:
        return f"MessageInstance({self.uid} @ {self.release})"


def hyperperiod(periods: Sequence[Fraction]) -> Fraction:
    """LCM of rational periods: lcm(numerators) / gcd(denominators)."""
    if not periods:
        raise EncodingError("hyperperiod of an empty period set")
    fracs = [as_seconds(p) for p in periods]
    if any(p <= 0 for p in fracs):
        raise EncodingError("periods must be positive")
    num = fracs[0].numerator
    den = fracs[0].denominator
    for p in fracs[1:]:
        num = math.lcm(num, p.numerator)
        den = math.gcd(den, p.denominator)
    return Fraction(num, den)


def expand_messages(flows: Sequence[Flow]) -> List[MessageInstance]:
    """All message instances of one hyper-period, in release-time order."""
    names = [f.name for f in flows]
    if len(set(names)) != len(names):
        raise EncodingError("duplicate flow names")
    hp = hyperperiod([f.period for f in flows])
    out: List[MessageInstance] = []
    for flow in flows:
        count = int(hp / flow.period)
        for j in range(count):
            out.append(MessageInstance(flow, j, j * flow.period))
    out.sort(key=lambda m: (m.release, m.flow.name, m.index))
    return out


def messages_by_flow(
    messages: Sequence[MessageInstance],
) -> Dict[str, List[MessageInstance]]:
    """Group message instances by flow name (sorted by index)."""
    grouped: Dict[str, List[MessageInstance]] = {}
    for m in messages:
        grouped.setdefault(m.flow.name, []).append(m)
    for name in grouped:
        grouped[name].sort(key=lambda m: m.index)
    return grouped
