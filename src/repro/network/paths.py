"""Path algorithms: Dijkstra, Yen's K-shortest paths, all simple paths.

These implement the route-candidate machinery of the paper's "route subset"
heuristic (Sec. V-C-1): the designer provides the first K shortest routes
per control application; ``all_simple_paths`` realizes the basic (complete)
formulation.

Routes are node sequences ``[sensor, switch, ..., switch, controller]``;
intermediate nodes must be switches (endpoints do not forward).
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import TopologyError
from .graph import Network


def _forwarding_neighbors(net: Network, node: str, dst: str) -> List[str]:
    """Neighbors reachable as a routing step toward ``dst``.

    Only switches forward traffic, so intermediate hops must be switches;
    the destination endpoint is always allowed.
    """
    out = []
    for nxt in net.neighbors(node):
        if nxt == dst or net.is_switch(nxt):
            out.append(nxt)
    return sorted(out)


def shortest_path(net: Network, src: str, dst: str) -> Optional[List[str]]:
    """Hop-count shortest route from ``src`` to ``dst`` (Dijkstra/BFS).

    Returns None when no route exists.  Ties are broken deterministically
    by lexicographic node order.
    """
    if src not in net or dst not in net:
        raise TopologyError(f"unknown endpoint {src!r} or {dst!r}")
    if src == dst:
        return [src]
    # Uniform weights: Dijkstra degenerates to BFS but we keep the heap for
    # deterministic lexicographic tie-breaking.
    heap: List[Tuple[int, List[str]]] = [(0, [src])]
    best: Dict[str, int] = {src: 0}
    while heap:
        dist, path = heapq.heappop(heap)
        node = path[-1]
        if node == dst:
            return path
        if dist > best.get(node, dist):
            continue
        for nxt in _forwarding_neighbors(net, node, dst):
            if nxt == src or nxt in path:
                continue
            nd = dist + 1
            if nd < best.get(nxt, nd + 1):
                best[nxt] = nd
                heapq.heappush(heap, (nd, path + [nxt]))
    return None


def all_simple_paths(
    net: Network, src: str, dst: str, cutoff: Optional[int] = None
) -> Iterator[List[str]]:
    """Yield every simple route from ``src`` to ``dst``.

    ``cutoff`` bounds the path length in *hops* (edges).  Paths are emitted
    in depth-first lexicographic order, so the output is deterministic.
    """
    if src not in net or dst not in net:
        raise TopologyError(f"unknown endpoint {src!r} or {dst!r}")
    limit = cutoff if cutoff is not None else net.num_nodes - 1
    path = [src]
    on_path = {src}

    def dfs(node: str) -> Iterator[List[str]]:
        if len(path) - 1 >= limit:
            return
        for nxt in _forwarding_neighbors(net, node, dst):
            if nxt in on_path:
                continue
            if nxt == dst:
                yield path + [dst]
                continue
            path.append(nxt)
            on_path.add(nxt)
            yield from dfs(nxt)
            path.pop()
            on_path.remove(nxt)

    if src == dst:
        yield [src]
        return
    yield from dfs(src)


def k_shortest_paths(net: Network, src: str, dst: str, k: int) -> List[List[str]]:
    """Yen's algorithm: the first ``k`` loop-free shortest routes.

    Returns fewer than ``k`` paths when the network does not contain that
    many simple routes.  Deterministic: candidates of equal length are
    ordered lexicographically.
    """
    if k <= 0:
        return []
    first = shortest_path(net, src, dst)
    if first is None:
        return []
    paths: List[List[str]] = [first]
    # Candidate heap of (length, path) with lexicographic tie-break.
    candidates: List[Tuple[int, List[str]]] = []
    seen_candidates = {tuple(first)}

    while len(paths) < k:
        prev = paths[-1]
        for i in range(len(prev) - 1):
            spur_node = prev[i]
            root = prev[: i + 1]
            # Build a pruned copy: remove links used by previous paths that
            # share this root, and remove root nodes except the spur node.
            removed_links = set()
            for p in paths:
                if len(p) > i and p[: i + 1] == root:
                    u, v = p[i], p[i + 1]
                    removed_links.add(frozenset((u, v)))
            pruned = _without(net, removed_links, set(root[:-1]))
            spur = shortest_path(pruned, spur_node, dst)
            if spur is None:
                continue
            candidate = root[:-1] + spur
            key = tuple(candidate)
            if key not in seen_candidates:
                seen_candidates.add(key)
                heapq.heappush(candidates, (len(candidate), candidate))
        if not candidates:
            break
        _, best = heapq.heappop(candidates)
        paths.append(best)
    return paths


def _without(net: Network, removed_links: set, removed_nodes: set) -> Network:
    """Copy of ``net`` without the given undirected links and nodes."""
    dup = Network()
    for node in net.nodes:
        if node in removed_nodes:
            continue
        kind = net.kind(node)
        dup._add_node(node, kind)  # type: ignore[attr-defined]
    for link in net.links:
        if link in removed_links:
            continue
        u, v = tuple(link)
        if u in dup._kinds and v in dup._kinds:  # type: ignore[attr-defined]
            dup._adj[u].add(v)  # type: ignore[attr-defined]
            dup._adj[v].add(u)  # type: ignore[attr-defined]
    return dup


def route_candidates(
    net: Network,
    src: str,
    dst: str,
    k: Optional[int],
    cutoff: Optional[int] = None,
) -> List[List[str]]:
    """Candidate route set for a flow (the paper's route subset, Eq. 8).

    ``k=None`` enumerates *all* simple routes (the basic formulation);
    otherwise the first ``k`` shortest routes are returned.
    """
    if k is None:
        return list(all_simple_paths(net, src, dst, cutoff=cutoff))
    return k_shortest_paths(net, src, dst, k)
