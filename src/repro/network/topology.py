"""Topology generators: Erdős–Rényi, the GM case-study network, and
regular families used throughout the tests and experiments.

The paper's Fig. 7 experiment generates switch topologies "randomly based
on the Erdős–Rényi graph model" and attaches 10 sensors and 10 controllers
at random; :func:`erdos_renyi_topology` + :func:`attach_endpoints`
reproduce that.  :func:`gm_topology` reconstructs the 8-switch automotive
network of Fig. 1 (see DESIGN.md §3 — substitution 3).
"""

from __future__ import annotations

import random

from ..errors import TopologyError
from .graph import Network


def erdos_renyi_topology(
    n_switches: int,
    p: float,
    rng: random.Random,
    ensure_connected: bool = True,
) -> Network:
    """Random switch-only topology following the G(n, p) model.

    When ``ensure_connected`` is set (the default, required for routing),
    disconnected components are repaired by adding one random inter-
    component link at a time — the minimal perturbation of the G(n, p)
    draw that makes synthesis well-posed.
    """
    if n_switches < 1:
        raise TopologyError("need at least one switch")
    net = Network()
    switches = [net.add_switch(f"SW{i}") for i in range(n_switches)]
    for i in range(n_switches):
        for j in range(i + 1, n_switches):
            if rng.random() < p:
                net.add_link(switches[i], switches[j])
    if ensure_connected:
        comps = net.components()
        while len(comps) > 1:
            a = rng.choice(sorted(comps[0]))
            b = rng.choice(sorted(comps[1]))
            net.add_link(a, b)
            comps = net.components()
    return net


def attach_endpoints(
    net: Network,
    n_sensors: int,
    n_controllers: int,
    rng: random.Random,
) -> Network:
    """Attach sensors and controllers to random switches (paper Sec. VI)."""
    switches = sorted(net.switches)
    if not switches:
        raise TopologyError("cannot attach endpoints: no switches")
    for i in range(n_sensors):
        s = net.add_sensor(f"S{i}")
        net.add_link(s, rng.choice(switches))
    for i in range(n_controllers):
        c = net.add_controller(f"C{i}")
        net.add_link(c, rng.choice(switches))
    return net


def random_network(
    n_switches: int,
    n_sensors: int,
    n_controllers: int,
    p: float = 0.3,
    seed: int = 0,
) -> Network:
    """One-call generator matching the paper's experimental networks."""
    rng = random.Random(seed)
    net = erdos_renyi_topology(n_switches, p, rng)
    return attach_endpoints(net, n_sensors, n_controllers, rng)


def gm_topology(n_sensors: int = 3, n_controllers: int = 3) -> Network:
    """The 8-switch automotive topology of the paper's Fig. 1.

    Reconstruction: the figure shows 8 Ethernet switches in a 2 x 4 mesh
    (two longitudinal chains bridged by four cross-links, a standard
    zonal automotive layout) with sensors attached on one side and
    controllers (ECUs) on the other.  Endpoints are attached round-robin:
    sensor ``i`` to switch ``SW{i mod 4}`` (top row), controller ``i`` to
    switch ``SW{4 + (i mod 4)}`` (bottom row).

    The Table I case study uses ``n_sensors = n_controllers = 20``.
    """
    net = Network()
    switches = [net.add_switch(f"SW{i}") for i in range(8)]
    # Top chain SW0-SW1-SW2-SW3, bottom chain SW4-SW5-SW6-SW7.
    for i in range(3):
        net.add_link(switches[i], switches[i + 1])
        net.add_link(switches[4 + i], switches[4 + i + 1])
    # Cross links.
    for i in range(4):
        net.add_link(switches[i], switches[4 + i])
    for i in range(n_sensors):
        s = net.add_sensor(f"S{i}")
        net.add_link(s, switches[i % 4])
    for i in range(n_controllers):
        c = net.add_controller(f"C{i}")
        net.add_link(c, switches[4 + (i % 4)])
    return net


def line_topology(n_switches: int) -> Network:
    """Switches in a chain: SW0 - SW1 - ... (plus no endpoints)."""
    net = Network()
    switches = [net.add_switch(f"SW{i}") for i in range(n_switches)]
    for i in range(n_switches - 1):
        net.add_link(switches[i], switches[i + 1])
    return net


def ring_topology(n_switches: int) -> Network:
    """Switches in a cycle (two disjoint routes between any pair)."""
    if n_switches < 3:
        raise TopologyError("a ring needs at least 3 switches")
    net = line_topology(n_switches)
    net.add_link(f"SW{n_switches - 1}", "SW0")
    return net


def star_topology(n_leaves: int) -> Network:
    """One hub switch with ``n_leaves`` leaf switches."""
    net = Network()
    hub = net.add_switch("HUB")
    for i in range(n_leaves):
        leaf = net.add_switch(f"SW{i}")
        net.add_link(hub, leaf)
    return net


def grid_topology(rows: int, cols: int) -> Network:
    """Rows x cols switch mesh (4-neighbour grid)."""
    net = Network()
    for r in range(rows):
        for c in range(cols):
            net.add_switch(f"SW{r}_{c}")
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                net.add_link(f"SW{r}_{c}", f"SW{r}_{c + 1}")
            if r + 1 < rows:
                net.add_link(f"SW{r}_{c}", f"SW{r + 1}_{c}")
    return net


def simple_testbed(n_apps: int = 2) -> Network:
    """A small 4-switch ring with ``n_apps`` sensor/controller pairs.

    Used by the quickstart example and many integration tests: every
    sensor-controller pair has at least two disjoint routes.
    """
    net = ring_topology(4)
    for i in range(n_apps):
        s = net.add_sensor(f"S{i}")
        c = net.add_controller(f"C{i}")
        net.add_link(s, f"SW{i % 4}")
        net.add_link(c, f"SW{(i + 2) % 4}")
    return net
