"""Behavioural model of an IEEE 802.1Qbv TSN switch (paper Sec. II-A, Fig. 2).

Each switch holds the two per-message variables the synthesizer produces:

* ``eta[uid]``   — output port (the forwarding look-up table), and
* ``gamma[uid]`` — release time at this switch (the gate schedule),

plus the egress machinery those variables drive: per-port priority queues
with timed gates.  The discrete-event simulator (:mod:`repro.sim`) runs
frames through this model to validate synthesized schedules; the
:meth:`TsnSwitch.build_gcl` method exports the standard cyclic gate
control list a real 802.1Qbv switch would be programmed with.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..errors import SimulationError

NUM_QUEUES = 8
#: Queue index used for scheduled (time-triggered) traffic.  The paper
#: dedicates the highest-priority queues to scheduled traffic; we place all
#: synthesized flows in queue 7 (highest) and leave 0-6 for lower classes.
TT_QUEUE = 7


@dataclass(frozen=True)
class GclEntry:
    """One window of a cyclic gate control list.

    The TT gate of ``port`` opens at ``start`` and closes at ``end``
    (both relative to the hyper-period cycle start) to transmit ``uid``.
    """

    start: Fraction
    end: Fraction
    queue: int
    uid: str


class EgressPort:
    """An egress port: 8 strict-priority queues behind timed gates."""

    def __init__(self, name: str, peer: str):
        self.name = name
        self.peer = peer
        self.queues: List[List[Tuple[Fraction, str]]] = [
            [] for _ in range(NUM_QUEUES)
        ]

    def enqueue(self, uid: str, time: Fraction, queue: int = TT_QUEUE) -> None:
        if not 0 <= queue < NUM_QUEUES:
            raise SimulationError(f"queue index {queue} out of range")
        self.queues[queue].append((time, uid))

    def queued(self, queue: int = TT_QUEUE) -> List[Tuple[Fraction, str]]:
        return list(self.queues[queue])

    def dequeue(self, uid: str, queue: int = TT_QUEUE) -> None:
        q = self.queues[queue]
        for i, (_, queued_uid) in enumerate(q):
            if queued_uid == uid:
                del q[i]
                return
        raise SimulationError(f"{uid} not queued on port {self.name}->{self.peer}")


class TsnSwitch:
    """A TSN switch with synthesized forwarding and release tables."""

    def __init__(self, name: str, neighbors: List[str], forwarding_delay: Fraction):
        self.name = name
        self.sd = forwarding_delay
        self.ports: Dict[str, EgressPort] = {
            peer: EgressPort(f"{name}:{peer}", peer) for peer in neighbors
        }
        # Synthesized tables: message uid -> output port peer / release time.
        self.eta: Dict[str, str] = {}
        self.gamma: Dict[str, Fraction] = {}

    # ------------------------------------------------------------------
    # Table programming (done by Solution.program_switches)
    # ------------------------------------------------------------------

    def program(self, uid: str, out_peer: str, release: Fraction) -> None:
        if out_peer not in self.ports:
            raise SimulationError(
                f"switch {self.name}: no port toward {out_peer!r} for {uid}"
            )
        self.eta[uid] = out_peer
        self.gamma[uid] = release

    # ------------------------------------------------------------------
    # Behaviour (driven by the discrete-event simulator)
    # ------------------------------------------------------------------

    def receive(self, uid: str, arrival: Fraction) -> Tuple[str, Fraction]:
        """Forwarding engine: look up the egress port, enqueue after ``sd``.

        Returns ``(out_peer, enqueue_time)``.
        """
        out_peer = self.eta.get(uid)
        if out_peer is None:
            raise SimulationError(f"switch {self.name}: no forwarding entry for {uid}")
        enqueue_time = arrival + self.sd
        self.ports[out_peer].enqueue(uid, enqueue_time)
        return out_peer, enqueue_time

    def gate_open_time(self, uid: str) -> Fraction:
        release = self.gamma.get(uid)
        if release is None:
            raise SimulationError(f"switch {self.name}: no release entry for {uid}")
        return release

    def transmit(self, uid: str, now: Fraction) -> str:
        """Open the timed gate for ``uid``: dequeue it for transmission.

        Raises if the frame has not arrived in the queue yet — i.e. the
        schedule would transmit a frame the switch does not hold, which is
        exactly the class of bug the simulator exists to catch.
        """
        out_peer = self.eta[uid]
        port = self.ports[out_peer]
        for time, queued_uid in port.queued():
            if queued_uid == uid:
                if time > now:
                    raise SimulationError(
                        f"switch {self.name}: gate for {uid} opened at {now} "
                        f"but the frame enqueues only at {time}"
                    )
                port.dequeue(uid)
                return out_peer
        raise SimulationError(
            f"switch {self.name}: gate for {uid} opened at {now} but the "
            "frame is not in the egress queue"
        )

    # ------------------------------------------------------------------
    # GCL export
    # ------------------------------------------------------------------

    def build_gcl(self, ld: Fraction, hp: Fraction) -> Dict[str, List[GclEntry]]:
        """Cyclic 802.1Qbv gate control list per egress port.

        Each scheduled message contributes one TT-queue window
        ``[gamma, gamma + ld)``; windows are cyclic modulo the
        hyper-period ``hp``.  Raises on overlapping windows, which would
        mean the schedule is not contention-free.
        """
        out: Dict[str, List[GclEntry]] = {peer: [] for peer in self.ports}
        for uid, peer in self.eta.items():
            start = self.gamma[uid] % hp
            out[peer].append(GclEntry(start, start + ld, TT_QUEUE, uid))
        for peer, entries in out.items():
            entries.sort(key=lambda e: e.start)
            for prev, cur in zip(entries, entries[1:]):
                if cur.start < prev.end:
                    raise SimulationError(
                        f"switch {self.name} port ->{peer}: overlapping gate "
                        f"windows for {prev.uid} and {cur.uid}"
                    )
        return out
