"""Network substrate: graph, paths, topologies, TSN switches, flows, delays.

Implements DESIGN.md systems S2-S4: the paper's network model (Sec. II-A),
traffic model (Sec. II-C), and delay model (Sec. II-B).
"""

from .frames import (
    Flow,
    MessageInstance,
    expand_messages,
    hyperperiod,
    messages_by_flow,
)
from .graph import Network, NodeKind
from .paths import (
    all_simple_paths,
    k_shortest_paths,
    route_candidates,
    shortest_path,
)
from .switch import GclEntry, TsnSwitch, EgressPort, NUM_QUEUES, TT_QUEUE
from .timing import (
    DelayModel,
    as_seconds,
    microseconds,
    milliseconds,
    transmission_delay,
)
from .topology import (
    attach_endpoints,
    erdos_renyi_topology,
    gm_topology,
    grid_topology,
    line_topology,
    random_network,
    ring_topology,
    simple_testbed,
    star_topology,
)

__all__ = [
    "DelayModel",
    "EgressPort",
    "Flow",
    "GclEntry",
    "MessageInstance",
    "Network",
    "NodeKind",
    "NUM_QUEUES",
    "TT_QUEUE",
    "TsnSwitch",
    "all_simple_paths",
    "as_seconds",
    "attach_endpoints",
    "erdos_renyi_topology",
    "expand_messages",
    "gm_topology",
    "grid_topology",
    "hyperperiod",
    "k_shortest_paths",
    "line_topology",
    "messages_by_flow",
    "microseconds",
    "milliseconds",
    "random_network",
    "ring_topology",
    "route_candidates",
    "shortest_path",
    "simple_testbed",
    "star_topology",
    "transmission_delay",
]
