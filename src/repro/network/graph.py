"""Network model: typed nodes and full-duplex links (paper Sec. II-A).

The network is a graph ``G = (V, E)`` whose nodes are Ethernet switches,
sensors, or controllers, and whose edges are full-duplex physical links.
A full-duplex link ``{u, v}`` carries two independent *directed* links
``(u, v)`` and ``(v, u)``; contention analysis (Eq. 5) operates on directed
links because the two directions have separate egress queues.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, List, Set, Tuple

from ..errors import TopologyError


class NodeKind(enum.Enum):
    """The three node types of the paper's system model."""

    SWITCH = "switch"
    SENSOR = "sensor"
    CONTROLLER = "controller"


class Network:
    """An undirected multigraph-free network of switches and endpoints.

    Sensors and controllers are *endpoints*: they originate/terminate
    flows but do not forward traffic, which the routing algorithms rely on
    (a valid route only traverses switches between its endpoints).
    """

    def __init__(self) -> None:
        self._kinds: Dict[str, NodeKind] = {}
        self._adj: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _add_node(self, name: str, kind: NodeKind) -> str:
        if name in self._kinds:
            raise TopologyError(f"duplicate node name: {name!r}")
        self._kinds[name] = kind
        self._adj[name] = set()
        return name

    def add_switch(self, name: str) -> str:
        """Add an Ethernet switch node."""
        return self._add_node(name, NodeKind.SWITCH)

    def add_sensor(self, name: str) -> str:
        """Add a sensor endpoint node."""
        return self._add_node(name, NodeKind.SENSOR)

    def add_controller(self, name: str) -> str:
        """Add a controller endpoint node."""
        return self._add_node(name, NodeKind.CONTROLLER)

    def add_link(self, u: str, v: str) -> None:
        """Add a full-duplex link between two existing nodes."""
        for n in (u, v):
            if n not in self._kinds:
                raise TopologyError(f"unknown node: {n!r}")
        if u == v:
            raise TopologyError(f"self-loop on {u!r}")
        if v in self._adj[u]:
            raise TopologyError(f"duplicate link {u!r} - {v!r}")
        if self._kinds[u] != NodeKind.SWITCH and self._kinds[v] != NodeKind.SWITCH:
            raise TopologyError(
                f"link {u!r} - {v!r} connects two endpoints; endpoints may "
                "only attach to switches"
            )
        self._adj[u].add(v)
        self._adj[v].add(u)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._kinds

    @property
    def nodes(self) -> List[str]:
        return list(self._kinds)

    @property
    def switches(self) -> List[str]:
        return [n for n, k in self._kinds.items() if k == NodeKind.SWITCH]

    @property
    def sensors(self) -> List[str]:
        return [n for n, k in self._kinds.items() if k == NodeKind.SENSOR]

    @property
    def controllers(self) -> List[str]:
        return [n for n, k in self._kinds.items() if k == NodeKind.CONTROLLER]

    def kind(self, name: str) -> NodeKind:
        try:
            return self._kinds[name]
        except KeyError:
            raise TopologyError(f"unknown node: {name!r}") from None

    def is_switch(self, name: str) -> bool:
        return self.kind(name) == NodeKind.SWITCH

    def neighbors(self, name: str) -> Set[str]:
        if name not in self._adj:
            raise TopologyError(f"unknown node: {name!r}")
        return set(self._adj[name])

    def degree(self, name: str) -> int:
        return len(self._adj[name])

    def has_link(self, u: str, v: str) -> bool:
        return u in self._adj and v in self._adj[u]

    @property
    def links(self) -> List[FrozenSet[str]]:
        """Undirected full-duplex links."""
        seen = set()
        out = []
        for u, nbrs in self._adj.items():
            for v in nbrs:
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    out.append(key)
        return out

    @property
    def directed_links(self) -> List[Tuple[str, str]]:
        """All directed links (two per full-duplex physical link)."""
        return [(u, v) for u, nbrs in self._adj.items() for v in nbrs]

    @property
    def num_nodes(self) -> int:
        return len(self._kinds)

    @property
    def num_links(self) -> int:
        return sum(len(s) for s in self._adj.values()) // 2

    # ------------------------------------------------------------------
    # Graph algorithms support
    # ------------------------------------------------------------------

    def connected(self, restrict_to_switches: bool = False) -> bool:
        """Whether the network (or its switch subgraph) is connected."""
        nodes = self.switches if restrict_to_switches else self.nodes
        if not nodes:
            return True
        allowed = set(nodes)
        stack = [nodes[0]]
        seen = {nodes[0]}
        while stack:
            cur = stack.pop()
            for nxt in self._adj[cur]:
                if nxt in allowed and nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return len(seen) == len(allowed)

    def components(self) -> List[Set[str]]:
        """Connected components over all nodes."""
        remaining = set(self._kinds)
        out = []
        while remaining:
            start = next(iter(remaining))
            comp = {start}
            stack = [start]
            while stack:
                cur = stack.pop()
                for nxt in self._adj[cur]:
                    if nxt not in comp:
                        comp.add(nxt)
                        stack.append(nxt)
            remaining -= comp
            out.append(comp)
        return out

    def copy(self) -> "Network":
        dup = Network()
        dup._kinds = dict(self._kinds)
        dup._adj = {n: set(s) for n, s in self._adj.items()}
        return dup

    def __repr__(self) -> str:
        return (
            f"Network(switches={len(self.switches)}, sensors={len(self.sensors)}, "
            f"controllers={len(self.controllers)}, links={self.num_links})"
        )
