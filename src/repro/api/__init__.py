"""repro.api — the unified solving-session API.

One declarative :class:`Session` in front of interchangeable solving
engines (:class:`NativeBackend`, :class:`SerializationBackend`, or any
:class:`SolverBackend` implementation), with rich :class:`CheckOutcome`
results and first-class unsat cores.  See ``docs/api.md``.
"""

from .backends import (
    BACKENDS,
    BackendAnswer,
    NativeBackend,
    SerializationBackend,
    SolverBackend,
    make_backend,
)
from .outcome import CheckOutcome
from .session import Session
from .smtlib import to_dimacs, to_smt2

__all__ = [
    "BACKENDS",
    "BackendAnswer",
    "CheckOutcome",
    "NativeBackend",
    "SerializationBackend",
    "Session",
    "SolverBackend",
    "make_backend",
    "to_dimacs",
    "to_smt2",
]
