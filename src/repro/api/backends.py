"""Solving engines behind :class:`repro.api.Session`.

A backend is anything satisfying the small :class:`SolverBackend`
protocol: it receives assertions and scope operations as the session
applies them, and answers ``check(assumptions)`` with a
:class:`BackendAnswer`.  Two implementations prove the seam:

* :class:`NativeBackend` — the in-process DPLL(T) engine
  (:class:`repro.smt.SolverEngine`): fully incremental, produces models,
  per-check statistics, and deletion-minimized unsat cores.
* :class:`SerializationBackend` — renders every check as a standalone
  SMT-LIB2 script (or DIMACS CNF for propositional sessions).  The
  script can be written to a directory for offline solving; the status
  it reports comes from a configurable *engine*: ``"z3"`` passes the
  session through the z3 Python bindings when installed, ``"native"``
  (the fallback of ``"auto"``) replays the serialized assertion set on a
  fresh native engine per check — deliberately stateless, which
  cross-checks that the declarative session log is complete — and
  ``"none"`` just serializes and answers ``unknown``.

Backends are looked up by name through :func:`make_backend`, the seam a
third-party engine would register through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import (Any, Callable, Dict, List, Optional, Protocol,
                    Sequence, runtime_checkable)

from ..errors import SolverError
from ..smt.solver import CheckResult, Model, SolverEngine, sat, unknown, unsat
from ..smt.terms import BoolExpr
from . import smtlib


@dataclass
class BackendAnswer:
    """One backend's reply to ``check``."""

    status: CheckResult
    model: Optional[Model] = None
    statistics: Dict[str, int] = field(default_factory=dict)
    #: Failed-assumption subset on unsat (None = not computed).
    unsat_core: Optional[List[BoolExpr]] = None
    #: Backend-specific artifacts (e.g. the serialized script path).
    artifacts: Dict[str, str] = field(default_factory=dict)


@runtime_checkable
class SolverBackend(Protocol):
    """What a solving engine must provide to power a session."""

    name: str

    def add(self, expr: BoolExpr) -> None:
        """Assert ``expr`` in the current scope."""

    def push(self) -> None:
        """Open a retractable assertion scope."""

    def pop(self, n: int = 1) -> None:
        """Retract the ``n`` innermost scopes."""

    def check(
        self,
        assumptions: Sequence[BoolExpr],
        minimize_core: bool = True,
    ) -> BackendAnswer:
        """Decide satisfiability under ``assumptions``."""

    def statistics(self) -> Dict[str, int]:
        """Cumulative counters for this backend instance."""


class NativeBackend:
    """The incremental DPLL(T) engine as a session backend.

    ``engine`` injects a prebuilt :class:`SolverEngine` (tests and the
    synthesizer's one-engine-per-run contract use this); by default a
    fresh engine is created from the keyword options.
    """

    name = "native"

    def __init__(self, theory_propagation: bool = True,
                 float_prefilter: bool = False,
                 dl_propagation: bool = True,
                 dl_effort: Optional[int] = None,
                 on_restart: Optional[Callable[[SolverEngine], None]] = None,
                 max_conflicts: Optional[int] = None,
                 engine: Optional[SolverEngine] = None) -> None:
        self._engine = engine if engine is not None else SolverEngine(
            theory_propagation=theory_propagation,
            float_prefilter=float_prefilter,
            dl_propagation=dl_propagation,
            dl_effort=dl_effort,
            on_restart=on_restart,
            max_conflicts=max_conflicts)
        self._engine.backend_name = self.name

    @property
    def engine(self) -> SolverEngine:
        """The underlying engine (escape hatch for advanced callers)."""
        return self._engine

    def interrupt(self) -> None:
        """Abort a running check at its next conflict (thread-safe).

        The aborted check answers ``unknown``; the engine stays usable.
        This is the supervision layer's handle for bounding a
        non-preemptible in-process solve by wall clock (see
        :class:`repro.portfolio.supervision.DeadlineWatchdog`).
        """
        self._engine.interrupt()

    def add(self, expr: BoolExpr) -> None:
        self._engine.add(expr)

    def push(self) -> None:
        self._engine.push()

    def pop(self, n: int = 1) -> None:
        self._engine.pop(n)

    def check(
        self,
        assumptions: Sequence[BoolExpr],
        minimize_core: bool = True,
    ) -> BackendAnswer:
        status = self._engine.check(*assumptions)
        stats = self._engine.last_check_statistics
        if status == sat:
            return BackendAnswer(status, self._engine.model(), stats)
        core: Optional[List[BoolExpr]] = None
        # unknown (budget/interrupt abort) has no core to extract.
        if assumptions and status == unsat:
            before = self._engine.core_minimization_checks
            core = self._engine.unsat_core(minimize=minimize_core)
            stats["core_minimization_checks"] = (
                self._engine.core_minimization_checks - before
            )
        return BackendAnswer(status, None, stats, unsat_core=core)

    def statistics(self) -> Dict[str, int]:
        stats = dict(self._engine.statistics)
        stats["core_minimization_checks"] = (
            self._engine.core_minimization_checks
        )
        return stats


class SerializationBackend:
    """Serialize every check; delegate the verdict to a pluggable engine.

    Args:
        engine: ``"auto"`` (z3 when importable, else native replay),
            ``"z3"``, ``"native"``, or ``"none"``.
        dump_dir: when set, each check's script is written there as
            ``check_<n>.smt2`` (or ``.cnf``).
        fmt: ``"smt2"`` (default) or ``"dimacs"`` (propositional
            sessions only).
    """

    name = "serialization"

    def __init__(self, engine: str = "auto",
                 dump_dir: Optional[str | Path] = None,
                 fmt: str = "smt2") -> None:
        if fmt not in ("smt2", "dimacs"):
            raise SolverError(f"unknown serialization format {fmt!r}")
        if engine == "auto":
            engine = "z3" if _z3_module() is not None else "native"
        if engine not in ("z3", "native", "none"):
            raise SolverError(
                f"unknown serialization engine {engine!r} "
                "(use 'auto', 'z3', 'native', or 'none')"
            )
        if engine == "z3" and _z3_module() is None:
            raise SolverError("z3 engine requested but z3 is not installed")
        self.engine = engine
        self.fmt = fmt
        self.dump_dir = Path(dump_dir) if dump_dir is not None else None
        self._frames: List[List[BoolExpr]] = [[]]
        self._checks = 0
        self._serialized_bytes = 0
        self._replay_totals: Dict[str, int] = {}
        self.last_script: Optional[str] = None

    # -- session state mirroring ----------------------------------------

    def add(self, expr: BoolExpr) -> None:
        self._frames[-1].append(expr)

    def push(self) -> None:
        self._frames.append([])

    def pop(self, n: int = 1) -> None:
        if n < 0 or n > len(self._frames) - 1:
            raise SolverError(
                f"cannot pop {n} scope(s); {len(self._frames) - 1} pushed"
            )
        for _ in range(n):
            self._frames.pop()

    @property
    def assertions(self) -> List[BoolExpr]:
        return [e for frame in self._frames for e in frame]

    # -- checking --------------------------------------------------------

    def check(
        self,
        assumptions: Sequence[BoolExpr],
        minimize_core: bool = True,
    ) -> BackendAnswer:
        assertions = self.assertions
        if self.fmt == "dimacs" and not assumptions:
            script = smtlib.to_dimacs(assertions)
            suffix = "cnf"
        else:
            script, _terms = smtlib.to_smt2(assertions, assumptions)
            suffix = "smt2"
        self.last_script = script
        self._checks += 1
        self._serialized_bytes += len(script)
        artifacts = {"format": suffix}
        if self.dump_dir is not None:
            self.dump_dir.mkdir(parents=True, exist_ok=True)
            path = self.dump_dir / f"check_{self._checks:04d}.{suffix}"
            path.write_text(script)
            artifacts["path"] = str(path)

        if self.engine == "none":
            return BackendAnswer(unknown, artifacts=artifacts)
        if self.engine == "z3":
            answer = self._check_z3(assertions, assumptions)
        else:
            answer = self._check_replay(assertions, assumptions, minimize_core)
        answer.artifacts.update(artifacts)
        return answer

    def _check_replay(
        self,
        assertions: Sequence[BoolExpr],
        assumptions: Sequence[BoolExpr],
        minimize_core: bool,
    ) -> BackendAnswer:
        """Fresh native engine over the recorded assertion log."""
        engine = SolverEngine()
        engine.backend_name = self.name
        for expr in assertions:
            engine.add(expr)
        status = engine.check(*assumptions)
        stats = engine.last_check_statistics
        for key, value in stats.items():
            self._replay_totals[key] = self._replay_totals.get(key, 0) + value
        if status == sat:
            return BackendAnswer(status, engine.model(), stats)
        core = engine.unsat_core(minimize=minimize_core) if assumptions else None
        return BackendAnswer(status, None, stats, unsat_core=core)

    def _check_z3(
        self,
        assertions: Sequence[BoolExpr],
        assumptions: Sequence[BoolExpr],
    ) -> BackendAnswer:
        """Pass the serialized script through the z3 Python bindings."""
        z3 = _z3_module()
        assert z3 is not None  # guarded in __init__
        script, terms = smtlib.to_smt2(
            assertions, assumptions, produce_unsat_assumptions=False
        )
        # Strip the check command: z3's from_string only takes assertions.
        body = "\n".join(
            line for line in script.splitlines()
            if not line.startswith("(check-sat")
            and not line.startswith("(set-option")
        )
        solver = z3.Solver()
        solver.from_string(body)
        guards = []
        for term in terms:
            name = term[1:-1] if term.startswith("|") else term
            if term.startswith("(not "):
                inner = term[len("(not "):-1]
                inner = inner[1:-1] if inner.startswith("|") else inner
                guards.append(z3.Not(z3.Bool(inner)))
            else:
                guards.append(z3.Bool(name))
        res = solver.check(*guards)
        if res == z3.sat:
            model = _model_from_z3(z3, solver.model(), assertions, assumptions)
            return BackendAnswer(sat, model)
        if res == z3.unsat:
            # Match core members against the exact guard ASTs we passed
            # to check() — string matching would miss negated literals
            # (z3 prints ``Not(a)`` where the script says ``(not a)``).
            core_refs = list(solver.unsat_core())
            core = [
                expr for guard, expr in zip(guards, assumptions)
                if any(guard.eq(ref) for ref in core_refs)
            ]
            return BackendAnswer(unsat, unsat_core=core)
        return BackendAnswer(unknown)

    def statistics(self) -> Dict[str, int]:
        stats = dict(self._replay_totals)
        stats["serialized_checks"] = self._checks
        stats["serialized_bytes"] = self._serialized_bytes
        return stats


def _model_from_z3(z3: Any, z3_model: Any,
                   assertions: Sequence[BoolExpr],
                   assumptions: Sequence[BoolExpr]) -> Model:
    """Convert a z3 model into the native :class:`Model`.

    Only the session's own variables are read back (with model
    completion, so unconstrained ones get defaults); values come out as
    exact rationals.
    """
    from fractions import Fraction

    from ..smt.terms import BoolVar, RealVar

    bools: Dict[str, BoolVar] = {}
    reals: Dict[str, RealVar] = {}
    for expr in list(assertions) + list(assumptions):
        smtlib._collect_vars(expr, bools, reals)
    bool_values = {}
    for name, var in bools.items():
        value = z3_model.eval(z3.Bool(name), model_completion=True)
        bool_values[var] = z3.is_true(value)
    real_values = {}
    for name, var in reals.items():
        value = z3_model.eval(z3.Real(name), model_completion=True)
        real_values[var] = Fraction(
            value.numerator_as_long(), value.denominator_as_long()
        )
    return Model(bool_values, real_values)


def _z3_module() -> Any:
    try:
        import z3  # type: ignore
    except ImportError:
        return None
    return z3


#: Backend registry: name -> factory taking keyword options.
BACKENDS: Dict[str, Callable[..., SolverBackend]] = {
    "native": NativeBackend,
    "serialization": SerializationBackend,
}


def make_backend(name: str, **options: object) -> SolverBackend:
    """Instantiate a registered backend by name."""
    factory = BACKENDS.get(name)
    if factory is None:
        raise SolverError(
            f"unknown solver backend {name!r} (have {sorted(BACKENDS)})"
        )
    return factory(**options)
