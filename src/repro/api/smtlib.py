"""Serialization of the term language: SMT-LIB2 scripts and DIMACS CNF.

This is the exchange half of the :class:`~repro.api.backends.SerializationBackend`:
a session's assertion set (plus per-check assumptions) is rendered to a
standard-format script that any external solver — z3, cvc5, a DIMACS SAT
solver for purely propositional sessions — can consume.  The renderer is
total over the term language of :mod:`repro.smt.terms`: Boolean
constants/variables, ``not``/``and``/``or`` nodes, and normalized linear
atoms ``sum(c_i * x_i) (<= | <) rhs``.

Assumptions in SMT-LIB2 must be literals, so non-literal assumption
formulas are bridged with fresh guard symbols::

    (declare-const |__assume!0| Bool)
    (assert (= |__assume!0| (<= (+ x y) 7)))
    ...
    (check-sat-assuming (|__assume!0| ...))

which keeps the script's satisfiability identical to the session check
and lets ``(get-unsat-assumptions)`` name the failed guards.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Sequence, Tuple

from ..errors import SolverError
from ..smt.terms import (
    AndExpr,
    Atom,
    BoolConst,
    BoolExpr,
    BoolVar,
    NotExpr,
    OrExpr,
    RealVar,
)

#: Characters allowed in an unquoted SMT-LIB2 simple symbol.
_SIMPLE_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
    "~!@$%^&*_-+=<>.?/"
)


def symbol(name: str) -> str:
    """Render ``name`` as an SMT-LIB2 symbol, quoting when required."""
    if name and all(ch in _SIMPLE_CHARS for ch in name) and not name[0].isdigit():
        return name
    if "|" in name or "\\" in name:
        raise SolverError(
            f"name {name!r} cannot be an SMT-LIB2 symbol ('|' and '\\\\' "
            "are unrepresentable even quoted)"
        )
    return f"|{name}|"


def rational(value: Fraction) -> str:
    """Render an exact rational constant."""
    value = Fraction(value)
    if value < 0:
        return f"(- {rational(-value)})"
    if value.denominator == 1:
        return f"{value.numerator}.0"
    return f"(/ {value.numerator}.0 {value.denominator}.0)"


def _term(coeffs: Tuple[Tuple[RealVar, Fraction], ...]) -> str:
    parts = []
    for var, coeff in coeffs:
        sym = symbol(var.name)
        parts.append(sym if coeff == 1 else f"(* {rational(coeff)} {sym})")
    if len(parts) == 1:
        return parts[0]
    return "(+ " + " ".join(parts) + ")"


def render(expr: BoolExpr) -> str:
    """Render one Boolean formula as an SMT-LIB2 term."""
    if isinstance(expr, BoolConst):
        return "true" if expr.value else "false"
    if isinstance(expr, BoolVar):
        return symbol(expr.name)
    if isinstance(expr, NotExpr):
        return f"(not {render(expr.arg)})"
    if isinstance(expr, AndExpr):
        return "(and " + " ".join(render(a) for a in expr.args) + ")"
    if isinstance(expr, OrExpr):
        return "(or " + " ".join(render(a) for a in expr.args) + ")"
    if isinstance(expr, Atom):
        op = "<" if expr.strict else "<="
        return f"({op} {_term(expr.coeffs)} {rational(expr.rhs)})"
    raise SolverError(f"cannot serialize {expr!r} to SMT-LIB2")


def _collect_vars(
    expr: BoolExpr, bools: Dict[str, BoolVar], reals: Dict[str, RealVar]
) -> None:
    if isinstance(expr, BoolVar):
        bools.setdefault(expr.name, expr)
    elif isinstance(expr, NotExpr):
        _collect_vars(expr.arg, bools, reals)
    elif isinstance(expr, (AndExpr, OrExpr)):
        for a in expr.args:
            _collect_vars(a, bools, reals)
    elif isinstance(expr, Atom):
        for var, _coeff in expr.coeffs:
            reals.setdefault(var.name, var)


def _is_literal(expr: BoolExpr) -> bool:
    if isinstance(expr, BoolVar):
        return True
    return isinstance(expr, NotExpr) and isinstance(expr.arg, BoolVar)


def to_smt2(
    assertions: Sequence[BoolExpr],
    assumptions: Sequence[BoolExpr] = (),
    logic: str = "QF_LRA",
    produce_unsat_assumptions: bool = True,
) -> Tuple[str, List[str]]:
    """Render a full SMT-LIB2 script for one ``check``.

    Returns ``(script, assumption_terms)`` where ``assumption_terms[i]``
    is the literal naming ``assumptions[i]`` inside the script's
    ``(check-sat-assuming ...)`` — the i-th assumption formula itself when
    it is already a literal, otherwise a fresh ``__assume!i`` guard.
    """
    bools: Dict[str, BoolVar] = {}
    reals: Dict[str, RealVar] = {}
    for expr in assertions:
        _collect_vars(expr, bools, reals)
    for expr in assumptions:
        _collect_vars(expr, bools, reals)

    lines: List[str] = [
        "(set-logic %s)" % logic,
    ]
    if produce_unsat_assumptions and assumptions:
        lines.insert(0, "(set-option :produce-unsat-assumptions true)")
    guard_lines: List[str] = []
    assumption_terms: List[str] = []
    for i, expr in enumerate(assumptions):
        if _is_literal(expr):
            assumption_terms.append(render(expr))
        else:
            guard = f"__assume!{i}"
            guard_lines.append(f"(declare-const {symbol(guard)} Bool)")
            guard_lines.append(
                f"(assert (= {symbol(guard)} {render(expr)}))"
            )
            assumption_terms.append(symbol(guard))

    for name in sorted(bools):
        lines.append(f"(declare-const {symbol(name)} Bool)")
    for name in sorted(reals):
        lines.append(f"(declare-const {symbol(name)} Real)")
    lines.extend(guard_lines)
    for expr in assertions:
        lines.append(f"(assert {render(expr)})")
    if assumptions:
        lines.append(
            "(check-sat-assuming (" + " ".join(assumption_terms) + "))"
        )
        if produce_unsat_assumptions:
            lines.append("(get-unsat-assumptions)")
    else:
        lines.append("(check-sat)")
    return "\n".join(lines) + "\n", assumption_terms


def to_dimacs(assertions: Sequence[BoolExpr]) -> str:
    """Render a *purely propositional* assertion set as DIMACS CNF.

    Raises :class:`SolverError` when the assertions contain arithmetic
    atoms (use the SMT-LIB2 format for those).  The encoding reuses the
    solver's own Tseitin converter on a throwaway SAT core, so the dump
    is exactly the clause set a native check would search.
    """
    from ..sat.literals import to_dimacs as lit_to_dimacs
    from ..sat.solver import SatSolver
    from ..smt.cnf import CnfConverter
    from ..smt.theory import LraTheory

    bools: Dict[str, BoolVar] = {}
    reals: Dict[str, RealVar] = {}
    for expr in assertions:
        _collect_vars(expr, bools, reals)
    if reals:
        names = ", ".join(sorted(reals))
        raise SolverError(
            f"DIMACS output requires a propositional formula; real "
            f"variables present: {names}"
        )
    sat_core = SatSolver()
    cnf = CnfConverter(sat_core, LraTheory())
    for expr in assertions:
        cnf.assert_formula(expr)
    clauses: List[List[int]] = [
        [lit_to_dimacs(l) for l in clause_lits]
        for clause_lits in sat_core.clause_literals()
    ]
    # Root-level units (asserted directly) live on the trail, not in the
    # clause arena; a root conflict is an empty clause.
    for l in sat_core.root_literals():
        clauses.append([lit_to_dimacs(l)])
    if not sat_core._ok:
        clauses.append([])
    lines = [f"p cnf {sat_core.num_vars} {len(clauses)}"]
    comment = [
        f"c {v} = {name}" for name, bv in sorted(bools.items())
        for v in [cnf.bool_vars.get(bv)] if v is not None
    ]
    lines = comment + lines
    for clause in clauses:
        lines.append(" ".join(str(l) for l in clause) + " 0")
    return "\n".join(lines) + "\n"
