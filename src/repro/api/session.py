"""The unified solving session: one declarative context, pluggable engines.

:class:`Session` is the public solving surface of the reproduction.  It
owns the declarative state — terms, assertions, scopes — and per-session
accounting, and fronts a :class:`~repro.api.backends.SolverBackend` that
does the solving.  Compared to the legacy ``repro.smt.Solver`` surface it
adds:

* **Pluggable backends** — ``Session(backend="native")`` solves with the
  in-process DPLL(T) engine; ``backend="serialization"`` renders each
  check as SMT-LIB2/DIMACS (optionally solving via z3 or a native
  replay).  Any object satisfying the backend protocol plugs in.
* **Rich outcomes** — ``check()`` returns a :class:`CheckOutcome`
  carrying status, model, per-check statistics, wall time, and (on
  unsat under assumptions) the failed-assumption core.
* **First-class unsat cores** — deletion-minimized by default; an empty
  core means the assertions alone are unsatisfiable.

Quickstart::

    from repro.api import Session
    from repro.smt import Bool, Real, Or, Not

    x, a, b = Real("x"), Bool("a"), Bool("b")
    with Session() as s:
        s.add(Or(Not(a), x >= 4), Or(Not(b), x <= 1))
        out = s.check(a, b)          # assumption probing
        if out == "unsat":
            print(out.unsat_core)    # e.g. (a, b)

See ``docs/api.md`` for the full tour and the migration table from the
legacy surface.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..errors import SolverError
from ..smt.solver import Model
from ..smt.terms import BoolConst, BoolExpr
from .backends import SolverBackend, make_backend
from .outcome import CheckOutcome

#: Session-level counters reported by :attr:`Session.statistics`.
_SESSION_COUNTERS = (
    "checks",
    "sat",
    "unsat",
    "unknown",
    "assumption_checks",
    "cores_extracted",
)


class Session:
    """A solving context: assertions, scopes, statistics, one backend.

    Args:
        backend: a backend name (``"native"``, ``"serialization"``) or a
            ready :class:`SolverBackend` instance.
        minimize_cores: deletion-minimize unsat cores (default on; turn
            off to get the cheaper raw final-conflict core).
        **backend_options: forwarded to the backend factory when
            ``backend`` is a name (e.g. ``theory_propagation=False``,
            ``max_conflicts=10_000`` or ``on_restart=callback`` for
            native, ``dump_dir=...`` for serialization).  With the
            native backend, ``on_restart`` fires with the engine at
            every SAT restart inside a check — the mid-check
            knowledge-export hook — and ``max_conflicts`` bounds each
            check's conflicts, answering ``unknown`` on exhaustion.
    """

    def __init__(self, backend: Union[str, SolverBackend] = "native", *,
                 minimize_cores: bool = True,
                 **backend_options: object) -> None:
        if isinstance(backend, str):
            self._backend: SolverBackend = make_backend(
                backend, **backend_options)
        else:
            if backend_options:
                raise SolverError(
                    "backend_options are only valid with a backend name"
                )
            self._backend = backend
        self.minimize_cores = minimize_cores
        self._frames: List[List[BoolExpr]] = [[]]
        self._counters: Dict[str, int] = {k: 0 for k in _SESSION_COUNTERS}
        self._wall_time = 0.0
        self._last_outcome: Optional[CheckOutcome] = None

    # -- context management ---------------------------------------------

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    # -- introspection ----------------------------------------------------

    @property
    def backend(self) -> SolverBackend:
        return self._backend

    @property
    def backend_name(self) -> str:
        return self._backend.name

    @property
    def assertions(self) -> List[BoolExpr]:
        """All live assertions, outermost scope first."""
        return [e for frame in self._frames for e in frame]

    @property
    def num_scopes(self) -> int:
        return len(self._frames) - 1

    @property
    def last_outcome(self) -> Optional[CheckOutcome]:
        return self._last_outcome

    @property
    def statistics(self) -> Dict[str, int]:
        """Session counters plus the backend's cumulative statistics.

        Backend keys are prefixed with the backend name so portfolio /
        bench reporting can attribute work per backend.
        """
        stats: Dict[str, int] = dict(self._counters)
        stats["wall_time_ms"] = int(self._wall_time * 1000)
        for key, value in self._backend.statistics().items():
            stats[f"{self._backend.name}.{key}"] = value
        return stats

    # -- declarative state -------------------------------------------------

    def add(self, *exprs: BoolExpr | bool | Iterable) -> "Session":
        """Assert formulas in the current scope (lists/tuples flatten).

        Returns ``self`` so construction chains:
        ``Session().add(f).check()``.
        """
        for expr in self._flatten(exprs):
            self._frames[-1].append(expr)
            self._backend.add(expr)
        return self

    def push(self) -> None:
        """Open a retractable assertion scope."""
        self._frames.append([])
        self._backend.push()

    def pop(self, n: int = 1) -> None:
        """Retract the ``n`` innermost scopes and their assertions.

        Raises :class:`SolverError` when ``n`` exceeds the number of
        open scopes (the scope stack is left untouched in that case).
        """
        if n < 0 or n > self.num_scopes:
            raise SolverError(
                f"cannot pop {n} scope(s); {self.num_scopes} pushed"
            )
        self._backend.pop(n)
        for _ in range(n):
            self._frames.pop()

    # -- solving -----------------------------------------------------------

    def check(self, *assumptions: BoolExpr | bool | Iterable) -> CheckOutcome:
        """Decide satisfiability under optional one-shot ``assumptions``.

        Always returns a :class:`CheckOutcome`; on unsat with
        assumptions its ``unsat_core`` is the failed subset (deletion-
        minimized when the session's ``minimize_cores`` is on).
        """
        flat = tuple(self._flatten(assumptions))
        t0 = time.perf_counter()
        answer = self._backend.check(flat, minimize_core=self.minimize_cores)
        wall = time.perf_counter() - t0
        self._wall_time += wall
        self._counters["checks"] += 1
        name = answer.status.name if answer.status.name in (
            "sat", "unsat", "unknown") else "unknown"
        self._counters[name] += 1
        if flat:
            self._counters["assumption_checks"] += 1
        core: Optional[Tuple[BoolExpr, ...]] = None
        if answer.unsat_core is not None:
            core = tuple(answer.unsat_core)
            if core:
                self._counters["cores_extracted"] += 1
        outcome = CheckOutcome(
            status=answer.status,
            model=answer.model,
            statistics=dict(answer.statistics),
            unsat_core=core,
            assumptions=flat,
            backend=self._backend.name,
            wall_time=wall,
        )
        self._last_outcome = outcome
        return outcome

    def interrupt(self) -> None:
        """Abort a running :meth:`check` from another thread.

        The interrupted check answers ``unknown`` and the session stays
        usable.  Only backends exposing an interruptible engine support
        this (the native backend does); others raise
        :class:`SolverError` — callers bounding arbitrary backends
        should gate on the session's ``can_interrupt``.
        """
        interrupt = getattr(self._backend, "interrupt", None)
        if interrupt is None:
            raise SolverError(
                f"backend {self.backend_name!r} is not interruptible"
            )
        interrupt()

    @property
    def can_interrupt(self) -> bool:
        """Does this session's backend support :meth:`interrupt`?"""
        return getattr(self._backend, "interrupt", None) is not None

    def model(self) -> "Model":
        """The last outcome's model (compatibility convenience)."""
        if self._last_outcome is None:
            raise SolverError("model is only available after a sat check()")
        return self._last_outcome.require_model()

    # -- helpers -----------------------------------------------------------

    def _flatten(self, exprs: Iterable[object]) -> Iterable[BoolExpr]:
        for expr in exprs:
            if isinstance(expr, (list, tuple)):
                yield from self._flatten(expr)
                continue
            if isinstance(expr, bool):
                expr = BoolConst(expr)
            if not isinstance(expr, BoolExpr):
                raise SolverError(f"expected a Boolean formula, got {expr!r}")
            yield expr
