"""The rich result object returned by :meth:`repro.api.Session.check`."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import SolverError
from ..smt.solver import CheckResult, Model
from ..smt.terms import BoolExpr


@dataclass(eq=False)
class CheckOutcome:
    """Everything one ``check()`` produced.

    Compares equal to the strings ``"sat"`` / ``"unsat"`` / ``"unknown"``
    (and to :class:`~repro.smt.CheckResult` values, and to other
    outcomes) by its status, and hashes consistently with them, so
    callers can write ``if outcome == "unsat"`` or key dicts by either
    form without ``str(...)`` conversions.

    Attributes:
        status: ``sat`` / ``unsat`` / ``unknown``.
        model: the satisfying assignment (``status == sat`` only; may be
            ``None`` for backends that cannot produce models, e.g. a
            pure serialization run).
        statistics: this check's search-effort counters (per-check
            deltas, not cumulative).
        unsat_core: on unsat under assumptions, the failed-assumption
            subset (deletion-minimized unless the session disables it).
            An *empty* tuple means the assertions are unsat regardless of
            the assumptions; ``None`` means no core is available (sat,
            unknown, or an assumption-free check).
        assumptions: the assumption formulas this check ran under.
        backend: name of the backend that answered.
        wall_time: seconds spent in the backend for this check.
    """

    status: CheckResult
    model: Optional[Model] = None
    statistics: Dict[str, int] = field(default_factory=dict)
    unsat_core: Optional[Tuple[BoolExpr, ...]] = None
    assumptions: Tuple[BoolExpr, ...] = ()
    backend: str = "native"
    wall_time: float = 0.0

    def __bool__(self) -> bool:
        return self.status == "sat"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CheckOutcome):
            return self.status == other.status
        if isinstance(other, (CheckResult, str)):
            return self.status == other
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        if eq is NotImplemented:
            return NotImplemented
        return not eq

    def __hash__(self) -> int:
        return hash(self.status)

    def __repr__(self) -> str:
        parts = [f"CheckOutcome({self.status}"]
        if self.unsat_core is not None:
            parts.append(f", core={len(self.unsat_core)} of "
                         f"{len(self.assumptions)} assumptions")
        parts.append(f", backend={self.backend!r})")
        return "".join(parts)

    def require_model(self) -> Model:
        """The model, or a :class:`SolverError` explaining its absence."""
        if self.model is None:
            raise SolverError(
                f"no model: check() answered {self.status} on the "
                f"{self.backend!r} backend"
            )
        return self.model
