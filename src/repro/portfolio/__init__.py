"""Portfolio synthesis: race the paper's heuristics, first SAT wins.

The paper evaluates its two scalability heuristics (route subsets,
incremental stages) one configuration at a time; this subsystem runs a
configurable set of them concurrently against the same problem and
returns the first satisfiable schedule, cancelling the rest.  Race
verdicts are sound (``unsat`` only from a complete strategy's proof) and
workers share learned information — clauses, route vetoes, stage
prefixes — through a parent-side knowledge pool.  See
:mod:`repro.portfolio.strategies` for the default strategy mix,
:mod:`repro.portfolio.engine` for the racing machinery and
:mod:`repro.portfolio.sharing` for the artifact kinds and their
soundness arguments.

The race is supervised (``docs/robustness.md``): workers heartbeat,
silent crashes and stalls are retried with capped backoff
(:mod:`repro.portfolio.supervision`), malformed artifacts are
quarantined at the pool boundary, and persistent failures degrade the
race to the serial backend.  :mod:`repro.portfolio.faults` injects
deterministic failures to exercise all of it on demand.
"""

from .engine import (
    PortfolioResult,
    STATUS_CANCELLED,
    STATUS_ERROR,
    STATUS_SAT,
    STATUS_SKIPPED,
    STATUS_TIMEOUT,
    STATUS_UNKNOWN,
    STATUS_UNSAT,
    StrategyResult,
    synthesize_portfolio,
)
from .faults import FaultPlan, FaultSpec, InjectedCrash, WorkerFaults
from .sharing import KnowledgePool, SeedKnowledge, validate_artifact
from .strategies import Strategy, default_portfolio, with_backend, with_restart_schedule
from .supervision import SupervisionPolicy, Supervisor

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "KnowledgePool",
    "PortfolioResult",
    "STATUS_CANCELLED",
    "STATUS_ERROR",
    "STATUS_SAT",
    "STATUS_SKIPPED",
    "STATUS_TIMEOUT",
    "STATUS_UNKNOWN",
    "STATUS_UNSAT",
    "SeedKnowledge",
    "Strategy",
    "StrategyResult",
    "SupervisionPolicy",
    "Supervisor",
    "WorkerFaults",
    "default_portfolio",
    "synthesize_portfolio",
    "validate_artifact",
    "with_backend",
    "with_restart_schedule",
]
