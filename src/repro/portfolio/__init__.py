"""Portfolio synthesis: race the paper's heuristics, first SAT wins.

The paper evaluates its two scalability heuristics (route subsets,
incremental stages) one configuration at a time; this subsystem runs a
configurable set of them concurrently against the same problem and
returns the first satisfiable schedule, cancelling the rest.  Race
verdicts are sound (``unsat`` only from a complete strategy's proof) and
workers share learned information — clauses, route vetoes, stage
prefixes — through a parent-side knowledge pool.  See
:mod:`repro.portfolio.strategies` for the default strategy mix,
:mod:`repro.portfolio.engine` for the racing machinery and
:mod:`repro.portfolio.sharing` for the artifact kinds and their
soundness arguments.
"""

from .engine import (
    PortfolioResult,
    STATUS_CANCELLED,
    STATUS_ERROR,
    STATUS_SAT,
    STATUS_SKIPPED,
    STATUS_TIMEOUT,
    STATUS_UNKNOWN,
    STATUS_UNSAT,
    StrategyResult,
    synthesize_portfolio,
)
from .sharing import KnowledgePool, SeedKnowledge
from .strategies import Strategy, default_portfolio, with_backend, with_restart_schedule

__all__ = [
    "KnowledgePool",
    "PortfolioResult",
    "STATUS_CANCELLED",
    "STATUS_ERROR",
    "STATUS_SAT",
    "STATUS_SKIPPED",
    "STATUS_TIMEOUT",
    "STATUS_UNKNOWN",
    "STATUS_UNSAT",
    "SeedKnowledge",
    "Strategy",
    "StrategyResult",
    "default_portfolio",
    "synthesize_portfolio",
    "with_backend",
    "with_restart_schedule",
]
