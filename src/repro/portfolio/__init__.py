"""Portfolio synthesis: race the paper's heuristics, first SAT wins.

The paper evaluates its two scalability heuristics (route subsets,
incremental stages) one configuration at a time; this subsystem runs a
configurable set of them concurrently against the same problem and
returns the first satisfiable schedule, cancelling the rest.  See
:mod:`repro.portfolio.strategies` for the default strategy mix and
:mod:`repro.portfolio.engine` for the racing machinery.
"""

from .engine import (
    PortfolioResult,
    STATUS_CANCELLED,
    STATUS_ERROR,
    STATUS_SAT,
    STATUS_SKIPPED,
    STATUS_TIMEOUT,
    STATUS_UNSAT,
    StrategyResult,
    synthesize_portfolio,
)
from .strategies import Strategy, default_portfolio, with_backend, with_restart_schedule

__all__ = [
    "PortfolioResult",
    "STATUS_CANCELLED",
    "STATUS_ERROR",
    "STATUS_SAT",
    "STATUS_SKIPPED",
    "STATUS_TIMEOUT",
    "STATUS_UNSAT",
    "Strategy",
    "StrategyResult",
    "default_portfolio",
    "synthesize_portfolio",
    "with_backend",
    "with_restart_schedule",
]
