"""Supervision for portfolio workers: heartbeats, retry, degradation.

The process-backend race in :mod:`repro.portfolio.engine` historically
only handled workers that died *politely* (an EOF on the result pipe
became an ``error`` result).  This module supplies the machinery that
survives rude deaths — see ``docs/robustness.md`` for the full protocol:

* **Heartbeats** — workers emit ``{"kind": "heartbeat"}`` frames from
  the engine's ``on_restart`` hook (throttled to one per
  ``heartbeat_interval``), carrying the conflict/propagation counters,
  plus one frame at attempt start.  The parent timestamps them; a
  worker silent for longer than ``stall_timeout`` (when set) is
  declared stalled and killed.  Only native-backend strategies are
  eligible — no other backend wires the ``on_restart`` hook, so their
  workers heartbeat only once at start and the engine exempts them
  from stall detection (deadlines still bound them).
* **Crash retry with backoff** — a worker that dies without a result
  (SIGKILL, OOM, a dropped result frame) or stalls is relaunched up to
  ``Strategy.max_crash_retries`` times, with capped exponential backoff
  between launches.  Respawns go through the race's knowledge-pool
  seeding, so each retry starts warmer than the original.
* **Degradation accounting** — the :class:`Supervisor` tracks, per
  strategy and in total, crashes, stalls, retries, heartbeats, and
  quarantined frames; the engine folds these into per-strategy
  ``StrategyResult.statistics`` and the race-level
  ``PortfolioResult.supervision_statistics``.
* **Deadline watchdog** — :class:`DeadlineWatchdog` interrupts a native
  engine from a daemon thread once a deadline passes, so a *serial*
  (non-preemptible) attempt can be bounded mid-check: the engine checks
  its interrupt flag at every conflict, answers ``unknown``, and the
  serial race converts that to ``timeout``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from .frames import KIND_HEARTBEAT

#: Counter keys every supervisor report carries (zero-filled).
_COUNTERS = (
    "crashes",              # attempts that died without a result
    "stalls_detected",      # attempts killed for missed heartbeats
    "crash_retries",        # relaunches granted after a crash/stall
    "crash_budget_exhausted",  # strategies that ran out of retries
    "heartbeats_seen",
    "quarantined_artifacts",  # frames rejected at a validation boundary
    "degradations",         # strategies re-routed to the serial backend
)

#: Heartbeat counters forwarded into per-strategy statistics (the last
#: value seen wins — it is a progress gauge, not an accumulator).
_HEARTBEAT_STATS = ("conflicts", "propagations")


@dataclass(frozen=True)
class SupervisionPolicy:
    """Tunables of the supervision layer (all deterministic).

    ``stall_timeout`` is None by default: heartbeats are still emitted
    and counted, but nobody is killed for silence — restart boundaries
    are conflict-driven, so a legitimately propagation-heavy solve can
    be quiet for a long time.  Chaos tests (and latency-sensitive
    services) opt in with a timeout matched to their workload.
    """

    heartbeat_interval: float = 0.2     # min seconds between heartbeats
    stall_timeout: Optional[float] = None   # None = stall detection off
    backoff_base: float = 0.05          # first retry delay (seconds)
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0            # ceiling on any single delay
    kill_grace: float = 1.0             # terminate -> join(grace) -> kill

    def __post_init__(self) -> None:
        if self.heartbeat_interval < 0:
            raise ValueError("heartbeat_interval must be >= 0")
        if self.stall_timeout is not None and self.stall_timeout <= 0:
            raise ValueError("stall_timeout must be positive (or None)")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.kill_grace < 0:
            raise ValueError("kill_grace must be >= 0")

    def backoff(self, retry_no: int) -> float:
        """Delay before retry ``retry_no`` (1-based), capped exponential."""
        if retry_no < 1:
            raise ValueError("retry_no is 1-based")
        return min(self.backoff_cap,
                   self.backoff_base * self.backoff_factor ** (retry_no - 1))

    def backoff_schedule(self, retries: int) -> List[float]:
        """The full deterministic delay schedule for ``retries`` retries."""
        return [self.backoff(i + 1) for i in range(retries)]


def heartbeat_frame(strategy: str, statistics: Dict[str, int],
                    phase: str = "solve") -> dict:
    """A worker-side heartbeat frame carrying progress counters."""
    frame = {"kind": KIND_HEARTBEAT, "strategy": strategy, "phase": phase}
    for key in _HEARTBEAT_STATS:
        frame[key] = int(statistics.get(key, 0))
    return frame


def valid_heartbeat(frame) -> bool:
    """Pool-boundary validation of a heartbeat frame (quarantine gate)."""
    if not isinstance(frame, dict) or frame.get("kind") != KIND_HEARTBEAT:
        return False
    return all(isinstance(frame.get(key), int) for key in _HEARTBEAT_STATS)


class Supervisor:
    """Parent-side accounting of one race's supervision events.

    Purely observational bookkeeping — the engine makes the actual
    kill/retry/degrade decisions and reports them here, so both race
    backends (process and serial) share one counter vocabulary.
    """

    def __init__(self, policy: Optional[SupervisionPolicy] = None) -> None:
        self.policy = policy or SupervisionPolicy()
        self.counters: Dict[str, int] = {key: 0 for key in _COUNTERS}
        self._per_strategy: Dict[str, Dict[str, int]] = {}
        self._heartbeat_gauges: Dict[str, Dict[str, int]] = {}

    def _bump(self, strategy: str, key: str, n: int = 1) -> None:
        self.counters[key] += n
        bucket = self._per_strategy.setdefault(strategy, {})
        bucket[key] = bucket.get(key, 0) + n

    # -- event reports ---------------------------------------------------

    def note_heartbeat(self, strategy: str, frame: dict) -> bool:
        """Record one heartbeat; False (and quarantine) when malformed."""
        if not valid_heartbeat(frame):
            self.note_quarantined(strategy)
            return False
        self._bump(strategy, "heartbeats_seen")
        self._heartbeat_gauges[strategy] = {
            key: frame[key] for key in _HEARTBEAT_STATS
        }
        return True

    def note_crash(self, strategy: str) -> None:
        self._bump(strategy, "crashes")

    def note_stall(self, strategy: str) -> None:
        self._bump(strategy, "stalls_detected")

    def note_retry(self, strategy: str) -> None:
        self._bump(strategy, "crash_retries")

    def note_exhausted(self, strategy: str) -> None:
        self._bump(strategy, "crash_budget_exhausted")

    def note_quarantined(self, strategy: str) -> None:
        self._bump(strategy, "quarantined_artifacts")

    def note_degraded(self, strategy: str) -> None:
        self._bump(strategy, "degradations")

    # -- reports ---------------------------------------------------------

    def strategy_statistics(self, strategy: str) -> Dict[str, int]:
        """Supervision counters to merge into a StrategyResult.

        Keys are only emitted when nonzero, so undisturbed strategies
        keep their statistics dict free of supervision noise; heartbeat
        progress gauges are prefixed ``heartbeat_``.
        """
        stats = {key: value
                 for key, value in self._per_strategy.get(strategy, {}).items()
                 if value}
        for key, value in self._heartbeat_gauges.get(strategy, {}).items():
            stats[f"heartbeat_{key}"] = value
        return stats

    @property
    def statistics(self) -> Dict[str, int]:
        return dict(self.counters)


class DeadlineWatchdog:
    """Interrupt a native engine once a wall-clock deadline passes.

    A daemon thread polls every ``interval`` seconds and calls
    ``engine.interrupt()`` (documented thread-safe; the SAT core checks
    the flag at every conflict) *repeatedly* once past the deadline —
    the flag is cleared at each ``check()`` entry, so a multi-check
    solve needs re-interrupting until the driver gives up.  Use as a
    context manager around the solve being bounded.
    """

    def __init__(self, engine, deadline: Optional[float],
                 interval: float = 0.05) -> None:
        self._engine = engine
        self._deadline = deadline
        self._interval = interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> "DeadlineWatchdog":
        if self._deadline is not None and self._engine is not None:
            self._thread = threading.Thread(target=self._run, daemon=True,
                                            name="portfolio-deadline")
            self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def _run(self) -> None:
        while not self._stop.is_set():
            remaining = self._deadline - time.perf_counter()
            if remaining <= 0:
                self._engine.interrupt()
                self._stop.wait(self._interval)
            else:
                self._stop.wait(min(self._interval, remaining))
