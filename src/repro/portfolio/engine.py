"""Portfolio racing: run several synthesis strategies, first SAT wins.

The engine launches one worker process per strategy (bounded by
``max_workers``), watches their result pipes, and as soon as one reports
a satisfiable schedule it terminates the rest — the classic SAT-portfolio
scheme (each strategy explores a different slice of the search space, so
the *minimum* of their runtimes is usually far below any fixed choice).

Results always include one :class:`StrategyResult` per entered strategy,
so experiment code can attribute wins, losses, and cancellations::

    res = synthesize_portfolio(problem)
    if res.ok:
        print(res.winner, res.solution)
    for sr in res.strategy_results:
        print(sr.name, sr.status, f"{sr.wall_time:.2f}s", sr.statistics)

Workers communicate over :class:`multiprocessing.Pipe`; the schedule
travels back as plain :class:`~repro.core.solution.MessageSchedule`
records and is re-attached to the caller's problem object, so no solver
state ever crosses the process boundary.  ``backend="serial"`` runs the
strategies in order in-process (deterministic, used on platforms without
usable subprocesses); a failed process launch degrades to it
automatically.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.solution import Solution
from ..core.synthesizer import MODE_STABILITY, SynthesisResult, solve
from .strategies import Strategy, default_portfolio

#: Terminal per-strategy statuses.
STATUS_SAT = "sat"
STATUS_UNSAT = "unsat"
STATUS_ERROR = "error"          # the worker raised / died
STATUS_CANCELLED = "cancelled"  # lost the race, terminated
STATUS_TIMEOUT = "timeout"      # still running at the deadline
STATUS_SKIPPED = "skipped"      # never started (winner found first)


@dataclass
class StrategyResult:
    """Outcome and accounting of one strategy's run in the race."""

    name: str
    status: str
    wall_time: float                     # parent-observed elapsed seconds
    synthesis_time: float = 0.0          # worker-measured solve time
    stages_completed: int = 0
    failed_stage: Optional[int] = None
    statistics: Dict[str, int] = field(default_factory=dict)
    error: Optional[str] = None
    attempts: int = 1                    # launches incl. restart-schedule reruns


@dataclass
class PortfolioResult:
    """Outcome of a portfolio race."""

    status: str                          # "sat" or "unsat"
    winner: Optional[str]                # name of the first sat strategy
    solution: Optional[Solution]
    total_time: float
    strategy_results: List[StrategyResult]

    @property
    def ok(self) -> bool:
        return self.status == STATUS_SAT

    def result_for(self, name: str) -> StrategyResult:
        for sr in self.strategy_results:
            if sr.name == name:
                return sr
        raise KeyError(f"no strategy named {name!r} in this portfolio")


def synthesize_portfolio(
    problem,
    strategies: Optional[Sequence[Strategy]] = None,
    mode: str = MODE_STABILITY,
    max_workers: Optional[int] = None,
    timeout: Optional[float] = None,
    backend: str = "process",
) -> PortfolioResult:
    """Race ``strategies`` (default: :func:`default_portfolio`) on ``problem``.

    Returns the first satisfiable strategy's solution; losers are
    cancelled.  ``timeout`` bounds the race in seconds: the process
    backend enforces it by terminating workers at the deadline, while
    the serial backend can only check it *between* strategies (a running
    in-process solve is not preemptible).

    Per-strategy budgets (``Strategy.timeout`` / ``Strategy.restarts``)
    are enforced by the process backend: an attempt is terminated at its
    own deadline and — while the global deadline is still open — re-queued
    with the next budget from its restart schedule, so a small worker pool
    probes every strategy quickly before giving the slow ones more time.
    The serial backend ignores per-strategy budgets (one non-preemptible
    attempt each).
    """
    entries = list(strategies) if strategies is not None else default_portfolio(mode=mode)
    if not entries:
        raise ValueError("portfolio is empty: provide at least one strategy")
    names = [s.name for s in entries]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate strategy names in portfolio: {names}")
    if backend == "serial":
        return _race_serial(problem, entries, timeout)
    if backend != "process":
        raise ValueError(f"unknown backend {backend!r} (use 'process' or 'serial')")
    try:
        return _race_processes(problem, entries, max_workers, timeout)
    except OSError:
        # No subprocess could be launched at all (restricted sandbox):
        # degrade gracefully.  Launch failures *mid-race* are handled
        # inside _race_processes and never reach this fallback.
        return _race_serial(problem, entries, timeout)


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _strategy_worker(conn, problem, strategy: Strategy) -> None:
    """Run one strategy and ship a picklable result summary back."""
    try:
        result = solve(problem, strategy.options)
        conn.send(_payload_of(result))
    except Exception as exc:  # noqa: BLE001 - report, don't crash the race
        try:
            conn.send({"status": STATUS_ERROR,
                       "error": f"{type(exc).__name__}: {exc}"})
        except Exception:
            pass
    finally:
        conn.close()


def _payload_of(result: SynthesisResult) -> dict:
    return {
        "status": result.status,
        "synthesis_time": result.synthesis_time,
        "stages_completed": result.stages_completed,
        "failed_stage": result.failed_stage,
        "statistics": result.statistics,
        "schedules": result.solution.schedules if result.ok else None,
        "mode": result.solution.mode if result.ok else None,
    }


def _result_from_payload(
    name: str, payload: dict, wall_time: float
) -> StrategyResult:
    return StrategyResult(
        name=name,
        status=payload["status"],
        wall_time=wall_time,
        synthesis_time=payload.get("synthesis_time", 0.0),
        stages_completed=payload.get("stages_completed", 0),
        failed_stage=payload.get("failed_stage"),
        statistics=payload.get("statistics", {}),
        error=payload.get("error"),
    )


def _solution_from_payload(problem, payload: dict, wall_time: float) -> Solution:
    return Solution(
        problem,
        payload["schedules"],
        synthesis_time=wall_time,
        mode=payload["mode"],
    )


# ---------------------------------------------------------------------------
# Process racing
# ---------------------------------------------------------------------------


def _race_processes(
    problem,
    entries: List[Strategy],
    max_workers: Optional[int],
    timeout: Optional[float],
) -> PortfolioResult:
    ctx = multiprocessing.get_context()
    # Default to racing *every* strategy at once: a portfolio's value is the
    # minimum of its entrants' runtimes, and even on few cores the OS
    # timeshares far better than letting one slow strategy hog the lane.
    # ``max_workers`` caps the fan-out for memory-constrained callers.
    workers = max(1, min(len(entries), max_workers or len(entries)))
    t0 = time.perf_counter()
    deadline = t0 + timeout if timeout is not None else None

    # Launch queue: (idx, strategy, attempt_no).  Attempt 1 uses
    # strategy.timeout; attempt k>1 uses strategy.restarts[k-2].
    pending = [(idx, s, 1) for idx, s in enumerate(entries)]
    running: Dict[int, tuple] = {}  # idx -> (proc, conn, start, sdeadline, attempt)
    results: Dict[int, StrategyResult] = {}
    spent_wall: Dict[int, float] = {}  # accumulated wall time of dead attempts
    winner_idx: Optional[int] = None
    winner_payload: Optional[dict] = None
    winner_wall = 0.0

    def attempt_budget(strategy: Strategy, attempt: int) -> Optional[float]:
        if strategy.timeout is None:
            return None
        if attempt == 1:
            return strategy.timeout
        return strategy.restarts[attempt - 2]

    def launch_available() -> None:
        while pending and len(running) < workers:
            idx, strategy, attempt = pending.pop(0)
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_strategy_worker,
                args=(child_conn, problem, strategy),
                name=f"portfolio-{strategy.name}",
                daemon=True,
            )
            try:
                proc.start()
            except OSError as exc:
                parent_conn.close()
                child_conn.close()
                if not running and not results:
                    # Nothing launched yet: let the caller fall back to
                    # the serial backend wholesale.
                    raise
                # Mid-race launch failure (e.g. EAGAIN near the process
                # limit): record it and keep racing with what we have.
                results[idx] = StrategyResult(
                    name=strategy.name,
                    status=STATUS_ERROR,
                    wall_time=spent_wall.get(idx, 0.0),
                    error=f"could not launch worker: {exc}",
                    attempts=attempt,
                )
                continue
            child_conn.close()
            started = time.perf_counter()
            budget = attempt_budget(strategy, attempt)
            # Per-strategy deadline, clamped to the global one.
            sdeadline = started + budget if budget is not None else None
            if deadline is not None:
                sdeadline = deadline if sdeadline is None else min(sdeadline, deadline)
            running[idx] = (proc, parent_conn, started, sdeadline, attempt)

    def harvest(idx: int) -> None:
        """Collect one finished worker's report (or its corpse)."""
        nonlocal winner_idx, winner_payload, winner_wall
        proc, conn, started, _sdeadline, attempt = running.pop(idx)
        wall = spent_wall.get(idx, 0.0) + time.perf_counter() - started
        try:
            payload = conn.recv()
        except (EOFError, OSError):
            payload = {"status": STATUS_ERROR,
                       "error": f"worker exited without a result "
                                f"(exitcode={proc.exitcode})"}
        conn.close()
        proc.join()
        result = _result_from_payload(entries[idx].name, payload, wall)
        result.attempts = attempt
        results[idx] = result
        if winner_idx is None and payload["status"] == STATUS_SAT:
            winner_idx, winner_payload, winner_wall = idx, payload, wall

    def expire(idx: int, now: float) -> None:
        """Kill an attempt at its per-strategy deadline; maybe re-queue."""
        # A result may have landed after the last connection.wait(): honor
        # it (it could be the winning sat) instead of discarding it.
        if running[idx][1].poll():
            harvest(idx)
            return
        proc, conn, started, _sdeadline, attempt = running.pop(idx)
        proc.terminate()
        proc.join()
        conn.close()
        spent_wall[idx] = spent_wall.get(idx, 0.0) + now - started
        strategy = entries[idx]
        has_budget = attempt - 1 < len(strategy.restarts)
        global_open = deadline is None or now < deadline
        if has_budget and global_open:
            pending.append((idx, strategy, attempt + 1))
        else:
            results[idx] = StrategyResult(
                name=strategy.name,
                status=STATUS_TIMEOUT,
                wall_time=spent_wall[idx],
                attempts=attempt,
            )

    launch_available()
    timed_out = False
    while running and winner_idx is None:
        now = time.perf_counter()
        wait_for = 0.1
        if deadline is not None:
            wait_for = min(wait_for, max(0.0, deadline - now))
        for _, _, _, sdeadline, _ in running.values():
            if sdeadline is not None:
                wait_for = min(wait_for, max(0.0, sdeadline - now))
        ready = multiprocessing.connection.wait(
            [conn for _, conn, _, _, _ in running.values()], timeout=wait_for
        )
        ready_set = set(ready)
        # Harvest *every* ready worker before declaring the race over, so
        # strategies that finished in the same poll window report their
        # real status instead of being miscounted as cancelled (the
        # winner is still the first sat in launch order).
        for idx in sorted(running):
            if running[idx][1] in ready_set:
                harvest(idx)
        now = time.perf_counter()
        if deadline is not None and now >= deadline:
            timed_out = True
            break
        if winner_idx is not None:
            break
        # Enforce per-strategy deadlines (restart schedule re-queues).
        for idx in sorted(running):
            sdeadline = running[idx][3]
            if sdeadline is not None and now >= sdeadline:
                expire(idx, now)
        launch_available()

    # Race over: stop whoever is still working and account for everyone.
    loser_status = STATUS_TIMEOUT if timed_out else STATUS_CANCELLED
    for idx, (proc, conn, started, _sdeadline, attempt) in list(running.items()):
        proc.terminate()
        proc.join()
        conn.close()
        results[idx] = StrategyResult(
            name=entries[idx].name,
            status=loser_status,
            wall_time=spent_wall.get(idx, 0.0) + time.perf_counter() - started,
            attempts=attempt,
        )
    for idx, strategy, attempt in pending:
        if idx in results:
            continue
        results[idx] = StrategyResult(
            name=strategy.name,
            status=STATUS_TIMEOUT if (timed_out or attempt > 1) else STATUS_SKIPPED,
            wall_time=spent_wall.get(idx, 0.0),
            attempts=attempt - 1 if attempt > 1 else 1,
        )

    total = time.perf_counter() - t0
    solution = (
        _solution_from_payload(problem, winner_payload, winner_wall)
        if winner_payload is not None
        else None
    )
    return PortfolioResult(
        status=STATUS_SAT if winner_idx is not None else STATUS_UNSAT,
        winner=entries[winner_idx].name if winner_idx is not None else None,
        solution=solution,
        total_time=total,
        strategy_results=[results[i] for i in sorted(results)],
    )


# ---------------------------------------------------------------------------
# Serial fallback
# ---------------------------------------------------------------------------


def _race_serial(
    problem,
    entries: List[Strategy],
    timeout: Optional[float],
) -> PortfolioResult:
    t0 = time.perf_counter()
    deadline = t0 + timeout if timeout is not None else None
    results: List[StrategyResult] = []
    winner: Optional[str] = None
    solution: Optional[Solution] = None

    for i, strategy in enumerate(entries):
        if winner is not None or (
            deadline is not None and time.perf_counter() >= deadline
        ):
            status = STATUS_SKIPPED if winner is not None else STATUS_TIMEOUT
            results.append(StrategyResult(strategy.name, status, 0.0))
            continue
        started = time.perf_counter()
        try:
            result = solve(problem, strategy.options)
            payload = _payload_of(result)
        except Exception as exc:  # noqa: BLE001 - keep racing
            payload = {"status": STATUS_ERROR,
                       "error": f"{type(exc).__name__}: {exc}"}
        wall = time.perf_counter() - started
        results.append(_result_from_payload(strategy.name, payload, wall))
        if payload["status"] == STATUS_SAT:
            winner = strategy.name
            solution = _solution_from_payload(problem, payload, wall)

    return PortfolioResult(
        status=STATUS_SAT if winner is not None else STATUS_UNSAT,
        winner=winner,
        solution=solution,
        total_time=time.perf_counter() - t0,
        strategy_results=results,
    )
