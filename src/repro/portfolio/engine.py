"""Portfolio racing: run several synthesis strategies, first SAT wins.

The engine launches one worker process per strategy (bounded by
``max_workers``), watches their result pipes, and as soon as one reports
a satisfiable schedule it terminates the rest — the classic SAT-portfolio
scheme (each strategy explores a different slice of the search space, so
the *minimum* of their runtimes is usually far below any fixed choice).

Race verdicts are sound: ``unsat`` is reported only when a *complete*
strategy (all routes, single stage) actually proved it — the heuristics
may fail on solvable instances, so an all-timeout or all-heuristic-unsat
race reports ``timeout`` / ``unknown`` instead, and
``PortfolioResult.verdict_by`` names the strategy that supplied the
verdict.  A complete strategy's unsat ends the race early (nothing can
beat a proof).

With ``share_knowledge`` (default on) workers stream compact artifacts
back over their result pipes *while solving* — learned clauses, frozen
stage prefixes, and route-subset vetoes (see
:mod:`repro.portfolio.sharing` for the artifact kinds and their
soundness) — and the parent aggregates them into a
:class:`~repro.portfolio.sharing.KnowledgePool` that seeds every restart
attempt and late launch through ``SynthesisOptions.seed_knowledge``, so
re-runs start warm instead of cold.  Artifacts are validated at the pool
boundary: a frame that fails validation is quarantined (counted, never
imported, never fatal).

The race is *supervised* (see :mod:`repro.portfolio.supervision` and
``docs/robustness.md``): workers heartbeat over the same pipe, a worker
that dies without reporting (SIGKILL, OOM, a dropped result frame) or
misses enough heartbeats is relaunched with capped exponential backoff
up to ``Strategy.max_crash_retries`` times — re-seeded from the pool —
and a strategy that exhausts that budget degrades the race to the serial
backend for whatever remains undecided, recording
``PortfolioResult.degraded_to_serial``.  Worker teardown always
escalates ``terminate()`` → ``join(grace)`` → ``kill()`` and closes the
parent's pipe end on every exit path, so a finished race leaks neither
zombies nor file descriptors.  Deterministic failures can be injected
with a :mod:`~repro.portfolio.faults` plan to exercise all of this on
demand.

Results always include one :class:`StrategyResult` per entered strategy,
so experiment code can attribute wins, losses, and cancellations::

    res = synthesize_portfolio(problem)
    if res.ok:
        print(res.winner, res.solution)
    for sr in res.strategy_results:
        print(sr.name, sr.status, f"{sr.wall_time:.2f}s", sr.statistics)

Workers communicate over :class:`multiprocessing.Pipe`; the schedule
travels back as plain :class:`~repro.core.solution.MessageSchedule`
records and is re-attached to the caller's problem object, so no solver
state ever crosses the process boundary.  ``backend="serial"`` runs the
strategies in order in-process (deterministic, used on platforms without
usable subprocesses and by the ``portfolio`` bench); a failed process
launch degrades to it automatically.  Knowledge sharing and crash
supervision work in both backends — serially, knowledge flows from each
finished strategy into the next, and a :class:`DeadlineWatchdog` bounds
native attempts mid-check so the global deadline holds even inside one
long strategy.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..api import NativeBackend, Session
from ..core.solution import Solution
from ..core.synthesizer import MODE_STABILITY, SynthesisResult
from . import sharing
from .faults import FaultPlan, InjectedCrash, wrap_emit
from .frames import (KIND_ARTIFACT, KIND_HEARTBEAT, KIND_RESULT,
                     KIND_STAGE_FROZEN)
from .sharing import KnowledgePool
from .strategies import Strategy, default_portfolio
from .supervision import (DeadlineWatchdog, SupervisionPolicy, Supervisor,
                          heartbeat_frame)

#: Terminal per-strategy statuses.
STATUS_SAT = "sat"
STATUS_UNSAT = "unsat"
STATUS_ERROR = "error"          # the worker raised / died
STATUS_CANCELLED = "cancelled"  # lost the race, terminated
STATUS_TIMEOUT = "timeout"      # still running at the deadline
STATUS_SKIPPED = "skipped"      # never started (race decided first)
STATUS_UNKNOWN = "unknown"      # undecided (heuristic unsat / errors only)

#: Every status a strategy result may legitimately carry.  Worker
#: payloads are validated against this set so a malformed payload can
#: never masquerade as a verdict.
_STRATEGY_STATUSES = frozenset({
    STATUS_SAT, STATUS_UNSAT, STATUS_ERROR, STATUS_CANCELLED,
    STATUS_TIMEOUT, STATUS_SKIPPED, STATUS_UNKNOWN,
})


@dataclass
class StrategyResult:
    """Outcome and accounting of one strategy's run in the race."""

    name: str
    status: str
    wall_time: float                     # parent-observed elapsed seconds
    synthesis_time: float = 0.0          # worker-measured solve time
    stages_completed: int = 0
    failed_stage: Optional[int] = None
    statistics: Dict[str, int] = field(default_factory=dict)
    error: Optional[str] = None
    attempts: int = 1                    # launches incl. restart-schedule reruns


@dataclass
class PortfolioResult:
    """Outcome of a portfolio race.

    ``status`` is ``"sat"`` (winner found), ``"unsat"`` (a *complete*
    strategy proved infeasibility), ``"timeout"`` (undecided at a
    deadline), or ``"unknown"`` (every strategy failed heuristically or
    errored — the instance may still be solvable).  ``verdict_by`` names
    the strategy whose result decided the race (None when undecided).

    ``degraded_to_serial`` records graceful degradation: some or all
    strategies ran on the in-process serial backend because workers
    could not be spawned or a strategy exhausted its crash-retry budget.
    ``supervision_statistics`` totals the race's supervision events
    (crashes, stalls, retries, heartbeats, quarantined artifacts,
    degradations — zero-filled, see
    :class:`~repro.portfolio.supervision.Supervisor`).
    """

    status: str
    winner: Optional[str]                # name of the first sat strategy
    solution: Optional[Solution]
    total_time: float
    strategy_results: List[StrategyResult]
    verdict_by: Optional[str] = None
    #: Knowledge-pool counters of this race (empty when sharing is off).
    pool_statistics: Dict[str, int] = field(default_factory=dict)
    degraded_to_serial: bool = False
    supervision_statistics: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_SAT

    def result_for(self, name: str) -> StrategyResult:
        for sr in self.strategy_results:
            if sr.name == name:
                return sr
        raise KeyError(f"no strategy named {name!r} in this portfolio")


def synthesize_portfolio(
    problem,
    strategies: Optional[Sequence[Strategy]] = None,
    mode: str = MODE_STABILITY,
    max_workers: Optional[int] = None,
    timeout: Optional[float] = None,
    backend: str = "process",
    share_knowledge: bool = True,
    supervision: Optional[SupervisionPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> PortfolioResult:
    """Race ``strategies`` (default: :func:`default_portfolio`) on ``problem``.

    Returns the first satisfiable strategy's solution; losers are
    cancelled.  ``timeout`` bounds the race in seconds: the process
    backend enforces it by terminating workers at the deadline, while
    the serial backend enforces it *mid-strategy* for native attempts
    (a deadline watchdog interrupts the engine at its next conflict) and
    between strategies otherwise.

    Per-strategy budgets (``Strategy.timeout`` / ``Strategy.restarts``)
    are enforced by the process backend: an attempt is terminated at its
    own deadline and — while the global deadline is still open — re-queued
    with the next budget from its restart schedule, so a small worker pool
    probes every strategy quickly before giving the slow ones more time.
    The serial backend ignores per-strategy budgets (one non-preemptible
    attempt each).

    ``share_knowledge`` pools learned clauses, route vetoes and stage
    prefixes across workers and seeds restarts/late launches with them
    (:mod:`repro.portfolio.sharing`); turn it off for strict isolation
    A/B runs.

    ``supervision`` tunes the robustness layer (heartbeat cadence, stall
    timeout, crash-retry backoff, kill grace — see
    :class:`~repro.portfolio.supervision.SupervisionPolicy`);
    ``fault_plan`` injects deterministic failures for chaos testing
    (:mod:`repro.portfolio.faults`).
    """
    entries = list(strategies) if strategies is not None else default_portfolio(mode=mode)
    if not entries:
        raise ValueError("portfolio is empty: provide at least one strategy")
    names = [s.name for s in entries]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate strategy names in portfolio: {names}")
    policy = supervision or SupervisionPolicy()
    if backend == "serial":
        return _race_serial(problem, entries, timeout, share_knowledge,
                            policy, fault_plan)
    if backend != "process":
        raise ValueError(f"unknown backend {backend!r} (use 'process' or 'serial')")
    try:
        return _race_processes(problem, entries, max_workers, timeout,
                               share_knowledge, policy, fault_plan)
    except OSError:
        # No subprocess could be launched at all (restricted sandbox):
        # degrade gracefully.  Launch failures *mid-race* are handled
        # inside _race_processes and never reach this fallback.
        return _race_serial(problem, entries, timeout, share_knowledge,
                            policy, fault_plan, degraded=True)


# ---------------------------------------------------------------------------
# Running one strategy (shared by the worker processes and the serial path)
# ---------------------------------------------------------------------------


def _execute_strategy(problem, strategy: Strategy, emit=None,
                      heartbeat=None, deadline: Optional[float] = None) -> dict:
    """Run one strategy to completion; return its result payload.

    ``emit`` (optional) receives knowledge artifacts as they become
    available: frozen stage prefixes while solving, learned clauses and
    route vetoes on a provable unsat.  ``heartbeat`` (optional) is
    called with the engine at every restart boundary — the worker wires
    its throttled liveness frames through it.  ``deadline`` (absolute
    ``perf_counter`` time) arms a :class:`DeadlineWatchdog` over native
    attempts so an in-process solve is interrupted mid-check when the
    race's global budget runs out.

    Native-backend strategies solve on a locally built engine whose
    statistics-stream tag carries the strategy name, so benchmark
    trajectories can attribute per-check work per strategy
    (``by_backend`` roll-up in ``BENCH_*.json``).
    """
    from ..core import synthesizer as synth

    # One blanket guard around the whole attempt (engine construction,
    # solve, artifact export): any failure becomes this strategy's error
    # result instead of sinking the race — the serial backend runs this
    # in-process, so an escaped exception would lose every other entrant.
    # InjectedCrash is the one deliberate exception: it models a death
    # that never reports, so it must escape to the supervisor.
    try:
        opts = strategy.options
        emit = wrap_emit(emit, opts.faults)
        session = engine = None
        if opts.backend == "native":
            # synth.Solver is the patchable engine factory (the
            # one-engine-per-run contract tests rely on it).  The
            # strategy's engine-level options must reach the worker's
            # engine here exactly as core.solve would wire them.
            engine = synth.Solver(dl_propagation=opts.dl_propagation,
                                  max_conflicts=opts.max_conflicts)
            session = Session(backend=NativeBackend(engine=engine))
            engine.backend_name = f"native[{strategy.name}]"
            hooks = []
            if heartbeat is not None:
                hooks.append(heartbeat)
            if emit is not None:
                # Mid-check flush: at every SAT restart (and the final
                # flush of a budget/interrupt abort) stream the current
                # exportable knowledge, so a worker killed inside one
                # long check still contributes to the pool.
                def flush_restart(eng) -> None:
                    for artifact in sharing.restart_artifacts(opts, eng):
                        emit(artifact)
                hooks.append(flush_restart)
            if hooks:
                def on_restart(eng) -> None:
                    for hook in hooks:
                        hook(eng)
                engine.on_restart = on_restart
        on_event = None
        if emit is not None:
            def on_event(event: dict) -> None:
                if event.get("kind") == KIND_STAGE_FROZEN:
                    emit(sharing.prefix_artifact(opts, event["stage"],
                                                 event["fixed"]))
        with DeadlineWatchdog(engine, deadline):
            result: SynthesisResult = synth.solve(
                problem, opts, session=session, on_event=on_event
            )
        if emit is not None:
            for artifact in sharing.terminal_artifacts(opts, result, engine):
                emit(artifact)
        return _payload_of(result)
    except InjectedCrash:
        raise
    except Exception as exc:  # noqa: BLE001 - report, don't sink the race
        return {"status": STATUS_ERROR,
                "error": f"{type(exc).__name__}: {exc}"}


def _strategy_worker(conn, problem, strategy: Strategy, share: bool = False,
                     policy: Optional[SupervisionPolicy] = None) -> None:
    """Run one strategy; stream heartbeats, artifacts and the result back."""
    policy = policy or SupervisionPolicy()
    try:
        emit = None
        if share:
            def emit(artifact: dict) -> None:
                conn.send({"kind": KIND_ARTIFACT, "artifact": artifact})

        # Liveness: one frame at attempt start (before any injected
        # slow-start/hang, so the stall clock starts from real signal),
        # then throttled frames from every restart boundary carrying the
        # engine's progress counters.
        last_beat = [time.monotonic()]
        conn.send(heartbeat_frame(strategy.name, {}, phase="start"))

        def heartbeat(eng) -> None:
            now = time.monotonic()
            if now - last_beat[0] < policy.heartbeat_interval:
                return
            last_beat[0] = now
            try:
                conn.send(heartbeat_frame(strategy.name, eng.statistics))
            except (OSError, ValueError):
                pass    # parent went away; the solve result still matters

        payload = _execute_strategy(problem, strategy, emit,
                                    heartbeat=heartbeat)
        faults = strategy.options.faults
        if faults is not None and faults.drop_result:
            # Injected polite death: full solve, no result frame.  Exit
            # hard so no atexit machinery sends anything on our behalf.
            conn.close()
            os._exit(0)
        conn.send({"kind": KIND_RESULT, "payload": payload})
    except Exception as exc:  # noqa: BLE001
        try:
            # Reached only when the exchange broke mid-flight (including
            # a result send that itself raised); a best-effort error
            # result beats silence, and a dead pipe just re-raises into
            # the inner pass.
            # repro: allow[frame-protocol] error result after broken send
            conn.send({"kind": KIND_RESULT,
                       "payload": {"status": STATUS_ERROR,
                                   "error": f"{type(exc).__name__}: {exc}"}})
        except Exception:
            pass
    finally:
        conn.close()


def _payload_of(result: SynthesisResult) -> dict:
    return {
        "status": result.status,
        "synthesis_time": result.synthesis_time,
        "stages_completed": result.stages_completed,
        "failed_stage": result.failed_stage,
        "statistics": result.statistics,
        "schedules": result.solution.schedules if result.ok else None,
        "mode": result.solution.mode if result.ok else None,
    }


def _result_from_payload(
    name: str, payload: dict, wall_time: float, attempts: int = 1
) -> StrategyResult:
    """The one constructor every worker payload goes through.

    Validates the reported status against the known vocabulary (and that
    a ``sat`` claim actually carries schedules), so a corrupt or
    malformed payload surfaces as :data:`STATUS_ERROR` instead of
    masquerading as a verdict.
    """
    if not isinstance(payload, dict):
        payload = {"status": STATUS_ERROR,
                   "error": f"malformed worker payload: {payload!r:.100}"}
    status = payload.get("status")
    error = payload.get("error")
    if status not in _STRATEGY_STATUSES:
        error = f"worker reported unknown status {status!r}"
        status = STATUS_ERROR
    elif status == STATUS_SAT and payload.get("schedules") is None:
        error = "worker reported sat without a schedule payload"
        status = STATUS_ERROR
    return StrategyResult(
        name=name,
        status=status,
        wall_time=wall_time,
        synthesis_time=payload.get("synthesis_time", 0.0),
        stages_completed=payload.get("stages_completed", 0),
        failed_stage=payload.get("failed_stage"),
        statistics=payload.get("statistics", {}),
        error=error,
        attempts=attempts,
    )


def _solution_from_payload(problem, payload: dict, wall_time: float) -> Solution:
    return Solution(
        problem,
        payload["schedules"],
        synthesis_time=wall_time,
        mode=payload["mode"],
    )


def _final_verdict(
    entries: Sequence[Strategy],
    results: Sequence[StrategyResult],
    winner: Optional[str],
    timed_out: bool,
) -> Tuple[str, Optional[str]]:
    """The race's sound overall status and the strategy that supplied it.

    ``unsat`` requires a complete strategy's proof; heuristic unsats,
    errors and timeouts leave the instance undecided (``timeout`` /
    ``unknown``), never claiming infeasibility without one.
    """
    if winner is not None:
        return STATUS_SAT, winner
    complete = {s.name for s in entries if s.is_complete}
    for sr in results:
        if sr.status == STATUS_UNSAT and sr.name in complete:
            return STATUS_UNSAT, sr.name
    if timed_out or any(sr.status == STATUS_TIMEOUT for sr in results):
        return STATUS_TIMEOUT, None
    return STATUS_UNKNOWN, None


def _reap(proc, grace: float) -> None:
    """Escalated worker teardown: terminate → join(grace) → kill → join.

    Always leaves the process joined (no zombie): a worker that ignores
    SIGTERM for ``grace`` seconds — e.g. one injected into a hang loop,
    or wedged in native code — gets SIGKILL, which cannot be ignored.
    """
    if proc.is_alive():
        proc.terminate()
        proc.join(grace)
        if proc.is_alive():
            proc.kill()
    proc.join()


# ---------------------------------------------------------------------------
# Process racing
# ---------------------------------------------------------------------------


@dataclass
class _Attempt:
    """Parent-side state of one running worker attempt."""

    proc: multiprocessing.process.BaseProcess
    conn: multiprocessing.connection.Connection
    started: float
    sdeadline: Optional[float]   # per-strategy deadline (absolute), clamped
    attempt: int                 # 1-based launch attempt number
    sched: int                   # 1-based restart-schedule position
    last_signal: float           # last heartbeat/artifact time (stall clock)


def _race_processes(
    problem,
    entries: List[Strategy],
    max_workers: Optional[int],
    timeout: Optional[float],
    share_knowledge: bool,
    policy: SupervisionPolicy,
    fault_plan: Optional[FaultPlan],
) -> PortfolioResult:
    ctx = multiprocessing.get_context()
    # Default to racing *every* strategy at once: a portfolio's value is the
    # minimum of its entrants' runtimes, and even on few cores the OS
    # timeshares far better than letting one slow strategy hog the lane.
    # ``max_workers`` caps the fan-out for memory-constrained callers.
    workers = max(1, min(len(entries), max_workers or len(entries)))
    t0 = time.perf_counter()
    deadline = t0 + timeout if timeout is not None else None
    pool = KnowledgePool() if share_knowledge else None
    supervisor = Supervisor(policy)

    # Launch queue: (idx, strategy, attempt_no, sched_no, not_before).
    # ``attempt_no`` counts every launch (accounting, fault targeting);
    # ``sched_no`` is the position in the per-strategy budget schedule
    # (1 = strategy.timeout, k>1 = restarts[k-2]) and only advances on
    # budget expiry — a crash retry relaunches with the budget the dead
    # attempt had, so crashes neither consume schedule entries nor run
    # off the end of ``restarts``.  ``not_before`` delays crash-retry
    # relaunches (exponential backoff).
    pending: List[Tuple[int, Strategy, int, int, float]] = [
        (idx, s, 1, 1, t0) for idx, s in enumerate(entries)
    ]
    running: Dict[int, _Attempt] = {}
    results: Dict[int, StrategyResult] = {}
    spent_wall: Dict[int, float] = {}  # accumulated wall time of dead attempts
    crash_retries: Dict[int, int] = {}  # crash/stall relaunches granted
    # Strategies the process backend gave up on: (idx, strategy,
    # next_attempt).  Run serially after the process race settles.
    serial_rescue: List[Tuple[int, Strategy, int]] = []
    degraded = False
    winner_idx: Optional[int] = None
    winner_payload: Optional[dict] = None
    winner_wall = 0.0
    prover_idx: Optional[int] = None  # complete strategy that proved unsat

    def attempt_budget(strategy: Strategy, sched: int) -> Optional[float]:
        if strategy.timeout is None:
            return None
        if sched == 1 or not strategy.restarts:
            return strategy.timeout
        # Clamped defensively: a relaunch queued past the schedule keeps
        # the last budget instead of indexing off the end.
        return strategy.restarts[min(sched - 2, len(strategy.restarts) - 1)]

    def emits_heartbeats(idx: int) -> bool:
        # Only the native backend wires the on_restart heartbeat hook;
        # a worker on any other backend sends just its start frame, so
        # silence there is not evidence of a stall.
        return entries[idx].options.backend == "native"

    def launch_available() -> None:
        nonlocal degraded
        now = time.perf_counter()
        deferred: List[Tuple[int, Strategy, int, int, float]] = []
        while pending and len(running) < workers and not degraded:
            idx, strategy, attempt, sched, not_before = pending.pop(0)
            if not_before > now:
                deferred.append((idx, strategy, attempt, sched, not_before))
                continue
            launched = strategy
            if pool is not None:
                # Seed restarts and late launches with everything the
                # pool has gathered so far (cold start -> warm start).
                seeded = pool.seeded_options(strategy.options)
                if seeded is not strategy.options:
                    launched = replace(strategy, options=seeded)
            if fault_plan is not None:
                injected = fault_plan.for_attempt(strategy.name, attempt,
                                                  harsh=True)
                if injected is not None:
                    launched = replace(
                        launched,
                        options=replace(launched.options, faults=injected))
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            # On the except-OSError path below start() failed, so no OS
            # process exists and there is nothing to reap or terminate.
            # repro: allow[resource-hygiene] unstarted Process needs no reap
            proc = ctx.Process(
                target=_strategy_worker,
                args=(child_conn, problem, launched, pool is not None, policy),
                name=f"portfolio-{strategy.name}",
                daemon=True,
            )
            try:
                proc.start()
            except OSError:
                parent_conn.close()
                child_conn.close()
                if not running and not results and not serial_rescue:
                    # Nothing launched yet: let the caller fall back to
                    # the serial backend wholesale.
                    raise
                # Mid-race launch failure (e.g. EAGAIN near the process
                # limit): the process backend is no longer trustworthy —
                # degrade this strategy (and everything still pending)
                # to the serial phase instead of erroring it out.
                degraded = True
                supervisor.note_degraded(strategy.name)
                serial_rescue.append((idx, strategy, attempt))
                continue
            child_conn.close()
            started = time.perf_counter()
            budget = attempt_budget(strategy, sched)
            # Per-strategy deadline, clamped to the global one.
            sdeadline = started + budget if budget is not None else None
            if deadline is not None:
                sdeadline = deadline if sdeadline is None else min(sdeadline, deadline)
            running[idx] = _Attempt(proc, parent_conn, started, sdeadline,
                                    attempt, sched, last_signal=started)
        pending.extend(deferred)
        if degraded and pending:
            # Once degraded, stop spawning: everything still queued is
            # handed to the serial phase.
            for idx, strategy, attempt, _sched, _nb in pending:
                serial_rescue.append((idx, strategy, attempt))
            pending.clear()

    def pump(idx: int) -> Optional[Tuple[str, object]]:
        """Drain a worker's queued frames; classify what ended them.

        Heartbeats refresh the stall clock and feed the supervisor;
        knowledge artifacts are absorbed into the pool (quarantined when
        they fail validation) — in both cases the worker keeps running.
        Returns None while the worker is still going, ``("result",
        payload)`` when it reported, or ``("died", exitcode)`` on a
        broken pipe — a death without a result, whatever the exitcode.
        """
        att = running[idx]
        name = entries[idx].name
        try:
            while att.conn.poll():
                msg = att.conn.recv()
                if isinstance(msg, dict) and msg.get("kind") == KIND_HEARTBEAT:
                    att.last_signal = time.perf_counter()
                    supervisor.note_heartbeat(name, msg)
                    continue
                if isinstance(msg, dict) and msg.get("kind") == KIND_ARTIFACT:
                    att.last_signal = time.perf_counter()
                    if pool is not None and not pool.absorb(
                            msg.get("artifact"), source=name):
                        supervisor.note_quarantined(name)
                    continue
                if isinstance(msg, dict) and msg.get("kind") == KIND_RESULT:
                    return ("result", msg.get("payload"))
                # Unknown frame shape: quarantine it, keep listening —
                # one garbled frame must not cost the whole attempt.
                supervisor.note_quarantined(name)
        except (EOFError, OSError):
            return ("died", att.proc.exitcode)
        return None

    def settle(idx: int, att: _Attempt, payload: dict) -> None:
        """Record one finished attempt's report; track race deciders."""
        nonlocal winner_idx, winner_payload, winner_wall, prover_idx
        wall = spent_wall.get(idx, 0.0) + time.perf_counter() - att.started
        att.conn.close()
        att.proc.join()
        result = _result_from_payload(entries[idx].name, payload, wall,
                                      attempts=att.attempt)
        results[idx] = result
        if winner_idx is None and result.status == STATUS_SAT:
            winner_idx, winner_payload, winner_wall = idx, payload, wall
        if (prover_idx is None and result.status == STATUS_UNSAT
                and entries[idx].is_complete):
            prover_idx = idx

    def salvage_artifacts(conn, source: str) -> None:
        """Absorb artifacts a worker streamed before it was terminated."""
        try:
            while conn.poll():
                msg = conn.recv()
                if isinstance(msg, dict) and msg.get("kind") == KIND_ARTIFACT:
                    if pool is not None and not pool.absorb(
                            msg.get("artifact"), source=source):
                        supervisor.note_quarantined(source)
        except (EOFError, OSError):
            pass

    def harvest(idx: int) -> bool:
        """Settle or bury a worker whose pipe has something; False = alive."""
        outcome = pump(idx)
        if outcome is None:
            return False
        kind, value = outcome
        att = running.pop(idx)
        if kind == "result":
            settle(idx, att, value)
        else:
            attempt_died(idx, att, stalled=False)
        return True

    def attempt_died(idx: int, att: _Attempt, stalled: bool) -> None:
        """Supervise a crash/stall: reap, then retry, or degrade."""
        nonlocal degraded
        strategy = entries[idx]
        name = strategy.name
        salvage_artifacts(att.conn, name)
        _reap(att.proc, policy.kill_grace)
        att.conn.close()
        now = time.perf_counter()
        spent_wall[idx] = spent_wall.get(idx, 0.0) + now - att.started
        if stalled:
            supervisor.note_stall(name)
        else:
            supervisor.note_crash(name)
        used = crash_retries.get(idx, 0)
        if used < strategy.max_crash_retries and (
                deadline is None or now < deadline):
            crash_retries[idx] = used + 1
            supervisor.note_retry(name)
            # Relaunch after capped exponential backoff; the launch path
            # re-seeds the attempt from the knowledge pool.  The retry
            # keeps the dead attempt's schedule position (``att.sched``):
            # a crash is not a budget expiry, so it must neither consume
            # a restart-schedule entry nor index past the schedule.
            not_before = now + policy.backoff(used + 1)
            if deadline is not None:
                not_before = min(not_before, deadline)
            pending.append((idx, strategy, att.attempt + 1, att.sched,
                            not_before))
            return
        # Crash budget exhausted: the process backend is persistently
        # failing this strategy — degrade to the serial fallback (which
        # also stops further spawns; a systemic fault like OOM pressure
        # would only grind every remaining launch through the same
        # budget).
        supervisor.note_exhausted(name)
        supervisor.note_degraded(name)
        degraded = True
        serial_rescue.append((idx, strategy, att.attempt + 1))

    def expire(idx: int, now: float) -> None:
        """Kill an attempt at its per-strategy deadline; maybe re-queue."""
        # A result may have landed after the last connection.wait(): honor
        # it (it could be the winning sat) instead of discarding it.
        if harvest(idx):
            return
        att = running.pop(idx)
        salvage_artifacts(att.conn, entries[idx].name)
        _reap(att.proc, policy.kill_grace)
        att.conn.close()
        spent_wall[idx] = spent_wall.get(idx, 0.0) + now - att.started
        strategy = entries[idx]
        has_budget = att.sched - 1 < len(strategy.restarts)
        global_open = deadline is None or now < deadline
        if has_budget and global_open:
            pending.append((idx, strategy, att.attempt + 1, att.sched + 1,
                            now))
        else:
            results[idx] = StrategyResult(
                name=strategy.name,
                status=STATUS_TIMEOUT,
                wall_time=spent_wall[idx],
                attempts=att.attempt,
            )

    launch_available()
    timed_out = False
    while (running or pending) and winner_idx is None and prover_idx is None:
        now = time.perf_counter()
        if deadline is not None and now >= deadline:
            timed_out = True
            break
        wait_for = 0.1
        if deadline is not None:
            wait_for = min(wait_for, max(0.0, deadline - now))
        for idx, att in running.items():
            if att.sdeadline is not None:
                wait_for = min(wait_for, max(0.0, att.sdeadline - now))
            if policy.stall_timeout is not None and emits_heartbeats(idx):
                wait_for = min(wait_for, max(
                    0.0, att.last_signal + policy.stall_timeout - now))
        for _idx, _s, _a, _sc, not_before in pending:
            wait_for = min(wait_for, max(0.0, not_before - now))
        if running:
            ready = multiprocessing.connection.wait(
                [att.conn for att in running.values()], timeout=wait_for
            )
            ready_set = set(ready)
            # Harvest *every* ready worker before declaring the race
            # over, so strategies that finished in the same poll window
            # report their real status instead of being miscounted as
            # cancelled (the winner is still the first sat in launch
            # order).
            for idx in sorted(running):
                if idx in running and running[idx].conn in ready_set:
                    harvest(idx)
        elif wait_for > 0:
            # Nothing running — only backoff-delayed relaunches queued.
            time.sleep(wait_for)
        now = time.perf_counter()
        if deadline is not None and now >= deadline:
            timed_out = True
            break
        if winner_idx is not None or prover_idx is not None:
            break
        # Stall detection: a worker silent past the timeout is dead to
        # us even if the process is technically alive (hung in native
        # code, swapping, or fault-injected into a sleep loop).  Only
        # heartbeat-capable (native-backend) workers are eligible — on
        # any other backend silence is the norm, not a stall.
        if policy.stall_timeout is not None:
            for idx in sorted(running):
                if idx not in running or not emits_heartbeats(idx):
                    continue
                att = running[idx]
                if now - att.last_signal >= policy.stall_timeout:
                    if not harvest(idx):
                        attempt_died(idx, running.pop(idx), stalled=True)
        # Enforce per-strategy deadlines (restart schedule re-queues).
        for idx in sorted(running):
            if idx not in running:
                continue
            att = running[idx]
            if att.sdeadline is not None and now >= att.sdeadline:
                expire(idx, now)
        launch_available()

    if timed_out:
        # The deadline break above fires before draining ready pipes: a
        # result a worker sent just before the deadline still decides
        # the race (consistent with expire()), so give every running
        # worker one final non-blocking pump before reaping the rest as
        # timeouts.
        for idx in sorted(running):
            outcome = pump(idx)
            if outcome is not None and outcome[0] == "result":
                settle(idx, running.pop(idx), outcome[1])

    # Race over: stop whoever is still working and account for everyone.
    # Losers' queued artifacts are salvaged first — a cancelled worker's
    # mid-check exports are still knowledge (and still validated).
    loser_status = STATUS_TIMEOUT if timed_out else STATUS_CANCELLED
    for idx, att in list(running.items()):
        salvage_artifacts(att.conn, entries[idx].name)
        _reap(att.proc, policy.kill_grace)
        att.conn.close()
        results[idx] = StrategyResult(
            name=entries[idx].name,
            status=loser_status,
            wall_time=spent_wall.get(idx, 0.0) + time.perf_counter() - att.started,
            attempts=att.attempt,
        )
    running.clear()
    for idx, strategy, attempt, _sched, _nb in pending:
        if idx in results:
            continue
        # A queued strategy only "timed out" if the race did; one parked
        # on a crash-retry backoff when the race was decided lost it
        # (cancelled), and one never launched at all was skipped.
        if timed_out:
            queued_status = STATUS_TIMEOUT
        elif attempt > 1:
            queued_status = STATUS_CANCELLED
        else:
            queued_status = STATUS_SKIPPED
        results[idx] = StrategyResult(
            name=strategy.name,
            status=queued_status,
            wall_time=spent_wall.get(idx, 0.0),
            attempts=attempt - 1 if attempt > 1 else 1,
        )

    # Graceful degradation: strategies the process backend gave up on
    # (crash budget exhausted, or spawn failures) get one supervised
    # serial pass — but only while the race is still undecided and the
    # global deadline open.
    decided = winner_idx is not None or prover_idx is not None
    used_serial = False
    for idx, strategy, attempt in serial_rescue:
        if idx in results:
            continue
        now = time.perf_counter()
        if decided:
            results[idx] = StrategyResult(
                name=strategy.name,
                status=STATUS_TIMEOUT if timed_out else STATUS_CANCELLED,
                wall_time=spent_wall.get(idx, 0.0),
                attempts=max(1, attempt - 1),
            )
            continue
        if timed_out or (deadline is not None and now >= deadline):
            timed_out = True
            results[idx] = StrategyResult(
                name=strategy.name,
                status=STATUS_TIMEOUT,
                wall_time=spent_wall.get(idx, 0.0),
                attempts=max(1, attempt - 1),
            )
            continue
        used_serial = True
        result, payload = _run_serial_strategy(
            problem, strategy, deadline, pool, supervisor, policy,
            fault_plan, first_attempt=attempt,
            prior_wall=spent_wall.get(idx, 0.0))
        results[idx] = result
        if result.status == STATUS_SAT and winner_idx is None:
            winner_idx, winner_payload = idx, payload
            winner_wall = result.wall_time
            decided = True
        elif result.status == STATUS_UNSAT and strategy.is_complete:
            prover_idx = idx
            decided = True
        elif result.status == STATUS_TIMEOUT:
            timed_out = True

    total = time.perf_counter() - t0
    solution = (
        _solution_from_payload(problem, winner_payload, winner_wall)
        if winner_payload is not None
        else None
    )
    for idx, sr in results.items():
        extra = supervisor.strategy_statistics(entries[idx].name)
        if extra:
            sr.statistics = {**sr.statistics, **extra}
    ordered = [results[i] for i in sorted(results)]
    winner_name = entries[winner_idx].name if winner_idx is not None else None
    status, verdict_by = _final_verdict(entries, ordered, winner_name,
                                        timed_out)
    return PortfolioResult(
        status=status,
        winner=winner_name,
        solution=solution,
        total_time=total,
        strategy_results=ordered,
        verdict_by=verdict_by,
        pool_statistics=pool.statistics if pool is not None else {},
        degraded_to_serial=used_serial,
        supervision_statistics=supervisor.statistics,
    )


# ---------------------------------------------------------------------------
# Serial racing (fallback backend and degradation target)
# ---------------------------------------------------------------------------


def _run_serial_strategy(
    problem,
    strategy: Strategy,
    deadline: Optional[float],
    pool: Optional[KnowledgePool],
    supervisor: Supervisor,
    policy: SupervisionPolicy,
    fault_plan: Optional[FaultPlan],
    first_attempt: int = 1,
    prior_wall: float = 0.0,
) -> Tuple[StrategyResult, Optional[dict]]:
    """One strategy's supervised in-process run (with crash retries).

    The serial twin of a worker process plus its parent-side supervisor:
    an attempt that raises :class:`InjectedCrash` (or drops its result)
    is retried with the same capped-backoff schedule, re-seeded from the
    pool, up to ``strategy.max_crash_retries`` times.  Native attempts
    run under a :class:`DeadlineWatchdog`, so the global deadline is
    enforced *mid-strategy*: an interrupted solve answers ``unknown``
    and is reported here as ``timeout``.
    """
    name = strategy.name
    attempt = first_attempt
    crashes_used = 0
    wall = prior_wall
    while True:
        run = strategy
        emit = None
        if pool is not None:
            seeded = pool.seeded_options(strategy.options)
            if seeded is not strategy.options:
                run = replace(strategy, options=seeded)

            def emit(artifact: dict, _name=name) -> None:
                if not pool.absorb(artifact, source=_name):
                    supervisor.note_quarantined(_name)
        if fault_plan is not None:
            injected = fault_plan.for_attempt(name, attempt, harsh=False)
            if injected is not None:
                run = replace(run, options=replace(run.options,
                                                   faults=injected))
        started = time.perf_counter()
        payload: Optional[dict] = None
        crashed = False
        try:
            payload = _execute_strategy(problem, run, emit, deadline=deadline)
        except InjectedCrash:
            crashed = True
        wall += time.perf_counter() - started
        if not crashed and run.options.faults is not None \
                and run.options.faults.drop_result:
            payload = None  # the result frame never arrives
            crashed = True
        if crashed:
            supervisor.note_crash(name)
            now = time.perf_counter()
            if crashes_used < strategy.max_crash_retries and (
                    deadline is None or now < deadline):
                crashes_used += 1
                supervisor.note_retry(name)
                delay = policy.backoff(crashes_used)
                if deadline is not None:
                    delay = min(delay, max(0.0, deadline - now))
                if delay:
                    time.sleep(delay)
                attempt += 1
                continue
            supervisor.note_exhausted(name)
            payload = {
                "status": STATUS_ERROR,
                "error": (f"crashed on every attempt "
                          f"({crashes_used + 1} tried, "
                          f"{strategy.max_crash_retries} retries allowed)"),
            }
        result = _result_from_payload(name, payload, wall, attempts=attempt)
        if (result.status == STATUS_UNKNOWN and deadline is not None
                and time.perf_counter() >= deadline):
            # The watchdog interrupted this attempt mid-check: that
            # unknown is really the race's deadline expiring.
            result.status = STATUS_TIMEOUT
        return result, payload


def _race_serial(
    problem,
    entries: List[Strategy],
    timeout: Optional[float],
    share_knowledge: bool = True,
    policy: Optional[SupervisionPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    degraded: bool = False,
) -> PortfolioResult:
    policy = policy or SupervisionPolicy()
    supervisor = Supervisor(policy)
    t0 = time.perf_counter()
    deadline = t0 + timeout if timeout is not None else None
    pool = KnowledgePool() if share_knowledge else None
    results: List[StrategyResult] = []
    winner: Optional[str] = None
    solution: Optional[Solution] = None
    decided = False
    timed_out = False

    for strategy in entries:
        if decided:
            results.append(StrategyResult(strategy.name, STATUS_SKIPPED, 0.0))
            continue
        if deadline is not None and time.perf_counter() >= deadline:
            timed_out = True
            results.append(StrategyResult(strategy.name, STATUS_TIMEOUT, 0.0))
            continue
        result, payload = _run_serial_strategy(
            problem, strategy, deadline, pool, supervisor, policy, fault_plan)
        results.append(result)
        if result.status == STATUS_TIMEOUT:
            timed_out = True
        if result.status == STATUS_SAT and winner is None:
            winner = strategy.name
            solution = _solution_from_payload(problem, payload,
                                              result.wall_time)
            decided = True
        elif result.status == STATUS_UNSAT and strategy.is_complete:
            decided = True  # a proof: nothing left to race for

    for sr in results:
        extra = supervisor.strategy_statistics(sr.name)
        if extra:
            sr.statistics = {**sr.statistics, **extra}
    status, verdict_by = _final_verdict(entries, results, winner, timed_out)
    return PortfolioResult(
        status=status,
        winner=winner,
        solution=solution,
        total_time=time.perf_counter() - t0,
        strategy_results=results,
        verdict_by=verdict_by,
        pool_statistics=pool.statistics if pool is not None else {},
        degraded_to_serial=degraded,
        supervision_statistics=supervisor.statistics,
    )
