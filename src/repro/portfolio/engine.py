"""Portfolio racing: run several synthesis strategies, first SAT wins.

The engine launches one worker process per strategy (bounded by
``max_workers``), watches their result pipes, and as soon as one reports
a satisfiable schedule it terminates the rest — the classic SAT-portfolio
scheme (each strategy explores a different slice of the search space, so
the *minimum* of their runtimes is usually far below any fixed choice).

Race verdicts are sound: ``unsat`` is reported only when a *complete*
strategy (all routes, single stage) actually proved it — the heuristics
may fail on solvable instances, so an all-timeout or all-heuristic-unsat
race reports ``timeout`` / ``unknown`` instead, and
``PortfolioResult.verdict_by`` names the strategy that supplied the
verdict.  A complete strategy's unsat ends the race early (nothing can
beat a proof).

With ``share_knowledge`` (default on) workers stream compact artifacts
back over their result pipes *while solving* — learned clauses, frozen
stage prefixes, and route-subset vetoes (see
:mod:`repro.portfolio.sharing` for the artifact kinds and their
soundness) — and the parent aggregates them into a
:class:`~repro.portfolio.sharing.KnowledgePool` that seeds every restart
attempt and late launch through ``SynthesisOptions.seed_knowledge``, so
re-runs start warm instead of cold.

Results always include one :class:`StrategyResult` per entered strategy,
so experiment code can attribute wins, losses, and cancellations::

    res = synthesize_portfolio(problem)
    if res.ok:
        print(res.winner, res.solution)
    for sr in res.strategy_results:
        print(sr.name, sr.status, f"{sr.wall_time:.2f}s", sr.statistics)

Workers communicate over :class:`multiprocessing.Pipe`; the schedule
travels back as plain :class:`~repro.core.solution.MessageSchedule`
records and is re-attached to the caller's problem object, so no solver
state ever crosses the process boundary.  ``backend="serial"`` runs the
strategies in order in-process (deterministic, used on platforms without
usable subprocesses and by the ``portfolio`` bench); a failed process
launch degrades to it automatically.  Knowledge sharing works in both
backends — serially it flows from each finished strategy into the next.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..api import NativeBackend, Session
from ..core.solution import Solution
from ..core.synthesizer import MODE_STABILITY, SynthesisResult
from . import sharing
from .sharing import KnowledgePool
from .strategies import Strategy, default_portfolio

#: Terminal per-strategy statuses.
STATUS_SAT = "sat"
STATUS_UNSAT = "unsat"
STATUS_ERROR = "error"          # the worker raised / died
STATUS_CANCELLED = "cancelled"  # lost the race, terminated
STATUS_TIMEOUT = "timeout"      # still running at the deadline
STATUS_SKIPPED = "skipped"      # never started (race decided first)
STATUS_UNKNOWN = "unknown"      # undecided (heuristic unsat / errors only)

#: Every status a strategy result may legitimately carry.  Worker
#: payloads are validated against this set so a malformed payload can
#: never masquerade as a verdict.
_STRATEGY_STATUSES = frozenset({
    STATUS_SAT, STATUS_UNSAT, STATUS_ERROR, STATUS_CANCELLED,
    STATUS_TIMEOUT, STATUS_SKIPPED, STATUS_UNKNOWN,
})


@dataclass
class StrategyResult:
    """Outcome and accounting of one strategy's run in the race."""

    name: str
    status: str
    wall_time: float                     # parent-observed elapsed seconds
    synthesis_time: float = 0.0          # worker-measured solve time
    stages_completed: int = 0
    failed_stage: Optional[int] = None
    statistics: Dict[str, int] = field(default_factory=dict)
    error: Optional[str] = None
    attempts: int = 1                    # launches incl. restart-schedule reruns


@dataclass
class PortfolioResult:
    """Outcome of a portfolio race.

    ``status`` is ``"sat"`` (winner found), ``"unsat"`` (a *complete*
    strategy proved infeasibility), ``"timeout"`` (undecided at a
    deadline), or ``"unknown"`` (every strategy failed heuristically or
    errored — the instance may still be solvable).  ``verdict_by`` names
    the strategy whose result decided the race (None when undecided).
    """

    status: str
    winner: Optional[str]                # name of the first sat strategy
    solution: Optional[Solution]
    total_time: float
    strategy_results: List[StrategyResult]
    verdict_by: Optional[str] = None
    #: Knowledge-pool counters of this race (empty when sharing is off).
    pool_statistics: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_SAT

    def result_for(self, name: str) -> StrategyResult:
        for sr in self.strategy_results:
            if sr.name == name:
                return sr
        raise KeyError(f"no strategy named {name!r} in this portfolio")


def synthesize_portfolio(
    problem,
    strategies: Optional[Sequence[Strategy]] = None,
    mode: str = MODE_STABILITY,
    max_workers: Optional[int] = None,
    timeout: Optional[float] = None,
    backend: str = "process",
    share_knowledge: bool = True,
) -> PortfolioResult:
    """Race ``strategies`` (default: :func:`default_portfolio`) on ``problem``.

    Returns the first satisfiable strategy's solution; losers are
    cancelled.  ``timeout`` bounds the race in seconds: the process
    backend enforces it by terminating workers at the deadline, while
    the serial backend can only check it *between* strategies (a running
    in-process solve is not preemptible).

    Per-strategy budgets (``Strategy.timeout`` / ``Strategy.restarts``)
    are enforced by the process backend: an attempt is terminated at its
    own deadline and — while the global deadline is still open — re-queued
    with the next budget from its restart schedule, so a small worker pool
    probes every strategy quickly before giving the slow ones more time.
    The serial backend ignores per-strategy budgets (one non-preemptible
    attempt each).

    ``share_knowledge`` pools learned clauses, route vetoes and stage
    prefixes across workers and seeds restarts/late launches with them
    (:mod:`repro.portfolio.sharing`); turn it off for strict isolation
    A/B runs.
    """
    entries = list(strategies) if strategies is not None else default_portfolio(mode=mode)
    if not entries:
        raise ValueError("portfolio is empty: provide at least one strategy")
    names = [s.name for s in entries]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate strategy names in portfolio: {names}")
    if backend == "serial":
        return _race_serial(problem, entries, timeout, share_knowledge)
    if backend != "process":
        raise ValueError(f"unknown backend {backend!r} (use 'process' or 'serial')")
    try:
        return _race_processes(problem, entries, max_workers, timeout,
                               share_knowledge)
    except OSError:
        # No subprocess could be launched at all (restricted sandbox):
        # degrade gracefully.  Launch failures *mid-race* are handled
        # inside _race_processes and never reach this fallback.
        return _race_serial(problem, entries, timeout, share_knowledge)


# ---------------------------------------------------------------------------
# Running one strategy (shared by the worker processes and the serial path)
# ---------------------------------------------------------------------------


def _execute_strategy(problem, strategy: Strategy, emit=None) -> dict:
    """Run one strategy to completion; return its result payload.

    ``emit`` (optional) receives knowledge artifacts as they become
    available: frozen stage prefixes while solving, learned clauses and
    route vetoes on a provable unsat.  Native-backend strategies solve on
    a locally built engine whose statistics-stream tag carries the
    strategy name, so benchmark trajectories can attribute per-check work
    per strategy (``by_backend`` roll-up in ``BENCH_*.json``).
    """
    from ..core import synthesizer as synth

    # One blanket guard around the whole attempt (engine construction,
    # solve, artifact export): any failure becomes this strategy's error
    # result instead of sinking the race — the serial backend runs this
    # in-process, so an escaped exception would lose every other entrant.
    try:
        opts = strategy.options
        session = engine = None
        if opts.backend == "native":
            # synth.Solver is the patchable engine factory (the
            # one-engine-per-run contract tests rely on it).  The
            # strategy's engine-level options must reach the worker's
            # engine here exactly as core.solve would wire them.
            engine = synth.Solver(dl_propagation=opts.dl_propagation,
                                  max_conflicts=opts.max_conflicts)
            session = Session(backend=NativeBackend(engine=engine))
            engine.backend_name = f"native[{strategy.name}]"
            if emit is not None:
                # Mid-check flush: at every SAT restart (and the final
                # flush of a budget/interrupt abort) stream the current
                # exportable knowledge, so a worker killed inside one
                # long check still contributes to the pool.
                def flush_restart(eng) -> None:
                    for artifact in sharing.restart_artifacts(opts, eng):
                        emit(artifact)
                engine.on_restart = flush_restart
        on_event = None
        if emit is not None:
            def on_event(event: dict) -> None:
                if event.get("kind") == "stage_frozen":
                    emit(sharing.prefix_artifact(opts, event["stage"],
                                                 event["fixed"]))
        result: SynthesisResult = synth.solve(
            problem, opts, session=session, on_event=on_event
        )
        if emit is not None:
            for artifact in sharing.terminal_artifacts(opts, result, engine):
                emit(artifact)
        return _payload_of(result)
    except Exception as exc:  # noqa: BLE001 - report, don't sink the race
        return {"status": STATUS_ERROR,
                "error": f"{type(exc).__name__}: {exc}"}


def _strategy_worker(conn, problem, strategy: Strategy,
                     share: bool = False) -> None:
    """Run one strategy and stream artifacts + the result summary back."""
    try:
        emit = None
        if share:
            def emit(artifact: dict) -> None:
                conn.send({"kind": "artifact", "artifact": artifact})
        payload = _execute_strategy(problem, strategy, emit)
        conn.send({"kind": "result", "payload": payload})
    except Exception as exc:  # noqa: BLE001
        try:
            conn.send({"kind": "result",
                       "payload": {"status": STATUS_ERROR,
                                   "error": f"{type(exc).__name__}: {exc}"}})
        except Exception:
            pass
    finally:
        conn.close()


def _payload_of(result: SynthesisResult) -> dict:
    return {
        "status": result.status,
        "synthesis_time": result.synthesis_time,
        "stages_completed": result.stages_completed,
        "failed_stage": result.failed_stage,
        "statistics": result.statistics,
        "schedules": result.solution.schedules if result.ok else None,
        "mode": result.solution.mode if result.ok else None,
    }


def _result_from_payload(
    name: str, payload: dict, wall_time: float, attempts: int = 1
) -> StrategyResult:
    """The one constructor every worker payload goes through.

    Validates the reported status against the known vocabulary (and that
    a ``sat`` claim actually carries schedules), so a corrupt or
    malformed payload surfaces as :data:`STATUS_ERROR` instead of
    masquerading as a verdict.
    """
    if not isinstance(payload, dict):
        payload = {"status": STATUS_ERROR,
                   "error": f"malformed worker payload: {payload!r:.100}"}
    status = payload.get("status")
    error = payload.get("error")
    if status not in _STRATEGY_STATUSES:
        error = f"worker reported unknown status {status!r}"
        status = STATUS_ERROR
    elif status == STATUS_SAT and payload.get("schedules") is None:
        error = "worker reported sat without a schedule payload"
        status = STATUS_ERROR
    return StrategyResult(
        name=name,
        status=status,
        wall_time=wall_time,
        synthesis_time=payload.get("synthesis_time", 0.0),
        stages_completed=payload.get("stages_completed", 0),
        failed_stage=payload.get("failed_stage"),
        statistics=payload.get("statistics", {}),
        error=error,
        attempts=attempts,
    )


def _solution_from_payload(problem, payload: dict, wall_time: float) -> Solution:
    return Solution(
        problem,
        payload["schedules"],
        synthesis_time=wall_time,
        mode=payload["mode"],
    )


def _final_verdict(
    entries: Sequence[Strategy],
    results: Sequence[StrategyResult],
    winner: Optional[str],
    timed_out: bool,
) -> Tuple[str, Optional[str]]:
    """The race's sound overall status and the strategy that supplied it.

    ``unsat`` requires a complete strategy's proof; heuristic unsats,
    errors and timeouts leave the instance undecided (``timeout`` /
    ``unknown``), never claiming infeasibility without one.
    """
    if winner is not None:
        return STATUS_SAT, winner
    complete = {s.name for s in entries if s.is_complete}
    for sr in results:
        if sr.status == STATUS_UNSAT and sr.name in complete:
            return STATUS_UNSAT, sr.name
    if timed_out or any(sr.status == STATUS_TIMEOUT for sr in results):
        return STATUS_TIMEOUT, None
    return STATUS_UNKNOWN, None


# ---------------------------------------------------------------------------
# Process racing
# ---------------------------------------------------------------------------


def _race_processes(
    problem,
    entries: List[Strategy],
    max_workers: Optional[int],
    timeout: Optional[float],
    share_knowledge: bool,
) -> PortfolioResult:
    ctx = multiprocessing.get_context()
    # Default to racing *every* strategy at once: a portfolio's value is the
    # minimum of its entrants' runtimes, and even on few cores the OS
    # timeshares far better than letting one slow strategy hog the lane.
    # ``max_workers`` caps the fan-out for memory-constrained callers.
    workers = max(1, min(len(entries), max_workers or len(entries)))
    t0 = time.perf_counter()
    deadline = t0 + timeout if timeout is not None else None
    pool = KnowledgePool() if share_knowledge else None

    # Launch queue: (idx, strategy, attempt_no).  Attempt 1 uses
    # strategy.timeout; attempt k>1 uses strategy.restarts[k-2].
    pending = [(idx, s, 1) for idx, s in enumerate(entries)]
    running: Dict[int, tuple] = {}  # idx -> (proc, conn, start, sdeadline, attempt)
    results: Dict[int, StrategyResult] = {}
    spent_wall: Dict[int, float] = {}  # accumulated wall time of dead attempts
    winner_idx: Optional[int] = None
    winner_payload: Optional[dict] = None
    winner_wall = 0.0
    prover_idx: Optional[int] = None  # complete strategy that proved unsat

    def attempt_budget(strategy: Strategy, attempt: int) -> Optional[float]:
        if strategy.timeout is None:
            return None
        if attempt == 1:
            return strategy.timeout
        return strategy.restarts[attempt - 2]

    def launch_available() -> None:
        while pending and len(running) < workers:
            idx, strategy, attempt = pending.pop(0)
            launched = strategy
            if pool is not None:
                # Seed restarts and late launches with everything the
                # pool has gathered so far (cold start -> warm start).
                seeded = pool.seeded_options(strategy.options)
                if seeded is not strategy.options:
                    launched = replace(strategy, options=seeded)
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_strategy_worker,
                args=(child_conn, problem, launched, pool is not None),
                name=f"portfolio-{strategy.name}",
                daemon=True,
            )
            try:
                proc.start()
            except OSError as exc:
                parent_conn.close()
                child_conn.close()
                if not running and not results:
                    # Nothing launched yet: let the caller fall back to
                    # the serial backend wholesale.
                    raise
                # Mid-race launch failure (e.g. EAGAIN near the process
                # limit): record it and keep racing with what we have.
                results[idx] = StrategyResult(
                    name=strategy.name,
                    status=STATUS_ERROR,
                    wall_time=spent_wall.get(idx, 0.0),
                    error=f"could not launch worker: {exc}",
                    attempts=attempt,
                )
                continue
            child_conn.close()
            started = time.perf_counter()
            budget = attempt_budget(strategy, attempt)
            # Per-strategy deadline, clamped to the global one.
            sdeadline = started + budget if budget is not None else None
            if deadline is not None:
                sdeadline = deadline if sdeadline is None else min(sdeadline, deadline)
            running[idx] = (proc, parent_conn, started, sdeadline, attempt)

    def pump(idx: int) -> Optional[dict]:
        """Drain a worker's queued messages; return its result payload.

        Knowledge artifacts are absorbed into the pool as they arrive —
        the worker keeps running.  Returns None while no result has been
        seen; a broken pipe yields a corpse payload (routed through the
        validating constructor like any other).
        """
        proc, conn = running[idx][0], running[idx][1]
        try:
            while conn.poll():
                msg = conn.recv()
                if isinstance(msg, dict) and msg.get("kind") == "artifact":
                    if pool is not None:
                        pool.absorb(msg.get("artifact"),
                                    source=entries[idx].name)
                    continue
                if isinstance(msg, dict) and msg.get("kind") == "result":
                    return msg.get("payload")
                return {"status": STATUS_ERROR,
                        "error": f"malformed worker message: {msg!r:.100}"}
        except (EOFError, OSError):
            return {"status": STATUS_ERROR,
                    "error": f"worker exited without a result "
                             f"(exitcode={proc.exitcode})"}
        return None

    def settle(idx: int, state: tuple, payload: dict) -> None:
        """Record one finished attempt's report; track race deciders."""
        nonlocal winner_idx, winner_payload, winner_wall, prover_idx
        proc, conn, started, _sdeadline, attempt = state
        wall = spent_wall.get(idx, 0.0) + time.perf_counter() - started
        conn.close()
        proc.join()
        result = _result_from_payload(entries[idx].name, payload, wall,
                                      attempts=attempt)
        results[idx] = result
        if winner_idx is None and result.status == STATUS_SAT:
            winner_idx, winner_payload, winner_wall = idx, payload, wall
        if (prover_idx is None and result.status == STATUS_UNSAT
                and entries[idx].is_complete):
            prover_idx = idx

    def salvage_artifacts(conn, source: str) -> None:
        """Absorb artifacts a worker streamed before it was terminated."""
        if pool is None:
            return
        try:
            while conn.poll():
                msg = conn.recv()
                if isinstance(msg, dict) and msg.get("kind") == "artifact":
                    pool.absorb(msg.get("artifact"), source=source)
        except (EOFError, OSError):
            pass

    def expire(idx: int, now: float) -> None:
        """Kill an attempt at its per-strategy deadline; maybe re-queue."""
        # A result may have landed after the last connection.wait(): honor
        # it (it could be the winning sat) instead of discarding it.
        payload = pump(idx)
        if payload is not None:
            settle(idx, running.pop(idx), payload)
            return
        proc, conn, started, _sdeadline, attempt = running.pop(idx)
        proc.terminate()
        proc.join()
        salvage_artifacts(conn, entries[idx].name)
        conn.close()
        spent_wall[idx] = spent_wall.get(idx, 0.0) + now - started
        strategy = entries[idx]
        has_budget = attempt - 1 < len(strategy.restarts)
        global_open = deadline is None or now < deadline
        if has_budget and global_open:
            pending.append((idx, strategy, attempt + 1))
        else:
            results[idx] = StrategyResult(
                name=strategy.name,
                status=STATUS_TIMEOUT,
                wall_time=spent_wall[idx],
                attempts=attempt,
            )

    launch_available()
    timed_out = False
    while running and winner_idx is None and prover_idx is None:
        now = time.perf_counter()
        wait_for = 0.1
        if deadline is not None:
            wait_for = min(wait_for, max(0.0, deadline - now))
        for _, _, _, sdeadline, _ in running.values():
            if sdeadline is not None:
                wait_for = min(wait_for, max(0.0, sdeadline - now))
        ready = multiprocessing.connection.wait(
            [conn for _, conn, _, _, _ in running.values()], timeout=wait_for
        )
        ready_set = set(ready)
        # Harvest *every* ready worker before declaring the race over, so
        # strategies that finished in the same poll window report their
        # real status instead of being miscounted as cancelled (the
        # winner is still the first sat in launch order).
        for idx in sorted(running):
            if running[idx][1] in ready_set:
                payload = pump(idx)
                if payload is not None:
                    settle(idx, running.pop(idx), payload)
        now = time.perf_counter()
        if deadline is not None and now >= deadline:
            timed_out = True
            break
        if winner_idx is not None or prover_idx is not None:
            break
        # Enforce per-strategy deadlines (restart schedule re-queues).
        for idx in sorted(running):
            sdeadline = running[idx][3]
            if sdeadline is not None and now >= sdeadline:
                expire(idx, now)
        launch_available()

    # Race over: stop whoever is still working and account for everyone.
    loser_status = STATUS_TIMEOUT if timed_out else STATUS_CANCELLED
    for idx, (proc, conn, started, _sdeadline, attempt) in list(running.items()):
        proc.terminate()
        proc.join()
        conn.close()
        results[idx] = StrategyResult(
            name=entries[idx].name,
            status=loser_status,
            wall_time=spent_wall.get(idx, 0.0) + time.perf_counter() - started,
            attempts=attempt,
        )
    for idx, strategy, attempt in pending:
        if idx in results:
            continue
        results[idx] = StrategyResult(
            name=strategy.name,
            status=STATUS_TIMEOUT if (timed_out or attempt > 1) else STATUS_SKIPPED,
            wall_time=spent_wall.get(idx, 0.0),
            attempts=attempt - 1 if attempt > 1 else 1,
        )

    total = time.perf_counter() - t0
    solution = (
        _solution_from_payload(problem, winner_payload, winner_wall)
        if winner_payload is not None
        else None
    )
    ordered = [results[i] for i in sorted(results)]
    winner_name = entries[winner_idx].name if winner_idx is not None else None
    status, verdict_by = _final_verdict(entries, ordered, winner_name,
                                        timed_out)
    return PortfolioResult(
        status=status,
        winner=winner_name,
        solution=solution,
        total_time=total,
        strategy_results=ordered,
        verdict_by=verdict_by,
        pool_statistics=pool.statistics if pool is not None else {},
    )


# ---------------------------------------------------------------------------
# Serial fallback
# ---------------------------------------------------------------------------


def _race_serial(
    problem,
    entries: List[Strategy],
    timeout: Optional[float],
    share_knowledge: bool = True,
) -> PortfolioResult:
    t0 = time.perf_counter()
    deadline = t0 + timeout if timeout is not None else None
    pool = KnowledgePool() if share_knowledge else None
    results: List[StrategyResult] = []
    winner: Optional[str] = None
    solution: Optional[Solution] = None
    decided = False
    timed_out = False

    for strategy in entries:
        if decided:
            results.append(StrategyResult(strategy.name, STATUS_SKIPPED, 0.0))
            continue
        if deadline is not None and time.perf_counter() >= deadline:
            timed_out = True
            results.append(StrategyResult(strategy.name, STATUS_TIMEOUT, 0.0))
            continue
        run = strategy
        emit = None
        if pool is not None:
            seeded = pool.seeded_options(strategy.options)
            if seeded is not strategy.options:
                run = replace(strategy, options=seeded)

            def emit(artifact: dict, _name=strategy.name) -> None:
                pool.absorb(artifact, source=_name)
        started = time.perf_counter()
        payload = _execute_strategy(problem, run, emit)
        wall = time.perf_counter() - started
        result = _result_from_payload(strategy.name, payload, wall)
        results.append(result)
        if result.status == STATUS_SAT and winner is None:
            winner = strategy.name
            solution = _solution_from_payload(problem, payload, wall)
            decided = True
        elif result.status == STATUS_UNSAT and strategy.is_complete:
            decided = True  # a proof: nothing left to race for

    status, verdict_by = _final_verdict(entries, results, winner, timed_out)
    return PortfolioResult(
        status=status,
        winner=winner,
        solution=solution,
        total_time=time.perf_counter() - t0,
        strategy_results=results,
        verdict_by=verdict_by,
        pool_statistics=pool.statistics if pool is not None else {},
    )
